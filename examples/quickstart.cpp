// Quickstart: the minimal end-to-end DGR flow.
//
//   1. build (or load) a routing problem: a g-cell grid plus nets,
//   2. construct the routing DAG forest (tree + path candidates),
//   3. train the differentiable solver,
//   4. extract a discrete 2D solution and post-process it to 3D,
//   5. report quality metrics.
//
// Build & run:  cmake --build build --target example_quickstart &&
//               ./build/examples/example_quickstart

#include <cstdio>

#include "dgr/dgr.hpp"

int main() {
  using namespace dgr;
  util::set_log_level(util::LogLevel::kWarn);

  // 1. A small synthetic design: 32x32 g-cells, 5 metal layers, 400 nets
  //    with a couple of congestion hot-spots (ISPD-contest flavoured).
  design::IspdLikeParams params;
  params.name = "quickstart";
  params.grid_w = params.grid_h = 32;
  params.num_nets = 400;
  params.layers = 5;
  params.tracks_per_layer = 4;
  const design::Design design = design::generate_ispd_like(params, /*seed=*/42);

  // Per-edge 2D capacities from Eq. (1): tracks - beta*pin_density - local nets.
  const std::vector<float> capacities = design.capacities();
  std::printf("design: %zu nets (%zu routable), grid %dx%d, %d layers\n",
              design.net_count(), design.routable_nets().size(), design.grid().width(),
              design.grid().height(), design.grid().layer_count());

  // 2. The routing DAG forest: per net, FLUTE-like RSMT + congestion-shifted
  //    tree candidates; per 2-pin sub-net, the L-shape path candidates.
  const dag::DagForest forest = dag::DagForest::build(design);
  std::printf("forest: %zu tree candidates, %zu sub-nets, %zu path candidates\n",
              forest.trees().size(), forest.subnets().size(), forest.paths().size());

  // 3. Differentiable optimisation (Gumbel-softmax relaxation + Adam).
  core::DgrConfig config;           // paper defaults: sigmoid, lr 0.3, 1000 iters
  config.iterations = 400;          // quickstart-sized
  config.temperature_interval = 40;
  core::DgrSolver solver(forest, capacities, config);
  const core::TrainStats stats = solver.train();
  std::printf("trained %d iterations in %.2fs, final expected cost %.1f\n",
              stats.iterations_run, stats.train_seconds, stats.final_cost.total);

  // 4. Discrete extraction (argmax trees, top-p paths) + maze refinement +
  //    DP layer assignment.
  eval::RouteSolution solution = solver.extract();
  post::maze_refine(solution, capacities);
  const post::LayerAssignment layers = post::assign_layers(solution, capacities);

  // 5. Quality report.
  const eval::Metrics m = eval::compute_metrics(solution, capacities);
  std::printf("\nresults:\n");
  std::printf("  connected        : %s\n", solution.connects_all_pins() ? "yes" : "NO");
  std::printf("  overflowed edges : %lld\n", static_cast<long long>(m.overflow_edges));
  std::printf("  total overflow   : %.2f\n", m.total_overflow);
  std::printf("  wirelength       : %lld\n", static_cast<long long>(m.wirelength));
  std::printf("  vias (3D)        : %lld\n", static_cast<long long>(layers.via_count));
  return 0;
}
