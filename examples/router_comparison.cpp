// Router comparison: runs every global router registered in the pipeline
// registry — DGR and the three baseline families (CUGR2-lite, SPRoute-lite,
// Lagrangian) — on the same generated design through the same Pipeline and
// prints a side-by-side quality/runtime table.
//
// Usage: example_router_comparison [num_nets] [grid] [seed]
//                                  [--trace <file>] [--metrics <file>]
//                                  [--partitions N]
//
// --trace writes a Chrome trace_event JSON of the whole comparison (open in
// chrome://tracing or https://ui.perfetto.dev); --metrics writes the obs
// metrics-registry snapshot. Both also enable solver convergence telemetry.
// --partitions N configures the "partitioned" row's region count (its other
// rows stay sequential, so the table doubles as a partition-quality check).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "dgr/dgr.hpp"

int main(int argc, char** argv) {
  using namespace dgr;
  util::set_log_level(util::LogLevel::kWarn);

  std::string trace_path;
  std::string metrics_path;
  int partitions = 0;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--partitions") == 0 && i + 1 < argc) {
      partitions = std::atoi(argv[++i]);
    } else {
      positional.push_back(argv[i]);
    }
  }

  const int nets = positional.size() > 0 ? std::atoi(positional[0]) : 800;
  const int grid = positional.size() > 1 ? std::atoi(positional[1]) : 28;
  const std::uint64_t seed =
      positional.size() > 2 ? static_cast<std::uint64_t>(std::atoll(positional[2])) : 7;

  const bool observing = !trace_path.empty() || !metrics_path.empty();
  if (!trace_path.empty()) {
    if (!obs::compiled_in()) {
      std::fprintf(stderr, "warning: built with DGR_OBS=OFF; trace will be empty\n");
    }
    obs::reset_trace();
    obs::set_tracing(true);
  }
  if (observing) obs::metrics().reset();

  design::IspdLikeParams params;
  params.name = "compare";
  params.grid_w = params.grid_h = grid;
  params.num_nets = nets;
  params.layers = 5;
  params.tracks_per_layer = 3;
  params.hotspot_affinity = 0.55;
  const design::Design design = design::generate_ispd_like(params, seed);

  pipeline::RoutingContext ctx(design);
  pipeline::Pipeline pipe(ctx);

  std::printf("design: %d nets on %dx%d, 5 layers (seed %llu)\n\n", nets, grid, grid,
              static_cast<unsigned long long>(seed));

  eval::TablePrinter table(
      {"router", "ovf edges", "total ovf", "WL", "vias", "time (s)"});

  pipeline::RouterOptions options;
  options.dgr.iterations = 600;
  options.dgr.temperature_interval = 60;
  // With observation on, also capture the per-iteration convergence series
  // (it rides along in RouterStats and as dgr.* trace counters).
  options.dgr.record_telemetry = observing;
  if (partitions > 0) options.partition.partitions = partitions;

  for (const std::string& name : pipeline::registered_routers()) {
    const auto router = pipeline::make_router(name, options);
    // Post-processing-only entries (maze-refine) need a prior solution;
    // this example compares cold full routers.
    if (router == nullptr || router->requires_warm_start()) continue;
    // DGR is the only router the paper pairs with maze refinement.
    const pipeline::StagePlan plan{.maze_refine = name == "dgr", .layer_assign = true};
    const pipeline::PipelineResult r = pipe.run(*router, plan);
    const double secs = r.stats.stage_seconds("route_total") +
                        r.stats.stage_seconds("maze_refine");
    table.add_row({name, eval::fmt_int(r.metrics.overflow_edges),
                   eval::fmt_double(r.metrics.total_overflow, 1),
                   eval::fmt_int(r.metrics.wirelength),
                   eval::fmt_int(r.layers.via_count), eval::fmt_double(secs, 2)});
  }

  table.print(std::cout);

  if (!trace_path.empty()) {
    obs::set_tracing(false);
    if (obs::write_chrome_trace(trace_path)) {
      std::printf("\ntrace: %s (%zu events; open in chrome://tracing)\n",
                  trace_path.c_str(), obs::trace_event_count());
    } else {
      std::fprintf(stderr, "error: could not write trace to %s\n", trace_path.c_str());
      return 1;
    }
  }
  if (!metrics_path.empty()) {
    if (obs::metrics().write_snapshot(metrics_path)) {
      std::printf("metrics: %s\n", metrics_path.c_str());
    } else {
      std::fprintf(stderr, "error: could not write metrics to %s\n",
                   metrics_path.c_str());
      return 1;
    }
  }
  return 0;
}
