// Router comparison: runs every global router registered in the pipeline
// registry — DGR and the three baseline families (CUGR2-lite, SPRoute-lite,
// Lagrangian) — on the same generated design through the same Pipeline and
// prints a side-by-side quality/runtime table.
//
// Usage: example_router_comparison [num_nets] [grid] [seed]

#include <cstdio>
#include <iostream>
#include <cstdlib>

#include "dgr/dgr.hpp"

int main(int argc, char** argv) {
  using namespace dgr;
  util::set_log_level(util::LogLevel::kWarn);

  const int nets = argc > 1 ? std::atoi(argv[1]) : 800;
  const int grid = argc > 2 ? std::atoi(argv[2]) : 28;
  const std::uint64_t seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 7;

  design::IspdLikeParams params;
  params.name = "compare";
  params.grid_w = params.grid_h = grid;
  params.num_nets = nets;
  params.layers = 5;
  params.tracks_per_layer = 3;
  params.hotspot_affinity = 0.55;
  const design::Design design = design::generate_ispd_like(params, seed);

  pipeline::RoutingContext ctx(design);
  pipeline::Pipeline pipe(ctx);

  std::printf("design: %d nets on %dx%d, 5 layers (seed %llu)\n\n", nets, grid, grid,
              static_cast<unsigned long long>(seed));

  eval::TablePrinter table(
      {"router", "ovf edges", "total ovf", "WL", "vias", "time (s)"});

  pipeline::RouterOptions options;
  options.dgr.iterations = 600;
  options.dgr.temperature_interval = 60;

  for (const std::string& name : pipeline::registered_routers()) {
    const auto router = pipeline::make_router(name, options);
    // Post-processing-only entries (maze-refine) need a prior solution;
    // this example compares cold full routers.
    if (router == nullptr || router->requires_warm_start()) continue;
    // DGR is the only router the paper pairs with maze refinement.
    const pipeline::StagePlan plan{.maze_refine = name == "dgr", .layer_assign = true};
    const pipeline::PipelineResult r = pipe.run(*router, plan);
    const double secs = r.stats.stage_seconds("route_total") +
                        r.stats.stage_seconds("maze_refine");
    table.add_row({name, eval::fmt_int(r.metrics.overflow_edges),
                   eval::fmt_double(r.metrics.total_overflow, 1),
                   eval::fmt_int(r.metrics.wirelength),
                   eval::fmt_int(r.layers.via_count), eval::fmt_double(secs, 2)});
  }

  table.print(std::cout);
  return 0;
}
