// Router comparison: runs every global router in this repo — DGR and the
// three baseline families (CUGR2-lite, SPRoute-lite, Lagrangian) — on the
// same generated design and prints a side-by-side quality/runtime table.
//
// Usage: example_router_comparison [num_nets] [grid] [seed]

#include <cstdio>
#include <iostream>
#include <cstdlib>

#include "dgr/dgr.hpp"

int main(int argc, char** argv) {
  using namespace dgr;
  util::set_log_level(util::LogLevel::kWarn);

  const int nets = argc > 1 ? std::atoi(argv[1]) : 800;
  const int grid = argc > 2 ? std::atoi(argv[2]) : 28;
  const std::uint64_t seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 7;

  design::IspdLikeParams params;
  params.name = "compare";
  params.grid_w = params.grid_h = grid;
  params.num_nets = nets;
  params.layers = 5;
  params.tracks_per_layer = 3;
  params.hotspot_affinity = 0.55;
  const design::Design design = design::generate_ispd_like(params, seed);
  const std::vector<float> cap = design.capacities();

  std::printf("design: %d nets on %dx%d, 5 layers (seed %llu)\n\n", nets, grid, grid,
              static_cast<unsigned long long>(seed));

  eval::TablePrinter table(
      {"router", "ovf edges", "total ovf", "WL", "vias", "time (s)"});

  auto report = [&](const std::string& name, eval::RouteSolution sol, double secs) {
    const eval::Metrics m = eval::compute_metrics(sol, cap);
    const post::LayerAssignment la = post::assign_layers(sol, cap);
    table.add_row({name, eval::fmt_int(m.overflow_edges),
                   eval::fmt_double(m.total_overflow, 1), eval::fmt_int(m.wirelength),
                   eval::fmt_int(la.via_count), eval::fmt_double(secs, 2)});
  };

  {
    util::Timer t;
    routers::Cugr2Lite router(design, cap);
    report("CUGR2-lite (sequential DP+RRR)", router.route(), t.seconds());
  }
  {
    util::Timer t;
    routers::SpRouteLite router(design, cap);
    report("SPRoute-lite (PathFinder maze)", router.route(), t.seconds());
  }
  {
    util::Timer t;
    routers::LagrangianRouter router(design, cap);
    report("Lagrangian (priced shortest paths)", router.route(), t.seconds());
  }
  {
    util::Timer t;
    const dag::DagForest forest = dag::DagForest::build(design);
    core::DgrConfig config;
    config.iterations = 600;
    config.temperature_interval = 60;
    core::DgrSolver solver(forest, cap, config);
    solver.train();
    eval::RouteSolution sol = solver.extract();
    post::maze_refine(sol, cap);
    report("DGR (differentiable, concurrent)", std::move(sol), t.seconds());
  }

  table.print(std::cout);
  return 0;
}
