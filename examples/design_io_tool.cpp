// Design I/O tool: a small CLI around the .dgrd text format.
//
//   example_design_io_tool gen <out.dgrd> [nets] [grid] [seed]
//       generate an ISPD-like synthetic design and save it
//   example_design_io_tool route <in.dgrd> [iterations] [guides.out]
//       load a design, run the full DGR pipeline, print metrics, and
//       optionally dump ISPD-style routing guides
//   example_design_io_tool info <in.dgrd>
//       print design statistics
//
// The format is documented in src/design/io.hpp; saved designs make
// experiments replayable without regenerating (and are diff-friendly).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "dgr/dgr.hpp"

namespace {

using namespace dgr;

int cmd_gen(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: design_io_tool gen <out.dgrd> [nets] [grid] [seed]\n");
    return 2;
  }
  design::IspdLikeParams params;
  params.name = "generated";
  params.num_nets = argc > 3 ? std::atoi(argv[3]) : 1000;
  params.grid_w = params.grid_h = argc > 4 ? std::atoi(argv[4]) : 32;
  params.layers = 5;
  const std::uint64_t seed =
      argc > 5 ? static_cast<std::uint64_t>(std::atoll(argv[5])) : 1;
  const design::Design d = design::generate_ispd_like(params, seed);
  design::write_design_file(argv[2], d);
  std::printf("wrote %s: %zu nets on %dx%dx%d\n", argv[2], d.net_count(),
              d.grid().width(), d.grid().height(), d.grid().layer_count());
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: design_io_tool info <in.dgrd>\n");
    return 2;
  }
  const design::Design d = design::read_design_file(argv[2]);
  std::printf("design  : %s\n", d.name().c_str());
  std::printf("grid    : %dx%d, %d layers\n", d.grid().width(), d.grid().height(),
              d.grid().layer_count());
  std::printf("nets    : %zu (%zu routable, %zu local)\n", d.net_count(),
              d.routable_nets().size(), d.local_net_count());
  std::printf("HPWL    : %lld\n", static_cast<long long>(d.total_hpwl()));
  std::size_t max_pins = 0;
  double avg_pins = 0.0;
  for (const design::Net& n : d.nets()) {
    max_pins = std::max(max_pins, n.pins.size());
    avg_pins += static_cast<double>(n.pins.size());
  }
  std::printf("pins/net: avg %.2f, max %zu\n", avg_pins / static_cast<double>(d.net_count()),
              max_pins);
  return 0;
}

int cmd_route(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: design_io_tool route <in.dgrd> [iterations]\n");
    return 2;
  }
  const design::Design d = design::read_design_file(argv[2]);
  const int iters = argc > 3 ? std::atoi(argv[3]) : 500;
  const std::vector<float> cap = d.capacities();

  util::Timer timer;
  const dag::DagForest forest = dag::DagForest::build(d);
  core::DgrConfig config;
  config.iterations = iters;
  config.temperature_interval = std::max(1, iters / 10);
  core::DgrSolver solver(forest, cap, config);
  solver.train();
  eval::RouteSolution sol = solver.extract();
  post::maze_refine(sol, cap);
  const post::LayerAssignment la = post::assign_layers(sol, cap);
  const eval::Metrics m = eval::compute_metrics(sol, cap);

  std::printf("routed %s in %.2fs (%d iterations)\n", argv[2], timer.seconds(), iters);
  std::printf("  overflowed edges : %lld\n", static_cast<long long>(m.overflow_edges));
  std::printf("  total overflow   : %.2f\n", m.total_overflow);
  std::printf("  wirelength       : %lld\n", static_cast<long long>(m.wirelength));
  std::printf("  vias             : %lld\n", static_cast<long long>(la.via_count));
  std::printf("  connected        : %s\n", sol.connects_all_pins() ? "yes" : "NO");

  if (argc > 4) {
    const post::RouteGuides guides = post::make_guides(sol, la);
    std::ofstream os(argv[4]);
    if (!os) {
      std::fprintf(stderr, "cannot open %s\n", argv[4]);
      return 1;
    }
    post::write_guides(os, guides, d);
    std::printf("  guides           : %zu boxes -> %s (covering: %s)\n",
                guides.box_count(), argv[4],
                post::guides_cover_solution(guides, sol, la) ? "yes" : "NO");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dgr;
  util::set_log_level(util::LogLevel::kWarn);
  if (argc < 2) {
    std::fprintf(stderr, "usage: design_io_tool <gen|info|route> ...\n");
    return 2;
  }
  try {
    if (std::strcmp(argv[1], "gen") == 0) return cmd_gen(argc, argv);
    if (std::strcmp(argv[1], "info") == 0) return cmd_info(argc, argv);
    if (std::strcmp(argv[1], "route") == 0) return cmd_route(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command '%s'\n", argv[1]);
  return 2;
}
