// Congestion-map example: visualises how DGR's concurrent optimisation
// spreads demand compared to a purely greedy (congestion-blind) selection.
//
// Prints two ASCII heat maps of per-cell edge utilisation (demand/capacity):
// '.' < 50%, '-' < 80%, '+' <= 100%, '#' overflowed.

#include <cstdio>
#include <vector>

#include "dgr/dgr.hpp"

namespace {

using namespace dgr;

/// Max utilisation over the edges incident to each cell.
std::vector<double> cell_utilisation(const eval::RouteSolution& sol,
                                     const std::vector<float>& cap) {
  const auto& grid = sol.design->grid();
  const grid::DemandMap dm = sol.demand();
  std::vector<double> util(static_cast<std::size_t>(grid.cell_count()), 0.0);
  for (grid::EdgeId e = 0; e < grid.edge_count(); ++e) {
    const double c = cap[static_cast<std::size_t>(e)];
    const double u = c > 0 ? dm.demand(e) / c : (dm.demand(e) > 0 ? 2.0 : 0.0);
    const auto [a, b] = grid.edge_cells(e);
    for (const geom::Point p : {a, b}) {
      auto& slot = util[static_cast<std::size_t>(grid.cell_id(p))];
      slot = std::max(slot, u);
    }
  }
  return util;
}

void print_map(const char* title, const eval::RouteSolution& sol,
               const std::vector<float>& cap) {
  const auto& grid = sol.design->grid();
  const std::vector<double> util = cell_utilisation(sol, cap);
  const eval::Metrics m = eval::compute_metrics(sol, cap);
  std::printf("%s  (overflowed edges: %lld, wirelength: %lld)\n", title,
              static_cast<long long>(m.overflow_edges), static_cast<long long>(m.wirelength));
  for (int y = grid.height() - 1; y >= 0; --y) {
    for (int x = 0; x < grid.width(); ++x) {
      const double u = util[static_cast<std::size_t>(
          grid.cell_id({static_cast<geom::Coord>(x), static_cast<geom::Coord>(y)}))];
      std::putchar(u > 1.0 + 1e-9 ? '#' : (u > 0.8 ? '+' : (u > 0.5 ? '-' : '.')));
    }
    std::putchar('\n');
  }
  std::putchar('\n');
}

}  // namespace

int main() {
  using namespace dgr;
  util::set_log_level(util::LogLevel::kWarn);

  design::IspdLikeParams params;
  params.name = "hotspot";
  params.grid_w = params.grid_h = 40;
  params.num_nets = 700;
  params.layers = 5;
  params.tracks_per_layer = 2;
  params.hotspots = 1;
  params.hotspot_affinity = 0.6;
  const design::Design design = design::generate_ispd_like(params, 2024);
  const std::vector<float> cap = design.capacities();
  const dag::DagForest forest = dag::DagForest::build(design);

  // Greedy reference: untrained solver, argmax extraction with no capacity
  // awareness (top_p = 0 keeps only the most probable L per sub-net, which is
  // effectively a random/HPWL-driven pick).
  {
    core::DgrConfig config;
    config.iterations = 0;
    config.top_p = 0.0f;
    core::DgrSolver solver(forest, cap, config);
    print_map("[greedy, congestion-blind selection]", solver.extract(), cap);
  }

  // DGR: trained selection probabilities coordinate all nets at once.
  {
    core::DgrConfig config;
    config.iterations = 500;
    config.temperature_interval = 50;
    core::DgrSolver solver(forest, cap, config);
    solver.train();
    eval::RouteSolution sol = solver.extract();
    post::maze_refine(sol, cap);
    print_map("[DGR, concurrent differentiable optimisation]", sol, cap);
  }

  std::printf("legend: '.' <50%%  '-' <80%%  '+' <=100%%  '#' overflow\n");
  return 0;
}
