// dgr_serve: the routing-as-a-service daemon.
//
// Speaks one JSON request per line on stdin (responses on stdout) and,
// with --socket PATH, on a Unix domain socket as well. See DESIGN.md §10
// for the protocol grammar; README.md has a sample session.
//
//   ./example_dgr_serve --workers 4 --deadline-ms 2000 --metrics metrics.json
//   {"id":"r1","op":"load","session":"s1","path":"design.dgrd"}
//   {"id":"r2","op":"route","session":"s1","router":"dgr","seed":3}
//   {"id":"r3","op":"eco","session":"s1","mutation":{"generate":true,"seed":7}}
//   {"id":"r4","op":"shutdown"}
//
// SIGINT/SIGTERM drain the queue and flush the metrics snapshot / trace
// before exiting; a second signal cancels in-flight work instead.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "dgr/dgr.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "  --workers N          routing worker threads (default 2)\n"
               "  --queue N            admission queue capacity (default 16)\n"
               "  --deadline-ms X      default per-request deadline (default none)\n"
               "  --router NAME        default router (default dgr)\n"
               "  --fallback NAME      degradation fallback; 'none' disables\n"
               "  --iterations N       default DGR iterations (default 60)\n"
               "  --partitions N       partition-parallel routing by default:\n"
               "                       >= 2 regions per route (default off)\n"
               "  --attempts N         route attempts before degrading (default 2)\n"
               "  --rate R             admission rate limit, req/s (default off)\n"
               "  --burst N            rate-limit burst size (default 8)\n"
               "  --max-input-bytes N  reject designs larger than N bytes\n"
               "  --max-nets N         reject designs with more nets\n"
               "  --max-pins N         reject designs with more total pins\n"
               "  --cache-sessions N   session cache capacity (default 8)\n"
               "  --cache-bytes N      session cache memory budget (default none)\n"
               "  --socket PATH        also listen on a unix domain socket\n"
               "  --metrics PATH       write a metrics snapshot on shutdown\n"
               "  --metrics-interval S rewrite --metrics/--prometheus every S seconds\n"
               "  --prometheus PATH    write Prometheus text exposition (scrape target)\n"
               "  --flight PATH        flight-recorder artifact (INTERNAL/cancel/shutdown)\n"
               "  --flight-capacity N  flight-recorder ring size (default 256)\n"
               "  --slo-latency-ms X   SLO latency objective (default 500)\n"
               "  --slo-availability X SLO availability target (default 0.999)\n"
               "  --trace PATH         record + write a Chrome trace on shutdown\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using dgr::serve::Server;
  using dgr::serve::ServerOptions;

  ServerOptions options;
  std::string socket_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workers") {
      options.workers = std::atoi(next());
    } else if (arg == "--queue") {
      options.queue_capacity = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--deadline-ms") {
      options.default_deadline_ms = std::atof(next());
    } else if (arg == "--router") {
      options.default_router = next();
    } else if (arg == "--fallback") {
      options.fallback_router = next();
      if (options.fallback_router == "none") options.fallback_router.clear();
    } else if (arg == "--iterations") {
      options.default_iterations = std::atoi(next());
    } else if (arg == "--partitions") {
      options.default_partitions = std::atoi(next());
    } else if (arg == "--attempts") {
      options.max_attempts = std::atoi(next());
    } else if (arg == "--rate") {
      options.rate_limit_per_sec = std::atof(next());
    } else if (arg == "--burst") {
      options.rate_burst = std::atof(next());
    } else if (arg == "--max-input-bytes") {
      options.design_limits.max_input_bytes = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--max-nets") {
      options.design_limits.max_nets = std::atoll(next());
    } else if (arg == "--max-pins") {
      options.design_limits.max_total_pins = std::atoll(next());
    } else if (arg == "--cache-sessions") {
      options.cache.max_sessions = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--cache-bytes") {
      options.cache.memory_budget_bytes = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--metrics") {
      options.metrics_snapshot_path = next();
    } else if (arg == "--metrics-interval") {
      options.metrics_interval_s = std::atof(next());
    } else if (arg == "--prometheus") {
      options.prometheus_path = next();
    } else if (arg == "--flight") {
      options.flight_path = next();
    } else if (arg == "--flight-capacity") {
      options.flight_capacity = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--slo-latency-ms") {
      options.slo.latency_objective_ms = std::atof(next());
    } else if (arg == "--slo-availability") {
      options.slo.availability_target = std::atof(next());
    } else if (arg == "--trace") {
      options.trace_path = next();
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  dgr::serve::install_signal_handlers();
  if (!options.trace_path.empty()) dgr::obs::set_tracing(true);

  Server server(options);
  server.start();

  dgr::serve::UnixSocketListener listener(server);
  if (!socket_path.empty()) {
    const dgr::Status bound = listener.listen(socket_path);
    if (!bound.ok()) {
      std::fprintf(stderr, "%s\n", bound.to_string().c_str());
      return 1;
    }
  }

  dgr::serve::run_stdio(server, std::cin, std::cout);

  // First signal (or EOF / shutdown op): drain. A signal received during
  // the drain cancels instead.
  const bool cancel = dgr::serve::signal_received() != 0 &&
                      dgr::serve::signal_received() != SIGINT;
  listener.stop();
  server.shutdown(/*drain=*/!cancel);
  return 0;
}
