file(REMOVE_RECURSE
  "CMakeFiles/example_design_io_tool.dir/design_io_tool.cpp.o"
  "CMakeFiles/example_design_io_tool.dir/design_io_tool.cpp.o.d"
  "example_design_io_tool"
  "example_design_io_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_design_io_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
