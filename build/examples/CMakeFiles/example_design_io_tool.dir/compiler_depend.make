# Empty compiler generated dependencies file for example_design_io_tool.
# This may be replaced when dependencies are built.
