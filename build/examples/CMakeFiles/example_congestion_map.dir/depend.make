# Empty dependencies file for example_congestion_map.
# This may be replaced when dependencies are built.
