file(REMOVE_RECURSE
  "CMakeFiles/example_congestion_map.dir/congestion_map.cpp.o"
  "CMakeFiles/example_congestion_map.dir/congestion_map.cpp.o.d"
  "example_congestion_map"
  "example_congestion_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_congestion_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
