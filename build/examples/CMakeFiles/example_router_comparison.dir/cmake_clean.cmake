file(REMOVE_RECURSE
  "CMakeFiles/example_router_comparison.dir/router_comparison.cpp.o"
  "CMakeFiles/example_router_comparison.dir/router_comparison.cpp.o.d"
  "example_router_comparison"
  "example_router_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_router_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
