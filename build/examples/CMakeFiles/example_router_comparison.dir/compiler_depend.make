# Empty compiler generated dependencies file for example_router_comparison.
# This may be replaced when dependencies are built.
