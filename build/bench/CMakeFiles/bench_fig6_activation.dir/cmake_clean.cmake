file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_activation.dir/fig6_activation.cpp.o"
  "CMakeFiles/bench_fig6_activation.dir/fig6_activation.cpp.o.d"
  "bench_fig6_activation"
  "bench_fig6_activation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_activation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
