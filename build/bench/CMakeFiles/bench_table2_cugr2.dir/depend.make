# Empty dependencies file for bench_table2_cugr2.
# This may be replaced when dependencies are built.
