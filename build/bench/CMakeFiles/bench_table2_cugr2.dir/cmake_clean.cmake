file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_cugr2.dir/table2_cugr2.cpp.o"
  "CMakeFiles/bench_table2_cugr2.dir/table2_cugr2.cpp.o.d"
  "bench_table2_cugr2"
  "bench_table2_cugr2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_cugr2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
