file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_ispd18.dir/table3_ispd18.cpp.o"
  "CMakeFiles/bench_table3_ispd18.dir/table3_ispd18.cpp.o.d"
  "bench_table3_ispd18"
  "bench_table3_ispd18.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_ispd18.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
