# Empty dependencies file for bench_table3_ispd18.
# This may be replaced when dependencies are built.
