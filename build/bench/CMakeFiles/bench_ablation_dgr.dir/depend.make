# Empty dependencies file for bench_ablation_dgr.
# This may be replaced when dependencies are built.
