file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dgr.dir/ablation_dgr.cpp.o"
  "CMakeFiles/bench_ablation_dgr.dir/ablation_dgr.cpp.o.d"
  "bench_ablation_dgr"
  "bench_ablation_dgr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dgr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
