file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_ilp.dir/table1_ilp.cpp.o"
  "CMakeFiles/bench_table1_ilp.dir/table1_ilp.cpp.o.d"
  "bench_table1_ilp"
  "bench_table1_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
