# Empty dependencies file for rsmt_test.
# This may be replaced when dependencies are built.
