file(REMOVE_RECURSE
  "CMakeFiles/rsmt_test.dir/rsmt_test.cpp.o"
  "CMakeFiles/rsmt_test.dir/rsmt_test.cpp.o.d"
  "rsmt_test"
  "rsmt_test.pdb"
  "rsmt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsmt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
