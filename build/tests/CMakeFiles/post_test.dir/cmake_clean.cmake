file(REMOVE_RECURSE
  "CMakeFiles/post_test.dir/post_test.cpp.o"
  "CMakeFiles/post_test.dir/post_test.cpp.o.d"
  "post_test"
  "post_test.pdb"
  "post_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/post_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
