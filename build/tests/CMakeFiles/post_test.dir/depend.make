# Empty dependencies file for post_test.
# This may be replaced when dependencies are built.
