file(REMOVE_RECURSE
  "CMakeFiles/guide_test.dir/guide_test.cpp.o"
  "CMakeFiles/guide_test.dir/guide_test.cpp.o.d"
  "guide_test"
  "guide_test.pdb"
  "guide_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guide_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
