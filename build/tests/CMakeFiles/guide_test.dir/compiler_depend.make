# Empty compiler generated dependencies file for guide_test.
# This may be replaced when dependencies are built.
