file(REMOVE_RECURSE
  "CMakeFiles/ad_test.dir/ad_test.cpp.o"
  "CMakeFiles/ad_test.dir/ad_test.cpp.o.d"
  "ad_test"
  "ad_test.pdb"
  "ad_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
