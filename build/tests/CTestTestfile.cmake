# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/grid_test[1]_include.cmake")
include("/root/repo/build/tests/design_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/rsmt_test[1]_include.cmake")
include("/root/repo/build/tests/dag_test[1]_include.cmake")
include("/root/repo/build/tests/ad_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/ilp_test[1]_include.cmake")
include("/root/repo/build/tests/routers_test[1]_include.cmake")
include("/root/repo/build/tests/post_test[1]_include.cmake")
include("/root/repo/build/tests/guide_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
