file(REMOVE_RECURSE
  "libdgr_core.a"
)
