file(REMOVE_RECURSE
  "CMakeFiles/dgr_core.dir/core/config.cpp.o"
  "CMakeFiles/dgr_core.dir/core/config.cpp.o.d"
  "CMakeFiles/dgr_core.dir/core/extract.cpp.o"
  "CMakeFiles/dgr_core.dir/core/extract.cpp.o.d"
  "CMakeFiles/dgr_core.dir/core/relaxation.cpp.o"
  "CMakeFiles/dgr_core.dir/core/relaxation.cpp.o.d"
  "CMakeFiles/dgr_core.dir/core/solver.cpp.o"
  "CMakeFiles/dgr_core.dir/core/solver.cpp.o.d"
  "libdgr_core.a"
  "libdgr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
