# Empty dependencies file for dgr_core.
# This may be replaced when dependencies are built.
