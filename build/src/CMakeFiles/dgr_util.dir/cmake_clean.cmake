file(REMOVE_RECURSE
  "CMakeFiles/dgr_util.dir/util/log.cpp.o"
  "CMakeFiles/dgr_util.dir/util/log.cpp.o.d"
  "CMakeFiles/dgr_util.dir/util/memprobe.cpp.o"
  "CMakeFiles/dgr_util.dir/util/memprobe.cpp.o.d"
  "CMakeFiles/dgr_util.dir/util/parallel.cpp.o"
  "CMakeFiles/dgr_util.dir/util/parallel.cpp.o.d"
  "CMakeFiles/dgr_util.dir/util/rng.cpp.o"
  "CMakeFiles/dgr_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/dgr_util.dir/util/timer.cpp.o"
  "CMakeFiles/dgr_util.dir/util/timer.cpp.o.d"
  "libdgr_util.a"
  "libdgr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
