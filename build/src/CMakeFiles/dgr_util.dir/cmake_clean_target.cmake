file(REMOVE_RECURSE
  "libdgr_util.a"
)
