# Empty dependencies file for dgr_util.
# This may be replaced when dependencies are built.
