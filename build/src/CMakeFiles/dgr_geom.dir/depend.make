# Empty dependencies file for dgr_geom.
# This may be replaced when dependencies are built.
