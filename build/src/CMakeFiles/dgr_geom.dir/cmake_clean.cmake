file(REMOVE_RECURSE
  "CMakeFiles/dgr_geom.dir/geom/geom.cpp.o"
  "CMakeFiles/dgr_geom.dir/geom/geom.cpp.o.d"
  "libdgr_geom.a"
  "libdgr_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgr_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
