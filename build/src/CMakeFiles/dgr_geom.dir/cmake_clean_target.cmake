file(REMOVE_RECURSE
  "libdgr_geom.a"
)
