file(REMOVE_RECURSE
  "CMakeFiles/dgr_rsmt.dir/rsmt/builder.cpp.o"
  "CMakeFiles/dgr_rsmt.dir/rsmt/builder.cpp.o.d"
  "CMakeFiles/dgr_rsmt.dir/rsmt/exact.cpp.o"
  "CMakeFiles/dgr_rsmt.dir/rsmt/exact.cpp.o.d"
  "CMakeFiles/dgr_rsmt.dir/rsmt/one_steiner.cpp.o"
  "CMakeFiles/dgr_rsmt.dir/rsmt/one_steiner.cpp.o.d"
  "CMakeFiles/dgr_rsmt.dir/rsmt/salt.cpp.o"
  "CMakeFiles/dgr_rsmt.dir/rsmt/salt.cpp.o.d"
  "CMakeFiles/dgr_rsmt.dir/rsmt/steiner_tree.cpp.o"
  "CMakeFiles/dgr_rsmt.dir/rsmt/steiner_tree.cpp.o.d"
  "libdgr_rsmt.a"
  "libdgr_rsmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgr_rsmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
