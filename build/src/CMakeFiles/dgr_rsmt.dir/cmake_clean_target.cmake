file(REMOVE_RECURSE
  "libdgr_rsmt.a"
)
