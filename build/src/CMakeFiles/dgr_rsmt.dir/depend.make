# Empty dependencies file for dgr_rsmt.
# This may be replaced when dependencies are built.
