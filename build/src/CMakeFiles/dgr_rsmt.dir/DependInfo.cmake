
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rsmt/builder.cpp" "src/CMakeFiles/dgr_rsmt.dir/rsmt/builder.cpp.o" "gcc" "src/CMakeFiles/dgr_rsmt.dir/rsmt/builder.cpp.o.d"
  "/root/repo/src/rsmt/exact.cpp" "src/CMakeFiles/dgr_rsmt.dir/rsmt/exact.cpp.o" "gcc" "src/CMakeFiles/dgr_rsmt.dir/rsmt/exact.cpp.o.d"
  "/root/repo/src/rsmt/one_steiner.cpp" "src/CMakeFiles/dgr_rsmt.dir/rsmt/one_steiner.cpp.o" "gcc" "src/CMakeFiles/dgr_rsmt.dir/rsmt/one_steiner.cpp.o.d"
  "/root/repo/src/rsmt/salt.cpp" "src/CMakeFiles/dgr_rsmt.dir/rsmt/salt.cpp.o" "gcc" "src/CMakeFiles/dgr_rsmt.dir/rsmt/salt.cpp.o.d"
  "/root/repo/src/rsmt/steiner_tree.cpp" "src/CMakeFiles/dgr_rsmt.dir/rsmt/steiner_tree.cpp.o" "gcc" "src/CMakeFiles/dgr_rsmt.dir/rsmt/steiner_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dgr_design.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dgr_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dgr_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dgr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
