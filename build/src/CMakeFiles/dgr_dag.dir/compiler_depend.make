# Empty compiler generated dependencies file for dgr_dag.
# This may be replaced when dependencies are built.
