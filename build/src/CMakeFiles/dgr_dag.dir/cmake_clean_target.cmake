file(REMOVE_RECURSE
  "libdgr_dag.a"
)
