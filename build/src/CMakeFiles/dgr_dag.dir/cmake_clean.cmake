file(REMOVE_RECURSE
  "CMakeFiles/dgr_dag.dir/dag/forest.cpp.o"
  "CMakeFiles/dgr_dag.dir/dag/forest.cpp.o.d"
  "CMakeFiles/dgr_dag.dir/dag/path.cpp.o"
  "CMakeFiles/dgr_dag.dir/dag/path.cpp.o.d"
  "CMakeFiles/dgr_dag.dir/dag/tree_candidates.cpp.o"
  "CMakeFiles/dgr_dag.dir/dag/tree_candidates.cpp.o.d"
  "libdgr_dag.a"
  "libdgr_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgr_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
