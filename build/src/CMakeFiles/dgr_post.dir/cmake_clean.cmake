file(REMOVE_RECURSE
  "CMakeFiles/dgr_post.dir/post/guide.cpp.o"
  "CMakeFiles/dgr_post.dir/post/guide.cpp.o.d"
  "CMakeFiles/dgr_post.dir/post/layer_assign.cpp.o"
  "CMakeFiles/dgr_post.dir/post/layer_assign.cpp.o.d"
  "CMakeFiles/dgr_post.dir/post/maze_refine.cpp.o"
  "CMakeFiles/dgr_post.dir/post/maze_refine.cpp.o.d"
  "libdgr_post.a"
  "libdgr_post.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgr_post.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
