# Empty dependencies file for dgr_post.
# This may be replaced when dependencies are built.
