
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/post/guide.cpp" "src/CMakeFiles/dgr_post.dir/post/guide.cpp.o" "gcc" "src/CMakeFiles/dgr_post.dir/post/guide.cpp.o.d"
  "/root/repo/src/post/layer_assign.cpp" "src/CMakeFiles/dgr_post.dir/post/layer_assign.cpp.o" "gcc" "src/CMakeFiles/dgr_post.dir/post/layer_assign.cpp.o.d"
  "/root/repo/src/post/maze_refine.cpp" "src/CMakeFiles/dgr_post.dir/post/maze_refine.cpp.o" "gcc" "src/CMakeFiles/dgr_post.dir/post/maze_refine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dgr_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dgr_routers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dgr_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dgr_rsmt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dgr_design.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dgr_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dgr_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dgr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
