file(REMOVE_RECURSE
  "libdgr_post.a"
)
