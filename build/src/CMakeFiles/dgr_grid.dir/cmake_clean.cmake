file(REMOVE_RECURSE
  "CMakeFiles/dgr_grid.dir/grid/demand_map.cpp.o"
  "CMakeFiles/dgr_grid.dir/grid/demand_map.cpp.o.d"
  "CMakeFiles/dgr_grid.dir/grid/gcell_grid.cpp.o"
  "CMakeFiles/dgr_grid.dir/grid/gcell_grid.cpp.o.d"
  "libdgr_grid.a"
  "libdgr_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgr_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
