# Empty compiler generated dependencies file for dgr_grid.
# This may be replaced when dependencies are built.
