file(REMOVE_RECURSE
  "libdgr_grid.a"
)
