file(REMOVE_RECURSE
  "libdgr_ilp.a"
)
