# Empty dependencies file for dgr_ilp.
# This may be replaced when dependencies are built.
