file(REMOVE_RECURSE
  "CMakeFiles/dgr_ilp.dir/ilp/branch_bound.cpp.o"
  "CMakeFiles/dgr_ilp.dir/ilp/branch_bound.cpp.o.d"
  "CMakeFiles/dgr_ilp.dir/ilp/routing_ilp.cpp.o"
  "CMakeFiles/dgr_ilp.dir/ilp/routing_ilp.cpp.o.d"
  "CMakeFiles/dgr_ilp.dir/ilp/simplex.cpp.o"
  "CMakeFiles/dgr_ilp.dir/ilp/simplex.cpp.o.d"
  "libdgr_ilp.a"
  "libdgr_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgr_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
