
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ilp/branch_bound.cpp" "src/CMakeFiles/dgr_ilp.dir/ilp/branch_bound.cpp.o" "gcc" "src/CMakeFiles/dgr_ilp.dir/ilp/branch_bound.cpp.o.d"
  "/root/repo/src/ilp/routing_ilp.cpp" "src/CMakeFiles/dgr_ilp.dir/ilp/routing_ilp.cpp.o" "gcc" "src/CMakeFiles/dgr_ilp.dir/ilp/routing_ilp.cpp.o.d"
  "/root/repo/src/ilp/simplex.cpp" "src/CMakeFiles/dgr_ilp.dir/ilp/simplex.cpp.o" "gcc" "src/CMakeFiles/dgr_ilp.dir/ilp/simplex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dgr_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dgr_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dgr_rsmt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dgr_design.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dgr_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dgr_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dgr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
