file(REMOVE_RECURSE
  "CMakeFiles/dgr_routers.dir/routers/cugr2lite.cpp.o"
  "CMakeFiles/dgr_routers.dir/routers/cugr2lite.cpp.o.d"
  "CMakeFiles/dgr_routers.dir/routers/lagrangian.cpp.o"
  "CMakeFiles/dgr_routers.dir/routers/lagrangian.cpp.o.d"
  "CMakeFiles/dgr_routers.dir/routers/maze.cpp.o"
  "CMakeFiles/dgr_routers.dir/routers/maze.cpp.o.d"
  "CMakeFiles/dgr_routers.dir/routers/sproute_lite.cpp.o"
  "CMakeFiles/dgr_routers.dir/routers/sproute_lite.cpp.o.d"
  "libdgr_routers.a"
  "libdgr_routers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgr_routers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
