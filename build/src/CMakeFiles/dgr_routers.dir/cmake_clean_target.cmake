file(REMOVE_RECURSE
  "libdgr_routers.a"
)
