# Empty dependencies file for dgr_routers.
# This may be replaced when dependencies are built.
