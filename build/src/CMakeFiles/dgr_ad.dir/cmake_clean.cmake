file(REMOVE_RECURSE
  "CMakeFiles/dgr_ad.dir/ad/adam.cpp.o"
  "CMakeFiles/dgr_ad.dir/ad/adam.cpp.o.d"
  "CMakeFiles/dgr_ad.dir/ad/gradcheck.cpp.o"
  "CMakeFiles/dgr_ad.dir/ad/gradcheck.cpp.o.d"
  "CMakeFiles/dgr_ad.dir/ad/ops.cpp.o"
  "CMakeFiles/dgr_ad.dir/ad/ops.cpp.o.d"
  "CMakeFiles/dgr_ad.dir/ad/tape.cpp.o"
  "CMakeFiles/dgr_ad.dir/ad/tape.cpp.o.d"
  "libdgr_ad.a"
  "libdgr_ad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgr_ad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
