file(REMOVE_RECURSE
  "libdgr_ad.a"
)
