# Empty dependencies file for dgr_ad.
# This may be replaced when dependencies are built.
