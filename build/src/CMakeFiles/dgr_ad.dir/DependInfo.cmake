
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ad/adam.cpp" "src/CMakeFiles/dgr_ad.dir/ad/adam.cpp.o" "gcc" "src/CMakeFiles/dgr_ad.dir/ad/adam.cpp.o.d"
  "/root/repo/src/ad/gradcheck.cpp" "src/CMakeFiles/dgr_ad.dir/ad/gradcheck.cpp.o" "gcc" "src/CMakeFiles/dgr_ad.dir/ad/gradcheck.cpp.o.d"
  "/root/repo/src/ad/ops.cpp" "src/CMakeFiles/dgr_ad.dir/ad/ops.cpp.o" "gcc" "src/CMakeFiles/dgr_ad.dir/ad/ops.cpp.o.d"
  "/root/repo/src/ad/tape.cpp" "src/CMakeFiles/dgr_ad.dir/ad/tape.cpp.o" "gcc" "src/CMakeFiles/dgr_ad.dir/ad/tape.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dgr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
