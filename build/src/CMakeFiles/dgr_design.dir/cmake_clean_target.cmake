file(REMOVE_RECURSE
  "libdgr_design.a"
)
