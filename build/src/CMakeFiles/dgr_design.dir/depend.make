# Empty dependencies file for dgr_design.
# This may be replaced when dependencies are built.
