
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/design/design.cpp" "src/CMakeFiles/dgr_design.dir/design/design.cpp.o" "gcc" "src/CMakeFiles/dgr_design.dir/design/design.cpp.o.d"
  "/root/repo/src/design/generator.cpp" "src/CMakeFiles/dgr_design.dir/design/generator.cpp.o" "gcc" "src/CMakeFiles/dgr_design.dir/design/generator.cpp.o.d"
  "/root/repo/src/design/io.cpp" "src/CMakeFiles/dgr_design.dir/design/io.cpp.o" "gcc" "src/CMakeFiles/dgr_design.dir/design/io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dgr_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dgr_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dgr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
