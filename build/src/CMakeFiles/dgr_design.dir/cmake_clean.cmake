file(REMOVE_RECURSE
  "CMakeFiles/dgr_design.dir/design/design.cpp.o"
  "CMakeFiles/dgr_design.dir/design/design.cpp.o.d"
  "CMakeFiles/dgr_design.dir/design/generator.cpp.o"
  "CMakeFiles/dgr_design.dir/design/generator.cpp.o.d"
  "CMakeFiles/dgr_design.dir/design/io.cpp.o"
  "CMakeFiles/dgr_design.dir/design/io.cpp.o.d"
  "libdgr_design.a"
  "libdgr_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgr_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
