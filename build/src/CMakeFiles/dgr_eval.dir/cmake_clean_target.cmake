file(REMOVE_RECURSE
  "libdgr_eval.a"
)
