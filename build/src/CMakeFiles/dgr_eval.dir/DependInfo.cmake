
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/metrics.cpp" "src/CMakeFiles/dgr_eval.dir/eval/metrics.cpp.o" "gcc" "src/CMakeFiles/dgr_eval.dir/eval/metrics.cpp.o.d"
  "/root/repo/src/eval/solution.cpp" "src/CMakeFiles/dgr_eval.dir/eval/solution.cpp.o" "gcc" "src/CMakeFiles/dgr_eval.dir/eval/solution.cpp.o.d"
  "/root/repo/src/eval/table.cpp" "src/CMakeFiles/dgr_eval.dir/eval/table.cpp.o" "gcc" "src/CMakeFiles/dgr_eval.dir/eval/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dgr_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dgr_rsmt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dgr_design.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dgr_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dgr_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dgr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
