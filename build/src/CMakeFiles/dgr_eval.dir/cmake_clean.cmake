file(REMOVE_RECURSE
  "CMakeFiles/dgr_eval.dir/eval/metrics.cpp.o"
  "CMakeFiles/dgr_eval.dir/eval/metrics.cpp.o.d"
  "CMakeFiles/dgr_eval.dir/eval/solution.cpp.o"
  "CMakeFiles/dgr_eval.dir/eval/solution.cpp.o.d"
  "CMakeFiles/dgr_eval.dir/eval/table.cpp.o"
  "CMakeFiles/dgr_eval.dir/eval/table.cpp.o.d"
  "libdgr_eval.a"
  "libdgr_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgr_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
