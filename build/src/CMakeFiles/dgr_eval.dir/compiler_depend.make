# Empty compiler generated dependencies file for dgr_eval.
# This may be replaced when dependencies are built.
