// serve_load: closed-loop load generator for the dgr::serve daemon.
//
// Drives an in-process Server (no transport overhead — this measures the
// service core: admission, queueing, session cache, pipeline workers) with
// bursts of mixed route requests at several offered loads and worker
// counts, and reports p50/p99 latency + throughput per cell. Emits
// BENCH_serve.json via the dgr-bench-v1 emitter (validated by
// bench.schema_check).

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <vector>

#include "bench_common.hpp"

namespace {

using dgr::serve::Server;
using dgr::serve::ServerOptions;

std::string bench_design_text(double scale, int index) {
  dgr::design::IspdLikeParams p;
  p.name = "serve_bench_" + std::to_string(index);
  p.grid_w = p.grid_h = static_cast<int>(20 * scale);
  p.num_nets = static_cast<int>(220 * scale * scale);
  p.layers = 4;
  p.tracks_per_layer = 4;
  const dgr::design::Design design =
      dgr::design::generate_ispd_like(p, 100 + static_cast<std::uint64_t>(index));
  std::ostringstream os;
  dgr::design::write_design(os, design);
  return os.str();
}

std::string json_escape_into_request(const std::string& s) {
  return dgr::obs::json::escape(s);
}

struct CellResult {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double throughput = 0.0;  ///< completed requests / second
  std::int64_t succeeded = 0;
  std::int64_t rejected = 0;
  std::int64_t failed = 0;
};

double percentile(std::vector<double>& values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double idx = p * static_cast<double>(values.size() - 1);
  return values[static_cast<std::size_t>(idx + 0.5)];
}

/// One load cell: `offered` route requests spread over `sessions` sessions
/// on a server with `workers` workers, submitted in bursts of
/// `burst` with no think time (closed-loop: wait for each burst).
CellResult run_cell(int workers, int offered, int burst, double scale) {
  dgr::obs::metrics().reset();
  ServerOptions options;
  options.workers = workers;
  options.queue_capacity = static_cast<std::size_t>(std::max(burst, 4));
  options.default_iterations = 25;
  options.cache.max_sessions = 8;
  Server server(options);
  server.start();

  const int kSessions = 4;
  const char* routers[] = {"dgr", "cugr2-lite", "sproute-lite"};
  for (int s = 0; s < kSessions; ++s) {
    const std::string design = bench_design_text(scale, s);
    const std::string line = "{\"id\":\"load" + std::to_string(s) +
                             "\",\"op\":\"load\",\"session\":\"s" + std::to_string(s) +
                             "\",\"design\":\"" + json_escape_into_request(design) +
                             "\"}";
    server.call(line);
  }

  std::mutex mu;
  std::condition_variable cv;
  std::vector<double> latencies;
  int outstanding = 0;

  dgr::util::Timer wall;
  for (int i = 0; i < offered; ++i) {
    const std::string line =
        "{\"id\":\"r" + std::to_string(i) + "\",\"op\":\"route\",\"session\":\"s" +
        std::to_string(i % kSessions) + "\",\"router\":\"" +
        routers[i % 3] + "\",\"seed\":" + std::to_string(1 + i) + "}";
    {
      std::unique_lock<std::mutex> lock(mu);
      ++outstanding;
    }
    dgr::util::Timer latency;
    server.submit(line, [&mu, &cv, &latencies, &outstanding, latency](
                            const std::string&) {
      std::lock_guard<std::mutex> lock(mu);
      latencies.push_back(latency.seconds() * 1000.0);
      --outstanding;
      cv.notify_all();
    });
    if ((i + 1) % burst == 0 || i + 1 == offered) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&outstanding] { return outstanding == 0; });
    }
  }
  const double wall_seconds = wall.seconds();

  const Server::Accounting acct = server.accounting();
  server.shutdown(true);

  CellResult cell;
  cell.p50_ms = percentile(latencies, 0.50);
  cell.p99_ms = percentile(latencies, 0.99);
  cell.throughput = wall_seconds > 0.0 ? static_cast<double>(offered) / wall_seconds : 0.0;
  cell.succeeded = acct.succeeded;
  cell.rejected = acct.rejected;
  cell.failed = acct.failed;
  return cell;
}

}  // namespace

int main() {
  dgr::bench::begin_bench("serve daemon load",
                          "routing-as-a-service latency/throughput (ROADMAP serve item)");
  const double scale = dgr::bench::bench_scale();

  dgr::obs::BenchEmitter emitter = dgr::bench::make_emitter(
      "serve", "dgr::serve daemon p50/p99 latency and throughput");
  emitter.set_config("sessions", 4);
  emitter.set_config("routers", "dgr,cugr2-lite,sproute-lite");

  const int worker_counts[] = {1, 2, 4};
  const int loads[] = {8, 24};
  std::printf("%-20s %10s %10s %12s %18s\n", "cell", "p50_ms", "p99_ms", "req_per_s",
              "ok/rej/fail");

  double best_throughput = 0.0;
  for (const int workers : worker_counts) {
    for (const int offered : loads) {
      const int burst = std::max(4, offered / 3);
      const CellResult cell = run_cell(workers, offered, burst, scale);
      best_throughput = std::max(best_throughput, cell.throughput);

      char name[64];
      std::snprintf(name, sizeof(name), "w%d_load%d", workers, offered);
      std::printf("%-20s %10.2f %10.2f %12.2f %8lld/%lld/%lld\n", name, cell.p50_ms,
                  cell.p99_ms, cell.throughput,
                  static_cast<long long>(cell.succeeded),
                  static_cast<long long>(cell.rejected),
                  static_cast<long long>(cell.failed));

      emitter.add_row(name)
          .metric("workers", workers)
          .metric("offered", offered)
          .metric("burst", burst)
          .metric("p50_latency_ms", cell.p50_ms)
          .metric("p99_latency_ms", cell.p99_ms)
          .metric("throughput_rps", cell.throughput)
          .metric("succeeded", static_cast<double>(cell.succeeded))
          .metric("rejected", static_cast<double>(cell.rejected))
          .metric("failed", static_cast<double>(cell.failed))
          .note("mix", "route over 4 sessions, 3 routers round-robin");
    }
  }

  emitter.summary("max_throughput_rps", best_throughput);
  if (!emitter.write()) {
    std::fprintf(stderr, "failed to write %s\n", emitter.default_path().c_str());
    return 1;
  }
  std::printf("\nmax throughput: %.2f req/s\n", best_throughput);
  return 0;
}
