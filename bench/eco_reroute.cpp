// ECO harness: delta-vs-full reroute speedup by dirty fraction.
//
// For each target dirty fraction, routes a baseline design, applies a
// seeded pin-move mutation sized to dirty ~that fraction of nets, and
// times the EcoEngine's incremental apply() against a from-scratch route
// of the same evolved design (both paths include the validation gate and
// shared eval, so the ratio is end-to-end, not route-stage-only). Emits
// BENCH_eco.json via the dgr-bench-v1 emitter.

#include <cstdio>

#include "bench_common.hpp"

namespace {

using dgr::design::DesignState;
using dgr::design::Mutation;
using dgr::design::MutationParams;
using dgr::eco::EcoEngine;
using dgr::eco::EcoOptions;
using dgr::eco::EcoResult;

dgr::design::Design bench_design(double scale) {
  dgr::design::IspdLikeParams p;
  p.name = "eco_bench";
  p.grid_w = p.grid_h = static_cast<int>(48 * scale);
  p.num_nets = static_cast<int>(1400 * scale * scale);
  p.layers = 6;
  p.tracks_per_layer = 4;
  return dgr::design::generate_ispd_like(p, 77);
}

}  // namespace

int main() {
  dgr::bench::begin_bench("ECO incremental rerouting",
                          "delta-vs-full speedup by dirty fraction (ROADMAP item 5)");
  const double scale = dgr::bench::bench_scale();

  dgr::obs::BenchEmitter emitter =
      dgr::bench::make_emitter("eco", "ECO delta-vs-full reroute, ROADMAP item 5");
  emitter.set_config("router", "cugr2-lite");
  emitter.set_config("grid", 48 * scale);
  emitter.set_config("nets", 1400 * scale * scale);

  const double fractions[] = {0.01, 0.02, 0.05, 0.10, 0.20};
  double worst_small_speedup = 1e30;  // min speedup over fractions <= 0.10

  std::printf("%-12s %10s %10s %10s %9s\n", "dirty", "eco_s", "full_s", "speedup",
              "closure");
  for (const double target : fractions) {
    EcoOptions opts;
    opts.router = "cugr2-lite";
    opts.full_reroute_threshold = 0.5;  // keep every target on the delta path
    EcoEngine engine(dgr::design::make_design_state(bench_design(scale), 77), opts);
    auto base = engine.route_full();
    if (!base.ok()) {
      std::fprintf(stderr, "baseline route failed: %s\n",
                   base.status().message().c_str());
      return 1;
    }

    MutationParams params;
    params.move_fraction = target;
    params.move_jitter = 0.06;  // local churn: closure stays near the target
    dgr::util::Rng rng(1000 + static_cast<unsigned long long>(target * 100));
    const Mutation m = dgr::design::make_move_pins(engine.state(), params, rng);

    auto step = engine.apply(m);
    if (!step.ok()) {
      std::fprintf(stderr, "eco apply failed: %s\n", step.status().message().c_str());
      return 1;
    }
    const EcoResult eco = step.take();

    // From-scratch referent on the same evolved design.
    EcoEngine scratch(engine.state(), opts);
    auto cold = scratch.route_full();
    if (!cold.ok()) {
      std::fprintf(stderr, "scratch route failed: %s\n",
                   cold.status().message().c_str());
      return 1;
    }
    const EcoResult& full = cold.value();

    const double speedup = eco.stats.total_seconds > 0.0
                               ? full.stats.total_seconds / eco.stats.total_seconds
                               : 0.0;
    if (eco.stats.dirty_fraction <= 0.10 + 1e-9) {
      worst_small_speedup = std::min(worst_small_speedup, speedup);
    }
    std::printf("%-12.3f %10.4f %10.4f %9.1fx %9zu\n", eco.stats.dirty_fraction,
                eco.stats.total_seconds, full.stats.total_seconds, speedup,
                eco.stats.closure_dirty);

    char case_name[64];
    std::snprintf(case_name, sizeof(case_name), "dirty_%.0f_pct", target * 100);
    emitter.add_row(case_name)
        .metric("target_dirty_fraction", target)
        .metric("dirty_fraction", eco.stats.dirty_fraction)
        .metric("closure_nets", static_cast<double>(eco.stats.closure_dirty))
        .metric("closure_rounds", eco.stats.closure_rounds)
        .metric("eco_seconds", eco.stats.total_seconds)
        .metric("full_seconds", full.stats.total_seconds)
        .metric("speedup", speedup)
        .metric("eco_wirelength", static_cast<double>(eco.metrics.wirelength))
        .metric("full_wirelength", static_cast<double>(full.metrics.wirelength))
        .metric("eco_overflow", eco.metrics.total_overflow)
        .metric("full_overflow", full.metrics.total_overflow)
        .stage("closure", eco.stats.closure_seconds)
        .stage("delta_route", eco.stats.route_seconds)
        .stage("merge_validate", eco.stats.merge_seconds)
        .note("mutation", m.label)
        .note("validation",
              eco.validation.status.ok() ? "ok" : eco.validation.status.message());
  }

  if (worst_small_speedup > 1e29) worst_small_speedup = 0.0;  // no row qualified
  emitter.summary("min_speedup_at_le_10pct_dirty", worst_small_speedup);
  if (!emitter.write()) {
    std::fprintf(stderr, "failed to write %s\n", emitter.default_path().c_str());
    return 1;
  }
  std::printf("\nmin speedup at <=10%% dirty: %.1fx (acceptance floor 5x)\n",
              worst_small_speedup);
  return worst_small_speedup >= 5.0 ? 0 : 2;
}
