// compare_bench: diffs two dgr-bench-v1 artifacts and fails on regression.
//
// Usage:
//   compare_bench [options] baseline.json candidate.json
//   compare_bench --selftest
//
// Rows are matched by "case"; every metric (and summary entry) present in
// the baseline must be present in the candidate and must not regress by
// more than the threshold. Direction matters: metrics whose name contains
// "throughput", "per_sec" or "speedup" are higher-is-better (a drop is a
// regression); everything else — latencies, wall times, overflow counts —
// is lower-is-better (a rise is a regression). Improvements never fail.
// A case or metric that disappears from the candidate is a regression too:
// losing coverage must not pass silently.
//
// Options:
//   --threshold PCT       default allowed regression in percent (default 5)
//   --metric NAME=PCT     per-metric threshold override (repeatable)
//   --higher-better NAME  force NAME to higher-is-better (repeatable)
//   --selftest            run the built-in checks against synthetic docs
//
// Exit status: 0 when nothing regressed, 1 otherwise (2 on usage errors).

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "dgr/dgr.hpp"

namespace {

using dgr::obs::json::Value;

struct CompareOptions {
  double default_threshold_pct = 5.0;
  std::map<std::string, double> metric_thresholds;
  std::vector<std::string> higher_better;
};

bool higher_is_better(const std::string& name, const CompareOptions& options) {
  for (const std::string& forced : options.higher_better) {
    if (name == forced) return true;
  }
  return name.find("throughput") != std::string::npos ||
         name.find("per_sec") != std::string::npos ||
         name.find("speedup") != std::string::npos;
}

double threshold_for(const std::string& name, const CompareOptions& options) {
  const auto it = options.metric_thresholds.find(name);
  return it != options.metric_thresholds.end() ? it->second
                                               : options.default_threshold_pct;
}

/// One metric comparison; returns true when it regressed past the
/// threshold. `label` is "case/metric" for messages.
bool compare_metric(const std::string& label, const std::string& metric, double base,
                    double cand, const CompareOptions& options) {
  if (base == 0.0 && cand == 0.0) return false;
  if (base == 0.0) {
    // No denominator for a percentage; only flag the lower-is-better case
    // where something that used to be free now costs.
    const bool worse = !higher_is_better(metric, options) && cand > 0.0;
    if (worse) {
      std::cout << "REGRESSION " << label << ": " << base << " -> " << cand
                << " (baseline was zero)\n";
    }
    return worse;
  }
  const double change_pct = (cand - base) / std::fabs(base) * 100.0;
  const double regression_pct =
      higher_is_better(metric, options) ? -change_pct : change_pct;
  const double limit = threshold_for(metric, options);
  if (regression_pct > limit) {
    std::printf("REGRESSION %s: %g -> %g (%+.2f%%, limit %g%%)\n", label.c_str(), base,
                cand, change_pct, limit);
    return true;
  }
  return false;
}

const Value* find_row(const Value& doc, const std::string& case_name) {
  const Value* rows = doc.find("rows");
  if (rows == nullptr || !rows->is_array()) return nullptr;
  for (const Value& row : rows->items()) {
    const Value* c = row.find("case");
    if (c != nullptr && c->is_string() && c->as_string() == case_name) return &row;
  }
  return nullptr;
}

/// Diffs candidate against baseline; returns the number of regressions.
int compare_docs(const Value& baseline, const Value& candidate,
                 const CompareOptions& options) {
  int regressions = 0;
  int compared = 0;

  const Value* rows = baseline.find("rows");
  if (rows != nullptr && rows->is_array()) {
    for (const Value& base_row : rows->items()) {
      const Value* case_name = base_row.find("case");
      if (case_name == nullptr || !case_name->is_string()) continue;
      const Value* cand_row = find_row(candidate, case_name->as_string());
      if (cand_row == nullptr) {
        std::cout << "REGRESSION " << case_name->as_string()
                  << ": case missing from candidate\n";
        ++regressions;
        continue;
      }
      const Value* base_metrics = base_row.find("metrics");
      const Value* cand_metrics = cand_row->find("metrics");
      if (base_metrics == nullptr || !base_metrics->is_object()) continue;
      for (const auto& [metric, base_value] : base_metrics->members()) {
        if (!base_value.is_number()) continue;
        const std::string label = case_name->as_string() + "/" + metric;
        const Value* cand_value =
            cand_metrics != nullptr ? cand_metrics->find(metric) : nullptr;
        if (cand_value == nullptr || !cand_value->is_number()) {
          std::cout << "REGRESSION " << label << ": metric missing from candidate\n";
          ++regressions;
          continue;
        }
        ++compared;
        if (compare_metric(label, metric, base_value.as_number(),
                           cand_value->as_number(), options)) {
          ++regressions;
        }
      }
    }
  }

  const Value* base_summary = baseline.find("summary");
  const Value* cand_summary = candidate.find("summary");
  if (base_summary != nullptr && base_summary->is_object()) {
    for (const auto& [metric, base_value] : base_summary->members()) {
      if (!base_value.is_number()) continue;
      const std::string label = "summary/" + metric;
      const Value* cand_value =
          cand_summary != nullptr ? cand_summary->find(metric) : nullptr;
      if (cand_value == nullptr || !cand_value->is_number()) {
        std::cout << "REGRESSION " << label << ": summary entry missing from candidate\n";
        ++regressions;
        continue;
      }
      ++compared;
      if (compare_metric(label, metric, base_value.as_number(), cand_value->as_number(),
                         options)) {
        ++regressions;
      }
    }
  }

  std::cout << compared << " metric(s) compared, " << regressions << " regression(s)\n";
  return regressions;
}

bool load_doc(const std::string& path, Value* out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  if (!Value::parse(buffer.str(), out, &error)) {
    std::cerr << path << ": not JSON: " << error << "\n";
    return false;
  }
  if (!dgr::obs::validate_bench_json(*out, &error)) {
    std::cerr << path << ": not a dgr-bench-v1 artifact: " << error << "\n";
    return false;
  }
  return true;
}

Value make_doc(double latency_ms, double throughput, bool with_case2 = true) {
  dgr::obs::BenchEmitter emitter("compare-selftest", "compare_bench self-check");
  emitter.add_row("case1")
      .metric("latency_ms", latency_ms)
      .metric("throughput_per_sec", throughput);
  if (with_case2) emitter.add_row("case2").metric("latency_ms", latency_ms * 2.0);
  emitter.summary("speedup", 2.0);
  return emitter.to_json();
}

bool selftest() {
  bool ok = true;
  auto expect = [&ok](int got, int want, const char* what) {
    if (got != want) {
      std::cerr << "FAIL selftest: " << what << " (got " << got << " regressions, want "
                << want << ")\n";
      ok = false;
    }
  };
  CompareOptions options;  // 5% default

  expect(compare_docs(make_doc(100, 50), make_doc(100, 50), options), 0, "identical docs");
  expect(compare_docs(make_doc(100, 50), make_doc(150, 50), options), 2,
         "latency +50% regresses both cases");
  expect(compare_docs(make_doc(100, 50), make_doc(100, 25), options), 1,
         "throughput -50% is a regression (higher-better heuristic)");
  expect(compare_docs(make_doc(100, 50), make_doc(50, 100), options), 0,
         "improvement on both axes passes");
  expect(compare_docs(make_doc(100, 50), make_doc(108, 50), options), 2,
         "+8% fails the 5% default");
  {
    CompareOptions loose = options;
    loose.metric_thresholds["latency_ms"] = 20.0;
    expect(compare_docs(make_doc(100, 50), make_doc(108, 50), loose), 0,
           "+8% passes a 20% per-metric override");
  }
  expect(compare_docs(make_doc(100, 50), make_doc(100, 50, /*with_case2=*/false), options),
         1, "missing case is a regression");
  {
    CompareOptions forced = options;
    forced.higher_better.push_back("latency_ms");
    expect(compare_docs(make_doc(100, 50), make_doc(150, 50), forced), 0,
           "--higher-better flips the direction");
  }

  if (ok) std::cout << "ok   --selftest (8 cases)\n";
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  CompareOptions options;
  std::vector<std::string> paths;
  bool run_selftest = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--selftest") {
      run_selftest = true;
    } else if (arg == "--threshold") {
      options.default_threshold_pct = std::atof(next());
    } else if (arg == "--metric") {
      const std::string spec = next();
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::cerr << "--metric expects NAME=PCT, got '" << spec << "'\n";
        return 2;
      }
      options.metric_thresholds[spec.substr(0, eq)] = std::atof(spec.c_str() + eq + 1);
    } else if (arg == "--higher-better") {
      options.higher_better.emplace_back(next());
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: compare_bench [--threshold PCT] [--metric NAME=PCT]...\n"
                   "                     [--higher-better NAME]... baseline candidate\n"
                   "       compare_bench --selftest\n";
      return 0;
    } else {
      paths.push_back(arg);
    }
  }

  if (run_selftest) {
    if (!paths.empty()) {
      std::cerr << "--selftest takes no paths\n";
      return 2;
    }
    return selftest() ? 0 : 1;
  }
  if (paths.size() != 2) {
    std::cerr << "expected exactly two artifacts (baseline candidate), got "
              << paths.size() << "\n";
    return 2;
  }

  Value baseline;
  Value candidate;
  if (!load_doc(paths[0], &baseline) || !load_doc(paths[1], &candidate)) return 2;
  return compare_docs(baseline, candidate, options) == 0 ? 0 : 1;
}
