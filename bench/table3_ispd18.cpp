// Table 3: DGR vs SPRoute-lite (SPRoute 2.0 stand-in) and the Lagrangian
// router (Yao [13] stand-in) on the ispd18_test1..test10 ladder.
//
// Columns: # overflowed g-cell edges, total wirelength, # vias per router.
// Ratio rows are sum(router)/sum(DGR), matching the paper's convention.

#include "bench_common.hpp"

int main() {
  using namespace dgr;
  bench::begin_bench(
      "Table 3 — comparison with SPRoute-lite and the Lagrangian router",
      "DGR paper Table 3 (DAC'24); generated ispd18-like ladder, see EXPERIMENTS.md");

  const int iters = bench::dgr_iterations();
  const auto presets = design::table3_presets(bench::bench_scale());

  eval::TablePrinter table({"Benchmark", "ovf SPR", "ovf Lag", "ovf DGR", "WL SPR",
                            "WL Lag", "WL DGR", "Via SPR", "Via Lag", "Via DGR"});

  obs::BenchEmitter emitter = bench::make_emitter(
      "table3_ispd18", "DGR paper Table 3 (DAC'24); generated ispd18-like ladder");

  double sum_wl[3] = {0, 0, 0}, sum_via[3] = {0, 0, 0}, sum_ovf[3] = {0, 0, 0};

  for (const auto& preset : presets) {
    const design::Design d = design::generate_ispd_like(preset, /*seed=*/1818);
    pipeline::RoutingContext ctx(d);
    pipeline::Pipeline pipe(ctx);

    auto measure = [&](const pipeline::PipelineResult& r, int idx, eval::Metrics* m,
                       std::int64_t* vias) {
      *m = r.metrics;
      *vias = r.layers.via_count;
      sum_ovf[idx] += static_cast<double>(m->overflow_edges);
      sum_wl[idx] += static_cast<double>(m->wirelength);
      sum_via[idx] += static_cast<double>(*vias);
    };

    eval::Metrics spr{}, lag{}, dgr_m{};
    std::int64_t spr_v = 0, lag_v = 0, dgr_v = 0;

    measure(pipe.run("sproute-lite"), 0, &spr, &spr_v);
    measure(pipe.run("lagrangian"), 1, &lag, &lag_v);
    measure(pipe.run("dgr", bench::dgr_router_options(iters),
                     pipeline::StagePlan{.maze_refine = true, .layer_assign = true}),
            2, &dgr_m, &dgr_v);

    table.add_row({preset.name, eval::fmt_int(spr.overflow_edges),
                   eval::fmt_int(lag.overflow_edges), eval::fmt_int(dgr_m.overflow_edges),
                   eval::fmt_int(spr.wirelength), eval::fmt_int(lag.wirelength),
                   eval::fmt_int(dgr_m.wirelength), eval::fmt_int(spr_v),
                   eval::fmt_int(lag_v), eval::fmt_int(dgr_v)});

    emitter.add_row(preset.name)
        .metric("ovf_edges_sproute", spr.overflow_edges)
        .metric("ovf_edges_lagrangian", lag.overflow_edges)
        .metric("ovf_edges_dgr", dgr_m.overflow_edges)
        .metric("wirelength_sproute", static_cast<double>(spr.wirelength))
        .metric("wirelength_lagrangian", static_cast<double>(lag.wirelength))
        .metric("wirelength_dgr", static_cast<double>(dgr_m.wirelength))
        .metric("vias_sproute", static_cast<double>(spr_v))
        .metric("vias_lagrangian", static_cast<double>(lag_v))
        .metric("vias_dgr", static_cast<double>(dgr_v));
  }

  table.add_separator();
  auto ratio = [](double a, double b) {
    return b > 0.0 ? eval::fmt_ratio(a / b) : std::string("-");
  };
  table.add_row({"Ratio (vs DGR)", ratio(sum_ovf[0], sum_ovf[2]),
                 ratio(sum_ovf[1], sum_ovf[2]), "1.0000", ratio(sum_wl[0], sum_wl[2]),
                 ratio(sum_wl[1], sum_wl[2]), "1.0000", ratio(sum_via[0], sum_via[2]),
                 ratio(sum_via[1], sum_via[2]), "1.0000"});
  auto emit_ratio = [&](const char* name, double a, double b) {
    if (b > 0.0) emitter.summary(name, a / b);
  };
  emit_ratio("wirelength_ratio_sproute", sum_wl[0], sum_wl[2]);
  emit_ratio("wirelength_ratio_lagrangian", sum_wl[1], sum_wl[2]);
  emit_ratio("via_ratio_sproute", sum_via[0], sum_via[2]);
  emit_ratio("via_ratio_lagrangian", sum_via[1], sum_via[2]);
  emitter.write();

  table.print(std::cout);
  std::cout << "\nPaper claim to check: all routers reach (near-)zero overflow on this\n"
            << "ladder while DGR's wirelength ratio is the lowest (paper: SPRoute 1.0408,\n"
            << "Yao 1.0220 vs DGR 1.0) with vias comparable (1.0254 / 1.0176).\n";
  return 0;
}
