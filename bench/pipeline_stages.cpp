// Pipeline stage breakdown: every registered router through one Pipeline on
// the same congested case, cold (fresh context per router so nothing is
// amortised across rows). Emits BENCH_pipeline.json (dgr-bench-v1) with one
// row per router: quality metrics plus the per-stage wall-time split and the
// obs counters the run produced. This is the unified-emitter showcase — the
// artifact the trace quickstart in README.md pairs with.

#include "bench_common.hpp"

int main() {
  using namespace dgr;
  bench::begin_bench("Pipeline — per-router stage breakdown",
                     "stage split behind the DGR paper's runtime discussion (DAC'24)");

  const int iters = bench::dgr_iterations();
  auto presets = design::table2_presets(bench::bench_scale());
  const auto& preset = presets[0];  // ispd18_5m-like congested case

  obs::BenchEmitter emitter = bench::make_emitter(
      "pipeline", "stage split behind the DGR paper's runtime discussion");
  emitter.set_config("case", preset.name);

  eval::TablePrinter table({"router", "ovf edges", "total ovf", "WL", "vias",
                            "route (s)", "total (s)"});

  for (const std::string& name : pipeline::registered_routers()) {
    // Fresh design + context per router: cold DAG forest, cold caches.
    const design::Design d = design::generate_ispd_like(preset, /*seed=*/707);
    pipeline::RoutingContext ctx(d);
    pipeline::Pipeline pipe(ctx);
    obs::metrics().reset();

    pipeline::RouterOptions ro;
    if (name == "dgr") ro = bench::dgr_router_options(iters);
    const pipeline::PipelineResult r = pipe.run(
        name, ro, pipeline::StagePlan{.maze_refine = true, .layer_assign = true});

    double total_s = 0.0;
    for (const auto& s : r.stats.stages) total_s += s.seconds;

    table.add_row({name, eval::fmt_int(r.metrics.overflow_edges),
                   eval::fmt_double(r.metrics.total_overflow, 1),
                   eval::fmt_int(r.metrics.wirelength),
                   eval::fmt_int(r.layers.via_count),
                   eval::fmt_double(r.stats.stage_seconds("route_total"), 2),
                   eval::fmt_double(total_s, 2)});

    obs::BenchRow& row = emitter.add_row(name)
                             .metric("ovf_edges", r.metrics.overflow_edges)
                             .metric("total_overflow", r.metrics.total_overflow)
                             .metric("wirelength",
                                     static_cast<double>(r.metrics.wirelength))
                             .metric("vias",
                                     static_cast<double>(r.layers.via_count))
                             .metric("total_seconds", total_s)
                             .stages(bench::stage_pairs(r.stats));
    if (r.metrics.wirelength == 0) {
      // Refinement-only routers route empty when cold (see Router docs).
      row.note("cold_start", "empty_solution");
    }
    // Composite engines (the partitioned router) report nested sub-run
    // stats; surface each child as a stage so the artifact shows how the
    // route stage splits across regions and the cross-boundary pass.
    if (!r.stats.children.empty()) {
      row.metric("children", static_cast<double>(r.stats.children.size()));
      for (std::size_t i = 0; i < r.stats.children.size(); ++i) {
        const pipeline::RouterStats& child = r.stats.children[i];
        row.stage("child" + std::to_string(i) + "/" + child.router,
                  child.total_seconds());
      }
    }
    // Fold the run's process-wide counters in as metrics; the registry was
    // reset above, so these are attributable to this router alone.
    const obs::json::Value snap = obs::metrics().snapshot();
    if (const obs::json::Value* counters = snap.find("counters")) {
      for (const auto& [cname, cval] : counters->members()) {
        row.metric("counter/" + cname, cval.as_number());
      }
    }
  }
  emitter.write();

  table.print(std::cout);
  std::cout << "\nReading guide: route (s) is the router-owned stage; the gap to\n"
            << "total (s) is maze refinement, layer assignment and evaluation.\n";
  return 0;
}
