#pragma once
// Shared plumbing for the table/figure harnesses.
//
// Environment knobs (all optional):
//   DGR_BENCH_SCALE   scales testcase sizes (default 1.0; the default sizes
//                     are already far below the contest benchmarks, see
//                     EXPERIMENTS.md)
//   DGR_ILP_TIMEOUT   seconds per ILP solve before the row prints N/A
//                     (default 20; the paper used 8 hours)
//   DGR_DGR_ITERS     DGR training iterations (default 1000, as the paper)

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>

#include "dgr/dgr.hpp"

namespace dgr::bench {

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atof(v);
}

inline double bench_scale() { return env_double("DGR_BENCH_SCALE", 1.0); }
inline double ilp_timeout() { return env_double("DGR_ILP_TIMEOUT", 20.0); }
inline int dgr_iterations() { return static_cast<int>(env_double("DGR_DGR_ITERS", 1000)); }

/// Quiet logs + a banner for the harness output.
inline void begin_bench(const std::string& title, const std::string& paper_ref) {
  util::set_log_level(util::LogLevel::kWarn);
  std::cout << "\n=== " << title << " ===\n";
  std::cout << "reproduces: " << paper_ref << "\n";
  std::cout << "scale=" << bench_scale() << " (set DGR_BENCH_SCALE to resize)\n\n";
}

/// The unified emitter for BENCH_<name>.json, pre-stamped with the shared
/// environment knobs so every artifact records how it was produced
/// (validated against dgr-bench-v1 by bench/check_bench_schema).
inline obs::BenchEmitter make_emitter(const std::string& name,
                                      const std::string& paper_ref) {
  obs::BenchEmitter emitter(name, paper_ref);
  emitter.set_config("scale", bench_scale());
  emitter.set_config("dgr_iterations", dgr_iterations());
  return emitter;
}

/// DGR config for the Table 1 protocol: ReLU overflow objective only and
/// argmax path extraction ("DGR directly picks the path with the largest
/// probability", Section 5.1).
inline core::DgrConfig table1_dgr_config(int iterations) {
  core::DgrConfig config;
  config.activation = ad::Activation::kReLU;
  config.weight_overflow = 1.0f;
  config.weight_wirelength = 0.0f;
  config.weight_via = 0.0f;
  config.iterations = iterations;
  config.temperature_interval = std::max(1, iterations / 10);
  config.top_p = 0.0f;  // argmax extraction
  return config;
}

/// RouterOptions for a standard DGR run at the bench's iteration budget
/// (paper defaults otherwise). Every harness selects routers through the
/// pipeline registry with these options.
inline pipeline::RouterOptions dgr_router_options(int iterations) {
  pipeline::RouterOptions options;
  options.dgr.iterations = iterations;
  options.dgr.temperature_interval = std::max(1, iterations / 10);
  return options;
}

/// RouterStats stage times as the name/seconds pairs BenchRow::stages takes.
inline std::vector<std::pair<std::string, double>> stage_pairs(
    const pipeline::RouterStats& stats) {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(stats.stages.size());
  for (const auto& s : stats.stages) out.emplace_back(s.stage, s.seconds);
  return out;
}

/// DGR solver time, excluding DAG-forest construction (Fig. 5 footnote 3).
inline double dgr_solve_seconds(const pipeline::RouterStats& stats) {
  return stats.stage_seconds("train") + stats.stage_seconds("extract");
}

}  // namespace dgr::bench
