// Micro-benchmarks (google-benchmark) of the ad:: kernels and of a full DGR
// training iteration — the per-iteration cost that Figure 5a's runtime curve
// is built from.

#include <benchmark/benchmark.h>

#include <cmath>

#include <memory>

#include "dgr/dgr.hpp"

namespace {

using namespace dgr;

std::vector<float> randu(util::Rng& rng, std::size_t n) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.normal());
  return v;
}

void BM_SegmentSoftmax(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  const std::vector<float> x = randu(rng, n);
  std::vector<std::int32_t> offsets;  // groups of 2 (L-shape pairs)
  for (std::size_t i = 0; i <= n; i += 2) offsets.push_back(static_cast<std::int32_t>(i));
  for (auto _ : state) {
    ad::Tape tape;
    const ad::NodeId in = tape.input(x);
    benchmark::DoNotOptimize(ad::segment_softmax(tape, in, offsets, 1.0f));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SegmentSoftmax)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

struct SolverFixture {
  std::unique_ptr<design::Design> design;
  std::vector<float> cap;
  std::unique_ptr<dag::DagForest> forest;
  std::unique_ptr<core::DgrSolver> solver;

  explicit SolverFixture(int nets) {
    util::LogSilencer quiet;
    design::IspdLikeParams p;
    p.num_nets = nets;
    const int g = std::max(16, static_cast<int>(std::sqrt(nets) * 1.6));
    p.grid_w = p.grid_h = g;
    p.layers = 5;
    design = std::make_unique<design::Design>(design::generate_ispd_like(p, 9090));
    cap = design->capacities();
    forest = std::make_unique<dag::DagForest>(dag::DagForest::build(*design, {}));
    solver = std::make_unique<core::DgrSolver>(*forest, cap, core::DgrConfig{});
  }
};

void BM_DgrTrainStep(benchmark::State& state) {
  SolverFixture fx(static_cast<int>(state.range(0)));
  int iteration = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.solver->train_step(iteration++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.forest->paths().size()));
  state.counters["paths"] = static_cast<double>(fx.forest->paths().size());
}
BENCHMARK(BM_DgrTrainStep)->Arg(500)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_ForestBuild(benchmark::State& state) {
  util::LogSilencer quiet;
  design::IspdLikeParams p;
  p.num_nets = static_cast<int>(state.range(0));
  const int g = std::max(16, static_cast<int>(std::sqrt(p.num_nets) * 1.6));
  p.grid_w = p.grid_h = g;
  const design::Design d = design::generate_ispd_like(p, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dag::DagForest::build(d, {}));
  }
}
BENCHMARK(BM_ForestBuild)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_ExtractTopP(benchmark::State& state) {
  SolverFixture fx(static_cast<int>(state.range(0)));
  for (int i = 0; i < 20; ++i) fx.solver->train_step(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.solver->extract());
  }
}
BENCHMARK(BM_ExtractTopP)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_RsmtBuilder(benchmark::State& state) {
  util::Rng rng(5);
  const auto pins_count = static_cast<std::size_t>(state.range(0));
  std::vector<geom::Point> pins;
  for (std::size_t i = 0; i < pins_count; ++i) {
    pins.push_back({static_cast<geom::Coord>(rng.uniform_int(0, 200)),
                    static_cast<geom::Coord>(rng.uniform_int(0, 200))});
  }
  const rsmt::RsmtBuilder builder;
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build(pins));
  }
}
BENCHMARK(BM_RsmtBuilder)->Arg(3)->Arg(8)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
