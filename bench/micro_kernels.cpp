// Micro-benchmarks (google-benchmark) of the ad:: kernels and of a full DGR
// training iteration — the per-iteration cost that Figure 5a's runtime curve
// is built from. Kernel benches reuse one arena-backed tape across
// iterations (reset() keeps capacity), matching the solver's steady state;
// scalar rows pin the SIMD toggle off, and *Avx2 rows (skipped unless built
// with -DDGR_SIMD=ON) report the AVX2 kernel paths separately. The custom
// main() additionally emits BENCH_micro_kernels.json (dgr-bench-v1: one row
// per benchmark with ns/iter, plus fused-vs-unfused, AVX2-vs-scalar, and
// SoA-vs-PR-1 speedup summaries) into the working dir.

#include <benchmark/benchmark.h>

#include <cmath>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ad/simd.hpp"
#include "dgr/dgr.hpp"

namespace {

using namespace dgr;

std::vector<float> randu(util::Rng& rng, std::size_t n) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.normal());
  return v;
}

/// Pins the runtime SIMD toggle for the duration of one benchmark run, so
/// scalar rows stay scalar even in a DGR_SIMD build (and vice versa the
/// *Avx2 rows always measure the vector paths).
class SimdPin {
 public:
  explicit SimdPin(bool on) : prev_(ad::simd::enabled()) { ad::simd::set_enabled(on); }
  ~SimdPin() { ad::simd::set_enabled(prev_); }

 private:
  bool prev_;
};

void segment_softmax_bench(benchmark::State& state, bool simd) {
  if (simd && !ad::simd::compiled_in()) {
    state.SkipWithError("built without DGR_SIMD");
    return;
  }
  SimdPin pin(simd);
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  const std::vector<float> x = randu(rng, n);
  std::vector<std::int32_t> offsets;  // groups of 2 (L-shape pairs)
  for (std::size_t i = 0; i <= n; i += 2) offsets.push_back(static_cast<std::int32_t>(i));
  ad::Tape tape;  // reused: the arena reaches its high-water mark once
  for (auto _ : state) {
    tape.reset();
    const ad::NodeId in = tape.input(x);
    benchmark::DoNotOptimize(ad::segment_softmax(tape, in, offsets, 1.0f));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_SegmentSoftmax(benchmark::State& state) { segment_softmax_bench(state, false); }
BENCHMARK(BM_SegmentSoftmax)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_SegmentSoftmaxAvx2(benchmark::State& state) { segment_softmax_bench(state, true); }
BENCHMARK(BM_SegmentSoftmaxAvx2)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

struct SolverFixture {
  std::unique_ptr<design::Design> design;
  std::vector<float> cap;
  std::unique_ptr<dag::DagForest> forest;
  std::unique_ptr<core::DgrSolver> solver;

  explicit SolverFixture(int nets, core::DgrConfig cfg = {}) {
    util::LogSilencer quiet;
    design::IspdLikeParams p;
    p.num_nets = nets;
    const int g = std::max(16, static_cast<int>(std::sqrt(nets) * 1.6));
    p.grid_w = p.grid_h = g;
    p.layers = 5;
    design = std::make_unique<design::Design>(design::generate_ispd_like(p, 9090));
    cap = design->capacities();
    forest = std::make_unique<dag::DagForest>(dag::DagForest::build(*design, {}));
    solver = std::make_unique<core::DgrSolver>(*forest, cap, cfg);
  }
};

void BM_DgrTrainStep(benchmark::State& state) {
  SolverFixture fx(static_cast<int>(state.range(0)));
  int iteration = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.solver->train_step(iteration++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.forest->paths().size()));
  state.counters["paths"] = static_cast<double>(fx.forest->paths().size());
}
BENCHMARK(BM_DgrTrainStep)->Arg(500)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

/// Fused vs unfused selection+demand kernel (softmax -> coupling -> scatter)
/// on the real relaxation structure of an ispd-like design, forward+backward
/// on a reused tape. Args: {nets, workers, fused}.
void selection_demand_bench(benchmark::State& state, bool simd) {
  if (simd && !ad::simd::compiled_in()) {
    state.SkipWithError("built without DGR_SIMD");
    return;
  }
  SimdPin pin(simd);
  const auto nets = static_cast<int>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));
  const bool fused = state.range(2) != 0;
  SolverFixture fx(nets);
  util::set_worker_count(workers);
  const core::Relaxation& r = fx.solver->relaxation();
  const std::vector<float>& params = fx.solver->logits();
  const std::size_t np = r.path_count();
  ad::Tape tape;
  for (auto _ : state) {
    tape.reset();
    const ad::NodeId pl = tape.input(params.data(), np);
    const ad::NodeId tl = tape.input(params.data() + np, r.tree_count());
    ad::NodeId eff, demand;
    if (fused) {
      const ad::FusedSelectionDemand sel = ad::fused_softmax_demand(
          tape, pl, tl, r.path_group_offsets, r.tree_group_offsets, r.path_tree,
          r.tree_path_offsets, r.incidence, 1.0f, nullptr, nullptr);
      eff = sel.eff;
      demand = sel.demand;
    } else {
      const ad::NodeId p = ad::segment_softmax(tape, pl, r.path_group_offsets, 1.0f);
      const ad::NodeId q = ad::segment_softmax(tape, tl, r.tree_group_offsets, 1.0f);
      eff = ad::gather_mul(tape, q, r.path_tree, p);
      demand = ad::spmv(tape, eff, r.incidence);
    }
    tape.backward(ad::combine(tape,
                              {ad::weighted_sum(tape, demand), ad::weighted_sum(tape, eff)},
                              {1.0f, 1.0f}));
  }
  util::set_worker_count(0);
  state.counters["paths"] = static_cast<double>(np);
}

void BM_SelectionDemandKernel(benchmark::State& state) {
  selection_demand_bench(state, false);
}
BENCHMARK(BM_SelectionDemandKernel)
    ->Args({2000, 1, 0})
    ->Args({2000, 1, 1})
    ->Args({2000, 4, 0})
    ->Args({2000, 4, 1});

void BM_SelectionDemandKernelAvx2(benchmark::State& state) {
  selection_demand_bench(state, true);
}
BENCHMARK(BM_SelectionDemandKernelAvx2)->Args({2000, 4, 1});

/// Fused vs unfused overflow cost (subtract capacity -> activation -> sum),
/// forward+backward on a reused tape. Args: {n, workers, fused}.
void overflow_kernel_bench(benchmark::State& state, bool simd) {
  if (simd && !ad::simd::compiled_in()) {
    state.SkipWithError("built without DGR_SIMD");
    return;
  }
  SimdPin pin(simd);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));
  const bool fused = state.range(2) != 0;
  util::Rng rng(3);
  const std::vector<float> x0 = randu(rng, n);
  const std::vector<float> cap(n, 0.1f);
  util::set_worker_count(workers);
  ad::Tape tape;
  for (auto _ : state) {
    tape.reset();
    const ad::NodeId x = tape.input(x0);
    const ad::NodeId cost =
        fused ? ad::fused_overflow_cost(tape, x, cap, ad::Activation::kSigmoid)
              : ad::weighted_sum(
                    tape, ad::apply_activation(tape, ad::sub_const(tape, x, cap),
                                               ad::Activation::kSigmoid));
    tape.backward(cost);
  }
  util::set_worker_count(0);
}

void BM_OverflowKernel(benchmark::State& state) { overflow_kernel_bench(state, false); }
BENCHMARK(BM_OverflowKernel)
    ->Args({1 << 14, 1, 0})
    ->Args({1 << 14, 1, 1})
    ->Args({1 << 14, 4, 0})
    ->Args({1 << 14, 4, 1})
    ->Args({1 << 16, 4, 0})
    ->Args({1 << 16, 4, 1});

void BM_OverflowKernelAvx2(benchmark::State& state) { overflow_kernel_bench(state, true); }
BENCHMARK(BM_OverflowKernelAvx2)->Args({1 << 14, 4, 1})->Args({1 << 16, 4, 1});

/// Batched-tape execution: K copies of the same design through one shared
/// tape + one Adam step, vs K solo train_steps (BM_DgrTrainStep measures the
/// solo cost). Args: {nets, batch}. Items processed = designs stepped.
void BM_BatchedTrainStep(benchmark::State& state) {
  const auto nets = static_cast<int>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  SolverFixture fx(nets);
  core::BatchedDgrSolver solver(fx.solver->config());
  for (std::size_t i = 0; i < batch; ++i) {
    solver.add_design(*fx.forest, fx.cap, fx.solver->config().seed + i);
  }
  int iteration = 0;
  for (auto _ : state) {
    solver.train_step(iteration++);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
  state.counters["designs"] = static_cast<double>(batch);
}
BENCHMARK(BM_BatchedTrainStep)->Args({500, 4})->Unit(benchmark::kMillisecond);

/// Fused vs unfused full training iteration at a given worker count.
/// Args: {nets, workers, fused}. The unfused graph submits ~13 pool jobs per
/// iteration; the fused one submits 2 multi-stage jobs, so the gap measures
/// wakeup + tape-node overhead rather than arithmetic.
void BM_DgrTrainStepFusion(benchmark::State& state) {
  const auto nets = static_cast<int>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));
  const bool fused = state.range(2) != 0;
  util::set_worker_count(workers);
  core::DgrConfig cfg;
  cfg.fused_kernels = fused;
  cfg.use_gumbel = false;  // noise generation is identical constant work in
                           // both modes; omit it to isolate the kernels
  SolverFixture fx(nets, cfg);
  int iteration = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.solver->train_step(iteration++));
  }
  util::set_worker_count(0);
  state.counters["paths"] = static_cast<double>(fx.forest->paths().size());
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["fused"] = fused ? 1.0 : 0.0;
}
BENCHMARK(BM_DgrTrainStepFusion)
    ->Args({2000, 1, 0})
    ->Args({2000, 1, 1})
    ->Args({2000, 4, 0})
    ->Args({2000, 4, 1})
    ->Unit(benchmark::kMillisecond);

void BM_ForestBuild(benchmark::State& state) {
  util::LogSilencer quiet;
  design::IspdLikeParams p;
  p.num_nets = static_cast<int>(state.range(0));
  const int g = std::max(16, static_cast<int>(std::sqrt(p.num_nets) * 1.6));
  p.grid_w = p.grid_h = g;
  const design::Design d = design::generate_ispd_like(p, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dag::DagForest::build(d, {}));
  }
}
BENCHMARK(BM_ForestBuild)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_ExtractTopP(benchmark::State& state) {
  SolverFixture fx(static_cast<int>(state.range(0)));
  for (int i = 0; i < 20; ++i) fx.solver->train_step(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.solver->extract());
  }
}
BENCHMARK(BM_ExtractTopP)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_RsmtBuilder(benchmark::State& state) {
  util::Rng rng(5);
  const auto pins_count = static_cast<std::size_t>(state.range(0));
  std::vector<geom::Point> pins;
  for (std::size_t i = 0; i < pins_count; ++i) {
    pins.push_back({static_cast<geom::Coord>(rng.uniform_int(0, 200)),
                    static_cast<geom::Coord>(rng.uniform_int(0, 200))});
  }
  const rsmt::RsmtBuilder builder;
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build(pins));
  }
}
BENCHMARK(BM_RsmtBuilder)->Arg(3)->Arg(8)->Arg(16)->Arg(64);

/// Console reporter that also captures (name, ns/iter) for every completed
/// iteration run so main() can dump them as JSON.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.iterations == 0) continue;
      const double ns =
          run.real_accumulated_time / static_cast<double>(run.iterations) * 1e9;
      if (run.run_type == Run::RT_Iteration) {
        set(run.benchmark_name(), ns, /*from_median=*/false);
      } else if (run.aggregate_name == "median") {
        // "<name>_median" -> "<name>"; medians override per-repetition noise.
        std::string name = run.benchmark_name();
        const std::string suffix = "_median";
        if (name.size() > suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
          name.resize(name.size() - suffix.size());
        }
        set(name, ns, /*from_median=*/true);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<std::pair<std::string, double>>& results() const { return results_; }

 private:
  void set(const std::string& name, double ns, bool from_median) {
    for (auto& [n, v] : results_) {
      if (n == name) {
        if (from_median) v = ns;
        return;
      }
    }
    results_.emplace_back(name, ns);
  }

  std::vector<std::pair<std::string, double>> results_;
};

double find_ns(const std::vector<std::pair<std::string, double>>& results,
               const std::string& name) {
  for (const auto& [n, ns] : results) {
    if (n == name) return ns;
  }
  return 0.0;
}

/// ns/iter of the PR-1 fused-kernel tape (AoS nodes, std::function op log,
/// fresh tape per iteration) — the baseline the arena/SoA refactor is
/// measured against. Captured as the median of 5 repetitions run
/// back-to-back with this bench on the same container (the box's throughput
/// drifts ~25% over hours, so cross-session numbers are not comparable).
/// Regenerate by checking out the pre-refactor tree and running this bench;
/// the case names match 1:1.
struct Pr1Baseline {
  const char* name;
  double ns;
};
constexpr Pr1Baseline kPr1Fused[] = {
    {"BM_SegmentSoftmax/4096", 36739.0},
    {"BM_SegmentSoftmax/65536", 1190568.0},
    {"BM_SegmentSoftmax/1048576", 22771018.0},
    {"BM_SelectionDemandKernel/2000/4/1", 480911.0},
    {"BM_OverflowKernel/16384/4/1", 128871.0},
    {"BM_OverflowKernel/65536/4/1", 547107.0},
};

void write_json(const std::vector<std::pair<std::string, double>>& results,
                const char* path) {
  obs::BenchEmitter emitter("micro_kernels",
                            "per-iteration kernel costs behind Fig. 5a (DAC'24)");
  for (const auto& [name, ns] : results) {
    emitter.add_row(name).metric("ns_per_iter", ns);
  }
  // For every benchmark whose last argument is the fused flag, report
  // unfused ns / fused ns under the name with the flag stripped.
  for (const auto& [name, unfused_ns] : results) {
    if (name.size() < 2 || name.compare(name.size() - 2, 2, "/0") != 0) continue;
    const std::string base = name.substr(0, name.size() - 2);
    const double fused_ns = find_ns(results, base + "/1");
    if (fused_ns <= 0.0) continue;
    emitter.summary("fused_speedup/" + base, unfused_ns / fused_ns);
  }
  // Scalar-SoA speedup over the captured PR-1 fused baseline.
  for (const Pr1Baseline& ref : kPr1Fused) {
    const double now_ns = find_ns(results, ref.name);
    if (now_ns <= 0.0) continue;
    emitter.summary(std::string("soa_speedup_vs_pr1/") + ref.name, ref.ns / now_ns);
  }
  // AVX2 speedup over the scalar-SoA row of the same case (reported
  // separately from the scalar-vs-PR-1 number; DGR_SIMD builds only).
  for (const auto& [name, avx2_ns] : results) {
    const std::size_t pos = name.find("Avx2");
    if (pos == std::string::npos || avx2_ns <= 0.0) continue;
    std::string scalar_name = name;
    scalar_name.erase(pos, 4);
    const double scalar_ns = find_ns(results, scalar_name);
    if (scalar_ns <= 0.0) continue;
    emitter.summary("avx2_speedup/" + scalar_name, scalar_ns / avx2_ns);
  }
  emitter.write(path);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  write_json(reporter.results(), "BENCH_micro_kernels.json");
  benchmark::Shutdown();
  return 0;
}
