// Table 1: DGR vs ILP on synthetic data.
//
// Protocol (Section 5.1): per net, 3 g-cells drawn inside a random box;
// one FLUTE tree per net; select one L-shape per 2-pin pair; minimise
// Σ_e ReLU(d_e - cap_e). Columns: runtime (ILP, DGR) and overflow
// (ILP, DGR* after hyper-parameter search, DGR best / worst over 5 seeds).
// Rows follow the paper's (grid, cap, #nets, box) ladder scaled to CPU
// budgets; ILP prints N/A past the time limit, as in the paper.

#include <memory>

#include "bench_common.hpp"

namespace {

using namespace dgr;

struct Row {
  int grid, cap, nets, box;
  bool try_ilp;  ///< the paper marks the largest rows N/A without waiting 8h
};

struct Prepared {
  std::unique_ptr<design::Design> design;
  std::unique_ptr<pipeline::RoutingContext> ctx;
  std::unique_ptr<pipeline::Pipeline> pipe;
  dag::ForestOptions fopts;  ///< one L-shape per pair, no via demand (Sec. 5.1)
};

Prepared prepare(const Row& row, std::uint64_t seed) {
  design::Table1Params params;
  params.grid_w = params.grid_h = row.grid;
  params.capacity = row.cap;
  params.num_nets = row.nets;
  params.box_size = row.box;
  auto inst = design::make_table1_instance(params, seed);
  Prepared out;
  out.design = std::make_unique<design::Design>(std::move(inst.design));
  // The Table 1 protocol overrides the Eq. 1 capacity model with the
  // instance's explicit capacities and drops via demand entirely.
  pipeline::ContextOptions copts;
  copts.capacities = std::move(inst.capacities);
  copts.via_beta = 0.0f;
  out.ctx = std::make_unique<pipeline::RoutingContext>(*out.design, std::move(copts));
  out.pipe = std::make_unique<pipeline::Pipeline>(*out.ctx);
  out.fopts.tree.congestion_shifted = false;
  return out;
}

double run_dgr(const Prepared& p, const core::DgrConfig& config, double* seconds) {
  pipeline::RouterOptions ro;
  ro.dgr = config;
  ro.forest = p.fopts;
  const pipeline::PipelineResult r = p.pipe->run(
      "dgr", ro, pipeline::StagePlan{.maze_refine = false, .layer_assign = false});
  // Single-run solver time, excluding forest construction (cached in the
  // context after the first run anyway).
  if (seconds != nullptr) *seconds = bench::dgr_solve_seconds(r.stats);
  return r.metrics.total_overflow;
}

}  // namespace

int main() {
  using namespace dgr;
  using bench::begin_bench;
  begin_bench("Table 1 — comparison with ILP on synthetic data",
              "DGR paper Table 1 (DAC'24), sizes scaled; see EXPERIMENTS.md");

  const double scale = bench::bench_scale();
  const int iters = bench::dgr_iterations();

  // The paper's row ladder, scaled: the first rows are ILP-solvable, the
  // later ones exceed the time limit (N/A) exactly as in the paper.
  std::vector<Row> rows = {
      {20, 1, 20, 4, true},     {50, 1, 50, 10, true},    {50, 1, 100, 10, true},
      {50, 2, 100, 10, true},   {50, 1, 400, 10, true},   {50, 10, 400, 10, true},
      {100, 2, 1000, 20, true}, {200, 1, 4000, 40, false}, {400, 1, 16000, 80, false},
  };
  for (Row& r : rows) r.nets = std::max(4, static_cast<int>(r.nets * scale));

  eval::TablePrinter table({"Grid", "cap_e", "Net #", "box", "ILP (s)", "DGR (s)",
                            "ILP ovf", "DGR*", "DGR best", "DGR worst"});
  obs::BenchEmitter emitter = bench::make_emitter(
      "table1_ilp", "DGR paper Table 1 (DAC'24), sizes scaled");
  emitter.set_config("ilp_timeout_seconds", bench::ilp_timeout());

  double sum_ilp_ovf = 0.0, sum_dgr_ovf = 0.0;
  bool any_ilp = false;

  for (const Row& row : rows) {
    const Prepared p = prepare(row, /*seed=*/7);

    // --- ILP oracle ---
    bool ilp_ok = false;
    double ilp_seconds = 0.0, ilp_overflow = 0.0;
    if (row.try_ilp) {
      util::Timer timer;
      ilp::MilpOptions mopts;
      mopts.time_limit_seconds = bench::ilp_timeout();
      // The ILP oracle shares the context's forest and capacities so both
      // solvers optimise the identical discrete problem.
      const ilp::RoutingIlpResult r =
          ilp::solve_routing_ilp(p.ctx->forest(p.fopts), p.ctx->capacities(), mopts);
      ilp_seconds = timer.seconds();
      if (r.milp.status == ilp::LpStatus::kOptimal) {
        ilp_ok = true;
        ilp_overflow = r.overflow;
      }
    }

    // --- DGR best/worst over seeds (default hyper-parameters). Big rows
    // run fewer repeats to keep the harness's wall time sane; the paper's
    // spread claim is checked on the rows that matter (ILP-comparable). ---
    const std::uint64_t num_seeds = row.nets > 2000 ? 2 : 5;
    double dgr_seconds = 0.0;
    double best = 1e30, worst = -1e30;
    for (std::uint64_t seed = 1; seed <= num_seeds; ++seed) {
      core::DgrConfig config = bench::table1_dgr_config(iters);
      config.seed = seed;
      double secs = 0.0;
      const double ovf = run_dgr(p, config, &secs);
      if (seed == 1) dgr_seconds = secs;  // single-run time, like the paper
      best = std::min(best, ovf);
      worst = std::max(worst, ovf);
    }

    // --- DGR*: random hyper-parameter search (paper: 100 runs; scaled) ---
    double star = best;
    util::Rng hp_rng(0xD6A);
    const int search_runs =
        row.nets > 2000 ? 0 : std::max(4, static_cast<int>(12 * scale));
    for (int run = 0; run < search_runs; ++run) {
      core::DgrConfig config = bench::table1_dgr_config(iters);
      // lr log-uniform in [1e-4, 1]; decay in {0.8, 0.85, 0.9, 0.95}.
      config.learning_rate = std::pow(10.0, hp_rng.uniform(-4.0, 0.0));
      const double decays[] = {0.8, 0.85, 0.9, 0.95};
      config.temperature_decay =
          static_cast<float>(decays[hp_rng.uniform_int(0, 3)]);
      config.seed = 100 + static_cast<std::uint64_t>(run);
      star = std::min(star, run_dgr(p, config, nullptr));
    }

    if (ilp_ok) {
      any_ilp = true;
      sum_ilp_ovf += ilp_overflow;
      sum_dgr_ovf += star;
    }

    table.add_row({std::to_string(row.grid) + "x" + std::to_string(row.grid),
                   eval::fmt_int(row.cap), eval::fmt_int(row.nets),
                   eval::fmt_int(row.box), eval::fmt_or_na(ilp_ok, ilp_seconds, 2),
                   eval::fmt_double(dgr_seconds, 2), eval::fmt_or_na(ilp_ok, ilp_overflow, 0),
                   eval::fmt_double(star, 0), eval::fmt_double(best, 0),
                   eval::fmt_double(worst, 0)});

    obs::BenchRow& br = emitter
                            .add_row(std::to_string(row.grid) + "x" +
                                     std::to_string(row.grid) + "/cap" +
                                     std::to_string(row.cap) + "/n" +
                                     std::to_string(row.nets))
                            .metric("nets", row.nets)
                            .metric("dgr_seconds", dgr_seconds)
                            .metric("dgr_star_overflow", star)
                            .metric("dgr_best_overflow", best)
                            .metric("dgr_worst_overflow", worst)
                            .note("ilp", ilp_ok ? "optimal" : "timeout");
    if (ilp_ok) {
      br.metric("ilp_seconds", ilp_seconds).metric("ilp_overflow", ilp_overflow);
    }
  }

  table.add_separator();
  if (any_ilp && sum_dgr_ovf > 0.0) {
    table.add_row({"Ratio", "", "", "", "", "", eval::fmt_ratio(sum_ilp_ovf / sum_dgr_ovf),
                   "1.0000", "", ""});
  }
  if (any_ilp && sum_dgr_ovf > 0.0) {
    emitter.summary("ilp_over_dgr_overflow_ratio", sum_ilp_ovf / sum_dgr_ovf);
  }
  emitter.write();

  table.print(std::cout);
  std::cout << "\nN/A = ILP exceeded the DGR_ILP_TIMEOUT limit ("
            << bench::ilp_timeout() << " s; paper used 8 hours).\n"
            << "Paper claim to check: DGR* matches the ILP optimum on every\n"
            << "solvable row, and best-vs-worst seed spread is negligible.\n";
  return 0;
}
