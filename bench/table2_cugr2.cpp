// Table 2: DGR vs CUGR2(-lite) on the congested 5-layer ispd19-like cases.
//
// Columns per the paper: # g-cell edges with overflow (after 2D global
// routing), total wirelength, and # vias (after DP layer assignment).
// The "Ratio" row is sum(baseline)/sum(DGR) per metric, like the paper.

#include "bench_common.hpp"

int main() {
  using namespace dgr;
  bench::begin_bench(
      "Table 2 — comparison with CUGR2-lite on congested 5-layer cases",
      "DGR paper Table 2 (DAC'24); generated ispd-like cases, see EXPERIMENTS.md");

  const int iters = bench::dgr_iterations();
  const auto presets = design::table2_presets(bench::bench_scale());

  eval::TablePrinter table({"Benchmark", "Net #", "Grid", "ovf CUGR2", "ovf DGR",
                            "WL CUGR2", "WL DGR", "Vias CUGR2", "Vias DGR"});
  obs::BenchEmitter emitter = bench::make_emitter(
      "table2_cugr2", "DGR paper Table 2 (DAC'24); generated ispd-like cases");

  double sum_ovf[2] = {0, 0}, sum_wl[2] = {0, 0}, sum_via[2] = {0, 0};

  for (const auto& preset : presets) {
    const design::Design d = design::generate_ispd_like(preset, /*seed=*/404);
    pipeline::RoutingContext ctx(d);
    pipeline::Pipeline pipe(ctx);

    // Baseline: sequential DP pattern router + RRR (CUGR2 family).
    const pipeline::PipelineResult base = pipe.run("cugr2-lite");

    // DGR: concurrent differentiable optimisation + maze refinement.
    const pipeline::PipelineResult dgr_run =
        pipe.run("dgr", bench::dgr_router_options(iters),
                 pipeline::StagePlan{.maze_refine = true, .layer_assign = true});

    sum_ovf[0] += static_cast<double>(base.metrics.overflow_edges);
    sum_ovf[1] += static_cast<double>(dgr_run.metrics.overflow_edges);
    sum_wl[0] += static_cast<double>(base.metrics.wirelength);
    sum_wl[1] += static_cast<double>(dgr_run.metrics.wirelength);
    sum_via[0] += static_cast<double>(base.layers.via_count);
    sum_via[1] += static_cast<double>(dgr_run.layers.via_count);

    table.add_row({preset.name, eval::fmt_int(preset.num_nets),
                   std::to_string(d.grid().width()) + "x" + std::to_string(d.grid().height()),
                   eval::fmt_int(base.metrics.overflow_edges),
                   eval::fmt_int(dgr_run.metrics.overflow_edges),
                   eval::fmt_int(base.metrics.wirelength),
                   eval::fmt_int(dgr_run.metrics.wirelength),
                   eval::fmt_int(base.layers.via_count),
                   eval::fmt_int(dgr_run.layers.via_count)});

    emitter.add_row(preset.name)
        .metric("nets", preset.num_nets)
        .metric("ovf_edges_cugr2", base.metrics.overflow_edges)
        .metric("ovf_edges_dgr", dgr_run.metrics.overflow_edges)
        .metric("wirelength_cugr2", static_cast<double>(base.metrics.wirelength))
        .metric("wirelength_dgr", static_cast<double>(dgr_run.metrics.wirelength))
        .metric("vias_cugr2", static_cast<double>(base.layers.via_count))
        .metric("vias_dgr", static_cast<double>(dgr_run.layers.via_count))
        .stages(bench::stage_pairs(dgr_run.stats));
  }

  table.add_separator();
  auto ratio = [](double a, double b) {
    return b > 0.0 ? eval::fmt_ratio(a / b) : std::string("-");
  };
  table.add_row({"Ratio (base/DGR)", "", "", ratio(sum_ovf[0], sum_ovf[1]), "1.0000",
                 ratio(sum_wl[0], sum_wl[1]), "1.0000", ratio(sum_via[0], sum_via[1]),
                 "1.0000"});
  auto emit_ratio = [&](const char* name, double a, double b) {
    if (b > 0.0) emitter.summary(name, a / b);
  };
  emit_ratio("overflow_edge_ratio", sum_ovf[0], sum_ovf[1]);
  emit_ratio("wirelength_ratio", sum_wl[0], sum_wl[1]);
  emit_ratio("via_ratio", sum_via[0], sum_via[1]);
  emitter.write();

  table.print(std::cout);
  std::cout << "\nPaper claim to check: the overflow-edge ratio is > 1 (paper: 1.2391)\n"
            << "with wirelength and via ratios slightly > 1 (paper: 1.0095 / 1.0128).\n";
  return 0;
}
