// Table 2: DGR vs CUGR2(-lite) on the congested 5-layer ispd19-like cases.
//
// Columns per the paper: # g-cell edges with overflow (after 2D global
// routing), total wirelength, and # vias (after DP layer assignment).
// The "Ratio" row is sum(baseline)/sum(DGR) per metric, like the paper.

#include "bench_common.hpp"

int main() {
  using namespace dgr;
  bench::begin_bench(
      "Table 2 — comparison with CUGR2-lite on congested 5-layer cases",
      "DGR paper Table 2 (DAC'24); generated ispd-like cases, see EXPERIMENTS.md");

  const int iters = bench::dgr_iterations();
  const auto presets = design::table2_presets(bench::bench_scale());

  eval::TablePrinter table({"Benchmark", "Net #", "Grid", "ovf CUGR2", "ovf DGR",
                            "WL CUGR2", "WL DGR", "Vias CUGR2", "Vias DGR"});

  double sum_ovf[2] = {0, 0}, sum_wl[2] = {0, 0}, sum_via[2] = {0, 0};

  for (const auto& preset : presets) {
    const design::Design d = design::generate_ispd_like(preset, /*seed=*/404);
    const auto cap = d.capacities();

    // Baseline: sequential DP pattern router + RRR (CUGR2 family).
    routers::Cugr2Lite baseline(d, cap);
    const eval::RouteSolution bsol = baseline.route();
    const eval::Metrics bm = eval::compute_metrics(bsol, cap);
    const post::LayerAssignment bla = post::assign_layers(bsol, cap);

    // DGR: concurrent differentiable optimisation + maze refinement.
    const dag::DagForest forest = dag::DagForest::build(d, {});
    core::DgrConfig config;
    config.iterations = iters;
    config.temperature_interval = std::max(1, iters / 10);
    core::DgrSolver solver(forest, cap, config);
    solver.train();
    eval::RouteSolution dsol = solver.extract();
    post::maze_refine(dsol, cap);
    const eval::Metrics dm = eval::compute_metrics(dsol, cap);
    const post::LayerAssignment dla = post::assign_layers(dsol, cap);

    sum_ovf[0] += static_cast<double>(bm.overflow_edges);
    sum_ovf[1] += static_cast<double>(dm.overflow_edges);
    sum_wl[0] += static_cast<double>(bm.wirelength);
    sum_wl[1] += static_cast<double>(dm.wirelength);
    sum_via[0] += static_cast<double>(bla.via_count);
    sum_via[1] += static_cast<double>(dla.via_count);

    table.add_row({preset.name, eval::fmt_int(preset.num_nets),
                   std::to_string(d.grid().width()) + "x" + std::to_string(d.grid().height()),
                   eval::fmt_int(bm.overflow_edges), eval::fmt_int(dm.overflow_edges),
                   eval::fmt_int(bm.wirelength), eval::fmt_int(dm.wirelength),
                   eval::fmt_int(bla.via_count), eval::fmt_int(dla.via_count)});
  }

  table.add_separator();
  auto ratio = [](double a, double b) {
    return b > 0.0 ? eval::fmt_ratio(a / b) : std::string("-");
  };
  table.add_row({"Ratio (base/DGR)", "", "", ratio(sum_ovf[0], sum_ovf[1]), "1.0000",
                 ratio(sum_wl[0], sum_wl[1]), "1.0000", ratio(sum_via[0], sum_via[1]),
                 "1.0000"});
  table.print(std::cout);
  std::cout << "\nPaper claim to check: the overflow-edge ratio is > 1 (paper: 1.2391)\n"
            << "with wirelength and via ratios slightly > 1 (paper: 1.0095 / 1.0128).\n";
  return 0;
}
