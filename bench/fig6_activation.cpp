// Figure 6: impact of the overflow activation function f on routing quality.
//
// For each activation in {ReLU, sigmoid, LeakyReLU, exp, CELU} and a small
// hyper-parameter grid, run DGR end-to-end (train, extract, maze refine,
// layer assign) on two congested cases and report one scatter point per run:
//   x = 0.5 * WL + 4 * #vias
//   y = weighted overflow = 10*n1 + 1000*n2 + 10000*peak_overflow
// where n1 = # nets with overflow after layer assignment, n2 = # overflowed
// g-cell edges after global routing (the paper's y-axis definition).
// The CUGR2-lite point is printed as the reference mark (the red X).

#include <map>

#include "bench_common.hpp"

namespace {

using namespace dgr;

struct PointMetrics {
  double x = 0.0;
  double y = 0.0;
};

PointMetrics score(const pipeline::PipelineResult& r) {
  PointMetrics pt;
  pt.x = 0.5 * static_cast<double>(r.metrics.wirelength) +
         4.0 * static_cast<double>(r.layers.via_count);
  pt.y = 10.0 * static_cast<double>(r.layers.nets_with_overflow) +
         1000.0 * static_cast<double>(r.metrics.overflow_edges) +
         10000.0 * r.metrics.peak_overflow;
  return pt;
}

}  // namespace

int main() {
  using namespace dgr;
  bench::begin_bench("Figure 6 — overflow activation study",
                     "DGR paper Fig. 6 (DAC'24); generated congested cases");

  const int iters = std::max(100, bench::dgr_iterations() / 2);
  auto presets = design::table2_presets(bench::bench_scale());
  // The paper plots ispd18_5m and ispd19_7m; same positions in our ladder.
  const std::vector<std::size_t> case_ids = {0, 3};

  const ad::Activation acts[] = {ad::Activation::kReLU, ad::Activation::kSigmoid,
                                 ad::Activation::kLeakyReLU, ad::Activation::kExp,
                                 ad::Activation::kCELU};
  const double lrs[] = {0.1, 0.3};
  const std::uint64_t seeds[] = {1, 2};

  obs::BenchEmitter emitter = bench::make_emitter(
      "fig6_activation", "DGR paper Fig. 6 (DAC'24); generated congested cases");

  for (const std::size_t ci : case_ids) {
    const auto& preset = presets[ci];
    const design::Design d = design::generate_ispd_like(preset, /*seed=*/606);
    // One context per case: the DAG forest is built once and shared by the
    // whole activation x lr x seed grid below.
    pipeline::RoutingContext ctx(d);
    pipeline::Pipeline pipe(ctx);

    std::cout << "--- case " << preset.name << " (" << preset.num_nets << " nets, "
              << d.grid().width() << "x" << d.grid().height() << ") ---\n";
    eval::TablePrinter table({"activation", "lr", "seed", "0.5*WL + 4*Via",
                              "weighted overflow"});

    // Reference mark: CUGR2-lite.
    {
      const PointMetrics pt = score(pipe.run("cugr2-lite"));
      table.add_row({"CUGR2-lite (X)", "-", "-", eval::fmt_double(pt.x, 0),
                     eval::fmt_double(pt.y, 0)});
      emitter.add_row(preset.name + "/cugr2-lite")
          .metric("x_wl_via_score", pt.x)
          .metric("y_weighted_overflow", pt.y)
          .note("role", "reference");
    }
    table.add_separator();

    struct Best {
      double y = 1e300;
      double x = 0.0;
    };
    std::map<std::string, Best> best_per_act;

    for (const ad::Activation act : acts) {
      for (const double lr : lrs) {
        for (const std::uint64_t seed : seeds) {
          pipeline::RouterOptions ro = bench::dgr_router_options(iters);
          ro.dgr.activation = act;
          ro.dgr.learning_rate = lr;
          ro.dgr.seed = seed;
          const PointMetrics pt = score(pipe.run(
              "dgr", ro, pipeline::StagePlan{.maze_refine = true, .layer_assign = true}));
          table.add_row({ad::activation_name(act), eval::fmt_double(lr, 2),
                         eval::fmt_int(static_cast<std::int64_t>(seed)),
                         eval::fmt_double(pt.x, 0), eval::fmt_double(pt.y, 0)});
          emitter
              .add_row(preset.name + "/" + ad::activation_name(act) + "/lr" +
                       eval::fmt_double(lr, 2) + "/s" + std::to_string(seed))
              .metric("lr", lr)
              .metric("seed", static_cast<std::int64_t>(seed))
              .metric("x_wl_via_score", pt.x)
              .metric("y_weighted_overflow", pt.y)
              .note("activation", ad::activation_name(act));
          auto& best = best_per_act[ad::activation_name(act)];
          if (pt.y < best.y || (pt.y == best.y && pt.x < best.x)) best = {pt.y, pt.x};
        }
      }
    }
    table.print(std::cout);

    std::cout << "best weighted overflow per activation:";
    for (const auto& [name, best] : best_per_act) {
      std::cout << "  " << name << "=" << eval::fmt_double(best.y, 0);
    }
    std::cout << "\n\n";

    for (const auto& [name, best] : best_per_act) {
      emitter.summary("best_weighted_overflow/" + preset.name + "/" + name, best.y);
    }
  }
  emitter.write();

  std::cout << "Paper claim to check: the activation choice moves the overflow axis\n"
            << "substantially and sigmoid gives the best (lowest) weighted overflow,\n"
            << "beating the CUGR2 mark on most runs.\n";
  return 0;
}
