// Partition-parallel scaling harness: worker x partition sweep on the
// Table 3 ispd18-like series.
//
// For each design, routes a sequential baseline (the region router on the
// whole grid) and then the "partitioned" engine at every combination of
// worker count {1,2,4} and partition count {2,4}. Reports route-stage
// speedup vs the sequential baseline and the eval-cost quality delta
// (wirelength + bend/via proxy + overflow penalty), and emits
// BENCH_partition.json via the dgr-bench-v1 emitter.
//
// The partitioned runs are bitwise deterministic per partition count, so
// the worker axis changes wall time only — quality deltas are a function
// of the partition count alone (the harness checks this).
//
// Acceptance (ISSUE 10): route-stage speedup >= 1.5x at 4 workers / 4
// partitions with an eval-cost delta within 2% of sequential.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

constexpr const char* kRegionRouter = "cugr2-lite";

/// Scalar quality figure: wirelength plus the bend-based via proxy and a
/// stiff overflow penalty, mirroring the weighted objective the routers
/// optimise. Lower is better.
double eval_cost(const dgr::eval::Metrics& m) {
  return static_cast<double>(m.wirelength) + 0.5 * static_cast<double>(m.bends) +
         50.0 * m.total_overflow;
}

struct RunPoint {
  double route_seconds = 0.0;
  double cost = 0.0;
  dgr::eval::Metrics metrics;
};

}  // namespace

int main() {
  using namespace dgr;
  bench::begin_bench("Partition-parallel scaling",
                     "ISSUE 10 — dgr::partition worker x partition sweep, "
                     "Table 3 ispd18-like series");

  obs::BenchEmitter emitter = bench::make_emitter(
      "partition", "dgr::partition scaling sweep on the Table 3 ispd18-like series");
  emitter.set_config("region_router", kRegionRouter);

  // The middle of the Table 3 ladder: big enough that full-grid maze
  // escapes dominate the sequential route, small enough for CI.
  auto presets = design::table3_presets(bench::bench_scale());
  presets.erase(presets.begin(), presets.begin() + 3);  // keep test4..test7
  presets.resize(4);
  for (auto& p : presets) {
    p.hotspot_affinity = std::min(0.85, p.hotspot_affinity + 0.30);
  }

  const std::size_t workers[] = {1, 2, 4};
  const int partitions[] = {2, 4};

  eval::TablePrinter table(
      {"benchmark", "workers", "parts", "route_s", "speedup", "cost delta"});

  double speedup_4w4p_sum = 0.0;  // log-space for the geometric mean
  double worst_delta_4w4p = 0.0;
  int anchor_rows = 0;
  bool worker_invariant = true;

  for (const auto& preset : presets) {
    const design::Design d = design::generate_ispd_like(preset, /*seed=*/1818);

    // Sequential baseline: the region router on the whole grid, one worker.
    util::set_worker_count(1);
    RunPoint seq;
    {
      pipeline::RoutingContext ctx(d);
      pipeline::Pipeline pipe(ctx);
      const pipeline::PipelineResult r =
          pipe.run(kRegionRouter, {}, pipeline::StagePlan{.layer_assign = false});
      seq.route_seconds = r.stats.stage_seconds("route_total");
      seq.metrics = r.metrics;
      seq.cost = eval_cost(r.metrics);
    }
    table.add_row({preset.name, "1", "1", eval::fmt_double(seq.route_seconds, 3),
                   "1.00x", "0.00%"});
    emitter.add_row(preset.name + "/w1p1")
        .metric("workers", 1.0)
        .metric("partitions", 1.0)
        .metric("route_seconds", seq.route_seconds)
        .metric("speedup_vs_seq", 1.0)
        .metric("eval_cost", seq.cost)
        .metric("eval_cost_delta_pct", 0.0)
        .metric("wirelength", static_cast<double>(seq.metrics.wirelength))
        .metric("total_overflow", seq.metrics.total_overflow)
        .note("role", "sequential baseline");

    // Quality per partition count must not depend on the worker count
    // (bitwise determinism); remember the first observation to check.
    double cost_at_parts[2] = {-1.0, -1.0};

    for (const int p : partitions) {
      for (const std::size_t w : workers) {
        util::set_worker_count(w);
        pipeline::RoutingContext ctx(d);
        pipeline::Pipeline pipe(ctx);
        pipeline::RouterOptions options;
        options.partition.partitions = p;
        options.partition.region_router = kRegionRouter;
        const pipeline::PipelineResult r = pipe.run(
            "partitioned", options, pipeline::StagePlan{.layer_assign = false});

        RunPoint pt;
        pt.route_seconds = r.stats.stage_seconds("route_total");
        pt.metrics = r.metrics;
        pt.cost = eval_cost(r.metrics);

        const double speedup =
            pt.route_seconds > 0.0 ? seq.route_seconds / pt.route_seconds : 0.0;
        const double delta_pct =
            seq.cost > 0.0 ? (pt.cost - seq.cost) / seq.cost * 100.0 : 0.0;

        const int pi = p == 2 ? 0 : 1;
        if (cost_at_parts[pi] < 0.0) {
          cost_at_parts[pi] = pt.cost;
        } else if (pt.cost != cost_at_parts[pi]) {
          worker_invariant = false;
        }

        if (p == 4 && w == 4) {
          speedup_4w4p_sum += std::log(std::max(speedup, 1e-9));
          // The ceiling bounds *degradation* only — the partitioned engine
          // routinely lands below the sequential cost (its reconcile pass
          // doubles as a refinement round) and that is not a failure.
          worst_delta_4w4p = std::max(worst_delta_4w4p, delta_pct);
          ++anchor_rows;
        }

        char speedup_s[32], delta_s[32];
        std::snprintf(speedup_s, sizeof(speedup_s), "%.2fx", speedup);
        std::snprintf(delta_s, sizeof(delta_s), "%+.2f%%", delta_pct);
        table.add_row({preset.name, std::to_string(w), std::to_string(p),
                       eval::fmt_double(pt.route_seconds, 3), speedup_s, delta_s});

        char row_name[96];
        std::snprintf(row_name, sizeof(row_name), "%s/w%zup%d", preset.name.c_str(),
                      w, p);
        emitter.add_row(row_name)
            .metric("workers", static_cast<double>(w))
            .metric("partitions", static_cast<double>(p))
            .metric("route_seconds", pt.route_seconds)
            .metric("speedup_vs_seq", speedup)
            .metric("eval_cost", pt.cost)
            .metric("eval_cost_delta_pct", delta_pct)
            .metric("wirelength", static_cast<double>(pt.metrics.wirelength))
            .metric("wirelength_delta_pct",
                    seq.metrics.wirelength > 0
                        ? (static_cast<double>(pt.metrics.wirelength) -
                           static_cast<double>(seq.metrics.wirelength)) /
                              static_cast<double>(seq.metrics.wirelength) * 100.0
                        : 0.0)
            .metric("total_overflow", pt.metrics.total_overflow)
            .stage("route_total", pt.route_seconds);
      }
    }
  }
  util::set_worker_count(0);  // restore the hardware default

  const double geomean_speedup =
      anchor_rows > 0 ? std::exp(speedup_4w4p_sum / anchor_rows) : 0.0;
  emitter.summary("speedup_geomean_4w4p", geomean_speedup);
  emitter.summary("max_cost_degradation_pct_4w4p", worst_delta_4w4p);
  emitter.summary("worker_invariant_quality", worker_invariant ? 1.0 : 0.0);
  if (!emitter.write()) {
    std::fprintf(stderr, "failed to write %s\n", emitter.default_path().c_str());
    return 1;
  }

  table.print(std::cout);
  std::printf(
      "\n4w/4p geomean speedup: %.2fx (floor 1.5x)  |  max cost degradation: "
      "%.2f%% (ceiling 2%%)  |  worker-invariant quality: %s\n",
      geomean_speedup, worst_delta_4w4p, worker_invariant ? "yes" : "NO");

  const bool pass =
      geomean_speedup >= 1.5 && worst_delta_4w4p <= 2.0 && worker_invariant;
  return pass ? 0 : 2;
}
