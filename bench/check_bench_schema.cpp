// check_bench_schema: validates the repo's JSON artifacts against their
// schemas — BENCH_*.json against dgr-bench-v1 (obs::validate_bench_json)
// and FLIGHT_*.json flight-recorder dumps against dgr-flight-v1
// (serve::validate_flight_json). The validator is picked by the document's
// own "schema" field, so a bench file claiming the flight schema is checked
// as one (and vice versa).
//
// Usage:
//   check_bench_schema [--selftest] [file|dir ...]
//
// Each file argument is validated directly; each directory argument is
// scanned (non-recursively) for BENCH_*.json and FLIGHT_*.json. With no
// path arguments the current directory is scanned. A scan that finds no
// bench artifact is an error — a silently empty scan would make the ctest
// wiring vacuous. --selftest additionally exercises both validators
// against known-good and known-bad documents so the gate itself is tested.
//
// Exit status: 0 when every check passes, 1 otherwise.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dgr/dgr.hpp"

namespace {

namespace fs = std::filesystem;
using dgr::obs::json::Value;

bool validate_file(const fs::path& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "FAIL " << path.string() << ": cannot open\n";
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  Value doc;
  std::string error;
  if (!Value::parse(buffer.str(), &doc, &error)) {
    std::cerr << "FAIL " << path.string() << ": not JSON: " << error << "\n";
    return false;
  }
  const Value* schema = doc.find("schema");
  const bool is_flight =
      schema != nullptr && schema->is_string() && schema->as_string() == "dgr-flight-v1";
  const bool valid = is_flight ? dgr::serve::validate_flight_json(doc, &error)
                               : dgr::obs::validate_bench_json(doc, &error);
  if (!valid) {
    std::cerr << "FAIL " << path.string() << ": " << error << "\n";
    return false;
  }
  std::cout << "ok   " << path.string() << "\n";
  return true;
}

bool has_prefix_and_json_suffix(const fs::path& path, const char* prefix) {
  const std::string name = path.filename().string();
  return name.rfind(prefix, 0) == 0 && name.size() > 5 &&
         name.compare(name.size() - 5, 5, ".json") == 0;
}

bool is_bench_artifact(const fs::path& path) {
  return has_prefix_and_json_suffix(path, "BENCH_");
}

bool is_flight_artifact(const fs::path& path) {
  return has_prefix_and_json_suffix(path, "FLIGHT_");
}

bool selftest() {
  bool ok = true;
  auto expect = [&ok](bool got, bool want, const char* what) {
    if (got != want) {
      std::cerr << "FAIL selftest: " << what << " (expected "
                << (want ? "valid" : "invalid") << ")\n";
      ok = false;
    }
  };

  // A minimal emitter round-trip must validate.
  dgr::obs::BenchEmitter emitter("selftest", "schema self-check");
  emitter.set_config("scale", 1.0);
  emitter.add_row("case0").metric("value", 1.5).stage("route", 0.25).note(
      "flag", "on");
  emitter.summary("ratio", 2.0);
  std::string error;
  expect(dgr::obs::validate_bench_json(emitter.to_json(), &error), true,
         "emitter output");
  if (!error.empty()) std::cerr << "  validator said: " << error << "\n";

  // Known violations must be rejected.
  {
    Value doc = emitter.to_json();
    doc["schema"] = "dgr-bench-v0";
    expect(dgr::obs::validate_bench_json(doc), false, "wrong schema id");
  }
  {
    Value doc = Value::object();
    doc["schema"] = dgr::obs::BenchEmitter::kSchemaId;
    expect(dgr::obs::validate_bench_json(doc), false, "missing fields");
  }
  {
    // Well-formed envelope, but a row metric holding a string.
    Value doc = Value::object();
    doc["schema"] = dgr::obs::BenchEmitter::kSchemaId;
    doc["bench"] = "bad";
    doc["reproduces"] = "schema self-check";
    doc["hardware_threads"] = 1;
    doc["config"] = Value::object();
    Value row = Value::object();
    row["case"] = "c";
    Value metrics = Value::object();
    metrics["value"] = "not a number";
    row["metrics"] = std::move(metrics);
    Value rows = Value::array();
    rows.push_back(std::move(row));
    doc["rows"] = std::move(rows);
    doc["summary"] = Value::object();
    expect(dgr::obs::validate_bench_json(doc), false, "non-number metric");
  }

  // Flight-recorder schema: a real recorder dump must validate, broken
  // documents must not.
  {
    dgr::serve::FlightRecorder recorder(4);
    dgr::serve::FlightRecord rec;
    rec.set_id("r1");
    rec.set_op("route");
    rec.set_session("s1");
    rec.set_fault_sites({"serve.handler"});
    rec.latency_ms = 12.5;
    rec.status = static_cast<int>(dgr::StatusCode::kInternal);
    rec.attempts = 2;
    rec.degraded = true;
    recorder.record(rec);
    Value doc = recorder.to_json("internal");
    expect(dgr::serve::validate_flight_json(doc, &error), true, "flight dump");
    if (!error.empty()) std::cerr << "  validator said: " << error << "\n";
    doc["schema"] = "dgr-flight-v0";
    expect(dgr::serve::validate_flight_json(doc), false, "wrong flight schema id");
  }
  {
    Value doc = Value::object();
    doc["schema"] = "dgr-flight-v1";
    expect(dgr::serve::validate_flight_json(doc), false, "flight missing fields");
  }

  if (ok) std::cout << "ok   --selftest (7 cases)\n";
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool run_selftest = false;
  std::vector<fs::path> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--selftest") {
      run_selftest = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: check_bench_schema [--selftest] [file|dir ...]\n";
      return 0;
    } else {
      paths.emplace_back(arg);
    }
  }

  bool ok = true;
  if (run_selftest) ok = selftest() && ok;

  if (paths.empty() && !run_selftest) paths.emplace_back(".");
  int checked = 0;
  for (const fs::path& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      int bench_found = 0;
      int flight_found = 0;
      for (const auto& entry : fs::directory_iterator(p, ec)) {
        if (!entry.is_regular_file()) continue;
        if (is_bench_artifact(entry.path())) {
          ok = validate_file(entry.path()) && ok;
          ++bench_found;
        } else if (is_flight_artifact(entry.path())) {
          ok = validate_file(entry.path()) && ok;
          ++flight_found;
        }
      }
      if (bench_found == 0) {
        std::cerr << "FAIL " << p.string() << ": no BENCH_*.json found\n";
        ok = false;
      }
      checked += bench_found + flight_found;
    } else {
      ok = validate_file(p) && ok;
      ++checked;
    }
  }

  if (!paths.empty()) {
    std::cout << checked << " artifact(s) checked\n";
  }
  return ok ? 0 : 1;
}
