// Ablation bench (beyond the paper's tables): isolates the contribution of
// each DGR design choice on one congested case:
//   - Gumbel noise vs plain softmax                       (Section 4.4)
//   - temperature annealing on vs off                     (Section 4.4)
//   - top-p extraction vs pure argmax                     (Section 4.5)
//   - single tree candidate vs congestion-shifted forest  (Section 4.2)
//   - L-only vs L+Z path candidates                       (Section 3.1)
//   - maze-routing post refinement on vs off              (Section 4.6)

#include "bench_common.hpp"

namespace {

using namespace dgr;

struct Variant {
  std::string name;
  core::DgrConfig config;
  dag::ForestOptions forest;
  bool refine = true;
};

}  // namespace

int main() {
  using namespace dgr;
  bench::begin_bench("Ablation — DGR design choices",
                     "ablation of DGR paper Sections 3.1/4.2/4.4-4.6 (not a paper table)");

  const int iters = std::max(100, bench::dgr_iterations() / 2);
  auto presets = design::table2_presets(bench::bench_scale());
  const auto& preset = presets[0];  // ispd18_5m-like congested case
  const design::Design d = design::generate_ispd_like(preset, /*seed=*/707);
  pipeline::RoutingContext ctx(d);
  pipeline::Pipeline pipe(ctx);

  core::DgrConfig base;
  base.iterations = iters;
  base.temperature_interval = std::max(1, iters / 10);

  std::vector<Variant> variants;
  variants.push_back({"full DGR (baseline)", base, {}, true});
  {
    Variant v{"no Gumbel noise", base, {}, true};
    v.config.use_gumbel = false;
    variants.push_back(v);
  }
  {
    Variant v{"no temperature annealing", base, {}, true};
    v.config.temperature_decay = 1.0f;
    variants.push_back(v);
  }
  {
    Variant v{"argmax extraction (no top-p)", base, {}, true};
    v.config.top_p = 0.0f;
    variants.push_back(v);
  }
  {
    Variant v{"single tree candidate", base, {}, true};
    v.forest.tree.congestion_shifted = false;
    variants.push_back(v);
  }
  {
    Variant v{"3 tree candidates (trunk on)", base, {}, true};
    v.forest.tree.trunk_topology = true;
    variants.push_back(v);
  }
  {
    Variant v{"L+Z path candidates (z=2)", base, {}, true};
    v.forest.paths.z_samples = 2;
    variants.push_back(v);
  }
  {
    Variant v{"adaptive expansion (Sec. 3.1 future work)", base, {}, true};
    v.forest.adaptive_expansion = true;
    variants.push_back(v);
  }
  {
    Variant v{"+ SALT tree candidates (eps=0.5)", base, {}, true};
    v.forest.tree.salt_topology = true;
    variants.push_back(v);
  }
  {
    Variant v{"+ C-shape detours (c=1, d=2)", base, {}, true};
    v.forest.paths.c_samples = 1;
    v.forest.paths.c_detour = 2;
    variants.push_back(v);
  }
  {
    Variant v{"no maze refinement", base, {}, false};
    variants.push_back(v);
  }

  eval::TablePrinter table({"variant", "paths", "ovf edges", "total ovf", "WL",
                            "vias", "solve (s)"});
  obs::BenchEmitter emitter = bench::make_emitter(
      "ablation_dgr", "ablation of DGR paper Sections 3.1/4.2/4.4-4.6");
  emitter.set_config("case", preset.name);

  for (const Variant& v : variants) {
    pipeline::RouterOptions ro;
    ro.dgr = v.config;
    ro.forest = v.forest;
    const pipeline::PipelineResult r = pipe.run(
        "dgr", ro, pipeline::StagePlan{.maze_refine = v.refine, .layer_assign = true});
    const double secs = bench::dgr_solve_seconds(r.stats) +
                        r.stats.stage_seconds("maze_refine");
    table.add_row({v.name,
                   eval::fmt_int(static_cast<std::int64_t>(
                       r.stats.counter("path_candidates"))),
                   eval::fmt_int(r.metrics.overflow_edges),
                   eval::fmt_double(r.metrics.total_overflow, 1),
                   eval::fmt_int(r.metrics.wirelength),
                   eval::fmt_int(r.layers.via_count), eval::fmt_double(secs, 2)});

    emitter.add_row(v.name)
        .metric("path_candidates", r.stats.counter("path_candidates"))
        .metric("ovf_edges", r.metrics.overflow_edges)
        .metric("total_overflow", r.metrics.total_overflow)
        .metric("wirelength", static_cast<double>(r.metrics.wirelength))
        .metric("vias", static_cast<double>(r.layers.via_count))
        .metric("solve_seconds", secs)
        .stages(bench::stage_pairs(r.stats));
  }
  emitter.write();

  table.print(std::cout);
  std::cout << "\nReading guide: each row flips one design choice of DGR; the baseline\n"
            << "row should be at or near the best overflow-edge count.\n";
  return 0;
}
