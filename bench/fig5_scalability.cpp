// Figure 5: runtime and memory scalability vs number of nets.
//
//   5a: DGR solver runtime (excluding DAG-forest construction, per the
//       paper's footnote 3) against CUGR2-lite runtime, over a net-count
//       sweep at fixed routing density.
//   5b: peak memory vs #nets — peak process RSS ("CPU memory") and the
//       solver-owned bytes (forest + relaxation + tape, the "GPU memory"
//       proxy: exactly the tensors PyTorch would keep on-device).

#include "bench_common.hpp"

int main() {
  using namespace dgr;
  bench::begin_bench("Figure 5 — runtime and memory vs # nets",
                     "DGR paper Fig. 5a/5b (DAC'24); CPU substrate, see EXPERIMENTS.md");

  const double scale = bench::bench_scale();
  // Keep per-point iteration count moderate: the runtime *trend* is what the
  // figure shows, and it is linear in iterations anyway.
  const int iters = std::max(50, bench::dgr_iterations() / 5);

  std::vector<int> net_counts;
  for (int n : {500, 1000, 2000, 4000, 8000, 16000}) {
    net_counts.push_back(std::max(100, static_cast<int>(n * scale)));
  }

  eval::TablePrinter table({"# nets", "grid", "forest build (s)", "DGR solve (s)",
                            "CUGR2-lite (s)", "peak RSS (MB)", "solver bytes (MB)"});
  obs::BenchEmitter emitter = bench::make_emitter(
      "fig5_scalability", "DGR paper Fig. 5a/5b (DAC'24); CPU substrate");
  emitter.set_config("iterations_per_point", iters);

  for (const int nets : net_counts) {
    design::IspdLikeParams p;
    p.name = "sweep";
    // Grid grows with sqrt(#nets) to hold routing density constant.
    const int g = std::max(16, static_cast<int>(std::sqrt(nets) * 1.6));
    p.grid_w = p.grid_h = g;
    p.num_nets = nets;
    p.layers = 5;
    p.tracks_per_layer = 3;
    const design::Design d = design::generate_ispd_like(p, 5050);
    pipeline::RoutingContext ctx(d);
    pipeline::Pipeline pipe(ctx);
    const pipeline::StagePlan route_only{.maze_refine = false, .layer_assign = false};

    // Per-stage RouterStats give the figure's series directly: "forest" is
    // construction (excluded from DGR runtime per footnote 3), "train" +
    // "extract" is the solver curve, solver_bytes the "GPU memory" proxy.
    const pipeline::PipelineResult dgr_run =
        pipe.run("dgr", bench::dgr_router_options(iters), route_only);
    const double build_s = dgr_run.stats.stage_seconds("forest");
    const double solve_s = bench::dgr_solve_seconds(dgr_run.stats);

    const pipeline::PipelineResult base = pipe.run("cugr2-lite", {}, route_only);
    const double base_s = base.stats.stage_seconds("route_total");

    const double rss_mb = static_cast<double>(base.stats.peak_rss_bytes) / 1e6;
    const double solver_mb = static_cast<double>(dgr_run.stats.solver_bytes) / 1e6;

    table.add_row({eval::fmt_int(nets), std::to_string(g) + "x" + std::to_string(g),
                   eval::fmt_double(build_s, 3), eval::fmt_double(solve_s, 3),
                   eval::fmt_double(base_s, 3), eval::fmt_double(rss_mb, 1),
                   eval::fmt_double(solver_mb, 1)});

    emitter.add_row("n" + std::to_string(nets))
        .metric("nets", nets)
        .metric("grid", g)
        .metric("forest_build_seconds", build_s)
        .metric("dgr_solve_seconds", solve_s)
        .metric("cugr2_seconds", base_s)
        .metric("peak_rss_mb", rss_mb)
        .metric("solver_mb", solver_mb);
  }
  emitter.write();

  table.print(std::cout);
  std::cout << "\nPaper claims to check (5a): DGR runtime grows roughly linearly in\n"
            << "#nets and the DGR/CUGR2 gap narrows as designs grow (CUGR2's RRR\n"
            << "blows up on congestion; DGR's per-iteration cost is linear).\n"
            << "(5b): both memory series are ~linear in #nets.\n"
            << "DGR solve time excludes DAG-forest construction (paper footnote 3).\n";
  return 0;
}
