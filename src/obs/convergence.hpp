#pragma once
/// \file
/// Solver convergence telemetry: the per-iteration time series behind the
/// paper's Figure 5/6 convergence plots (loss, overflow expectation,
/// temperature, gradient norm) plus divergence-rollback events.
///
/// `core::DgrSolver` records one IterationSample per kept iteration when
/// `DgrConfig::record_telemetry` is on and surfaces the series through
/// `TrainStats` / `pipeline::RouterStats`. The train loop must stay free of
/// per-step heap allocation, so the series is reserved once up front; a
/// push past the reserved capacity still succeeds but bumps the
/// `obs.convergence.unreserved_growth` counter metric, which the obs tests
/// assert stays at zero.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/json.hpp"

namespace dgr::obs {

struct IterationSample {
  std::int32_t iteration = 0;  ///< schedule index (temperature anneal position)
  double loss = 0.0;           ///< stochastic training cost of the step
  double overflow = 0.0;       ///< expected overflow term, pre-weight (Eq. 9)
  double temperature = 0.0;    ///< Gumbel-softmax temperature at the step
  double grad_norm = 0.0;      ///< L2 norm of the full parameter gradient
};

/// A divergence rollback: training rewound from `at_iteration` to resume at
/// `resumed_from` (the best-so-far checkpoint's iteration).
struct RollbackEvent {
  std::int32_t at_iteration = 0;
  std::int32_t resumed_from = 0;
};

class ConvergenceSeries {
 public:
  /// Pre-reserves capacity for `n` samples (call before the train loop).
  void reserve(std::size_t n);

  /// Appends a sample. Growing past the reserved capacity allocates and
  /// increments the obs.convergence.unreserved_growth counter metric.
  void push(const IterationSample& s);

  /// Rewinds the series to `n` samples (rollback replay semantics).
  void truncate(std::size_t n);

  void clear();
  bool empty() const { return samples_.empty(); }
  std::size_t size() const { return samples_.size(); }
  const std::vector<IterationSample>& samples() const { return samples_; }

  /// Rollback events survive truncation (they describe the whole run).
  std::vector<RollbackEvent> rollbacks;

  /// Columnar JSON (arrays per field) — compact for 10^3..10^4 iterations.
  json::Value to_json() const;

 private:
  std::vector<IterationSample> samples_;
};

}  // namespace dgr::obs
