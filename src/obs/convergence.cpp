#include "obs/convergence.hpp"

#include "obs/metrics.hpp"

namespace dgr::obs {

void ConvergenceSeries::reserve(std::size_t n) { samples_.reserve(n); }

void ConvergenceSeries::push(const IterationSample& s) {
  if (samples_.size() == samples_.capacity()) {
    // The train loop pre-reserves; landing here means a per-step heap
    // allocation slipped in. Count it so tests can assert zero.
    static Counter& growth = metrics().counter("obs.convergence.unreserved_growth");
    growth.add(1);
  }
  samples_.push_back(s);
}

void ConvergenceSeries::truncate(std::size_t n) {
  if (n < samples_.size()) samples_.resize(n);
}

void ConvergenceSeries::clear() {
  samples_.clear();
  rollbacks.clear();
}

json::Value ConvergenceSeries::to_json() const {
  // Columns are built stand-alone and moved in afterwards: operator[] on the
  // document appends to its member vector, so references taken across
  // insertions would dangle on reallocation.
  json::Value iter = json::Value::array();
  json::Value loss = json::Value::array();
  json::Value ovf = json::Value::array();
  json::Value temp = json::Value::array();
  json::Value gnorm = json::Value::array();
  for (const IterationSample& s : samples_) {
    iter.push_back(static_cast<std::int64_t>(s.iteration));
    loss.push_back(s.loss);
    ovf.push_back(s.overflow);
    temp.push_back(s.temperature);
    gnorm.push_back(s.grad_norm);
  }
  json::Value rb = json::Value::array();
  for (const RollbackEvent& e : rollbacks) {
    json::Value entry = json::Value::object();
    entry["at_iteration"] = static_cast<std::int64_t>(e.at_iteration);
    entry["resumed_from"] = static_cast<std::int64_t>(e.resumed_from);
    rb.push_back(std::move(entry));
  }
  json::Value doc = json::Value::object();
  doc["iteration"] = std::move(iter);
  doc["loss"] = std::move(loss);
  doc["overflow"] = std::move(ovf);
  doc["temperature"] = std::move(temp);
  doc["grad_norm"] = std::move(gnorm);
  doc["rollbacks"] = std::move(rb);
  return doc;
}

}  // namespace dgr::obs
