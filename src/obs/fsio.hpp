#pragma once
/// \file
/// Atomic file publication for live-rewritten observability artifacts.
///
/// The serve exporter rewrites the metrics snapshot and the Prometheus
/// scrape target on a timer while scrapers read them concurrently; a plain
/// ofstream truncate-then-write lets a reader observe an empty or torn
/// file. write_file_atomic stages the content in `path + ".tmp"` and
/// rename(2)s it into place, so readers see either the old artifact or the
/// complete new one, never a partial write.

#include <string>
#include <string_view>

namespace dgr::obs {

/// Writes `content` to `path` atomically (stage + rename). Returns false
/// on any I/O failure; the target file is left untouched in that case.
bool write_file_atomic(const std::string& path, std::string_view content);

}  // namespace dgr::obs
