#pragma once
/// \file
/// Span-based tracing with lock-free thread-local ring buffers and Chrome
/// `trace_event` export (DESIGN.md §8).
///
/// Instrumentation sites use the macros:
///
///   DGR_TRACE_SCOPE("core.train");          // RAII span ('X' complete event)
///   DGR_TRACE_INSTANT("core.rollback");     // point event ('i')
///   DGR_TRACE_COUNTER("dgr.loss", cost);    // counter series ('C')
///
/// Cost model. Tracing is OFF at runtime by default: a disabled site is one
/// relaxed atomic load plus a predictable branch — no clock read, no
/// allocation (<1% on every instrumented hot path, including the pool
/// worker job loop). When enabled, each event is two steady_clock reads and
/// one store into the calling thread's fixed-capacity ring buffer; the ring
/// overwrites its oldest events when full (`trace_dropped()` reports how
/// many were lost). Nothing in the tracer feeds back into routing
/// computation, so the bitwise determinism contract of
/// `util::ParallelRuntime` is untouched with tracing on or off.
///
/// Event names must be pointers with static storage duration (string
/// literals); dynamic names go through intern(). Flushing
/// (`chrome_trace_json` / `write_chrome_trace`) is meant for quiescent
/// moments — call it after the traced work completed (or after
/// `set_tracing(false)`), not concurrently with active spans.
///
/// Compile-time gate: the DGR_OBS option (default ON) defines the macros
/// above; with DGR_OBS=OFF every site compiles to `((void)0)` and the
/// runtime switch is inert (`compiled_in()` reports which build this is).

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace dgr::obs {

/// True when the tracing macros were compiled in (DGR_OBS=ON builds).
constexpr bool compiled_in() {
#if defined(DGR_OBS)
  return true;
#else
  return false;
#endif
}

namespace detail {
extern std::atomic<bool> g_tracing;
std::uint64_t now_ns();
void emit_complete(const char* name, std::uint64_t start_ns, std::uint64_t end_ns);
void emit_instant(const char* name);
void emit_counter(const char* name, double value);
}  // namespace detail

/// Master runtime switch; OFF by default. Turning tracing on stamps the
/// trace epoch (timestamps are reported relative to the first enable or the
/// last reset). A no-op in DGR_OBS=OFF builds.
void set_tracing(bool enabled);
bool tracing_enabled();

/// Drops every buffered event and re-stamps the trace epoch.
void reset_trace();

/// Events currently buffered across all threads / events lost to ring
/// overwrite since the last reset.
std::size_t trace_event_count();
std::uint64_t trace_dropped();

/// The buffered events as a Chrome `trace_event` JSON document (the object
/// form: {"traceEvents": [...]}), loadable in chrome://tracing or Perfetto.
/// Events are ordered by (timestamp, thread, name) so the output is stable
/// for a given set of events.
std::string chrome_trace_json();

/// Writes chrome_trace_json() to `path`. Returns false on I/O failure.
bool write_chrome_trace(const std::string& path);

/// Copies `s` into process-lifetime storage and returns a stable pointer;
/// repeated calls with equal strings return the same pointer. For the rare
/// dynamically-composed event name (e.g. fault-site instants).
const char* intern(std::string_view s);

/// Fixed ring capacity per thread, for occupancy reporting
/// (trace_event_count() / (threads * trace_ring_capacity())).
std::size_t trace_ring_capacity();

/// Request-scoped trace context (DESIGN.md §8). Three interned strings —
/// request id, op, session — stamped onto every event emitted on the
/// current thread while a TraceContextScope is live, and exported as
/// `args.req` / `args.op` / `args.session` in the Chrome trace. Pointers
/// must have process lifetime (string literals or intern()).
struct TraceContext {
  const char* request = nullptr;
  const char* op = nullptr;
  const char* session = nullptr;
  bool active() const { return request != nullptr; }
};

/// The calling thread's current context ({} when none is installed).
/// Cheap (one TLS read): `ParallelRuntime` captures it on every job submit
/// so worker-side spans inherit the submitter's request identity.
TraceContext current_trace_context();

/// Low-level setter; prefer TraceContextScope, which restores the previous
/// context on exit.
void set_trace_context(TraceContext ctx);

/// RAII: installs a request context on the current thread for its lifetime,
/// restoring the previous one (contexts nest; the innermost wins). The
/// string_view constructor interns its arguments; the TraceContext
/// constructor adopts already-interned pointers (the propagation path).
///
/// Stamping happens when an event is *emitted* — at span destruction for
/// 'X' events — so a scope must enclose the full lifetime of every span it
/// is meant to label (the serve worker installs it around the whole job).
class TraceContextScope {
 public:
  TraceContextScope(std::string_view request, std::string_view op, std::string_view session);
  explicit TraceContextScope(TraceContext adopted);
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext prev_;
};

/// RAII span: records a complete ('X') event covering construction to
/// destruction on the current thread. Prefer DGR_TRACE_SCOPE.
class TraceScope {
 public:
  explicit TraceScope(const char* name) {
    if (detail::g_tracing.load(std::memory_order_relaxed)) {
      name_ = name;
      start_ = detail::now_ns();
    }
  }
  ~TraceScope() {
    if (name_ != nullptr) detail::emit_complete(name_, start_, detail::now_ns());
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
};

inline void trace_instant(const char* name) {
  if (detail::g_tracing.load(std::memory_order_relaxed)) detail::emit_instant(name);
}

inline void trace_counter(const char* name, double value) {
  if (detail::g_tracing.load(std::memory_order_relaxed)) detail::emit_counter(name, value);
}

}  // namespace dgr::obs

#if defined(DGR_OBS)
#define DGR_OBS_CONCAT_IMPL(a, b) a##b
#define DGR_OBS_CONCAT(a, b) DGR_OBS_CONCAT_IMPL(a, b)
#define DGR_TRACE_SCOPE(name) \
  ::dgr::obs::TraceScope DGR_OBS_CONCAT(dgr_obs_scope_, __COUNTER__)(name)
#define DGR_TRACE_INSTANT(name) ::dgr::obs::trace_instant(name)
#define DGR_TRACE_COUNTER(name, value) ::dgr::obs::trace_counter(name, value)
#else
#define DGR_TRACE_SCOPE(name) ((void)0)
#define DGR_TRACE_INSTANT(name) ((void)0)
#define DGR_TRACE_COUNTER(name, value) ((void)0)
#endif
