#include "obs/bench_emitter.hpp"

#include <cstdio>
#include <fstream>
#include <thread>

namespace dgr::obs {

namespace {

void set_pair(std::vector<std::pair<std::string, double>>& pairs, const std::string& key,
              double value) {
  for (auto& [k, v] : pairs) {
    if (k == key) {
      v = value;
      return;
    }
  }
  pairs.emplace_back(key, value);
}

}  // namespace

BenchRow& BenchRow::metric(std::string name, double value) {
  set_pair(metrics_, name, value);
  return *this;
}

BenchRow& BenchRow::stage(std::string name, double seconds) {
  set_pair(stages_, name, seconds);
  return *this;
}

BenchRow& BenchRow::note(std::string name, std::string value) {
  for (auto& [k, v] : notes_) {
    if (k == name) {
      v = std::move(value);
      return *this;
    }
  }
  notes_.emplace_back(std::move(name), std::move(value));
  return *this;
}

BenchRow& BenchRow::metrics(const std::vector<std::pair<std::string, double>>& pairs) {
  for (const auto& [k, v] : pairs) metric(k, v);
  return *this;
}

BenchRow& BenchRow::stages(const std::vector<std::pair<std::string, double>>& pairs) {
  for (const auto& [k, v] : pairs) stage(k, v);
  return *this;
}

BenchEmitter::BenchEmitter(std::string bench, std::string reproduces)
    : bench_(std::move(bench)), reproduces_(std::move(reproduces)) {}

void BenchEmitter::set_config(const std::string& key, double value) {
  config_[key] = value;
}

void BenchEmitter::set_config(const std::string& key, std::string value) {
  config_[key] = std::move(value);
}

BenchRow& BenchEmitter::add_row(std::string case_name) {
  rows_.push_back(BenchRow(std::move(case_name)));
  return rows_.back();
}

void BenchEmitter::summary(const std::string& name, double value) {
  set_pair(summary_, name, value);
}

json::Value BenchEmitter::to_json() const {
  json::Value doc = json::Value::object();
  doc["schema"] = kSchemaId;
  doc["bench"] = bench_;
  doc["reproduces"] = reproduces_;
  doc["hardware_threads"] =
      static_cast<std::int64_t>(std::thread::hardware_concurrency());
  doc["config"] = config_;
  json::Value& rows = doc["rows"];
  rows = json::Value::array();
  for (const BenchRow& row : rows_) {
    json::Value r = json::Value::object();
    r["case"] = row.case_;
    json::Value& metrics = r["metrics"];
    metrics = json::Value::object();
    for (const auto& [k, v] : row.metrics_) metrics[k] = v;
    if (!row.stages_.empty()) {
      json::Value& stages = r["stages"];
      stages = json::Value::object();
      for (const auto& [k, v] : row.stages_) stages[k] = v;
    }
    if (!row.notes_.empty()) {
      json::Value& notes = r["notes"];
      notes = json::Value::object();
      for (const auto& [k, v] : row.notes_) notes[k] = v;
    }
    rows.push_back(std::move(r));
  }
  json::Value& summary = doc["summary"];
  summary = json::Value::object();
  for (const auto& [k, v] : summary_) summary[k] = v;
  return doc;
}

bool BenchEmitter::write(const std::string& path) const {
  const std::string dest = path.empty() ? default_path() : path;
  std::ofstream out(dest);
  if (!out) return false;
  out << to_json().dump(2) << "\n";
  if (!out) return false;
  std::fprintf(stderr, "[bench] wrote %s (%zu rows)\n", dest.c_str(), rows_.size());
  return true;
}

namespace {

bool fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

bool check_numeric_object(const json::Value* v, const char* what, std::string* error) {
  if (v == nullptr) return true;  // optional sections
  if (!v->is_object()) return fail(error, std::string(what) + " is not an object");
  for (const auto& [k, val] : v->members()) {
    if (!val.is_number()) {
      return fail(error, std::string(what) + "." + k + " is not a number");
    }
  }
  return true;
}

}  // namespace

bool validate_bench_json(const json::Value& doc, std::string* error) {
  if (!doc.is_object()) return fail(error, "document is not an object");

  const json::Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    return fail(error, "missing string field 'schema'");
  }
  if (schema->as_string() != BenchEmitter::kSchemaId) {
    return fail(error, "unknown schema '" + schema->as_string() + "' (want " +
                           std::string(BenchEmitter::kSchemaId) + ")");
  }
  for (const char* key : {"bench", "reproduces"}) {
    const json::Value* v = doc.find(key);
    if (v == nullptr || !v->is_string() || v->as_string().empty()) {
      return fail(error, std::string("missing non-empty string field '") + key + "'");
    }
  }
  const json::Value* threads = doc.find("hardware_threads");
  if (threads == nullptr || !threads->is_number()) {
    return fail(error, "missing number field 'hardware_threads'");
  }
  const json::Value* config = doc.find("config");
  if (config == nullptr || !config->is_object()) {
    return fail(error, "missing object field 'config'");
  }
  for (const auto& [k, v] : config->members()) {
    if (!v.is_number() && !v.is_string()) {
      return fail(error, "config." + k + " is neither number nor string");
    }
  }
  const json::Value* rows = doc.find("rows");
  if (rows == nullptr || !rows->is_array()) {
    return fail(error, "missing array field 'rows'");
  }
  for (std::size_t i = 0; i < rows->items().size(); ++i) {
    const json::Value& row = rows->items()[i];
    const std::string where = "rows[" + std::to_string(i) + "]";
    if (!row.is_object()) return fail(error, where + " is not an object");
    const json::Value* name = row.find("case");
    if (name == nullptr || !name->is_string() || name->as_string().empty()) {
      return fail(error, where + " missing non-empty string field 'case'");
    }
    const json::Value* metrics = row.find("metrics");
    if (metrics == nullptr) return fail(error, where + " missing 'metrics'");
    if (!check_numeric_object(metrics, (where + ".metrics").c_str(), error)) return false;
    if (!check_numeric_object(row.find("stages"), (where + ".stages").c_str(), error)) {
      return false;
    }
    const json::Value* notes = row.find("notes");
    if (notes != nullptr) {
      if (!notes->is_object()) return fail(error, where + ".notes is not an object");
      for (const auto& [k, v] : notes->members()) {
        if (!v.is_string()) return fail(error, where + ".notes." + k + " is not a string");
      }
    }
  }
  const json::Value* summary = doc.find("summary");
  if (summary == nullptr || !summary->is_object()) {
    return fail(error, "missing object field 'summary'");
  }
  return check_numeric_object(summary, "summary", error);
}

}  // namespace dgr::obs
