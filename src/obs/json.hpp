#pragma once
/// \file
/// Minimal ordered JSON document model for the observability subsystem.
///
/// Every artifact `dgr::obs` emits — Chrome traces, metric snapshots, bench
/// tables — must be byte-deterministic given deterministic inputs, so this
/// model preserves object key insertion order and formats numbers through
/// one canonical printer (integers without a fraction, everything else via
/// shortest round-trip %.17g). The parser accepts standard JSON and exists
/// so tests and `bench/check_bench_schema` can validate what the writers
/// produced without an external dependency.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dgr::obs::json {

class Value;

/// Ordered key/value members — insertion order is emission order.
using Members = std::vector<std::pair<std::string, Value>>;

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}                        // NOLINT
  Value(double d) : kind_(Kind::kNumber), num_(d) {}                     // NOLINT
  Value(int i) : kind_(Kind::kNumber), num_(i) {}                       // NOLINT
  Value(std::int64_t i) : kind_(Kind::kNumber), num_(static_cast<double>(i)) {}  // NOLINT
  Value(std::size_t i) : kind_(Kind::kNumber), num_(static_cast<double>(i)) {}   // NOLINT
  Value(const char* s) : kind_(Kind::kString), str_(s) {}               // NOLINT
  Value(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}    // NOLINT

  static Value array();
  static Value object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  const std::string& as_string() const { return str_; }
  const std::vector<Value>& items() const { return items_; }
  const Members& members() const { return members_; }

  /// Array append (converts a null value into an array on first use).
  void push_back(Value v);
  /// Object insert-or-lookup by key (converts a null value into an object).
  Value& operator[](std::string_view key);
  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;
  std::size_t size() const;

  /// Serialises the document. `indent` > 0 pretty-prints with that many
  /// spaces per level; 0 emits the compact one-line form.
  std::string dump(int indent = 0) const;

  /// Parses standard JSON. Returns false (and fills *error when non-null)
  /// on malformed input; *out is unspecified on failure.
  static bool parse(std::string_view text, Value* out, std::string* error = nullptr);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> items_;
  Members members_;
};

/// Canonical number formatting shared by every obs writer: integral values
/// in [-2^53, 2^53] print without a fraction, everything else as the
/// shortest representation that round-trips a double.
std::string format_number(double v);

/// JSON string escaping (quotes not included).
std::string escape(std::string_view s);

}  // namespace dgr::obs::json
