#include "obs/prometheus.hpp"

#include <cstdint>

#include "obs/fsio.hpp"
#include "obs/metrics.hpp"

namespace dgr::obs {

namespace {

bool starts_with_any(std::string_view name, const std::vector<std::string>& prefixes) {
  for (const std::string& p : prefixes) {
    if (name.size() >= p.size() && name.compare(0, p.size(), p) == 0) return true;
  }
  return false;
}

bool selected(std::string_view name, const PrometheusOptions& options) {
  if (!options.include_prefixes.empty() && !starts_with_any(name, options.include_prefixes)) {
    return false;
  }
  return !starts_with_any(name, options.exclude_prefixes);
}

void append_sample(std::string& out, const std::string& name, std::string_view labels,
                   double value) {
  out += name;
  out += labels;
  out += ' ';
  out += json::format_number(value);
  out += '\n';
}

void append_type(std::string& out, const std::string& name, std::string_view type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string prometheus_name(std::string_view name, std::string_view prefix) {
  std::string out;
  out.reserve(prefix.size() + 1 + name.size());
  out.assign(prefix);
  if (!out.empty()) out += '_';
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string render_prometheus(const json::Value& snapshot, const PrometheusOptions& options) {
  std::string out;
  const json::Value* counters = snapshot.find("counters");
  if (counters != nullptr && counters->is_object()) {
    for (const auto& [name, v] : counters->members()) {
      if (!selected(name, options)) continue;
      const std::string prom = prometheus_name(name, options.prefix);
      append_type(out, prom, "counter");
      append_sample(out, prom, "", v.as_number());
    }
  }
  const json::Value* gauges = snapshot.find("gauges");
  if (gauges != nullptr && gauges->is_object()) {
    for (const auto& [name, v] : gauges->members()) {
      if (!selected(name, options)) continue;
      const std::string prom = prometheus_name(name, options.prefix);
      append_type(out, prom, "gauge");
      append_sample(out, prom, "", v.as_number());
    }
  }
  const json::Value* histograms = snapshot.find("histograms");
  if (histograms != nullptr && histograms->is_object()) {
    for (const auto& [name, entry] : histograms->members()) {
      if (!selected(name, options)) continue;
      const json::Value* bounds = entry.find("bounds");
      const json::Value* buckets = entry.find("buckets");
      const json::Value* count = entry.find("count");
      if (bounds == nullptr || buckets == nullptr || count == nullptr) continue;
      const std::string prom = prometheus_name(name, options.prefix);
      append_type(out, prom, "histogram");
      // Registry buckets are disjoint; Prometheus buckets are cumulative.
      double cumulative = 0.0;
      for (std::size_t i = 0; i < bounds->items().size(); ++i) {
        cumulative += buckets->items()[i].as_number();
        const std::string labels =
            "{le=\"" + json::format_number(bounds->items()[i].as_number()) + "\"}";
        append_sample(out, prom + "_bucket", labels, cumulative);
      }
      append_sample(out, prom + "_bucket", "{le=\"+Inf\"}", count->as_number());
      append_sample(out, prom + "_count", "", count->as_number());
    }
  }
  return out;
}

std::string prometheus_text(const PrometheusOptions& options) {
  return render_prometheus(metrics().snapshot(), options);
}

bool write_prometheus(const std::string& path, const PrometheusOptions& options) {
  // Atomic publication: this is a scrape target rewritten on a timer; a
  // scraper must never observe a torn or truncated exposition.
  return write_file_atomic(path, prometheus_text(options));
}

}  // namespace dgr::obs
