#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "obs/json.hpp"

namespace dgr::obs {

namespace detail {
std::atomic<bool> g_tracing{false};
}  // namespace detail

namespace {

struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t ts_ns = 0;   ///< event start, absolute steady-clock ns
  std::uint64_t dur_ns = 0;  ///< 'X' events only
  double value = 0.0;        ///< 'C' events only
  TraceContext ctx;          ///< request context at emit time (may be inactive)
  char phase = 'X';
};

thread_local TraceContext g_trace_ctx{};

/// Power-of-two ring so the owner thread indexes with a mask. head_ is the
/// monotonic count of events ever written; the owner stores the event slot
/// first, then publishes with a release bump, so a reader that acquires
/// head_ sees fully-written events for every index below it (modulo
/// overwrite of the oldest ring lap, which flushing at quiescent points
/// avoids by design).
constexpr std::size_t kRingBits = 16;
constexpr std::size_t kRingCapacity = std::size_t{1} << kRingBits;
constexpr std::size_t kRingMask = kRingCapacity - 1;

struct ThreadBuffer {
  explicit ThreadBuffer(std::uint32_t tid_in) : tid(tid_in), events(kRingCapacity) {}
  const std::uint32_t tid;
  std::vector<TraceEvent> events;
  std::atomic<std::uint64_t> head{0};

  void push(const TraceEvent& ev) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    events[h & kRingMask] = ev;
    head.store(h + 1, std::memory_order_release);
  }
};

struct TraceState {
  std::mutex mu;
  // Buffers are owned for the process lifetime: pool threads outlive any
  // one trace session and a thread's events must survive its exit.
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::uint64_t epoch_ns = 0;
  std::set<std::string> interned;
};

TraceState& state() {
  static TraceState* s = new TraceState();  // leaked: outlives static dtors
  return *s;
}

ThreadBuffer& tls_buffer() {
  thread_local ThreadBuffer* buf = [] {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.buffers.push_back(
        std::make_unique<ThreadBuffer>(static_cast<std::uint32_t>(s.buffers.size())));
    return s.buffers.back().get();
  }();
  return *buf;
}

}  // namespace

namespace detail {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void emit_complete(const char* name, std::uint64_t start_ns, std::uint64_t end_ns) {
  TraceEvent ev;
  ev.name = name;
  ev.ts_ns = start_ns;
  ev.dur_ns = end_ns - start_ns;
  ev.ctx = g_trace_ctx;
  ev.phase = 'X';
  tls_buffer().push(ev);
}

void emit_instant(const char* name) {
  TraceEvent ev;
  ev.name = name;
  ev.ts_ns = now_ns();
  ev.ctx = g_trace_ctx;
  ev.phase = 'i';
  tls_buffer().push(ev);
}

void emit_counter(const char* name, double value) {
  TraceEvent ev;
  ev.name = name;
  ev.ts_ns = now_ns();
  ev.value = value;
  ev.ctx = g_trace_ctx;
  ev.phase = 'C';
  tls_buffer().push(ev);
}

}  // namespace detail

void set_tracing(bool enabled) {
  if (!compiled_in()) return;
  if (enabled) {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.epoch_ns == 0) s.epoch_ns = detail::now_ns();
  }
  detail::g_tracing.store(enabled, std::memory_order_relaxed);
}

bool tracing_enabled() { return detail::g_tracing.load(std::memory_order_relaxed); }

void reset_trace() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  for (auto& buf : s.buffers) buf->head.store(0, std::memory_order_release);
  s.epoch_ns = detail::now_ns();
}

std::size_t trace_event_count() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::size_t total = 0;
  for (const auto& buf : s.buffers) {
    total += static_cast<std::size_t>(
        std::min<std::uint64_t>(buf->head.load(std::memory_order_acquire), kRingCapacity));
  }
  return total;
}

std::uint64_t trace_dropped() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::uint64_t dropped = 0;
  for (const auto& buf : s.buffers) {
    const std::uint64_t head = buf->head.load(std::memory_order_acquire);
    if (head > kRingCapacity) dropped += head - kRingCapacity;
  }
  return dropped;
}

const char* intern(std::string_view s) {
  TraceState& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  return st.interned.emplace(s).first->c_str();
}

std::size_t trace_ring_capacity() { return kRingCapacity; }

TraceContext current_trace_context() { return g_trace_ctx; }

void set_trace_context(TraceContext ctx) { g_trace_ctx = ctx; }

TraceContextScope::TraceContextScope(std::string_view request, std::string_view op,
                                     std::string_view session)
    : prev_(g_trace_ctx) {
  TraceContext ctx;
  ctx.request = intern(request);
  ctx.op = op.empty() ? nullptr : intern(op);
  ctx.session = session.empty() ? nullptr : intern(session);
  g_trace_ctx = ctx;
}

TraceContextScope::TraceContextScope(TraceContext adopted) : prev_(g_trace_ctx) {
  g_trace_ctx = adopted;
}

TraceContextScope::~TraceContextScope() { g_trace_ctx = prev_; }

std::string chrome_trace_json() {
  struct Flat {
    TraceEvent ev;
    std::uint32_t tid;
  };
  std::vector<Flat> flat;
  std::uint64_t epoch = 0;
  std::size_t thread_count = 0;
  {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    epoch = s.epoch_ns;
    thread_count = s.buffers.size();
    for (const auto& buf : s.buffers) {
      const std::uint64_t head = buf->head.load(std::memory_order_acquire);
      const std::uint64_t kept = std::min<std::uint64_t>(head, kRingCapacity);
      for (std::uint64_t i = head - kept; i < head; ++i) {
        flat.push_back({buf->events[i & kRingMask], buf->tid});
      }
    }
  }
  std::sort(flat.begin(), flat.end(), [](const Flat& a, const Flat& b) {
    if (a.ev.ts_ns != b.ev.ts_ns) return a.ev.ts_ns < b.ev.ts_ns;
    if (a.tid != b.tid) return a.tid < b.tid;
    return std::string_view(a.ev.name) < std::string_view(b.ev.name);
  });

  const auto us = [epoch](std::uint64_t ns) {
    return static_cast<double>(ns - std::min(ns, epoch)) / 1e3;
  };

  json::Value doc = json::Value::object();
  json::Value& events = doc["traceEvents"];
  events = json::Value::array();
  for (std::size_t t = 0; t < thread_count; ++t) {
    json::Value meta = json::Value::object();
    meta["name"] = "thread_name";
    meta["ph"] = "M";
    meta["pid"] = 1;
    meta["tid"] = t;
    meta["args"]["name"] = "dgr-thread-" + std::to_string(t);
    events.push_back(std::move(meta));
  }
  for (const Flat& f : flat) {
    json::Value ev = json::Value::object();
    ev["name"] = f.ev.name;
    ev["cat"] = "dgr";
    ev["ph"] = std::string(1, f.ev.phase);
    ev["pid"] = 1;
    ev["tid"] = static_cast<std::int64_t>(f.tid);
    ev["ts"] = us(f.ev.ts_ns);
    if (f.ev.phase == 'X') {
      ev["dur"] = static_cast<double>(f.ev.dur_ns) / 1e3;
    } else if (f.ev.phase == 'i') {
      ev["s"] = "t";  // thread-scoped instant
    } else if (f.ev.phase == 'C') {
      ev["args"]["value"] = f.ev.value;
    }
    if (f.ev.ctx.active()) {
      json::Value& args = ev["args"];
      args["req"] = f.ev.ctx.request;
      if (f.ev.ctx.op != nullptr) args["op"] = f.ev.ctx.op;
      if (f.ev.ctx.session != nullptr) args["session"] = f.ev.ctx.session;
    }
    events.push_back(std::move(ev));
  }
  doc["displayTimeUnit"] = "ms";
  return doc.dump(1);
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << chrome_trace_json() << "\n";
  return static_cast<bool>(out);
}

}  // namespace dgr::obs
