#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dgr::obs::json {

Value Value::array() {
  Value v;
  v.kind_ = Kind::kArray;
  return v;
}

Value Value::object() {
  Value v;
  v.kind_ = Kind::kObject;
  return v;
}

void Value::push_back(Value v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  items_.push_back(std::move(v));
}

Value& Value::operator[](std::string_view key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  for (auto& [k, v] : members_) {
    if (k == key) return v;
  }
  members_.emplace_back(std::string(key), Value());
  return members_.back().second;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::size_t Value::size() const {
  switch (kind_) {
    case Kind::kArray:
      return items_.size();
    case Kind::kObject:
      return members_.size();
    default:
      return 0;
  }
}

std::string format_number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no Inf/NaN
  constexpr double kMaxExact = 9007199254740992.0;  // 2^53
  if (v == std::floor(v) && std::fabs(v) <= kMaxExact) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  // Shortest form that round-trips: try increasing precision.
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Value::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  const auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      out += format_number(num_);
      break;
    case Kind::kString:
      out += '"';
      out += escape(str_);
      out += '"';
      break;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      if (!items_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        out += '"';
        out += escape(members_[i].first);
        out += pretty ? "\": " : "\":";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!members_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent parser over the full input.
class Parser {
 public:
  Parser(std::string_view text, std::string* error) : text_(text), error_(error) {}

  bool run(Value* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return true;
  }

 private:
  bool fail(const std::string& msg) {
    if (error_ != nullptr) {
      *error_ = msg + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(Value* out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      std::string s;
      if (!parse_string(&s)) return false;
      *out = Value(std::move(s));
      return true;
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      *out = Value(true);
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      *out = Value(false);
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      *out = Value();
      return true;
    }
    return parse_number(out);
  }

  bool parse_object(Value* out) {
    ++pos_;  // '{'
    *out = Value::object();
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':' in object");
      skip_ws();
      Value v;
      if (!parse_value(&v)) return false;
      (*out)[key] = std::move(v);
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(Value* out) {
    ++pos_;  // '['
    *out = Value::array();
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      skip_ws();
      Value v;
      if (!parse_value(&v)) return false;
      out->push_back(std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected string");
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // emitted by our writers; pass them through as-is).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Value* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(text_[pos_]))) digits = true;
      ++pos_;
    }
    if (!digits) return fail("expected value");
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("malformed number");
    *out = Value(v);
    return true;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Value::parse(std::string_view text, Value* out, std::string* error) {
  return Parser(text, error).run(out);
}

}  // namespace dgr::obs::json
