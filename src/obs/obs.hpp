#pragma once
/// \file
/// Umbrella header for the dgr::obs observability subsystem: span tracing
/// with Chrome trace_event export and request-scoped trace contexts, the
/// process-wide metrics registry with Prometheus text exposition, solver
/// convergence telemetry, and the unified bench emitter.
/// See DESIGN.md §8.

#include "obs/bench_emitter.hpp"
#include "obs/convergence.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
