#pragma once
/// \file
/// Process-wide metrics registry: named counters, gauges, and fixed-bucket
/// histograms with a deterministic JSON snapshot (DESIGN.md §8).
///
/// Handles returned by the registry are stable for the process lifetime, so
/// hot call sites hoist them once:
///
///   static obs::Counter& steps = obs::metrics().counter("core.train.iterations");
///   steps.add(n);
///
/// Determinism: counters and histogram buckets are integer accumulators
/// updated with relaxed atomics — totals are order-independent, so a
/// deterministic workload produces a byte-identical snapshot at any worker
/// count (the {1,2,4} matrix in obs_test locks this down). Histograms
/// deliberately do not keep a floating-point sum: cross-thread FP
/// accumulation is order-dependent and would break snapshot determinism.
/// Gauges are single-writer by convention (last set wins).
///
/// The registry is always compiled (it sits off the hot paths — per-stage,
/// not per-element); only the tracing macros are gated by DGR_OBS.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace dgr::obs {

/// Monotonic integer counter.
class Counter {
 public:
  void add(std::int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-set floating-point value (single writer).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations v with
/// bound[i-1] < v <= bound[i] (bucket 0: v <= bound[0]); one implicit
/// overflow bucket takes v > bound.back(). Bounds are fixed at creation.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  std::size_t bucket_count() const { return counts_.size(); }  ///< incl. overflow
  const std::vector<double>& bounds() const { return bounds_; }
  std::int64_t bucket(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  std::int64_t total_count() const;
  void reset();

 private:
  std::vector<double> bounds_;
  // vector<atomic> is legal here because the vector is sized once in the
  // constructor and never resized.
  std::vector<std::atomic<std::int64_t>> counts_;
};

class MetricsRegistry {
 public:
  /// Returns the named metric, creating it on first use. For histograms the
  /// bounds apply only at creation; later callers get the existing instance
  /// regardless of the bounds they pass. Thread-safe; the returned
  /// references stay valid for the process lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// Deterministic snapshot: metric names sorted lexicographically within
  /// each kind, canonical number formatting (obs::json).
  json::Value snapshot() const;
  std::string snapshot_json(int indent = 1) const;
  /// Writes snapshot_json to `path`; false on I/O failure.
  bool write_snapshot(const std::string& path) const;

  /// Zeroes every registered metric (handles stay valid). Test harness use.
  void reset();

 private:
  struct Impl;
  Impl& impl() const;
};

/// The process-wide registry.
MetricsRegistry& metrics();

}  // namespace dgr::obs
