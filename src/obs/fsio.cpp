#include "obs/fsio.hpp"

#include <cstdio>
#include <fstream>

namespace dgr::obs {

bool write_file_atomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace dgr::obs
