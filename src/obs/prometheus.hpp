#pragma once
/// \file
/// Prometheus text-exposition rendering of the metrics registry
/// (DESIGN.md §8). The renderer is a pure function of a metrics snapshot,
/// so everything the registry guarantees about snapshot determinism carries
/// over: a deterministic workload renders byte-identical exposition text at
/// any worker count, provided timing-derived series (latency histograms,
/// SLO gauges) are excluded via `exclude_prefixes`.
///
/// Name mangling (DESIGN.md §8 has the full table): registry names are
/// dotted (`serve.requests.offered`); Prometheus names are
/// `<prefix>_<name with every non-[A-Za-z0-9_] byte replaced by '_'>`, e.g.
/// `dgr_serve_requests_offered`. Histograms render in the standard
/// cumulative form — one `_bucket{le="..."}` series per bound plus
/// `le="+Inf"` and a `_count` — but no `_sum`: the registry deliberately
/// keeps no floating-point sum (cross-thread FP accumulation would break
/// snapshot determinism), and burn-rate math only needs bucket counts.

#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace dgr::obs {

struct PrometheusOptions {
  /// Prepended to every metric name (`<prefix>_...`). Must itself be a
  /// valid Prometheus name start; the default namespaces everything under
  /// the daemon.
  std::string prefix = "dgr";
  /// When non-empty, only registry names starting with one of these render.
  std::vector<std::string> include_prefixes;
  /// Registry names starting with one of these are dropped (applied after
  /// include_prefixes). Operators use this to carve timing-derived series
  /// out of byte-determinism comparisons.
  std::vector<std::string> exclude_prefixes;
};

/// Mangles one registry metric name into its Prometheus form.
std::string prometheus_name(std::string_view name, std::string_view prefix = "dgr");

/// Renders a `MetricsRegistry::snapshot()` document. Counters, then gauges,
/// then histograms, names in snapshot (= lexicographic) order; each series
/// is preceded by its `# TYPE` line.
std::string render_prometheus(const json::Value& snapshot,
                              const PrometheusOptions& options = {});

/// render_prometheus(metrics().snapshot(), options).
std::string prometheus_text(const PrometheusOptions& options = {});

/// Writes prometheus_text() to `path`; false on I/O failure.
bool write_prometheus(const std::string& path, const PrometheusOptions& options = {});

}  // namespace dgr::obs
