#include "obs/metrics.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

#include "obs/fsio.hpp"

namespace dgr::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  counts_ = std::vector<std::atomic<std::int64_t>>(bounds_.size() + 1);
}

void Histogram::observe(double v) {
  const std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  counts_[i].fetch_add(1, std::memory_order_relaxed);
}

std::int64_t Histogram::total_count() const {
  std::int64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  // Ordered maps: iteration order == snapshot order, no sort at snapshot.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl* instance = new Impl();  // leaked: usable during static dtors
  return *instance;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.counters.find(name);
  if (it == im.counters.end()) {
    it = im.counters.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.gauges.find(name);
  if (it == im.gauges.end()) {
    it = im.gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.histograms.find(name);
  if (it == im.histograms.end()) {
    it = im.histograms
             .emplace(std::string(name), std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

json::Value MetricsRegistry::snapshot() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  json::Value doc = json::Value::object();
  json::Value& counters = doc["counters"];
  counters = json::Value::object();
  for (const auto& [name, c] : im.counters) counters[name] = c->value();
  json::Value& gauges = doc["gauges"];
  gauges = json::Value::object();
  for (const auto& [name, g] : im.gauges) gauges[name] = g->value();
  json::Value& histograms = doc["histograms"];
  histograms = json::Value::object();
  for (const auto& [name, h] : im.histograms) {
    json::Value& entry = histograms[name];
    json::Value& bounds = entry["bounds"];
    bounds = json::Value::array();
    for (const double b : h->bounds()) bounds.push_back(b);
    json::Value& buckets = entry["buckets"];
    buckets = json::Value::array();
    for (std::size_t i = 0; i < h->bucket_count(); ++i) buckets.push_back(h->bucket(i));
    entry["count"] = h->total_count();
  }
  return doc;
}

std::string MetricsRegistry::snapshot_json(int indent) const {
  return snapshot().dump(indent);
}

bool MetricsRegistry::write_snapshot(const std::string& path) const {
  // Atomic publication: the serve exporter rewrites this file while
  // scrapers may be mid-read.
  return write_file_atomic(path, snapshot_json() + "\n");
}

void MetricsRegistry::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (auto& [name, c] : im.counters) c->reset();
  for (auto& [name, g] : im.gauges) g->reset();
  for (auto& [name, h] : im.histograms) h->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace dgr::obs
