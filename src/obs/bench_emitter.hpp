#pragma once
/// \file
/// The unified bench emitter: one writer and one schema ("dgr-bench-v1")
/// for every `BENCH_*.json` the harnesses drop (DESIGN.md §8).
///
/// Schema:
///   {
///     "schema": "dgr-bench-v1",
///     "bench": "<harness id>",            // file is BENCH_<bench>.json
///     "reproduces": "<paper table/figure>",
///     "hardware_threads": N,
///     "config": { <string|number> ... },  // scale, iterations, knobs
///     "rows": [
///       { "case": "<name>",
///         "metrics": { <number> ... },    // quality/runtime columns
///         "stages": { <number> ... },     // optional per-stage seconds
///         "notes": { <string> ... } }     // optional annotations
///     ],
///     "summary": { <number> ... }         // ratios, totals, speedups
///   }
///
/// `validate_bench_json` is the single source of truth for the schema —
/// the `check_bench_schema` tool and the obs tests both call it.

#include <cstddef>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace dgr::obs {

class BenchEmitter;

/// One table row under construction; methods chain.
class BenchRow {
 public:
  BenchRow& metric(std::string name, double value);
  BenchRow& stage(std::string name, double seconds);
  BenchRow& note(std::string name, std::string value);
  /// Convenience: one metric() call per (name, value) pair — the shape of
  /// RouterStats::counters and RouterStats-style stage lists.
  BenchRow& metrics(const std::vector<std::pair<std::string, double>>& pairs);
  BenchRow& stages(const std::vector<std::pair<std::string, double>>& pairs);

 private:
  friend class BenchEmitter;
  explicit BenchRow(std::string case_name) : case_(std::move(case_name)) {}
  std::string case_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::pair<std::string, double>> stages_;
  std::vector<std::pair<std::string, std::string>> notes_;
};

class BenchEmitter {
 public:
  static constexpr const char* kSchemaId = "dgr-bench-v1";

  /// `bench` names the harness (default output path BENCH_<bench>.json);
  /// `reproduces` cites the paper artifact the harness reproduces.
  BenchEmitter(std::string bench, std::string reproduces);

  void set_config(const std::string& key, double value);
  void set_config(const std::string& key, std::string value);

  /// Appends a row; the reference stays valid for the emitter's lifetime.
  BenchRow& add_row(std::string case_name);

  void summary(const std::string& name, double value);

  json::Value to_json() const;
  std::string default_path() const { return "BENCH_" + bench_ + ".json"; }
  /// Writes to `path` (default_path() when empty). Returns false on I/O
  /// failure. Logs the destination at info level.
  bool write(const std::string& path = "") const;

 private:
  std::string bench_;
  std::string reproduces_;
  json::Value config_ = json::Value::object();
  std::deque<BenchRow> rows_;  // deque: stable references across add_row
  std::vector<std::pair<std::string, double>> summary_;
};

/// Validates `doc` against the dgr-bench-v1 schema. On failure returns
/// false and describes the first violation in *error (when non-null).
bool validate_bench_json(const json::Value& doc, std::string* error = nullptr);

}  // namespace dgr::obs
