#pragma once
/// \file
/// dgr::eco — incremental (ECO) rerouting on top of the unified pipeline.
///
/// A routed design rarely stays routed: pins move, nets appear and
/// disappear, obstacles drop in, net classes get re-prioritised. Rerouting
/// the whole design for every such Engineering Change Order wastes orders
/// of magnitude of work when only a few percent of nets are affected. The
/// EcoEngine keeps the previous solution live and, per mutation:
///
///   1. applies the mutation to its DesignState (design/mutate.hpp),
///   2. computes the affected-net closure — the mutation's direct targets,
///      plus every surviving net whose route crosses an edge the mutation
///      made overflowed (legality closure, run to fixpoint), plus nets
///      whose pin bounding box covers a substantially capacity-increased
///      edge (opportunity closure, so freed regions get re-used),
///   3. uncommits exactly the closure from the live demand
///      (DemandMap commit/uncommit),
///   4. re-routes the closure through any registered router on a delta
///      sub-design whose capacities are the residuals left by the clean
///      nets, warm-started from the previous routes where the router
///      supports it, heaviest net classes first,
///   5. merges, re-validates through the pipeline's post-route gate, and
///      commits the new state transactionally.
///
/// When the closure exceeds EcoOptions::full_reroute_threshold of the
/// routable nets, the engine falls back to a from-scratch Pipeline::run —
/// delta routing a mostly-dirty design costs more than it saves.
///
/// Determinism contract: with a fixed (state seed, mutation sequence,
/// router, options), apply() is bitwise-deterministic across worker counts
/// — the closure and merge are serial and the registered routers carry the
/// PR 1 determinism contract. Failure contract: apply() is transactional —
/// on any error (including injected faults at the `eco.closure` and
/// `eco.recommit` sites) the pre-mutation design, solution, and demand are
/// untouched.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "design/mutate.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/registry.hpp"
#include "util/status.hpp"
#include "util/timer.hpp"

namespace dgr::eco {

struct EcoOptions {
  /// Context parameters shared by full and delta routing (seed, via model,
  /// Eq. 1 beta, optional explicit base capacities before blockages).
  pipeline::ContextOptions context;
  /// Registry name of the router used for both delta and full reroutes.
  std::string router = "cugr2-lite";
  pipeline::RouterOptions router_options;
  /// Dirty fraction (closure / routable nets) above which apply() abandons
  /// delta routing and re-routes from scratch.
  double full_reroute_threshold = 0.35;
  /// Seed the delta router from the previous routes of closure nets whose
  /// pins did not change (routers without warm-start support route cold).
  bool warm_start_delta = true;
  /// Run the PR 3 validation gate (geometry + connectivity + demand
  /// accounting, with maze repair) on every merged solution.
  bool validate = true;
  /// Capacity-increase threshold (in tracks) for the opportunity closure;
  /// below it a change is considered noise (e.g. Eq. 1 pin-density drift).
  float opportunity_min_gain = 0.5f;
};

/// Per-apply bookkeeping, the ECO analogue of RouterStats.
struct EcoStats {
  std::size_t seed_dirty = 0;     ///< nets named by the mutation itself
  std::size_t closure_dirty = 0;  ///< after legality + opportunity closure
  std::size_t routable_nets = 0;  ///< routable nets in the mutated design
  double dirty_fraction = 0.0;    ///< closure_dirty / routable_nets
  int closure_rounds = 0;         ///< legality fixpoint iterations
  bool full_reroute = false;      ///< fell back to a from-scratch route
  double closure_seconds = 0.0;
  double route_seconds = 0.0;     ///< delta (or full) routing time
  double merge_seconds = 0.0;     ///< merge + validate + eval time
  double total_seconds = 0.0;
  std::int64_t repaired_nets = 0; ///< nets rebuilt by the validation gate
};

/// Everything one apply() reports. The solution itself lives in the engine
/// (EcoEngine::solution()) so sequences do not copy it per step.
struct EcoResult {
  eval::Metrics metrics;
  double weighted_overflow = 0.0;
  std::int64_t nets_with_overflow = 0;
  pipeline::ValidationReport validation;
  pipeline::RouterStats router_stats;  ///< delta or full route stage stats
  EcoStats stats;
};

class EcoEngine {
 public:
  explicit EcoEngine(design::DesignState base, EcoOptions options = {});
  ~EcoEngine();
  EcoEngine(const EcoEngine&) = delete;
  EcoEngine& operator=(const EcoEngine&) = delete;

  /// Establishes the baseline: a cold Pipeline::run of the configured
  /// router on the current design. Must be called (or adopt()) before
  /// apply().
  Result<EcoResult> route_full();

  /// Adopts `solution` (indexed like the current design) as the baseline
  /// instead of routing; kInvalidArgument when the shape does not match.
  Status adopt(const eval::RouteSolution& solution);

  /// Applies one mutation transactionally: mutate, close, delta-or-full
  /// reroute, merge, validate, commit. On failure the engine state is
  /// byte-for-byte the pre-mutation state.
  Result<EcoResult> apply(const design::Mutation& mutation);

  const design::DesignState& state() const { return *state_; }
  const design::Design& design() const { return state_->design; }
  /// Current solution; valid after a successful route_full()/adopt().
  const eval::RouteSolution& solution() const { return solution_; }
  bool has_solution() const { return solution_.design != nullptr; }
  /// Current capacities (base with blockages applied).
  const std::vector<float>& capacities() const { return capacities_; }
  /// Mutations successfully applied since construction.
  std::int64_t applied() const { return applied_; }

 private:
  std::vector<float> compute_capacities(const design::DesignState& state) const;
  Result<EcoResult> full_reroute(std::unique_ptr<design::DesignState> next,
                                 std::vector<float> cap, EcoStats stats,
                                 util::Timer& total);
  /// Evaluates + validates `merged` against `cap`, then commits the new
  /// (state, capacities, solution) into the engine. Hosts the
  /// `eco.recommit` fault site: a fault here aborts before any member is
  /// touched, so both the delta and full-reroute paths roll back cleanly.
  Result<EcoResult> finalize(std::unique_ptr<design::DesignState> next,
                             std::vector<float> cap, eval::RouteSolution merged,
                             pipeline::RouterStats router_stats, EcoStats stats,
                             util::Timer& total);

  EcoOptions options_;
  std::unique_ptr<design::DesignState> state_;  // stable Design address
  std::vector<float> capacities_;
  eval::RouteSolution solution_;
  std::int64_t applied_ = 0;
};

}  // namespace dgr::eco
