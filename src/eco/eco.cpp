#include "eco/eco.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/validate.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace dgr::eco {

namespace {

constexpr double kOverflowEps = 1e-6;
constexpr int kMaxClosureRounds = 8;

/// Demand tolerance below which a capacity change is considered unchanged.
constexpr float kCapEps = 1e-4f;

}  // namespace

EcoEngine::EcoEngine(design::DesignState base, EcoOptions options)
    : options_(std::move(options)),
      state_(std::make_unique<design::DesignState>(std::move(base))) {
  // Harden hand-built states: the classing vectors must parallel the nets.
  state_->net_class.resize(state_->design.net_count(), 0);
  if (state_->class_weight.empty()) state_->class_weight = {1.0f};
  capacities_ = compute_capacities(*state_);
}

EcoEngine::~EcoEngine() = default;

std::vector<float> EcoEngine::compute_capacities(const design::DesignState& state) const {
  return state.capacities(options_.context.capacity_beta, options_.context.capacities);
}

Result<EcoResult> EcoEngine::route_full() {
  util::Timer total;
  EcoStats stats;
  stats.routable_nets = state_->design.routable_nets().size();
  stats.seed_dirty = stats.closure_dirty = stats.routable_nets;
  stats.dirty_fraction = 1.0;
  auto next = std::make_unique<design::DesignState>(*state_);
  return full_reroute(std::move(next), capacities_, stats, total);
}

Status EcoEngine::adopt(const eval::RouteSolution& solution) {
  if (solution.design == nullptr) {
    return Status(StatusCode::kInvalidArgument, "eco: adopt of an empty solution");
  }
  if (solution.design->net_count() != state_->design.net_count() ||
      solution.nets.size() != state_->design.routable_nets().size()) {
    return Status(StatusCode::kInvalidArgument,
                  "eco: adopted solution does not match the design shape");
  }
  eval::RouteSolution local;
  local.design = &state_->design;
  local.nets.reserve(solution.nets.size());
  for (const eval::NetRoute& net : solution.nets) {
    if (net.design_net >= state_->design.net_count()) {
      return Status(StatusCode::kInvalidArgument, "eco: adopted net index out of range");
    }
    local.nets.push_back({net.design_net, net.paths});
  }
  solution_ = std::move(local);
  return Status();
}

Result<EcoResult> EcoEngine::apply(const design::Mutation& mutation) {
  DGR_TRACE_SCOPE("eco.apply");
  obs::metrics().counter("eco.applies").add(1);
  if (!has_solution()) {
    return Status(StatusCode::kInvalidArgument,
                  "eco: apply() before route_full()/adopt()");
  }
  util::Timer total;
  EcoStats stats;

  // ---- 1. mutate a private copy of the state ------------------------------
  auto next = std::make_unique<design::DesignState>(*state_);
  Result<design::MutationEffect> applied = design::apply_mutation(*next, mutation);
  if (!applied.ok()) return applied.status();
  const design::MutationEffect effect = applied.take();
  stats.seed_dirty = effect.dirty.size();

  const design::Design& nd = next->design;
  const grid::GCellGrid& grid = nd.grid();
  const float via_beta = options_.context.via_beta;
  const std::size_t net_count = nd.net_count();
  stats.routable_nets = nd.routable_nets().size();
  std::vector<float> cap = compute_capacities(*next);
  const std::vector<float>& cap_old = capacities_;

  // ---- 2. affected-net closure --------------------------------------------
  util::Timer closure_timer;
  if (DGR_FAULT_POINT("eco.closure")) {
    return Status(StatusCode::kFaultInjected, "injected eco closure fault");
  }
  eval::RouteSolution merged;
  std::vector<const eval::NetRoute*> prior_route(net_count, nullptr);
  std::vector<std::ptrdiff_t> new_to_old(net_count, -1);
  {
    DGR_TRACE_SCOPE("eco.closure");
    for (std::size_t old = 0; old < effect.old_to_new.size(); ++old) {
      const std::ptrdiff_t idx = effect.old_to_new[old];
      if (idx >= 0) new_to_old[static_cast<std::size_t>(idx)] =
          static_cast<std::ptrdiff_t>(old);
    }
    for (const eval::NetRoute& net : solution_.nets) {
      const std::ptrdiff_t idx = effect.old_to_new[net.design_net];
      if (idx >= 0) prior_route[static_cast<std::size_t>(idx)] = &net;
    }
  }
  std::vector<char> dirty(net_count, 0);
  for (const std::size_t idx : effect.dirty) dirty[idx] = 1;

  // Live demand of the surviving clean routes (dirty geometry is stale —
  // moved pins — or about to be rerouted, so it never enters the map).
  grid::DemandMap demand(grid);
  for (std::size_t idx = 0; idx < net_count; ++idx) {
    if (prior_route[idx] != nullptr && !dirty[idx]) {
      eval::RouteSolution::apply_net(demand, nd, *prior_route[idx], via_beta, +1.0);
    }
  }

  {
    DGR_TRACE_SCOPE("eco.closure");
    // Legality closure, run to fixpoint: a clean net joins when its route
    // crosses an edge the mutation made *newly* overflowed — capacity
    // decreased, the surviving clean demand exceeds the new capacity, and
    // it did not exceed the old one. Pre-existing congestion (overflowed
    // under both capacity sets) stays the clean nets' business: ripping it
    // up would turn every ECO into a global rip-up-and-reroute.
    bool changed = true;
    while (changed && stats.closure_rounds < kMaxClosureRounds) {
      ++stats.closure_rounds;
      changed = false;
      std::vector<std::size_t> round;  // snapshot semantics: order-fair
      for (std::size_t idx = 0; idx < net_count; ++idx) {
        if (dirty[idx] || prior_route[idx] == nullptr) continue;
        bool hit = false;
        for (const dag::PatternPath& path : prior_route[idx]->paths) {
          for (const grid::EdgeId e : path.edges(grid)) {
            const auto ei = static_cast<std::size_t>(e);
            const double d = demand.demand(e);
            if (cap[ei] < cap_old[ei] - kCapEps && d > cap[ei] + kOverflowEps &&
                d <= cap_old[ei] + kOverflowEps) {
              hit = true;
              break;
            }
          }
          if (hit) break;
        }
        if (hit) round.push_back(idx);
      }
      for (const std::size_t idx : round) {
        dirty[idx] = 1;
        eval::RouteSolution::apply_net(demand, nd, *prior_route[idx], via_beta, -1.0);
        changed = true;
      }
    }

    // Opportunity closure: a substantial capacity gain (a lifted or moved
    // blockage) invites nets whose pin box spans the freed edges to re-route
    // through the region. One pass; no fixpoint needed (uncommits only).
    std::vector<grid::EdgeId> freed;
    for (grid::EdgeId e = 0; e < grid.edge_count(); ++e) {
      const auto ei = static_cast<std::size_t>(e);
      if (cap[ei] > cap_old[ei] + options_.opportunity_min_gain) freed.push_back(e);
    }
    if (!freed.empty()) {
      for (const std::size_t idx : nd.routable_nets()) {
        if (dirty[idx] || prior_route[idx] == nullptr) continue;
        const geom::Rect box = geom::Rect::bounding_box(nd.net(idx).pins);
        for (const grid::EdgeId e : freed) {
          const auto [a, b] = grid.edge_cells(e);
          if (box.contains(a) && box.contains(b)) {
            dirty[idx] = 1;
            eval::RouteSolution::apply_net(demand, nd, *prior_route[idx], via_beta, -1.0);
            break;
          }
        }
      }
    }
  }

  std::vector<std::size_t> delta;  // routable closure, rerouted below
  for (const std::size_t idx : nd.routable_nets()) {
    if (dirty[idx]) delta.push_back(idx);
  }
  stats.closure_dirty = delta.size();
  stats.dirty_fraction =
      stats.routable_nets == 0
          ? 0.0
          : static_cast<double>(delta.size()) / static_cast<double>(stats.routable_nets);
  stats.closure_seconds = closure_timer.seconds();
  obs::metrics().counter("eco.dirty_nets").add(static_cast<std::int64_t>(delta.size()));

  // ---- 3. dirty-fraction fallback -----------------------------------------
  if (stats.dirty_fraction > options_.full_reroute_threshold) {
    DGR_LOG_INFO("eco: closure %.0f%% of nets > threshold %.0f%%; full reroute",
                 100.0 * stats.dirty_fraction, 100.0 * options_.full_reroute_threshold);
    return full_reroute(std::move(next), std::move(cap), stats, total);
  }

  // ---- 4. delta route through the registry --------------------------------
  pipeline::RouterStats router_stats;
  eval::RouteSolution delta_solution;
  design::Design sub_design;
  if (!delta.empty()) {
    DGR_TRACE_SCOPE("eco.delta_route");
    // Heaviest (timing-critical) classes route first; index order breaks
    // ties so the sub-design is a pure function of the closure.
    std::stable_sort(delta.begin(), delta.end(),
                     [&](std::size_t a, std::size_t b) {
                       const float wa = next->net_weight(a);
                       const float wb = next->net_weight(b);
                       if (wa != wb) return wa > wb;
                       return a < b;
                     });
    std::vector<design::Net> sub_nets;
    sub_nets.reserve(delta.size());
    for (const std::size_t idx : delta) sub_nets.push_back(nd.net(idx));
    sub_design = design::Design("eco_delta", grid, std::move(sub_nets));

    // The sub-problem's capacities are the residuals the clean nets leave.
    std::vector<float> residual(cap);
    for (std::size_t ei = 0; ei < residual.size(); ++ei) {
      residual[ei] = std::max(
          0.0f, residual[ei] - static_cast<float>(
                                   demand.demand(static_cast<grid::EdgeId>(ei))));
    }
    pipeline::ContextOptions copts = options_.context;
    copts.capacities = std::move(residual);
    // Per-apply deterministic stream: repeated ECOs draw fresh noise.
    copts.seed = options_.context.seed + static_cast<std::uint64_t>(applied_) + 1;
    pipeline::RoutingContext subctx(sub_design, copts);

    if (options_.warm_start_delta) {
      // Previous routes of closure nets whose pins did not change are valid
      // geometry; routers with warm-start support resume from them.
      eval::RouteSolution warm;
      warm.design = &sub_design;
      for (std::size_t k = 0; k < delta.size(); ++k) {
        const std::size_t idx = delta[k];
        const std::ptrdiff_t old = new_to_old[idx];
        if (old < 0 || prior_route[idx] == nullptr) continue;
        if (nd.net(idx).pins !=
            solution_.design->net(static_cast<std::size_t>(old)).pins) {
          continue;
        }
        warm.nets.push_back({k, prior_route[idx]->paths});
      }
      if (!warm.nets.empty()) subctx.set_warm_start(std::move(warm));
    }

    const std::unique_ptr<pipeline::Router> router =
        pipeline::make_router(options_.router, options_.router_options);
    if (router == nullptr) {
      return Status(StatusCode::kNotFound,
                    "eco: no router registered under '" + options_.router + "'");
    }
    util::Timer route_timer;
    try {
      delta_solution = router->route(subctx);
    } catch (const std::exception& e) {
      return Status(StatusCode::kInternal,
                    "eco: delta route failed: " + std::string(e.what()));
    }
    stats.route_seconds = route_timer.seconds();
    router_stats = router->stats();
    if (!router_stats.status.ok()) return router_stats.status;
  }

  // ---- 5. merge ------------------------------------------------------------
  merged.design = &nd;
  std::vector<const std::vector<dag::PatternPath>*> route_of(net_count, nullptr);
  for (const std::size_t idx : nd.routable_nets()) {
    if (!dirty[idx] && prior_route[idx] != nullptr) {
      route_of[idx] = &prior_route[idx]->paths;
    }
  }
  for (const eval::NetRoute& net : delta_solution.nets) {
    if (net.design_net < delta.size()) {
      route_of[delta[net.design_net]] = &net.paths;
    }
  }
  for (const std::size_t idx : nd.routable_nets()) {
    // A dropped net becomes an empty route the validation gate rebuilds.
    merged.nets.push_back(
        {idx, route_of[idx] != nullptr ? *route_of[idx]
                                       : std::vector<dag::PatternPath>{}});
  }
  return finalize(std::move(next), std::move(cap), std::move(merged),
                  std::move(router_stats), std::move(stats), total);
}

Result<EcoResult> EcoEngine::full_reroute(std::unique_ptr<design::DesignState> next,
                                          std::vector<float> cap, EcoStats stats,
                                          util::Timer& total) {
  DGR_TRACE_SCOPE("eco.full_reroute");
  obs::metrics().counter("eco.full_reroutes").add(1);
  stats.full_reroute = true;
  pipeline::ContextOptions copts = options_.context;
  copts.capacities = cap;
  pipeline::RoutingContext ctx(next->design, copts);
  pipeline::PipelineOptions popts;
  popts.validate = false;  // finalize() runs the single validation gate
  pipeline::Pipeline pipe(ctx, popts);
  util::Timer route_timer;
  pipeline::PipelineResult result =
      pipe.run(options_.router, options_.router_options,
               pipeline::StagePlan{.maze_refine = false, .layer_assign = false});
  stats.route_seconds = route_timer.seconds();
  if (result.solution.design == nullptr) {
    // Nothing routable came back (unknown router, un-degradable failure):
    // surface the typed status, keep the pre-mutation state.
    return result.stats.status.ok()
               ? Status(StatusCode::kInternal, "eco: full reroute returned no solution")
               : result.stats.status;
  }
  // Re-home the solution onto the state the engine is about to commit.
  eval::RouteSolution merged;
  merged.design = &next->design;
  merged.nets = std::move(result.solution.nets);
  return finalize(std::move(next), std::move(cap), std::move(merged),
                  std::move(result.stats), std::move(stats), total);
}

Result<EcoResult> EcoEngine::finalize(std::unique_ptr<design::DesignState> next,
                                      std::vector<float> cap,
                                      eval::RouteSolution merged,
                                      pipeline::RouterStats router_stats,
                                      EcoStats stats, util::Timer& total) {
  DGR_TRACE_SCOPE("eco.merge");
  if (DGR_FAULT_POINT("eco.recommit")) {
    // Fires before any member mutation: the engine still holds the
    // pre-mutation state, capacities, and solution.
    return Status(StatusCode::kFaultInjected, "injected eco recommit fault");
  }
  util::Timer merge_timer;
  EcoResult result;
  result.router_stats = std::move(router_stats);

  pipeline::ContextOptions copts = options_.context;
  copts.capacities = cap;
  pipeline::RoutingContext ctx(next->design, copts);
  ctx.reset_demand();
  ctx.commit(merged);
  if (options_.validate) {
    result.validation = pipeline::validate_solution(ctx, merged);
    if (!result.validation.demand_consistent) {
      ctx.reset_demand();
      ctx.commit(merged);
    }
    if (!result.validation.broken_nets.empty()) {
      post::MazeRefineOptions ropts;
      ropts.via_beta = ctx.via_beta();
      stats.repaired_nets = pipeline::repair_broken_nets(
          ctx, merged, result.validation.broken_nets, ropts);
      result.validation = pipeline::validate_solution(ctx, merged);
    }
  }
  result.metrics = ctx.evaluate(merged);
  result.weighted_overflow = ctx.weighted_overflow(merged);
  result.nets_with_overflow = ctx.nets_with_overflow(merged);

  stats.merge_seconds = merge_timer.seconds();
  stats.total_seconds = total.seconds();
  result.stats = stats;

  // ---- transactional commit ------------------------------------------------
  state_ = std::move(next);
  capacities_ = std::move(cap);
  solution_ = std::move(merged);
  ++applied_;
  return result;
}

}  // namespace dgr::eco
