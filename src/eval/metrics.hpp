#pragma once
/// \file
/// \brief Routing quality metrics matching the paper's reporting:
///   Tables 2/3: # g-cell edges with overflow, total wirelength, # vias;
///   Fig. 6:     weighted overflow = 10*n1 + 1000*n2 + 10000*peak_overflow;
///   Table 1:    Σ_e ReLU(d_e - cap_e).

#include <cstdint>

#include "eval/solution.hpp"

namespace dgr::eval {

struct Metrics {
  std::int64_t overflow_edges = 0;  ///< edges with d > cap after 2D routing
  double total_overflow = 0.0;      ///< Σ max(0, d - cap)
  double peak_overflow = 0.0;       ///< max single-edge overflow
  std::int64_t wirelength = 0;      ///< total 2D wirelength
  std::int64_t bends = 0;           ///< turning points (via proxy before 3D)
};

/// Metrics of a 2D solution against per-edge capacities. `via_beta` matches
/// the demand model used during optimisation.
Metrics compute_metrics(const RouteSolution& sol, const std::vector<float>& capacities,
                        float via_beta = 0.5f);

/// Fig. 6 y-axis: 10*n1 + 1000*n2 + 10000*peak, where n1 = # nets crossing
/// an overflowed edge (stand-in for "nets with overflow after layer
/// assignment" when no 3D pass ran), n2 = # overflowed edges.
double weighted_overflow(const RouteSolution& sol, const std::vector<float>& capacities,
                         float via_beta = 0.5f);

/// # nets that touch at least one overflowed edge.
std::int64_t nets_with_overflow(const RouteSolution& sol,
                                const std::vector<float>& capacities,
                                float via_beta = 0.5f);

}  // namespace dgr::eval
