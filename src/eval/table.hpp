#pragma once
// Aligned ASCII table printer used by the bench harnesses to emit the same
// rows the paper's tables report.

#include <ostream>
#include <string>
#include <vector>

namespace dgr::eval {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Adds a horizontal separator before the next row (e.g. before "Ratio").
  void add_separator();
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

// Formatting helpers.
std::string fmt_int(std::int64_t v);
std::string fmt_double(double v, int digits = 2);
/// "N/A" when the flag is false (ILP timeout rows of Table 1).
std::string fmt_or_na(bool available, double v, int digits = 2);
std::string fmt_ratio(double v, int digits = 4);

}  // namespace dgr::eval
