#pragma once
/// \file
/// \brief 2D routing solutions: the common output format of DGR and every
/// baseline router in this repo, and the input to layer assignment / maze
/// refinement.

#include <vector>

#include "dag/path.hpp"
#include "design/design.hpp"

namespace dgr::eval {

/// One net's routed 2D geometry: pattern paths covering its tree edges.
struct NetRoute {
  std::size_t design_net = 0;  ///< index into design.nets()
  std::vector<dag::PatternPath> paths;
};

struct RouteSolution {
  const design::Design* design = nullptr;
  std::vector<NetRoute> nets;  ///< one entry per routed (routable) net

  /// Accumulates demand for all paths: weight 1 per wire crossing plus
  /// via_beta/2 on both edges at each bend (same model as the DAG forest).
  grid::DemandMap demand(float via_beta = 0.5f) const;

  /// Adds/removes a single net's contribution (rip-up & reroute support).
  static void apply_net(grid::DemandMap& dm, const design::Design& design,
                        const NetRoute& net, float via_beta, double sign);

  /// Total wirelength (sum of path lengths) and bend count.
  std::int64_t total_wirelength() const;
  std::int64_t total_bends() const;

  /// Validity: every net's paths form a connected subgraph of the grid that
  /// touches all of the net's pins.
  bool connects_all_pins() const;
};

}  // namespace dgr::eval
