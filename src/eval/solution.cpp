#include "eval/solution.hpp"

#include <functional>
#include <map>

namespace dgr::eval {

using dag::PatternPath;
using geom::Point;
using grid::DemandMap;
using grid::EdgeId;

void RouteSolution::apply_net(DemandMap& dm, const design::Design& design,
                              const NetRoute& net, float via_beta, double sign) {
  const auto& grid = design.grid();
  for (const PatternPath& path : net.paths) {
    const std::vector<EdgeId> edges = path.edges(grid);
    for (const EdgeId e : edges) dm.add(e, sign);
    if (via_beta > 0.0f) {
      // Mirror the forest's via-charge placement: beta/2 on the edge
      // entering and the edge leaving each bend.
      std::size_t cursor = 0;
      for (std::size_t leg = 0; leg + 1 < path.waypoints.size(); ++leg) {
        cursor += static_cast<std::size_t>(
            geom::manhattan(path.waypoints[leg], path.waypoints[leg + 1]));
        if (leg + 2 < path.waypoints.size() && cursor > 0) {
          dm.add(edges[cursor - 1], sign * via_beta * 0.5);
          if (cursor < edges.size()) dm.add(edges[cursor], sign * via_beta * 0.5);
        }
      }
    }
  }
}

DemandMap RouteSolution::demand(float via_beta) const {
  DemandMap dm(design->grid());
  for (const NetRoute& net : nets) apply_net(dm, *design, net, via_beta, +1.0);
  return dm;
}

std::int64_t RouteSolution::total_wirelength() const {
  std::int64_t total = 0;
  for (const NetRoute& net : nets) {
    for (const PatternPath& path : net.paths) total += path.length();
  }
  return total;
}

std::int64_t RouteSolution::total_bends() const {
  std::int64_t total = 0;
  for (const NetRoute& net : nets) {
    for (const PatternPath& path : net.paths) {
      total += static_cast<std::int64_t>(path.bend_count());
    }
  }
  return total;
}

bool RouteSolution::connects_all_pins() const {
  for (const NetRoute& net : nets) {
    const auto& pins = design->net(net.design_net).pins;
    // Union-find over every g-cell the net's paths touch.
    std::map<Point, int> id_of;
    std::vector<int> parent;
    auto node = [&](const Point& p) {
      auto [it, inserted] = id_of.emplace(p, static_cast<int>(parent.size()));
      if (inserted) parent.push_back(it->second);
      return it->second;
    };
    std::function<int(int)> find = [&](int x) {
      return parent[static_cast<std::size_t>(x)] == x
                 ? x
                 : parent[static_cast<std::size_t>(x)] =
                       find(parent[static_cast<std::size_t>(x)]);
    };
    auto unite = [&](int a, int b) {
      parent[static_cast<std::size_t>(find(a))] = find(b);
    };
    for (const PatternPath& path : net.paths) {
      int prev = -1;
      // Walk the polyline cell by cell, uniting consecutive cells.
      for (std::size_t leg = 0; leg + 1 < path.waypoints.size(); ++leg) {
        Point cur = path.waypoints[leg];
        const Point dst = path.waypoints[leg + 1];
        const int dx = dst.x > cur.x ? 1 : (dst.x < cur.x ? -1 : 0);
        const int dy = dst.y > cur.y ? 1 : (dst.y < cur.y ? -1 : 0);
        for (;;) {
          const int cell = node(cur);
          if (prev >= 0) unite(prev, cell);
          prev = cell;
          if (cur == dst) break;
          cur = Point{static_cast<geom::Coord>(cur.x + dx),
                      static_cast<geom::Coord>(cur.y + dy)};
        }
      }
      if (path.waypoints.size() == 2 && path.waypoints[0] == path.waypoints[1]) {
        node(path.waypoints[0]);  // degenerate path still claims its cell
      }
    }
    if (id_of.empty()) {
      if (pins.size() > 1) return false;
      continue;
    }
    int root = -1;
    for (const Point& pin : pins) {
      auto it = id_of.find(pin);
      if (it == id_of.end()) return false;  // pin not covered
      const int r = find(it->second);
      if (root == -1) root = r;
      if (r != root) return false;  // disconnected component
    }
  }
  return true;
}

}  // namespace dgr::eval
