#include "eval/table.hpp"

#include <algorithm>
#include <cstdio>

namespace dgr::eval {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::add_separator() { rows_.emplace_back(); }

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  auto print_sep = [&] {
    os << "+";
    for (const std::size_t w : width) os << std::string(w + 2, '-') << "+";
    os << "\n";
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string();
      os << " " << s << std::string(width[c] - s.size(), ' ') << " |";
    }
    os << "\n";
  };
  print_sep();
  print_cells(headers_);
  print_sep();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_sep();
    } else {
      print_cells(row);
    }
  }
  print_sep();
}

std::string fmt_int(std::int64_t v) { return std::to_string(v); }

std::string fmt_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string fmt_or_na(bool available, double v, int digits) {
  return available ? fmt_double(v, digits) : "N/A";
}

std::string fmt_ratio(double v, int digits) { return fmt_double(v, digits); }

}  // namespace dgr::eval
