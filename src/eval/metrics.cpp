#include "eval/metrics.hpp"

namespace dgr::eval {

Metrics compute_metrics(const RouteSolution& sol, const std::vector<float>& capacities,
                        float via_beta) {
  Metrics m;
  const grid::DemandMap dm = sol.demand(via_beta);
  m.overflow_edges = dm.overflowed_edge_count(capacities);
  m.total_overflow = dm.total_overflow(capacities);
  m.peak_overflow = dm.peak_overflow(capacities);
  m.wirelength = sol.total_wirelength();
  m.bends = sol.total_bends();
  return m;
}

std::int64_t nets_with_overflow(const RouteSolution& sol,
                                const std::vector<float>& capacities, float via_beta) {
  const grid::DemandMap dm = sol.demand(via_beta);
  const auto& grid = sol.design->grid();
  std::int64_t count = 0;
  for (const NetRoute& net : sol.nets) {
    bool over = false;
    for (const dag::PatternPath& path : net.paths) {
      for (const grid::EdgeId e : path.edges(grid)) {
        if (dm.demand(e) > capacities[static_cast<std::size_t>(e)] + 1e-6) {
          over = true;
          break;
        }
      }
      if (over) break;
    }
    if (over) ++count;
  }
  return count;
}

double weighted_overflow(const RouteSolution& sol, const std::vector<float>& capacities,
                         float via_beta) {
  const Metrics m = compute_metrics(sol, capacities, via_beta);
  const std::int64_t n1 = nets_with_overflow(sol, capacities, via_beta);
  return 10.0 * static_cast<double>(n1) + 1000.0 * static_cast<double>(m.overflow_edges) +
         10000.0 * m.peak_overflow;
}

}  // namespace dgr::eval
