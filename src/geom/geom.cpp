#include "geom/geom.hpp"

#include <set>

namespace dgr::geom {

std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << "," << p.y << ")";
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << "[" << r.lo << ".." << r.hi << "]";
}

Rect Rect::bounding_box(const std::vector<Point>& pts) {
  Rect r;
  if (pts.empty()) return r;
  r.lo = r.hi = pts.front();
  for (const Point& p : pts) {
    r.lo.x = std::min(r.lo.x, p.x);
    r.lo.y = std::min(r.lo.y, p.y);
    r.hi.x = std::max(r.hi.x, p.x);
    r.hi.y = std::max(r.hi.y, p.y);
  }
  return r;
}

HananGrid HananGrid::from_points(const std::vector<Point>& pts) {
  HananGrid g;
  g.xs.reserve(pts.size());
  g.ys.reserve(pts.size());
  for (const Point& p : pts) {
    g.xs.push_back(p.x);
    g.ys.push_back(p.y);
  }
  std::sort(g.xs.begin(), g.xs.end());
  g.xs.erase(std::unique(g.xs.begin(), g.xs.end()), g.xs.end());
  std::sort(g.ys.begin(), g.ys.end());
  g.ys.erase(std::unique(g.ys.begin(), g.ys.end()), g.ys.end());
  return g;
}

std::vector<Point> dedupe_points(std::vector<Point> pts) {
  std::set<Point> seen;
  std::vector<Point> out;
  out.reserve(pts.size());
  for (const Point& p : pts) {
    if (seen.insert(p).second) out.push_back(p);
  }
  return out;
}

}  // namespace dgr::geom
