#pragma once
// Integer rectilinear geometry on the g-cell grid.
//
// Coordinates are g-cell indices (column x, row y). All routing geometry in
// this library is rectilinear, so distances are Manhattan / L1.

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <vector>

namespace dgr::geom {

using Coord = std::int32_t;

struct Point {
  Coord x = 0;
  Coord y = 0;

  friend bool operator==(const Point&, const Point&) = default;
  friend auto operator<=>(const Point&, const Point&) = default;
};

std::ostream& operator<<(std::ostream& os, const Point& p);

/// Manhattan (rectilinear) distance.
inline std::int64_t manhattan(const Point& a, const Point& b) {
  return std::int64_t{std::abs(a.x - b.x)} + std::int64_t{std::abs(a.y - b.y)};
}

/// Closed axis-aligned rectangle [lo.x, hi.x] x [lo.y, hi.y].
struct Rect {
  Point lo;
  Point hi;

  static Rect bounding_box(const std::vector<Point>& pts);

  bool contains(const Point& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  Coord width() const { return hi.x - lo.x; }
  Coord height() const { return hi.y - lo.y; }
  /// Half-perimeter wirelength of the box — the classic HPWL lower bound on
  /// any rectilinear Steiner tree spanning points inside it.
  std::int64_t hpwl() const { return std::int64_t{width()} + std::int64_t{height()}; }
  /// Grows the rect (clamped by the caller) by `margin` on every side.
  Rect inflated(Coord margin) const {
    return Rect{{static_cast<Coord>(lo.x - margin), static_cast<Coord>(lo.y - margin)},
                {static_cast<Coord>(hi.x + margin), static_cast<Coord>(hi.y + margin)}};
  }

  friend bool operator==(const Rect&, const Rect&) = default;
};

std::ostream& operator<<(std::ostream& os, const Rect& r);

/// Deduplicated, sorted x/y coordinates of a point set — the Hanan grid.
/// Every rectilinear Steiner minimum tree can be embedded in this grid,
/// which is what the exact small-degree RSMT solver enumerates.
struct HananGrid {
  std::vector<Coord> xs;
  std::vector<Coord> ys;

  static HananGrid from_points(const std::vector<Point>& pts);
  std::size_t size() const { return xs.size() * ys.size(); }
  Point point(std::size_t idx) const {
    return Point{xs[idx % xs.size()], ys[idx / xs.size()]};
  }
};

/// Removes duplicate points (stable order of first occurrence).
std::vector<Point> dedupe_points(std::vector<Point> pts);

}  // namespace dgr::geom
