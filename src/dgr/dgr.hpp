#pragma once
// Umbrella header: the public API of the DGR library.
//
// Typical usage (see examples/quickstart.cpp):
//
//   auto design = dgr::design::generate_ispd_like(params, seed);
//   auto cap    = design.capacities();
//   auto forest = dgr::dag::DagForest::build(design);
//   dgr::core::DgrSolver solver(forest, cap);
//   solver.train();
//   auto solution = solver.extract();
//   auto metrics  = dgr::eval::compute_metrics(solution, cap);

#include "ad/adam.hpp"
#include "ad/gradcheck.hpp"
#include "ad/ops.hpp"
#include "ad/simd.hpp"
#include "ad/tape.hpp"
#include "core/batch.hpp"
#include "core/config.hpp"
#include "core/relaxation.hpp"
#include "core/solver.hpp"
#include "dag/forest.hpp"
#include "dag/path.hpp"
#include "dag/tree_candidates.hpp"
#include "design/design.hpp"
#include "design/generator.hpp"
#include "design/io.hpp"
#include "design/mutate.hpp"
#include "eco/eco.hpp"
#include "eval/metrics.hpp"
#include "eval/solution.hpp"
#include "eval/table.hpp"
#include "geom/geom.hpp"
#include "grid/demand_map.hpp"
#include "grid/gcell_grid.hpp"
#include "ilp/branch_bound.hpp"
#include "ilp/routing_ilp.hpp"
#include "ilp/simplex.hpp"
#include "obs/obs.hpp"
#include "partition/partition.hpp"
#include "partition/router.hpp"
#include "pipeline/adapters.hpp"
#include "pipeline/context.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/registry.hpp"
#include "pipeline/router.hpp"
#include "post/guide.hpp"
#include "post/layer_assign.hpp"
#include "post/maze_refine.hpp"
#include "routers/cugr2lite.hpp"
#include "routers/lagrangian.hpp"
#include "routers/maze.hpp"
#include "routers/sproute_lite.hpp"
#include "rsmt/builder.hpp"
#include "rsmt/exact.hpp"
#include "rsmt/one_steiner.hpp"
#include "rsmt/salt.hpp"
#include "rsmt/steiner_tree.hpp"
#include "serve/flight.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/transport.hpp"
#include "util/log.hpp"
#include "util/memprobe.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
