#pragma once
// Best-bound branch-and-bound MILP solver on top of the simplex LP engine.
//
// Exact (given enough time) on mixed problems where a subset of variables is
// integral; used as the Table 1 oracle. A wall-clock limit reproduces the
// paper's "N/A: ILP running out of time" rows.

#include <cstdint>
#include <vector>

#include "ilp/simplex.hpp"

namespace dgr::ilp {

struct MilpOptions {
  double time_limit_seconds = 60.0;
  std::int64_t max_nodes = 200000;
  double integrality_tol = 1e-6;
  std::int64_t lp_pivot_limit = 200000;
};

struct MilpResult {
  LpStatus status = LpStatus::kIterLimit;  ///< kOptimal only if proven optimal
  bool timed_out = false;
  double objective = 0.0;
  std::vector<double> x;     ///< incumbent (valid when has_incumbent)
  bool has_incumbent = false;
  std::int64_t nodes_explored = 0;
  double best_bound = 0.0;   ///< proven lower bound on the optimum
};

/// Minimises lp over x >= 0 with the listed variables restricted to integers.
MilpResult solve_milp(const LinearProgram& lp, const std::vector<int>& integer_vars,
                      const MilpOptions& options = {});

}  // namespace dgr::ilp
