#include "ilp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/timer.hpp"

namespace dgr::ilp {
namespace {

constexpr double kEps = 1e-9;

// Dense tableau:
//   rows 0..m-1 : constraints (columns: structural | slack/surplus |
//                 artificial | rhs)
//   row  m      : phase objective (reduced costs; rhs = -objective value)
class Tableau {
 public:
  Tableau(const LinearProgram& lp) : n_(lp.num_vars) {
    const std::size_t m = lp.constraints.size();
    // Count auxiliary columns.
    std::size_t slacks = 0, artificials = 0;
    for (const LpConstraint& c : lp.constraints) {
      const bool flip = c.rhs < 0.0;
      const Rel rel = flip ? flipped(c.rel) : c.rel;
      if (rel == Rel::kLe) ++slacks;
      if (rel == Rel::kGe) {
        ++slacks;  // surplus
        ++artificials;
      }
      if (rel == Rel::kEq) ++artificials;
    }
    slack_begin_ = n_;
    art_begin_ = n_ + static_cast<int>(slacks);
    cols_ = art_begin_ + static_cast<int>(artificials);
    rows_ = static_cast<int>(m);
    a_.assign(static_cast<std::size_t>(rows_ + 1) * (cols_ + 1), 0.0);
    basis_.assign(static_cast<std::size_t>(rows_), -1);

    int next_slack = slack_begin_;
    int next_art = art_begin_;
    for (int r = 0; r < rows_; ++r) {
      const LpConstraint& c = lp.constraints[static_cast<std::size_t>(r)];
      const bool flip = c.rhs < 0.0;
      const double sign = flip ? -1.0 : 1.0;
      const Rel rel = flip ? flipped(c.rel) : c.rel;
      for (const auto& [v, coef] : c.terms) {
        if (v < 0 || v >= n_) throw std::invalid_argument("simplex: bad var index");
        at(r, v) += sign * coef;
      }
      rhs(r) = sign * c.rhs;
      switch (rel) {
        case Rel::kLe:
          at(r, next_slack) = 1.0;
          basis_[static_cast<std::size_t>(r)] = next_slack++;
          break;
        case Rel::kGe:
          at(r, next_slack++) = -1.0;
          at(r, next_art) = 1.0;
          basis_[static_cast<std::size_t>(r)] = next_art++;
          break;
        case Rel::kEq:
          at(r, next_art) = 1.0;
          basis_[static_cast<std::size_t>(r)] = next_art++;
          break;
      }
    }
  }

  /// Phase 1: minimise the sum of artificial variables.
  LpStatus phase1(std::int64_t& pivot_budget) {
    if (art_begin_ == cols_) return LpStatus::kOptimal;  // no artificials
    // Phase-1 cost: 1 per artificial, 0 otherwise; price out the (artificial)
    // basics by subtracting their rows. Artificial columns then carry
    // reduced cost 1 - 1 = 0, structural columns -Σ a_rc.
    std::fill(obj_row(), obj_row() + cols_ + 1, 0.0);
    for (int c = art_begin_; c < cols_; ++c) obj(c) = 1.0;
    for (int r = 0; r < rows_; ++r) {
      if (basis_[static_cast<std::size_t>(r)] >= art_begin_) {
        for (int c = 0; c <= cols_; ++c) obj(c) -= at(r, c);
      }
    }
    const LpStatus st = iterate(pivot_budget, /*forbid_artificials=*/false);
    if (st != LpStatus::kOptimal) return st;
    if (-obj(cols_) > 1e-7) return LpStatus::kInfeasible;  // Σ artificials > 0
    drive_out_artificials();
    return LpStatus::kOptimal;
  }

  /// Phase 2: minimise the real objective.
  LpStatus phase2(const std::vector<double>& cost, std::int64_t& pivot_budget) {
    std::fill(obj_row(), obj_row() + cols_ + 1, 0.0);
    for (int v = 0; v < n_; ++v) obj(v) = cost[static_cast<std::size_t>(v)];
    // Price out the basic variables.
    for (int r = 0; r < rows_; ++r) {
      const int b = basis_[static_cast<std::size_t>(r)];
      const double cb = (b < n_) ? cost[static_cast<std::size_t>(b)] : 0.0;
      if (cb != 0.0) {
        for (int c = 0; c <= cols_; ++c) obj(c) -= cb * at(r, c);
      }
    }
    return iterate(pivot_budget, /*forbid_artificials=*/true);
  }

  std::vector<double> extract_x() const {
    std::vector<double> x(static_cast<std::size_t>(n_), 0.0);
    for (int r = 0; r < rows_; ++r) {
      const int b = basis_[static_cast<std::size_t>(r)];
      if (b >= 0 && b < n_) x[static_cast<std::size_t>(b)] = rhs_const(r);
    }
    return x;
  }

  double objective_value(const std::vector<double>& cost) const {
    const std::vector<double> x = extract_x();
    double z = 0.0;
    for (int v = 0; v < n_; ++v) z += cost[static_cast<std::size_t>(v)] * x[static_cast<std::size_t>(v)];
    return z;
  }

 private:
  static Rel flipped(Rel r) {
    return r == Rel::kLe ? Rel::kGe : (r == Rel::kGe ? Rel::kLe : Rel::kEq);
  }

  double& at(int r, int c) { return a_[static_cast<std::size_t>(r) * (cols_ + 1) + c]; }
  double at_const(int r, int c) const {
    return a_[static_cast<std::size_t>(r) * (cols_ + 1) + c];
  }
  double& rhs(int r) { return at(r, cols_); }
  double rhs_const(int r) const { return at_const(r, cols_); }
  double* obj_row() { return &a_[static_cast<std::size_t>(rows_) * (cols_ + 1)]; }
  double& obj(int c) { return obj_row()[c]; }

  void pivot(int pr, int pc) {
    const double pv = at(pr, pc);
    const double inv = 1.0 / pv;
    for (int c = 0; c <= cols_; ++c) at(pr, c) *= inv;
    at(pr, pc) = 1.0;
    for (int r = 0; r <= rows_; ++r) {
      if (r == pr) continue;
      const double factor = at(r, pc);
      if (std::abs(factor) < kEps) continue;
      for (int c = 0; c <= cols_; ++c) at(r, c) -= factor * at(pr, c);
      at(r, pc) = 0.0;
    }
    basis_[static_cast<std::size_t>(pr)] = pc;
  }

  LpStatus iterate(std::int64_t& pivot_budget, bool forbid_artificials) {
    const int limit_col = forbid_artificials ? art_begin_ : cols_;
    std::int64_t since_progress = 0;
    std::int64_t pivots_done = 0;
    for (;;) {
      if (pivot_budget-- <= 0) return LpStatus::kIterLimit;
      // Deadline check every 32 pivots (a pivot is O(rows*cols), so this is
      // cheap relative to the work it bounds).
      if (deadline_ != nullptr && (pivots_done++ & 31) == 0 &&
          deadline_->seconds() > deadline_limit_) {
        return LpStatus::kIterLimit;
      }
      // Entering column: Dantzig (most negative reduced cost); switch to
      // Bland (lowest index with negative cost) when cycling is suspected.
      const bool bland = since_progress > 2 * (rows_ + cols_);
      int pc = -1;
      double best = -kEps;
      for (int c = 0; c < limit_col; ++c) {
        const double rc = obj(c);
        if (rc < -kEps) {
          if (bland) {
            pc = c;
            break;
          }
          if (rc < best) {
            best = rc;
            pc = c;
          }
        }
      }
      if (pc < 0) return LpStatus::kOptimal;

      // Ratio test (Bland ties on lowest basis index).
      int pr = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int r = 0; r < rows_; ++r) {
        const double col = at(r, pc);
        if (col > kEps) {
          const double ratio = rhs(r) / col;
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps && pr >= 0 &&
               basis_[static_cast<std::size_t>(r)] < basis_[static_cast<std::size_t>(pr)])) {
            best_ratio = ratio;
            pr = r;
          }
        }
      }
      if (pr < 0) return LpStatus::kUnbounded;
      const double before = obj(cols_);
      pivot(pr, pc);
      since_progress = std::abs(obj(cols_) - before) > kEps ? 0 : since_progress + 1;
    }
  }

  /// After phase 1, pivot basic artificials (value 0) out of the basis.
  void drive_out_artificials() {
    for (int r = 0; r < rows_; ++r) {
      if (basis_[static_cast<std::size_t>(r)] < art_begin_) continue;
      int pc = -1;
      for (int c = 0; c < art_begin_; ++c) {
        if (std::abs(at(r, c)) > 1e-7) {
          pc = c;
          break;
        }
      }
      if (pc >= 0) {
        pivot(r, pc);
      }
      // Rows with no eligible column are redundant (all-zero); the basic
      // artificial stays at value 0 and is excluded from pricing in phase 2.
    }
  }

  // Optional wall-clock deadline shared by both phases.
 public:
  void set_deadline(const util::Timer* timer, double limit) {
    deadline_ = timer;
    deadline_limit_ = limit;
  }

 private:
  const util::Timer* deadline_ = nullptr;
  double deadline_limit_ = 0.0;

  int n_;            ///< structural variables
  int slack_begin_;  ///< first slack column
  int art_begin_;    ///< first artificial column
  int cols_;         ///< total columns (excl. rhs)
  int rows_;
  std::vector<double> a_;  ///< (rows_+1) x (cols_+1), last row = objective
  std::vector<int> basis_;
};

}  // namespace

const char* lp_status_name(LpStatus s) {
  switch (s) {
    case LpStatus::kOptimal: return "optimal";
    case LpStatus::kInfeasible: return "infeasible";
    case LpStatus::kUnbounded: return "unbounded";
    case LpStatus::kIterLimit: return "iter-limit";
  }
  return "?";
}

LpResult solve_lp(const LinearProgram& lp, std::int64_t max_pivots,
                  double deadline_seconds) {
  if (static_cast<int>(lp.objective.size()) != lp.num_vars) {
    throw std::invalid_argument("solve_lp: objective size mismatch");
  }
  LpResult result;
  Tableau tab(lp);
  util::Timer timer;
  if (deadline_seconds > 0.0) tab.set_deadline(&timer, deadline_seconds);
  std::int64_t budget = max_pivots;
  LpStatus st = tab.phase1(budget);
  if (st != LpStatus::kOptimal) {
    result.status = st;
    return result;
  }
  st = tab.phase2(lp.objective, budget);
  result.status = st;
  if (st == LpStatus::kOptimal) {
    result.x = tab.extract_x();
    result.objective = tab.objective_value(lp.objective);
  }
  return result;
}

}  // namespace dgr::ilp
