#include "ilp/routing_ilp.hpp"

#include <cmath>
#include <stdexcept>

namespace dgr::ilp {

using dag::DagForest;

namespace {

void check_protocol(const DagForest& forest) {
  const auto& offsets = forest.net_tree_offsets();
  for (std::size_t n = 0; n + 1 < offsets.size(); ++n) {
    if (offsets[n + 1] - offsets[n] != 1) {
      throw std::invalid_argument("routing_ilp: exactly one tree candidate per net required");
    }
  }
  if (forest.options().via_demand_beta != 0.0f) {
    throw std::invalid_argument("routing_ilp: via_demand_beta must be 0 (wire-only protocol)");
  }
}

}  // namespace

RoutingIlp build_routing_ilp(const DagForest& forest, const std::vector<float>& capacities) {
  check_protocol(forest);
  RoutingIlp out;

  const auto& paths = forest.paths();
  out.path_var.resize(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    out.path_var[i] = out.lp.add_var(0.0);  // selection vars cost nothing
    out.integer_vars.push_back(out.path_var[i]);
  }

  // One-of-each-subnet equality (Eq. 7).
  for (const dag::Subnet& s : forest.subnets()) {
    std::vector<std::pair<int, double>> terms;
    for (std::int32_t i = s.path_begin; i < s.path_end; ++i) {
      terms.emplace_back(out.path_var[static_cast<std::size_t>(i)], 1.0);
    }
    out.lp.add_constraint(std::move(terms), Rel::kEq, 1.0);
  }

  // Per-edge overflow constraints on contended edges only.
  const auto& eo = forest.edge_inc_offsets();
  const auto& ep = forest.edge_inc_paths();
  for (std::size_t e = 0; e + 1 < eo.size(); ++e) {
    const std::uint32_t lo = eo[e], hi = eo[e + 1];
    const double cap = capacities[e];
    if (static_cast<double>(hi - lo) <= cap) continue;  // cannot overflow
    const int o_var = out.lp.add_var(1.0);  // overflow contributes to objective
    std::vector<std::pair<int, double>> terms;
    terms.reserve(hi - lo + 1);
    for (std::uint32_t k = lo; k < hi; ++k) {
      terms.emplace_back(out.path_var[static_cast<std::size_t>(ep[k])], 1.0);
    }
    terms.emplace_back(o_var, -1.0);
    out.lp.add_constraint(std::move(terms), Rel::kLe, cap);
    ++out.contended_edges;
  }
  return out;
}

RoutingIlpResult solve_routing_ilp(const DagForest& forest,
                                   const std::vector<float>& capacities,
                                   const MilpOptions& options) {
  const RoutingIlp model = build_routing_ilp(forest, capacities);
  RoutingIlpResult out;
  out.milp = solve_milp(model.lp, model.integer_vars, options);
  if (!out.milp.has_incumbent) return out;
  out.overflow = out.milp.objective;

  // Decode selection into a RouteSolution.
  out.solution.design = &forest.design();
  out.solution.nets.resize(forest.net_count());
  for (std::size_t n = 0; n < forest.net_count(); ++n) {
    out.solution.nets[n].design_net = forest.design_net(n);
  }
  for (const dag::Subnet& s : forest.subnets()) {
    std::int32_t best = s.path_begin;
    double best_val = -1.0;
    for (std::int32_t i = s.path_begin; i < s.path_end; ++i) {
      const double v = out.milp.x[static_cast<std::size_t>(
          model.path_var[static_cast<std::size_t>(i)])];
      if (v > best_val) {
        best_val = v;
        best = i;
      }
    }
    const auto& tc = forest.trees()[static_cast<std::size_t>(s.tree)];
    out.solution.nets[static_cast<std::size_t>(tc.net)].paths.push_back(
        forest.path_geometry(static_cast<std::size_t>(best)));
  }
  return out;
}

double brute_force_min_overflow(const DagForest& forest,
                                const std::vector<float>& capacities,
                                std::uint64_t max_combinations) {
  check_protocol(forest);
  const auto& subnets = forest.subnets();
  const auto& paths = forest.paths();

  // Combination count guard.
  std::uint64_t combos = 1;
  for (const dag::Subnet& s : subnets) {
    combos *= static_cast<std::uint64_t>(s.path_end - s.path_begin);
    if (combos > max_combinations) return -1.0;
  }

  std::vector<std::size_t> choice(subnets.size(), 0);
  std::vector<double> demand(capacities.size(), 0.0);

  auto apply = [&](std::size_t subnet_idx, double sign) {
    const dag::Subnet& s = subnets[subnet_idx];
    const dag::PathCandidate& pc =
        paths[static_cast<std::size_t>(s.path_begin) + choice[subnet_idx]];
    for (std::uint32_t k = pc.inc_begin; k < pc.inc_end; ++k) {
      demand[static_cast<std::size_t>(forest.inc_edges()[k])] +=
          sign * forest.inc_weights()[k];
    }
  };

  for (std::size_t s = 0; s < subnets.size(); ++s) apply(s, +1.0);

  auto total_overflow = [&] {
    double total = 0.0;
    for (std::size_t e = 0; e < demand.size(); ++e) {
      total += std::max(0.0, demand[e] - static_cast<double>(capacities[e]));
    }
    return total;
  };

  double best = total_overflow();
  // Odometer enumeration.
  for (;;) {
    std::size_t s = 0;
    for (; s < subnets.size(); ++s) {
      const auto count = static_cast<std::size_t>(subnets[s].path_end - subnets[s].path_begin);
      apply(s, -1.0);
      if (choice[s] + 1 < count) {
        ++choice[s];
        apply(s, +1.0);
        break;
      }
      choice[s] = 0;
      apply(s, +1.0);
    }
    if (s == subnets.size()) break;  // odometer wrapped
    best = std::min(best, total_overflow());
  }
  return best;
}

}  // namespace dgr::ilp
