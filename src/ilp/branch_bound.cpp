#include "ilp/branch_bound.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <queue>

#include "util/timer.hpp"

namespace dgr::ilp {
namespace {

struct Node {
  double bound = 0.0;  ///< parent LP objective (lower bound for minimisation)
  // Extra bound constraints accumulated down the branch: (var, floor?, value).
  std::vector<LpConstraint> extra;
};

struct NodeOrder {
  bool operator()(const std::shared_ptr<Node>& a, const std::shared_ptr<Node>& b) const {
    return a->bound > b->bound;  // best-bound first
  }
};

int most_fractional(const std::vector<double>& x, const std::vector<int>& integer_vars,
                    double tol) {
  int best = -1;
  double best_dist = tol;
  for (const int v : integer_vars) {
    const double val = x[static_cast<std::size_t>(v)];
    const double frac = val - std::floor(val);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist > best_dist) {
      best_dist = dist;
      best = v;
    }
  }
  return best;
}

}  // namespace

MilpResult solve_milp(const LinearProgram& lp, const std::vector<int>& integer_vars,
                      const MilpOptions& options) {
  MilpResult result;
  util::Timer timer;

  std::priority_queue<std::shared_ptr<Node>, std::vector<std::shared_ptr<Node>>, NodeOrder>
      open;
  open.push(std::make_shared<Node>());

  double incumbent = std::numeric_limits<double>::infinity();
  std::vector<double> incumbent_x;
  bool root_infeasible = false;
  bool exhausted = true;

  while (!open.empty()) {
    if (timer.seconds() > options.time_limit_seconds ||
        result.nodes_explored >= options.max_nodes) {
      result.timed_out = true;
      exhausted = false;
      break;
    }
    const std::shared_ptr<Node> node = open.top();
    open.pop();
    if (node->bound >= incumbent - 1e-9) continue;  // pruned by bound
    ++result.nodes_explored;

    LinearProgram sub = lp;
    for (const LpConstraint& c : node->extra) sub.constraints.push_back(c);
    const double remaining = options.time_limit_seconds - timer.seconds();
    const LpResult rel =
        solve_lp(sub, options.lp_pivot_limit, std::max(0.05, remaining));
    if (rel.status == LpStatus::kInfeasible) {
      if (result.nodes_explored == 1) root_infeasible = true;
      continue;
    }
    if (rel.status == LpStatus::kUnbounded) {
      result.status = LpStatus::kUnbounded;
      return result;
    }
    if (rel.status == LpStatus::kIterLimit) {
      // Cannot bound this subtree; treat conservatively as unexplored.
      exhausted = false;
      continue;
    }
    if (rel.objective >= incumbent - 1e-9) continue;

    const int branch_var = most_fractional(rel.x, integer_vars, options.integrality_tol);
    if (branch_var < 0) {
      // Integral: new incumbent.
      incumbent = rel.objective;
      incumbent_x = rel.x;
      continue;
    }

    const double val = rel.x[static_cast<std::size_t>(branch_var)];
    auto down = std::make_shared<Node>();
    down->bound = rel.objective;
    down->extra = node->extra;
    down->extra.push_back({{{branch_var, 1.0}}, Rel::kLe, std::floor(val)});
    auto up = std::make_shared<Node>();
    up->bound = rel.objective;
    up->extra = node->extra;
    up->extra.push_back({{{branch_var, 1.0}}, Rel::kGe, std::ceil(val)});
    open.push(std::move(down));
    open.push(std::move(up));
  }

  result.has_incumbent = std::isfinite(incumbent);
  if (result.has_incumbent) {
    result.objective = incumbent;
    result.x = std::move(incumbent_x);
    result.status = exhausted ? LpStatus::kOptimal : LpStatus::kIterLimit;
  } else {
    result.status = root_infeasible && exhausted ? LpStatus::kInfeasible
                                                 : LpStatus::kIterLimit;
  }
  // Remaining open nodes bound the optimum from below.
  result.best_bound = open.empty() ? (result.has_incumbent ? incumbent : 0.0)
                                   : open.top()->bound;
  return result;
}

}  // namespace dgr::ilp
