#pragma once
// Routing -> MILP translation for the Table 1 ILP comparison.
//
// Protocol (Section 5.1 of the paper): one FLUTE tree per net, select one
// L-shape path per 2-pin sub-net, minimise total ReLU overflow
// Σ_e max(0, d_e - cap_e). Linearised as
//   min Σ_e o_e
//   s.t. Σ_{i ∈ subnet s} x_i = 1                       ∀ s
//        Σ_{i crossing e} x_i - o_e <= cap_e            ∀ contended e
//        x binary, o >= 0
// Edges crossed by at most cap_e candidate paths can never overflow and are
// pruned (no o_e variable, no constraint), which keeps the dense simplex
// tractable at Table 1 sizes.

#include <vector>

#include "dag/forest.hpp"
#include "eval/solution.hpp"
#include "ilp/branch_bound.hpp"

namespace dgr::ilp {

struct RoutingIlp {
  LinearProgram lp;
  std::vector<int> path_var;       ///< LP var per forest path candidate
  std::vector<int> integer_vars;   ///< the path vars
  std::size_t contended_edges = 0; ///< edges that got an overflow variable
};

/// Requires a forest built with exactly one tree candidate per net and zero
/// via demand (via_demand_beta = 0); throws otherwise.
RoutingIlp build_routing_ilp(const dag::DagForest& forest,
                             const std::vector<float>& capacities);

struct RoutingIlpResult {
  MilpResult milp;
  double overflow = 0.0;           ///< objective = total ReLU overflow
  eval::RouteSolution solution;    ///< decoded path selection (if incumbent)
};

RoutingIlpResult solve_routing_ilp(const dag::DagForest& forest,
                                   const std::vector<float>& capacities,
                                   const MilpOptions& options = {});

/// Exhaustive oracle for tiny instances (Π path-choices <= max_combinations):
/// exact minimum ReLU overflow, used to validate the MILP solver in tests.
/// Returns -1 if the instance is too large.
double brute_force_min_overflow(const dag::DagForest& forest,
                                const std::vector<float>& capacities,
                                std::uint64_t max_combinations = 2000000);

}  // namespace dgr::ilp
