#pragma once
// Dense two-phase primal simplex for linear programs in the form
//   min c^T x   s.t.  A x {<=,=,>=} b,  x >= 0.
//
// This is the LP engine under the branch-and-bound MILP solver that stands
// in for the paper's CVXPY/ILP baseline (Table 1). Dense tableau with
// Dantzig pricing and a Bland's-rule fallback for anti-cycling; sized for
// the small synthetic instances exact comparison needs.

#include <cstdint>
#include <vector>

namespace dgr::ilp {

enum class Rel { kLe, kEq, kGe };

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterLimit };
const char* lp_status_name(LpStatus s);

struct LpConstraint {
  std::vector<std::pair<int, double>> terms;  ///< (var index, coefficient)
  Rel rel = Rel::kLe;
  double rhs = 0.0;
};

struct LinearProgram {
  int num_vars = 0;
  std::vector<double> objective;  ///< size num_vars; minimised
  std::vector<LpConstraint> constraints;

  /// Adds a variable with the given objective coefficient; returns its index.
  int add_var(double cost) {
    objective.push_back(cost);
    return num_vars++;
  }
  void add_constraint(std::vector<std::pair<int, double>> terms, Rel rel, double rhs) {
    constraints.push_back({std::move(terms), rel, rhs});
  }
};

struct LpResult {
  LpStatus status = LpStatus::kIterLimit;
  double objective = 0.0;
  std::vector<double> x;
};

/// `deadline_seconds` is a wall-clock budget for this solve; on expiry the
/// solver returns kIterLimit (used by branch-and-bound to honour its own
/// time limit even when a single LP is large). <= 0 means no deadline.
LpResult solve_lp(const LinearProgram& lp, std::int64_t max_pivots = 200000,
                  double deadline_seconds = 0.0);

}  // namespace dgr::ilp
