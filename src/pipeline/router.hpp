#pragma once
/// \file
/// The abstract Router interface and the uniform RouterStats record.
///
/// Every global router in the repo — DGR and the three baseline families —
/// is exposed as a Router: route(RoutingContext&) -> eval::RouteSolution.
/// Routers report a common RouterStats (per-stage wall time, peak memory,
/// named counters) so the bench harnesses compare all engines through one
/// code path instead of four bespoke stats structs.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "eval/solution.hpp"
#include "obs/convergence.hpp"
#include "pipeline/context.hpp"
#include "util/status.hpp"

namespace dgr::pipeline {

/// Wall time of one named stage of a routing run (e.g. "forest", "train",
/// "route", "maze_refine", "layer_assign", "eval").
struct StageTime {
  std::string stage;
  double seconds = 0.0;
};

/// One route attempt of a run that took the degradation path: the record of
/// a router that ran before the pipeline fell back to a cheaper one. Keeps
/// the failed attempt's convergence telemetry (e.g. DGR's per-iteration
/// series up to the divergence/timeout) that would otherwise be lost when
/// the fallback's stats take over the main record.
struct RouteAttempt {
  std::string router;   ///< registry name of the engine that attempted
  Status status;        ///< how the attempt ended
  std::int64_t rollbacks = 0;  ///< divergence rollbacks the attempt took
  bool degraded = false;       ///< the attempt itself ran in degraded mode
  /// The attempt's solver telemetry (empty for combinatorial engines).
  obs::ConvergenceSeries convergence;
};

/// Uniform per-run statistics: what every harness needs from every router.
struct RouterStats {
  std::string router;            ///< registry name of the router that ran
  std::vector<StageTime> stages; ///< per-stage wall time, in execution order
  /// Router-specific numeric counters (rounds run, nets rerouted, ...),
  /// uniformly typed so harnesses can print them without downcasting.
  std::vector<std::pair<std::string, double>> counters;
  std::size_t peak_rss_bytes = 0;  ///< process peak RSS after the run
  /// Solver-retained bytes (forest + relaxation + tape) — DGR's
  /// "GPU memory" proxy of Fig. 5b; 0 for the combinatorial routers.
  std::size_t solver_bytes = 0;

  // ---- failure-path record (stamped even when the run did not finish) -----
  /// Outcome of the run: OK, or the typed failure the pipeline acted on
  /// (STAGE_TIMEOUT, NUMERIC_DIVERGENCE, RESOURCE_EXHAUSTED, ...).
  Status status;
  std::int64_t rollbacks = 0;      ///< solver divergence rollbacks taken
  std::int64_t repaired_nets = 0;  ///< nets rebuilt by the validation gate
  /// The result came from a degraded path: the route stage fell back to a
  /// cheaper router, or the primary stopped early on its time budget.
  bool degraded = false;

  /// Per-iteration solver convergence telemetry (loss, overflow expectation,
  /// temperature, gradient norm, rollback events). Populated only by
  /// iterative routers when RouterOptions request it (DGR's
  /// record_telemetry); empty for the combinatorial baselines. On a
  /// degraded run this is the *winning* (fallback) attempt's series; the
  /// failed primary attempt's series survives in `attempts`.
  obs::ConvergenceSeries convergence;

  /// Attempt history of a degraded run, in execution order: the failed
  /// primary attempt first (with its status, rollbacks and convergence
  /// series intact), then the fallback attempt. Empty when the run did not
  /// degrade.
  std::vector<RouteAttempt> attempts;

  /// Nested sub-run stats, in deterministic sub-run order. Used by
  /// composite engines — the partitioned router stores one child per
  /// region (child.router is the region engine, counters carry the region
  /// geometry) — so harnesses can attribute the route stage's time to the
  /// regions that produced it. Empty for the leaf routers.
  std::vector<RouterStats> children;

  void add_stage(std::string stage, double seconds);
  void add_counter(std::string name, double value);
  /// Seconds of the named stage; 0 when the stage did not run.
  double stage_seconds(std::string_view stage) const;
  /// Sum over all recorded stages.
  double total_seconds() const;
  double counter(std::string_view name, double fallback = 0.0) const;
};

/// Abstract interchangeable routing engine. Implementations adapt the
/// concrete routers (core::DgrSolver + extraction, routers::Cugr2Lite,
/// routers::SpRouteLite, routers::LagrangianRouter, post::maze_refine) to
/// the shared RoutingContext; see pipeline/adapters.hpp.
class Router {
 public:
  virtual ~Router() = default;

  /// Registry name ("dgr", "cugr2-lite", "sproute-lite", "lagrangian",
  /// "maze-refine").
  virtual std::string_view name() const = 0;

  /// Whether route() resumes from ctx.warm_start() when one is set.
  /// Routers without warm-start support simply route cold.
  virtual bool supports_warm_start() const { return false; }
  /// Whether route() is only meaningful with a warm start (refinement
  /// stages); such routers return an empty solution when routed cold.
  virtual bool requires_warm_start() const { return false; }

  /// Routes the context's design. Leaves the context's live demand equal to
  /// the returned solution's demand and refreshes stats().
  virtual eval::RouteSolution route(RoutingContext& ctx) = 0;

  const RouterStats& stats() const { return stats_; }

 protected:
  /// Called by implementations at the top of route().
  void reset_stats() {
    stats_ = {};
    stats_.router = std::string(name());
  }

  RouterStats stats_;
};

}  // namespace dgr::pipeline
