#pragma once
/// \file
/// Router adapters: the concrete engines behind the Router interface.
///
///   "dgr"          DgrRouter        forest build -> DgrSolver train ->
///                                   top-p extraction (Sections 4.3-4.5)
///   "cugr2-lite"   Cugr2Router      sequential DP pattern router + RRR
///   "sproute-lite" SpRouteRouter    PathFinder-style negotiation maze router
///   "lagrangian"   LagrangianPipelineRouter  priced shortest paths +
///                                   subgradient multiplier updates
///   "maze-refine"  MazeRefineRouter post::maze_refine as a warm-start-only
///                                   refinement stage (DGR -> maze refine
///                                   composition, Section 4.6)
///
/// Each adapter stamps the context's via_beta into its engine's demand
/// model so all stages share one bookkeeping convention, and translates the
/// engine's bespoke stats into the uniform RouterStats.

#include "core/config.hpp"
#include "core/solver.hpp"
#include "partition/partition.hpp"
#include "pipeline/router.hpp"
#include "post/maze_refine.hpp"
#include "routers/cugr2lite.hpp"
#include "routers/lagrangian.hpp"
#include "routers/sproute_lite.hpp"

namespace dgr::pipeline {

/// Aggregated per-engine options, used by the registry's factories so a
/// harness can configure any router through one struct.
struct RouterOptions {
  core::DgrConfig dgr;                       ///< "dgr": solver hyper-parameters
  dag::ForestOptions forest;                 ///< "dgr": candidate-pool options
  routers::Cugr2LiteOptions cugr2;           ///< "cugr2-lite"
  routers::SpRouteLiteOptions sproute;       ///< "sproute-lite"
  routers::LagrangianOptions lagrangian;     ///< "lagrangian"
  post::MazeRefineOptions refine;            ///< "maze-refine"
  /// "partitioned": tiling + region-router selection (partition/router.hpp).
  /// partition.region_router names the leaf engine; the other members above
  /// configure it.
  partition::PartitionConfig partition;
};

/// DGR: builds (or reuses) the context's DAG forest, trains the
/// differentiable solver, extracts the discrete solution. Stages: "forest",
/// "train", "extract". solver_bytes reports forest + relaxation + tape
/// (the Fig. 5b "GPU memory" proxy). Ignores warm starts (the relaxation
/// is re-trained from its seeded initialisation).
class DgrRouter : public Router {
 public:
  explicit DgrRouter(core::DgrConfig config = {}, dag::ForestOptions forest = {});
  std::string_view name() const override { return "dgr"; }
  eval::RouteSolution route(RoutingContext& ctx) override;

  core::DgrConfig& config() { return config_; }
  dag::ForestOptions& forest_options() { return forest_; }

 private:
  core::DgrConfig config_;
  dag::ForestOptions forest_;
};

/// CUGR2-lite behind the Router interface. Stage: "route". Warm starts
/// re-enter the rip-up-and-reroute loop from the prior solution.
class Cugr2Router : public Router {
 public:
  explicit Cugr2Router(routers::Cugr2LiteOptions options = {});
  std::string_view name() const override { return "cugr2-lite"; }
  bool supports_warm_start() const override { return true; }
  eval::RouteSolution route(RoutingContext& ctx) override;

 private:
  routers::Cugr2LiteOptions options_;
};

/// SPRoute-lite behind the Router interface. Stage: "route". Warm starts
/// resume negotiation from the prior solution.
class SpRouteRouter : public Router {
 public:
  explicit SpRouteRouter(routers::SpRouteLiteOptions options = {});
  std::string_view name() const override { return "sproute-lite"; }
  bool supports_warm_start() const override { return true; }
  eval::RouteSolution route(RoutingContext& ctx) override;

 private:
  routers::SpRouteLiteOptions options_;
};

/// Lagrangian router behind the Router interface. Stage: "route". Routes
/// cold even when a warm start is set (the dual state cannot be seeded
/// from a primal solution).
class LagrangianPipelineRouter : public Router {
 public:
  explicit LagrangianPipelineRouter(routers::LagrangianOptions options = {});
  std::string_view name() const override { return "lagrangian"; }
  eval::RouteSolution route(RoutingContext& ctx) override;

 private:
  routers::LagrangianOptions options_;
};

/// post::maze_refine as a Router: requires a warm start and returns the
/// monotonically-improved refinement of it. Stage: "maze_refine".
class MazeRefineRouter : public Router {
 public:
  explicit MazeRefineRouter(post::MazeRefineOptions options = {});
  std::string_view name() const override { return "maze-refine"; }
  bool supports_warm_start() const override { return true; }
  bool requires_warm_start() const override { return true; }
  eval::RouteSolution route(RoutingContext& ctx) override;

 private:
  post::MazeRefineOptions options_;
};

}  // namespace dgr::pipeline
