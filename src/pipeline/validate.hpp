#pragma once
/// \file
/// Post-route validation gate: the pipeline's last line of defence before a
/// solution reaches evaluation.
///
/// validate_solution() checks, per net, that the routed geometry is legal
/// (in-bounds, axis-aligned legs) and pin-connected, and that the context's
/// live DemandMap still matches the solution's recomputed demand (catches
/// commit/uncommit bookkeeping drift). repair_broken_nets() rebuilds broken
/// nets with a congestion-priced maze reroute (post::maze_reroute_net) so a
/// router bug or an injected fault degrades to a repaired solution instead
/// of poisoning the Table 2/3 metrics downstream.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "eval/solution.hpp"
#include "pipeline/context.hpp"
#include "post/maze_refine.hpp"
#include "util/status.hpp"

namespace dgr::pipeline {

struct ValidationReport {
  /// OK, or kValidationFailed with a summary of what is wrong.
  Status status;
  /// Slots into sol.nets whose geometry is illegal, disconnected, or empty
  /// while the net has >= 2 pins.
  std::vector<std::size_t> broken_nets;
  /// Whether the context's live demand matches the solution's recomputed
  /// demand within tolerance.
  bool demand_consistent = true;
  double max_demand_error = 0.0;
  std::int64_t checked_nets = 0;
};

/// Validates `sol` against the context's design and live demand. Read-only:
/// touches neither the solution nor the context.
ValidationReport validate_solution(const RoutingContext& ctx,
                                   const eval::RouteSolution& sol);

/// Rebuilds each net in `broken` (slots into sol.nets) with a
/// congestion-priced maze reroute and returns how many were actually fixed.
/// Expects the context's live demand to match `sol` on entry (resync first
/// if the report said otherwise) and keeps it in sync throughout; nets whose
/// reroute fails keep their old geometry.
std::int64_t repair_broken_nets(RoutingContext& ctx, eval::RouteSolution& sol,
                                const std::vector<std::size_t>& broken,
                                const post::MazeRefineOptions& options = {});

}  // namespace dgr::pipeline
