#include "pipeline/context.hpp"

#include <algorithm>
#include <limits>
#include <utility>

namespace dgr::pipeline {

namespace {

bool same_options(const rsmt::RsmtOptions& a, const rsmt::RsmtOptions& b) {
  return a.partition_threshold == b.partition_threshold &&
         a.one_steiner.max_candidates == b.one_steiner.max_candidates &&
         a.one_steiner.max_steiner_points == b.one_steiner.max_steiner_points;
}

bool same_options(const dag::TreeCandidateOptions& a, const dag::TreeCandidateOptions& b) {
  return a.congestion_shifted == b.congestion_shifted &&
         a.trunk_topology == b.trunk_topology && a.salt_topology == b.salt_topology &&
         a.salt_epsilon == b.salt_epsilon && a.shift_window == b.shift_window &&
         same_options(a.rsmt, b.rsmt);
}

bool same_options(const dag::PathEnumOptions& a, const dag::PathEnumOptions& b) {
  return a.z_samples == b.z_samples && a.c_samples == b.c_samples &&
         a.c_detour == b.c_detour;
}

bool same_options(const dag::ForestOptions& a, const dag::ForestOptions& b) {
  return same_options(a.tree, b.tree) && same_options(a.paths, b.paths) &&
         a.via_demand_beta == b.via_demand_beta && a.parallel_build == b.parallel_build &&
         a.adaptive_expansion == b.adaptive_expansion &&
         a.adaptive_threshold == b.adaptive_threshold &&
         a.adaptive_z_samples == b.adaptive_z_samples;
}

}  // namespace

RoutingContext::RoutingContext(const design::Design& design, ContextOptions options)
    : design_(&design),
      options_(std::move(options)),
      demand_(design.grid()),
      rng_(options_.seed) {
  capacities_ = options_.capacities.empty() ? design.capacities(options_.capacity_beta)
                                            : options_.capacities;
}

void RoutingContext::commit(const eval::NetRoute& net, double sign) {
  eval::RouteSolution::apply_net(demand_, *design_, net, options_.via_beta, sign);
}

void RoutingContext::commit(const eval::RouteSolution& sol, double sign) {
  for (const eval::NetRoute& net : sol.nets) commit(net, sign);
}

void RoutingContext::set_warm_start(eval::RouteSolution prior) {
  warm_start_ = std::move(prior);
  has_warm_start_ = true;
  reset_demand();
  commit(warm_start_);
}

void RoutingContext::clear_warm_start() {
  warm_start_ = {};
  has_warm_start_ = false;
}

void RoutingContext::set_stage_budget(double seconds) {
  stage_budget_seconds_ = seconds > 0.0 ? seconds : 0.0;
  stage_timer_.reset();
}

double RoutingContext::stage_budget_remaining() const {
  if (!stage_budget_armed()) return std::numeric_limits<double>::infinity();
  return std::max(0.0, stage_budget_seconds_ - stage_timer_.seconds());
}

const dag::DagForest& RoutingContext::forest(const dag::ForestOptions& options) {
  dag::ForestOptions effective = options;
  effective.via_demand_beta = options_.via_beta;
  if (forest_ == nullptr || !same_options(forest_options_, effective)) {
    forest_ = std::make_unique<dag::DagForest>(dag::DagForest::build(*design_, effective));
    forest_options_ = effective;
  }
  return *forest_;
}

bool RoutingContext::has_forest(const dag::ForestOptions& options) const {
  dag::ForestOptions effective = options;
  effective.via_demand_beta = options_.via_beta;
  return forest_ != nullptr && same_options(forest_options_, effective);
}

eval::Metrics RoutingContext::evaluate(const eval::RouteSolution& sol) const {
  return eval::compute_metrics(sol, capacities_, options_.via_beta);
}

double RoutingContext::weighted_overflow(const eval::RouteSolution& sol) const {
  return eval::weighted_overflow(sol, capacities_, options_.via_beta);
}

std::int64_t RoutingContext::nets_with_overflow(const eval::RouteSolution& sol) const {
  return eval::nets_with_overflow(sol, capacities_, options_.via_beta);
}

}  // namespace dgr::pipeline
