#include "pipeline/pipeline.hpp"

#include <utility>

#include "util/log.hpp"
#include "util/memprobe.hpp"
#include "util/timer.hpp"

namespace dgr::pipeline {

Pipeline::Pipeline(RoutingContext& ctx, PipelineOptions options)
    : ctx_(&ctx), options_(options) {}

PipelineResult Pipeline::run(Router& router, const StagePlan& plan) {
  ctx_->clear_warm_start();
  return run_stages(router, plan);
}

PipelineResult Pipeline::run(const std::string& router_name, const RouterOptions& options,
                             const StagePlan& plan) {
  const std::unique_ptr<Router> router = make_router(router_name, options);
  if (router == nullptr) {
    DGR_LOG_ERROR("pipeline: no router registered under '%s'", router_name.c_str());
    return {};
  }
  return run(*router, plan);
}

PipelineResult Pipeline::rerun(Router& router, eval::RouteSolution prior,
                               const StagePlan& plan) {
  ctx_->set_warm_start(std::move(prior));
  return run_stages(router, plan);
}

PipelineResult Pipeline::rerun(const std::string& router_name, eval::RouteSolution prior,
                               const RouterOptions& options, const StagePlan& plan) {
  const std::unique_ptr<Router> router = make_router(router_name, options);
  if (router == nullptr) {
    DGR_LOG_ERROR("pipeline: no router registered under '%s'", router_name.c_str());
    return {};
  }
  return rerun(*router, std::move(prior), plan);
}

PipelineResult Pipeline::run_stages(Router& router, const StagePlan& plan) {
  PipelineResult result;

  util::Timer timer;
  result.solution = router.route(*ctx_);
  const double route_seconds = timer.seconds();

  // Distinct from the adapters' engine-internal "route" stage so
  // stage_seconds("route") keeps meaning engine time only.
  result.stats = router.stats();
  result.stats.add_stage("route_total", route_seconds);

  if (plan.maze_refine) {
    post::MazeRefineOptions refine = options_.refine;
    refine.via_beta = ctx_->via_beta();
    timer.reset();
    result.refine = post::maze_refine(result.solution, ctx_->capacities(), refine);
    result.stats.add_stage("maze_refine", timer.seconds());
    // Refinement moved wires; re-sync the context's live demand.
    ctx_->reset_demand();
    ctx_->commit(result.solution);
  }

  if (plan.layer_assign) {
    timer.reset();
    result.layers = post::assign_layers(result.solution, ctx_->capacities(),
                                        options_.layers);
    result.stats.add_stage("layer_assign", timer.seconds());
  }

  timer.reset();
  result.metrics = ctx_->evaluate(result.solution);
  result.weighted_overflow = ctx_->weighted_overflow(result.solution);
  result.nets_with_overflow = ctx_->nets_with_overflow(result.solution);
  result.stats.add_stage("eval", timer.seconds());

  result.stats.peak_rss_bytes = util::peak_rss_bytes();
  return result;
}

}  // namespace dgr::pipeline
