#include "pipeline/pipeline.hpp"

#include <exception>
#include <memory>
#include <new>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/memprobe.hpp"
#include "util/timer.hpp"

namespace dgr::pipeline {

namespace {

/// Failures worth degrading for: the run died or ran out of some resource,
/// so a cheaper router can still salvage a result. Caller errors
/// (InvalidArgument and friends) surface instead — degrading would mask a
/// misconfiguration.
bool should_degrade(StatusCode code) {
  switch (code) {
    case StatusCode::kStageTimeout:
    case StatusCode::kNumericDivergence:
    case StatusCode::kResourceExhausted:
    case StatusCode::kFaultInjected:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

}  // namespace

Pipeline::Pipeline(RoutingContext& ctx, PipelineOptions options)
    : ctx_(&ctx), options_(options) {}

PipelineResult Pipeline::run(Router& router, const StagePlan& plan) {
  ctx_->clear_warm_start();
  return run_stages(router, plan);
}

PipelineResult Pipeline::run(const std::string& router_name, const RouterOptions& options,
                             const StagePlan& plan) {
  const std::unique_ptr<Router> router = make_router(router_name, options);
  if (router == nullptr) {
    DGR_LOG_ERROR("pipeline: no router registered under '%s'", router_name.c_str());
    PipelineResult result;
    result.stats.status = Status(StatusCode::kNotFound,
                                 "no router registered under '" + router_name + "'");
    return result;
  }
  return run(*router, plan);
}

PipelineResult Pipeline::rerun(Router& router, eval::RouteSolution prior,
                               const StagePlan& plan) {
  ctx_->set_warm_start(std::move(prior));
  return run_stages(router, plan);
}

PipelineResult Pipeline::rerun(const std::string& router_name, eval::RouteSolution prior,
                               const RouterOptions& options, const StagePlan& plan) {
  const std::unique_ptr<Router> router = make_router(router_name, options);
  if (router == nullptr) {
    DGR_LOG_ERROR("pipeline: no router registered under '%s'", router_name.c_str());
    PipelineResult result;
    result.stats.status = Status(StatusCode::kNotFound,
                                 "no router registered under '" + router_name + "'");
    return result;
  }
  return rerun(*router, std::move(prior), plan);
}

PipelineResult Pipeline::run_stages(Router& router, const StagePlan& plan) {
  DGR_TRACE_SCOPE("pipeline.run");
  obs::metrics().counter("pipeline.runs").add(1);
  PipelineResult result;

  // ---- route stage: budgeted and exception-hardened -----------------------
  util::Timer timer;
  if (options_.budgets.route_seconds > 0.0) {
    ctx_->set_stage_budget(options_.budgets.route_seconds);
  }
  Status route_status;
  try {
    DGR_TRACE_SCOPE("pipeline.route_total");
    if (DGR_FAULT_POINT("pipeline.stage")) {
      route_status = Status(StatusCode::kFaultInjected, "injected route-stage fault");
    } else {
      result.solution = router.route(*ctx_);
      result.stats = router.stats();
      route_status = result.stats.status;
    }
  } catch (const std::bad_alloc&) {
    result.stats = router.stats();
    route_status = Status(StatusCode::kResourceExhausted,
                          std::string(router.name()) + ": allocation failure in route stage");
  } catch (const std::exception& e) {
    result.stats = router.stats();
    route_status =
        Status(StatusCode::kInternal, std::string(router.name()) + ": " + e.what());
  }
  ctx_->clear_stage_budget();
  result.stats.router = std::string(router.name());
  result.stats.status = route_status;
  // Distinct from the adapters' engine-internal "route" stage so
  // stage_seconds("route") keeps meaning engine time only.
  result.stats.add_stage("route_total", timer.seconds());

  // ---- graceful degradation -----------------------------------------------
  const StageBudgets& budgets = options_.budgets;
  if (!route_status.ok() && should_degrade(route_status.code()) &&
      (budgets.degrade_on_divergence ||
       route_status.code() != StatusCode::kNumericDivergence) &&
      !budgets.fallback_router.empty() && budgets.fallback_router != router.name() &&
      has_router(budgets.fallback_router)) {
    DGR_LOG_WARN("pipeline: route stage of '%s' failed (%s); degrading to '%s'",
                 result.stats.router.c_str(), route_status.to_string().c_str(),
                 budgets.fallback_router.c_str());
    const std::unique_ptr<Router> fallback =
        make_router(budgets.fallback_router, options_.fallback_options);
    // Preserve the failed attempt's record — in particular its convergence
    // series (the DGR trajectory up to the divergence/timeout) — before the
    // fallback's stats take over the main record.
    {
      RouteAttempt failed;
      failed.router = result.stats.router;
      failed.status = route_status;
      failed.rollbacks = result.stats.rollbacks;
      failed.degraded = result.stats.degraded;
      failed.convergence = std::move(result.stats.convergence);
      result.stats.attempts.push_back(std::move(failed));
      result.stats.convergence = {};
    }
    // Warm-start the fallback from the failed stage's last healthy
    // extraction when it is a complete solution; otherwise route cold.
    if (budgets.warm_start_fallback && result.solution.design != nullptr &&
        !result.solution.nets.empty() && result.solution.connects_all_pins()) {
      ctx_->set_warm_start(std::move(result.solution));
    } else {
      ctx_->clear_warm_start();
      ctx_->reset_demand();
    }
    result.solution = {};
    timer.reset();
    try {
      result.solution = fallback->route(*ctx_);
      const RouterStats& fs = fallback->stats();
      for (const StageTime& st : fs.stages) {
        result.stats.add_stage("fallback_" + st.stage, st.seconds);
      }
      for (const auto& [counter, value] : fs.counters) {
        result.stats.add_counter("fallback_" + counter, value);
      }
      result.stats.status = fs.status;  // OK unless the fallback failed too
      result.stats.convergence = fs.convergence;
      RouteAttempt winner;
      winner.router = budgets.fallback_router;
      winner.status = fs.status;
      winner.rollbacks = fs.rollbacks;
      winner.degraded = fs.degraded;
      winner.convergence = fs.convergence;
      result.stats.attempts.push_back(std::move(winner));
    } catch (const std::exception& e) {
      result.stats.status =
          Status(StatusCode::kInternal, budgets.fallback_router + ": " + e.what());
      RouteAttempt winner;
      winner.router = budgets.fallback_router;
      winner.status = result.stats.status;
      result.stats.attempts.push_back(std::move(winner));
    }
    result.stats.add_stage("fallback_route", timer.seconds());
    result.stats.degraded = true;
  }
  if (result.stats.degraded) {
    result.stats.add_counter("degraded", 1.0);
    obs::metrics().counter("pipeline.degraded").add(1);
  }

  // ---- failure path: nothing routable came back ---------------------------
  if (result.solution.design == nullptr) {
    // Still report the run's timers and memory so post-mortems see where
    // the time and RSS went.
    result.stats.peak_rss_bytes = util::peak_rss_bytes();
    return result;
  }

  if (plan.maze_refine) {
    DGR_TRACE_SCOPE("pipeline.maze_refine");
    post::MazeRefineOptions refine = options_.refine;
    refine.via_beta = ctx_->via_beta();
    timer.reset();
    result.refine = post::maze_refine(result.solution, ctx_->capacities(), refine);
    result.stats.add_stage("maze_refine", timer.seconds());
    // Refinement moved wires; re-sync the context's live demand.
    ctx_->reset_demand();
    ctx_->commit(result.solution);
  }

  // ---- validation gate ----------------------------------------------------
  if (options_.validate) {
    DGR_TRACE_SCOPE("pipeline.validate");
    timer.reset();
    result.validation = validate_solution(*ctx_, result.solution);
    if (!result.validation.demand_consistent) {
      DGR_LOG_WARN("pipeline: %s; resyncing live demand",
                   result.validation.status.to_string().c_str());
      ctx_->reset_demand();
      ctx_->commit(result.solution);
    }
    if (!result.validation.broken_nets.empty()) {
      post::MazeRefineOptions ropts = options_.refine;
      ropts.via_beta = ctx_->via_beta();
      result.stats.repaired_nets = repair_broken_nets(
          *ctx_, result.solution, result.validation.broken_nets, ropts);
      result.stats.add_counter("repaired_nets",
                               static_cast<double>(result.stats.repaired_nets));
      // Re-validate; nets that stayed broken are a typed failure the caller
      // must see, not a silently wrong metrics row.
      result.validation = validate_solution(*ctx_, result.solution);
      if (!result.validation.broken_nets.empty()) {
        result.stats.status = result.validation.status;
      }
    }
    result.stats.add_stage("validate", timer.seconds());
  }

  if (plan.layer_assign) {
    DGR_TRACE_SCOPE("pipeline.layer_assign");
    timer.reset();
    result.layers = post::assign_layers(result.solution, ctx_->capacities(),
                                        options_.layers);
    result.stats.add_stage("layer_assign", timer.seconds());
  }

  {
    DGR_TRACE_SCOPE("pipeline.eval");
    timer.reset();
    result.metrics = ctx_->evaluate(result.solution);
    result.weighted_overflow = ctx_->weighted_overflow(result.solution);
    result.nets_with_overflow = ctx_->nets_with_overflow(result.solution);
    result.stats.add_stage("eval", timer.seconds());
  }

  result.stats.peak_rss_bytes = util::peak_rss_bytes();
  return result;
}

}  // namespace dgr::pipeline
