#include "pipeline/router.hpp"

#include <utility>

namespace dgr::pipeline {

void RouterStats::add_stage(std::string stage, double seconds) {
  stages.push_back({std::move(stage), seconds});
}

void RouterStats::add_counter(std::string name, double value) {
  counters.emplace_back(std::move(name), value);
}

double RouterStats::stage_seconds(std::string_view stage) const {
  double total = 0.0;
  for (const StageTime& s : stages) {
    if (s.stage == stage) total += s.seconds;
  }
  return total;
}

double RouterStats::total_seconds() const {
  double total = 0.0;
  for (const StageTime& s : stages) total += s.seconds;
  return total;
}

double RouterStats::counter(std::string_view name, double fallback) const {
  for (const auto& [key, value] : counters) {
    if (key == name) return value;
  }
  return fallback;
}

}  // namespace dgr::pipeline
