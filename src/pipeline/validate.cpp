#include "pipeline/validate.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "dag/path.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace dgr::pipeline {

namespace {

/// Legal geometry: every path has >= 2 waypoints, stays in-bounds, and each
/// leg is axis-aligned (direction legality — a diagonal leg has no g-cell
/// edge sequence). Monotonicity is NOT required: maze detours are legal.
bool net_geometry_legal(const eval::NetRoute& net, const grid::GCellGrid& grid) {
  for (const dag::PatternPath& path : net.paths) {
    if (!dag::path_is_valid(path, grid, /*require_monotone=*/false)) return false;
  }
  return true;
}

/// Pin connectivity of a single net, reusing the solution-level union-find
/// check on a one-net view (the paths vector is shared, not copied).
bool net_connected(const design::Design& design, const eval::NetRoute& net) {
  eval::RouteSolution one;
  one.design = &design;
  one.nets.push_back(net);
  return one.connects_all_pins();
}

}  // namespace

ValidationReport validate_solution(const RoutingContext& ctx,
                                   const eval::RouteSolution& sol) {
  DGR_TRACE_SCOPE("pipeline.validate_solution");
  ValidationReport report;
  const design::Design& design = ctx.design();
  const grid::GCellGrid& grid = design.grid();

  for (std::size_t i = 0; i < sol.nets.size(); ++i) {
    ++report.checked_nets;
    const eval::NetRoute& net = sol.nets[i];
    const bool injected = DGR_FAULT_POINT("pipeline.validate");
    if (injected || !net_geometry_legal(net, grid) || !net_connected(design, net)) {
      report.broken_nets.push_back(i);
    }
  }

  // Capacity accounting: the live demand must equal the solution's demand
  // recomputed from scratch, or every stage downstream prices congestion
  // against phantom (or missing) wires.
  const grid::DemandMap expected = sol.demand(ctx.via_beta());
  const std::vector<double>& live = ctx.demand().raw();
  const std::vector<double>& want = expected.raw();
  if (live.size() != want.size()) {
    report.demand_consistent = false;
    report.max_demand_error = std::numeric_limits<double>::infinity();
  } else {
    for (std::size_t e = 0; e < live.size(); ++e) {
      report.max_demand_error =
          std::max(report.max_demand_error, std::abs(live[e] - want[e]));
    }
    report.demand_consistent = report.max_demand_error <= 1e-6;
  }

  if (!report.broken_nets.empty() || !report.demand_consistent) {
    std::string what;
    if (!report.broken_nets.empty()) {
      what += std::to_string(report.broken_nets.size()) +
              " net(s) with illegal or disconnected geometry";
    }
    if (!report.demand_consistent) {
      if (!what.empty()) what += "; ";
      what += "live demand drifted from solution demand (max error " +
              std::to_string(report.max_demand_error) + ")";
    }
    report.status = Status(StatusCode::kValidationFailed, std::move(what));
  }
  obs::metrics().counter("pipeline.validate.checked_nets").add(report.checked_nets);
  if (!report.broken_nets.empty()) {
    obs::metrics()
        .counter("pipeline.validate.broken_nets")
        .add(static_cast<std::int64_t>(report.broken_nets.size()));
  }
  return report;
}

std::int64_t repair_broken_nets(RoutingContext& ctx, eval::RouteSolution& sol,
                                const std::vector<std::size_t>& broken,
                                const post::MazeRefineOptions& options) {
  const design::Design& design = ctx.design();
  post::MazeRefineOptions opts = options;
  opts.via_beta = ctx.via_beta();

  std::int64_t repaired = 0;
  for (const std::size_t slot : broken) {
    eval::NetRoute& net = sol.nets[slot];
    // Rip up the broken geometry so the reroute prices congestion without
    // the net's own (possibly bogus) contribution.
    ctx.commit(net, -1.0);
    eval::NetRoute candidate = post::maze_reroute_net(
        design, net.design_net, ctx.demand(), ctx.capacities(), opts);
    if (!candidate.paths.empty() && net_geometry_legal(candidate, design.grid()) &&
        net_connected(design, candidate)) {
      net = std::move(candidate);
      ++repaired;
    } else {
      DGR_LOG_WARN("validation gate: net %zu unrepairable", net.design_net);
    }
    // Recommit whichever geometry the net ended up with so the live demand
    // stays an exact account of the solution.
    ctx.commit(net, +1.0);
  }
  return repaired;
}

}  // namespace dgr::pipeline
