#include "pipeline/registry.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace dgr::pipeline {

namespace {

using FactoryMap = std::map<std::string, RouterFactory>;

/// Function-local static so the built-ins are registered on first use,
/// immune to static-initialisation-order issues.
FactoryMap& factories() {
  static FactoryMap map = [] {
    FactoryMap m;
    m["dgr"] = [](const RouterOptions& o) -> std::unique_ptr<Router> {
      return std::make_unique<DgrRouter>(o.dgr, o.forest);
    };
    m["cugr2-lite"] = [](const RouterOptions& o) -> std::unique_ptr<Router> {
      return std::make_unique<Cugr2Router>(o.cugr2);
    };
    m["sproute-lite"] = [](const RouterOptions& o) -> std::unique_ptr<Router> {
      return std::make_unique<SpRouteRouter>(o.sproute);
    };
    m["lagrangian"] = [](const RouterOptions& o) -> std::unique_ptr<Router> {
      return std::make_unique<LagrangianPipelineRouter>(o.lagrangian);
    };
    m["maze-refine"] = [](const RouterOptions& o) -> std::unique_ptr<Router> {
      return std::make_unique<MazeRefineRouter>(o.refine);
    };
    return m;
  }();
  return map;
}

}  // namespace

void register_router(const std::string& name, RouterFactory factory) {
  factories()[name] = std::move(factory);
}

std::unique_ptr<Router> make_router(const std::string& name, const RouterOptions& options) {
  const FactoryMap& map = factories();
  const auto it = map.find(name);
  if (it == map.end()) return nullptr;
  return it->second(options);
}

std::vector<std::string> registered_routers() {
  std::vector<std::string> names;
  for (const auto& [name, factory] : factories()) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

bool has_router(const std::string& name) { return factories().count(name) != 0; }

}  // namespace dgr::pipeline
