#include "pipeline/registry.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "partition/router.hpp"

namespace dgr::pipeline {

namespace {

using FactoryMap = std::map<std::string, RouterFactory>;

/// Function-local static so the built-ins are registered on first use,
/// immune to static-initialisation-order issues.
FactoryMap& factories() {
  static FactoryMap map = [] {
    FactoryMap m;
    m["dgr"] = [](const RouterOptions& o) -> std::unique_ptr<Router> {
      return std::make_unique<DgrRouter>(o.dgr, o.forest);
    };
    m["cugr2-lite"] = [](const RouterOptions& o) -> std::unique_ptr<Router> {
      return std::make_unique<Cugr2Router>(o.cugr2);
    };
    m["sproute-lite"] = [](const RouterOptions& o) -> std::unique_ptr<Router> {
      return std::make_unique<SpRouteRouter>(o.sproute);
    };
    m["lagrangian"] = [](const RouterOptions& o) -> std::unique_ptr<Router> {
      return std::make_unique<LagrangianPipelineRouter>(o.lagrangian);
    };
    m["maze-refine"] = [](const RouterOptions& o) -> std::unique_ptr<Router> {
      return std::make_unique<MazeRefineRouter>(o.refine);
    };
    m["partitioned"] = [](const RouterOptions& o) -> std::unique_ptr<Router> {
      // Ensure the plan actually partitions when selected by name: a
      // default-constructed config requests 0 regions, which the router
      // clamps to 1 (pure delegation) — surprising for make_router users.
      partition::PartitionConfig cfg = o.partition;
      if (cfg.partitions <= 1) cfg.partitions = 4;
      return std::make_unique<partition::PartitionedRouter>(std::move(cfg), o);
    };
    return m;
  }();
  return map;
}

}  // namespace

void register_router(const std::string& name, RouterFactory factory) {
  factories()[name] = std::move(factory);
}

std::unique_ptr<Router> make_router(const std::string& name, const RouterOptions& options) {
  const FactoryMap& map = factories();
  const auto it = map.find(name);
  if (it == map.end()) return nullptr;
  return it->second(options);
}

std::vector<std::string> registered_routers() {
  std::vector<std::string> names;
  for (const auto& [name, factory] : factories()) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

bool has_router(const std::string& name) { return factories().count(name) != 0; }

}  // namespace dgr::pipeline
