#pragma once
/// \file
/// RoutingContext: the shared substrate every router stage operates on.
///
/// One context is built per routing problem and owns everything the four
/// router families used to duplicate internally or that the bench harnesses
/// used to hand-wire: the design, its g-cell grid, the per-edge 2D
/// capacities (Eq. 1 or an explicit override for the Table 1 protocol), a
/// live DemandMap with commit/uncommit bookkeeping, a seeded RNG, a cached
/// DAG forest (DGR's candidate pools), and the shared evaluation helpers.
///
/// Warm-start semantics: set_warm_start() stores a prior RouteSolution and
/// seeds the live demand from it. Routers that support warm starts (see
/// Router::supports_warm_start) re-enter their route stage from that
/// solution — pipeline-level rip-up-and-reroute and cross-router
/// composition (e.g. DGR -> maze refine, SPRoute -> CUGR2 RRR) both hang
/// off this hook.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "dag/forest.hpp"
#include "design/design.hpp"
#include "eval/metrics.hpp"
#include "eval/solution.hpp"
#include "grid/demand_map.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace dgr::pipeline {

struct ContextOptions {
  /// Explicit per-edge 2D capacities (the Table 1 uniform-capacity
  /// protocol). Empty = derive from the design via Eq. (1).
  std::vector<float> capacities;
  /// Eq. (1) beta used when deriving capacities from the design.
  float capacity_beta = 0.5f;
  /// Via demand charged per bend; the single source of truth for every
  /// stage's demand bookkeeping, metrics, and the forest's via model.
  float via_beta = 0.5f;
  /// Seed for the context RNG (stochastic routers fork from it).
  std::uint64_t seed = 1;
};

class RoutingContext {
 public:
  /// `design` must outlive the context.
  explicit RoutingContext(const design::Design& design, ContextOptions options = {});

  const design::Design& design() const { return *design_; }
  const grid::GCellGrid& grid() const { return design_->grid(); }
  const std::vector<float>& capacities() const { return capacities_; }
  float via_beta() const { return options_.via_beta; }
  std::uint64_t seed() const { return options_.seed; }
  util::Rng& rng() { return rng_; }

  // ---- live demand bookkeeping --------------------------------------------
  grid::DemandMap& demand() { return demand_; }
  const grid::DemandMap& demand() const { return demand_; }
  void reset_demand() { demand_.clear(); }
  /// Adds (`sign` = +1) or removes (`sign` = -1) one net's contribution.
  void commit(const eval::NetRoute& net, double sign = 1.0);
  /// Commits every net of a solution.
  void commit(const eval::RouteSolution& sol, double sign = 1.0);

  // ---- warm start ----------------------------------------------------------
  /// Stores `prior` and re-seeds the live demand from it. The next route
  /// stage of a warm-start-capable router resumes from this solution.
  void set_warm_start(eval::RouteSolution prior);
  /// The stored prior solution, or nullptr when routing cold.
  const eval::RouteSolution* warm_start() const {
    return has_warm_start_ ? &warm_start_ : nullptr;
  }
  void clear_warm_start();

  // ---- stage budget (cooperative deadline) ---------------------------------
  /// Arms a wall-clock budget for the stage about to run. Routers poll
  /// stage_budget_remaining() and stop cooperatively (DGR clamps its train
  /// budget, the baselines check between rounds); the Pipeline arms this
  /// from PipelineOptions::budgets before the route stage and clears it
  /// after. `seconds` <= 0 disarms.
  void set_stage_budget(double seconds);
  void clear_stage_budget() { stage_budget_seconds_ = 0.0; }
  bool stage_budget_armed() const { return stage_budget_seconds_ > 0.0; }
  /// Seconds left of the armed budget (>= 0); +inf when disarmed.
  double stage_budget_remaining() const;

  /// Arms an external cooperative cancel flag for the stage about to run.
  /// Routers poll it at their budget checkpoints (DGR per train iteration,
  /// the baselines between rounds) and stop at the best-so-far state as if
  /// the wall-clock budget expired. The flag is owned by the caller (the
  /// serve daemon's deadline watchdog sets it from another thread) and must
  /// outlive the stage; nullptr disarms.
  void set_cancel_flag(const std::atomic<bool>* flag) { cancel_flag_ = flag; }
  const std::atomic<bool>* cancel_flag() const { return cancel_flag_; }
  bool cancel_requested() const {
    return cancel_flag_ != nullptr && cancel_flag_->load(std::memory_order_relaxed);
  }

  // ---- DAG forest cache ----------------------------------------------------
  /// The DAG forest for this design, built on first use and cached; a call
  /// with different options rebuilds, invalidating references to the
  /// previously returned forest. `options.via_demand_beta` is ignored —
  /// the context's via_beta is stamped in so every consumer (DGR, ILP
  /// oracle) prices vias identically. Shared so repeated DGR runs (seed
  /// sweeps, hyper-parameter search) pay construction once.
  const dag::DagForest& forest(const dag::ForestOptions& options = {});
  /// Whether a forest with exactly these options is already cached.
  bool has_forest(const dag::ForestOptions& options) const;

  // ---- shared evaluation ---------------------------------------------------
  /// Metrics of a solution against this context's capacities and via model.
  eval::Metrics evaluate(const eval::RouteSolution& sol) const;
  double weighted_overflow(const eval::RouteSolution& sol) const;
  std::int64_t nets_with_overflow(const eval::RouteSolution& sol) const;

 private:
  const design::Design* design_ = nullptr;
  ContextOptions options_;
  std::vector<float> capacities_;
  grid::DemandMap demand_;
  util::Rng rng_;
  eval::RouteSolution warm_start_;
  bool has_warm_start_ = false;
  std::unique_ptr<dag::DagForest> forest_;
  dag::ForestOptions forest_options_;
  double stage_budget_seconds_ = 0.0;
  util::Timer stage_timer_;
  const std::atomic<bool>* cancel_flag_ = nullptr;
};

}  // namespace dgr::pipeline
