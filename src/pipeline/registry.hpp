#pragma once
/// \file
/// String -> factory router registry for config-driven engine selection.
///
/// The four built-in router families plus the maze-refinement stage are
/// pre-registered under "dgr", "cugr2-lite", "sproute-lite", "lagrangian"
/// and "maze-refine"; additional engines can be registered at runtime.
/// Factories receive a RouterOptions bundle so harnesses drive every
/// engine's configuration through one struct.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pipeline/adapters.hpp"

namespace dgr::pipeline {

using RouterFactory =
    std::function<std::unique_ptr<Router>(const RouterOptions& options)>;

/// Registers (or replaces) a factory under `name`.
void register_router(const std::string& name, RouterFactory factory);

/// Instantiates the router registered under `name`; nullptr when unknown.
std::unique_ptr<Router> make_router(const std::string& name,
                                    const RouterOptions& options = {});

/// All registered names, sorted (built-ins included).
std::vector<std::string> registered_routers();

/// Whether `name` resolves to a registered factory.
bool has_router(const std::string& name);

}  // namespace dgr::pipeline
