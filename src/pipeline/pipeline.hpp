#pragma once
/// \file
/// The Pipeline stage orchestrator: one code path from any Router to the
/// paper's metrics.
///
/// Stages, in order (each timed into the run's RouterStats):
///   route_total  Router::route(ctx) wall time — the router itself reports
///                sub-stages (DGR: "forest" / "train" / "extract";
///                baselines: "route" for engine-internal time)
///   maze_refine  optional post::maze_refine (Section 4.6)
///   layer_assign optional DP layer assignment to 3D (Section 4.6)
///   eval         shared metric computation (Tables 2-3 columns, Fig. 6
///                weighted overflow) against the context's capacities
///
/// Re-entry: Pipeline::rerun() seeds the context's warm start from a prior
/// solution and runs the route stage again, giving cross-router composition
/// (DGR -> "maze-refine", any router -> "cugr2-lite" RRR) and
/// pipeline-level rip-up-and-reroute.

#include <string>

#include "eval/metrics.hpp"
#include "pipeline/registry.hpp"
#include "pipeline/router.hpp"
#include "pipeline/validate.hpp"
#include "post/layer_assign.hpp"
#include "post/maze_refine.hpp"

namespace dgr::pipeline {

/// Which optional stages a particular run executes.
struct StagePlan {
  bool maze_refine = false;   ///< run the shared maze-refinement stage
  bool layer_assign = true;   ///< run DP layer assignment (3D metrics)
};

/// Route-stage fault tolerance: wall-clock budget and degraded fallback.
struct StageBudgets {
  /// Wall-clock budget for the route stage in seconds; 0 = unlimited.
  /// Routers poll the armed budget cooperatively (DGR clamps its training
  /// budget, the baselines stop between rounds).
  double route_seconds = 0.0;
  /// Registry name to fall back to when the route stage fails with a
  /// degradable status (timeout, divergence, resource exhaustion, internal
  /// error, injected fault). Empty disables degradation: the typed error is
  /// surfaced in stats.status instead. Non-degradable failures (e.g.
  /// InvalidArgument from a cold refinement-only router) always surface.
  std::string fallback_router = "cugr2-lite";
  /// Warm-start the fallback from the failed router's last healthy
  /// extraction when that solution is complete; otherwise route cold.
  bool warm_start_fallback = true;
  /// When false, kNumericDivergence surfaces in stats.status instead of
  /// degrading — for callers that own a retry-with-reseed loop (the serve
  /// daemon retries divergence with a fresh seed before degrading on its
  /// final attempt). All other degradable codes still degrade.
  bool degrade_on_divergence = true;
};

struct PipelineOptions {
  post::MazeRefineOptions refine;   ///< maze_refine stage parameters
  post::LayerAssignOptions layers;  ///< layer_assign stage parameters
  StageBudgets budgets;             ///< route-stage budget + degradation
  RouterOptions fallback_options;   ///< options for the fallback router
  /// Post-route validation gate: per-net geometry/connectivity checks plus
  /// demand accounting against the live DemandMap; broken nets are repaired
  /// with a congestion-priced maze reroute before evaluation.
  bool validate = true;
};

/// Everything a harness reports about one routing run.
struct PipelineResult {
  eval::RouteSolution solution;
  eval::Metrics metrics;                ///< shared eval stage (2D)
  double weighted_overflow = 0.0;       ///< Fig. 6 y-axis metric
  std::int64_t nets_with_overflow = 0;  ///< n1 (2D stand-in)
  post::LayerAssignment layers;         ///< valid when plan.layer_assign
  post::MazeRefineStats refine;         ///< valid when plan.maze_refine
  ValidationReport validation;          ///< valid when options.validate
  RouterStats stats;                    ///< router sub-stages + pipeline stages
};

class Pipeline {
 public:
  explicit Pipeline(RoutingContext& ctx, PipelineOptions options = {});

  /// Runs `router` cold (clears any warm start first), then the planned
  /// post/eval stages.
  PipelineResult run(Router& router, const StagePlan& plan = {});

  /// Registry convenience: instantiates `router_name` with `options`, runs
  /// it, discards it. Returns an empty result (no nets, empty stats.router)
  /// when the name is not registered.
  PipelineResult run(const std::string& router_name, const RouterOptions& options = {},
                     const StagePlan& plan = {});

  /// Warm re-entry: seeds the context's warm start (and live demand) from
  /// `prior`, then runs `router`. Routers without warm-start support route
  /// cold from the seeded demand state.
  PipelineResult rerun(Router& router, eval::RouteSolution prior,
                       const StagePlan& plan = {});
  PipelineResult rerun(const std::string& router_name, eval::RouteSolution prior,
                       const RouterOptions& options = {}, const StagePlan& plan = {});

  RoutingContext& context() { return *ctx_; }
  PipelineOptions& options() { return options_; }

 private:
  PipelineResult run_stages(Router& router, const StagePlan& plan);

  RoutingContext* ctx_;
  PipelineOptions options_;
};

}  // namespace dgr::pipeline
