#include "pipeline/adapters.hpp"

#include <utility>

#include "util/log.hpp"
#include "util/timer.hpp"

namespace dgr::pipeline {

namespace {

/// Leaves the context's live demand equal to the solution's demand so the
/// next stage (or a warm re-entry) sees the true post-route state.
void sync_demand(RoutingContext& ctx, const eval::RouteSolution& sol) {
  ctx.reset_demand();
  ctx.commit(sol);
}

}  // namespace

// ---------------------------------------------------------------------------
// DgrRouter
// ---------------------------------------------------------------------------

DgrRouter::DgrRouter(core::DgrConfig config, dag::ForestOptions forest)
    : config_(config), forest_(forest) {}

eval::RouteSolution DgrRouter::route(RoutingContext& ctx) {
  reset_stats();
  dag::ForestOptions fopts = forest_;
  fopts.via_demand_beta = ctx.via_beta();

  util::Timer timer;
  const dag::DagForest& forest = ctx.forest(fopts);
  stats_.add_stage("forest", timer.seconds());

  core::DgrSolver solver(forest, ctx.capacities(), config_);
  timer.reset();
  const core::TrainStats train = solver.train();
  stats_.add_stage("train", timer.seconds());

  timer.reset();
  eval::RouteSolution sol = solver.extract();
  stats_.add_stage("extract", timer.seconds());

  stats_.solver_bytes = forest.memory_bytes() + solver.relaxation().memory_bytes() +
                        train.tape_bytes;
  stats_.add_counter("iterations", static_cast<double>(train.iterations_run));
  stats_.add_counter("final_cost", train.final_cost.total);
  stats_.add_counter("path_candidates", static_cast<double>(forest.paths().size()));
  sync_demand(ctx, sol);
  return sol;
}

// ---------------------------------------------------------------------------
// Cugr2Router
// ---------------------------------------------------------------------------

Cugr2Router::Cugr2Router(routers::Cugr2LiteOptions options) : options_(options) {}

eval::RouteSolution Cugr2Router::route(RoutingContext& ctx) {
  reset_stats();
  routers::Cugr2LiteOptions opts = options_;
  opts.via_beta = ctx.via_beta();
  routers::Cugr2Lite router(ctx.design(), ctx.capacities(), opts);
  routers::Cugr2LiteStats rs;
  eval::RouteSolution sol = router.route(&rs, ctx.warm_start());
  stats_.add_stage("route", rs.route_seconds);
  stats_.add_counter("rounds", static_cast<double>(rs.rounds_run));
  stats_.add_counter("nets_rerouted", static_cast<double>(rs.nets_rerouted));
  stats_.add_counter("warm_started", ctx.warm_start() != nullptr ? 1.0 : 0.0);
  sync_demand(ctx, sol);
  return sol;
}

// ---------------------------------------------------------------------------
// SpRouteRouter
// ---------------------------------------------------------------------------

SpRouteRouter::SpRouteRouter(routers::SpRouteLiteOptions options) : options_(options) {}

eval::RouteSolution SpRouteRouter::route(RoutingContext& ctx) {
  reset_stats();
  routers::SpRouteLiteOptions opts = options_;
  opts.via_beta = ctx.via_beta();
  routers::SpRouteLite router(ctx.design(), ctx.capacities(), opts);
  routers::SpRouteLiteStats rs;
  eval::RouteSolution sol = router.route(&rs, ctx.warm_start());
  stats_.add_stage("route", rs.route_seconds);
  stats_.add_counter("rounds", static_cast<double>(rs.rounds_run));
  stats_.add_counter("nets_rerouted", static_cast<double>(rs.reroutes));
  stats_.add_counter("warm_started", ctx.warm_start() != nullptr ? 1.0 : 0.0);
  sync_demand(ctx, sol);
  return sol;
}

// ---------------------------------------------------------------------------
// LagrangianPipelineRouter
// ---------------------------------------------------------------------------

LagrangianPipelineRouter::LagrangianPipelineRouter(routers::LagrangianOptions options)
    : options_(options) {}

eval::RouteSolution LagrangianPipelineRouter::route(RoutingContext& ctx) {
  reset_stats();
  routers::LagrangianOptions opts = options_;
  opts.via_beta = ctx.via_beta();
  routers::LagrangianRouter router(ctx.design(), ctx.capacities(), opts);
  routers::LagrangianStats rs;
  eval::RouteSolution sol = router.route(&rs);
  stats_.add_stage("route", rs.route_seconds);
  stats_.add_counter("rounds", static_cast<double>(rs.rounds_run));
  stats_.add_counter("final_step", rs.final_step);
  sync_demand(ctx, sol);
  return sol;
}

// ---------------------------------------------------------------------------
// MazeRefineRouter
// ---------------------------------------------------------------------------

MazeRefineRouter::MazeRefineRouter(post::MazeRefineOptions options) : options_(options) {}

eval::RouteSolution MazeRefineRouter::route(RoutingContext& ctx) {
  reset_stats();
  if (ctx.warm_start() == nullptr) {
    DGR_LOG_WARN("maze-refine router needs a warm start; returning empty solution");
    return {};
  }
  eval::RouteSolution sol = *ctx.warm_start();
  post::MazeRefineOptions opts = options_;
  opts.via_beta = ctx.via_beta();
  util::Timer timer;
  const post::MazeRefineStats rs = post::maze_refine(sol, ctx.capacities(), opts);
  stats_.add_stage("maze_refine", timer.seconds());
  stats_.add_counter("rounds", static_cast<double>(rs.rounds_run));
  stats_.add_counter("nets_rerouted", static_cast<double>(rs.nets_rerouted));
  stats_.add_counter("nets_improved", static_cast<double>(rs.nets_improved));
  stats_.add_counter("overflow_before", rs.overflow_before);
  stats_.add_counter("overflow_after", rs.overflow_after);
  sync_demand(ctx, sol);
  return sol;
}

}  // namespace dgr::pipeline
