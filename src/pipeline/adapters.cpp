#include "pipeline/adapters.hpp"

#include <algorithm>
#include <new>
#include <utility>

#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace dgr::pipeline {

namespace {

/// Leaves the context's live demand equal to the solution's demand so the
/// next stage (or a warm re-entry) sees the true post-route state.
void sync_demand(RoutingContext& ctx, const eval::RouteSolution& sol) {
  ctx.reset_demand();
  ctx.commit(sol);
}

/// Tightest of the engine's own budget and the context's armed stage
/// budget. Returns 0 (= unlimited) when neither constrains the run; an
/// already-expired stage budget maps to an epsilon so the engine stops at
/// its first deadline poll instead of running unbounded.
double effective_budget(const RoutingContext& ctx, double own_budget) {
  if (!ctx.stage_budget_armed()) return own_budget;
  const double remaining = std::max(ctx.stage_budget_remaining(), 1e-9);
  return own_budget > 0.0 ? std::min(own_budget, remaining) : remaining;
}

}  // namespace

// ---------------------------------------------------------------------------
// DgrRouter
// ---------------------------------------------------------------------------

DgrRouter::DgrRouter(core::DgrConfig config, dag::ForestOptions forest)
    : config_(config), forest_(forest) {}

eval::RouteSolution DgrRouter::route(RoutingContext& ctx) {
  DGR_TRACE_SCOPE("route.dgr");
  reset_stats();
  if (DGR_FAULT_POINT("pipeline.alloc")) throw std::bad_alloc();
  dag::ForestOptions fopts = forest_;
  fopts.via_demand_beta = ctx.via_beta();

  util::Timer timer;
  const dag::DagForest& forest = ctx.forest(fopts);
  stats_.add_stage("forest", timer.seconds());

  // The stage budget covers the whole route stage: whatever the forest
  // build consumed comes out of the solver's training budget.
  core::DgrConfig config = config_;
  config.time_budget_seconds = effective_budget(ctx, config.time_budget_seconds);
  config.cancel_flag = ctx.cancel_flag();

  core::DgrSolver solver(forest, ctx.capacities(), config);
  timer.reset();
  core::TrainStats train = solver.train();
  stats_.add_stage("train", timer.seconds());

  // Even on a non-OK status the solver holds its best healthy checkpoint,
  // so the extraction below is the last good solution — the pipeline uses
  // it to warm-start a fallback router when it degrades.
  timer.reset();
  eval::RouteSolution sol = solver.extract();
  stats_.add_stage("extract", timer.seconds());

  stats_.solver_bytes = forest.memory_bytes() + solver.relaxation().memory_bytes() +
                        train.tape_bytes;
  // Arena high-water mark of the reused tape, reported on its own so memory
  // regressions in the AD substrate are not masked by forest growth.
  stats_.add_counter("tape_bytes", static_cast<double>(train.tape_bytes));
  stats_.add_counter("iterations", static_cast<double>(train.iterations_run));
  stats_.add_counter("final_cost", train.final_cost.total);
  stats_.add_counter("path_candidates", static_cast<double>(forest.paths().size()));
  stats_.status = train.status;
  stats_.rollbacks = train.rollbacks;
  if (train.rollbacks > 0) {
    stats_.add_counter("rollbacks", static_cast<double>(train.rollbacks));
  }
  // Surface the solver's convergence series (empty unless
  // config_.record_telemetry) through the uniform stats record.
  stats_.convergence = std::move(train.telemetry);
  sync_demand(ctx, sol);
  return sol;
}

// ---------------------------------------------------------------------------
// Cugr2Router
// ---------------------------------------------------------------------------

Cugr2Router::Cugr2Router(routers::Cugr2LiteOptions options) : options_(options) {}

eval::RouteSolution Cugr2Router::route(RoutingContext& ctx) {
  DGR_TRACE_SCOPE("route.cugr2-lite");
  reset_stats();
  routers::Cugr2LiteOptions opts = options_;
  opts.via_beta = ctx.via_beta();
  opts.time_budget_seconds = effective_budget(ctx, opts.time_budget_seconds);
  opts.cancel_flag = ctx.cancel_flag();
  routers::Cugr2Lite router(ctx.design(), ctx.capacities(), opts);
  routers::Cugr2LiteStats rs;
  eval::RouteSolution sol = router.route(&rs, ctx.warm_start());
  stats_.add_stage("route", rs.route_seconds);
  stats_.add_counter("rounds", static_cast<double>(rs.rounds_run));
  stats_.add_counter("nets_rerouted", static_cast<double>(rs.nets_rerouted));
  stats_.add_counter("warm_started", ctx.warm_start() != nullptr ? 1.0 : 0.0);
  // A budget stop still returns the best whole snapshot; the solution is
  // usable but the refinement was cut short, so mark it degraded.
  stats_.degraded = rs.timed_out;
  sync_demand(ctx, sol);
  return sol;
}

// ---------------------------------------------------------------------------
// SpRouteRouter
// ---------------------------------------------------------------------------

SpRouteRouter::SpRouteRouter(routers::SpRouteLiteOptions options) : options_(options) {}

eval::RouteSolution SpRouteRouter::route(RoutingContext& ctx) {
  DGR_TRACE_SCOPE("route.sproute-lite");
  reset_stats();
  routers::SpRouteLiteOptions opts = options_;
  opts.via_beta = ctx.via_beta();
  opts.time_budget_seconds = effective_budget(ctx, opts.time_budget_seconds);
  opts.cancel_flag = ctx.cancel_flag();
  routers::SpRouteLite router(ctx.design(), ctx.capacities(), opts);
  routers::SpRouteLiteStats rs;
  eval::RouteSolution sol = router.route(&rs, ctx.warm_start());
  stats_.add_stage("route", rs.route_seconds);
  stats_.add_counter("rounds", static_cast<double>(rs.rounds_run));
  stats_.add_counter("nets_rerouted", static_cast<double>(rs.reroutes));
  stats_.add_counter("warm_started", ctx.warm_start() != nullptr ? 1.0 : 0.0);
  stats_.degraded = rs.timed_out;
  sync_demand(ctx, sol);
  return sol;
}

// ---------------------------------------------------------------------------
// LagrangianPipelineRouter
// ---------------------------------------------------------------------------

LagrangianPipelineRouter::LagrangianPipelineRouter(routers::LagrangianOptions options)
    : options_(options) {}

eval::RouteSolution LagrangianPipelineRouter::route(RoutingContext& ctx) {
  DGR_TRACE_SCOPE("route.lagrangian");
  reset_stats();
  routers::LagrangianOptions opts = options_;
  opts.via_beta = ctx.via_beta();
  routers::LagrangianRouter router(ctx.design(), ctx.capacities(), opts);
  routers::LagrangianStats rs;
  eval::RouteSolution sol = router.route(&rs);
  stats_.add_stage("route", rs.route_seconds);
  stats_.add_counter("rounds", static_cast<double>(rs.rounds_run));
  stats_.add_counter("final_step", rs.final_step);
  sync_demand(ctx, sol);
  return sol;
}

// ---------------------------------------------------------------------------
// MazeRefineRouter
// ---------------------------------------------------------------------------

MazeRefineRouter::MazeRefineRouter(post::MazeRefineOptions options) : options_(options) {}

eval::RouteSolution MazeRefineRouter::route(RoutingContext& ctx) {
  DGR_TRACE_SCOPE("route.maze-refine");
  reset_stats();
  if (ctx.warm_start() == nullptr) {
    DGR_LOG_WARN("maze-refine router needs a warm start; returning empty solution");
    stats_.status = Status(StatusCode::kInvalidArgument,
                           "maze-refine requires a warm start");
    return {};
  }
  eval::RouteSolution sol = *ctx.warm_start();
  post::MazeRefineOptions opts = options_;
  opts.via_beta = ctx.via_beta();
  util::Timer timer;
  const post::MazeRefineStats rs = post::maze_refine(sol, ctx.capacities(), opts);
  stats_.add_stage("maze_refine", timer.seconds());
  stats_.add_counter("rounds", static_cast<double>(rs.rounds_run));
  stats_.add_counter("nets_rerouted", static_cast<double>(rs.nets_rerouted));
  stats_.add_counter("nets_improved", static_cast<double>(rs.nets_improved));
  stats_.add_counter("overflow_before", rs.overflow_before);
  stats_.add_counter("overflow_after", rs.overflow_after);
  sync_demand(ctx, sol);
  return sol;
}

}  // namespace dgr::pipeline
