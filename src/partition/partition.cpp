#include "partition/partition.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace dgr::partition {

namespace {

using geom::Coord;
using geom::Point;
using geom::Rect;

/// Per-cell split weight. Congestion-aware seeding charges each cell one
/// unit of base area plus its pin count plus half of each incident edge's
/// committed demand; uniform seeding is encoded as an empty vector.
std::vector<double> cell_weights(const design::Design& design,
                                 const grid::DemandMap* committed) {
  const grid::GCellGrid& grid = design.grid();
  std::vector<double> w(static_cast<std::size_t>(grid.cell_count()), 1.0);
  const std::vector<float> pins = design.pin_density();
  for (std::size_t c = 0; c < w.size(); ++c) w[c] += pins[c];
  if (committed != nullptr) {
    for (grid::EdgeId e = 0; e < grid.edge_count(); ++e) {
      const double d = committed->demand(e);
      if (d == 0.0) continue;
      const auto [a, b] = grid.edge_cells(e);
      w[static_cast<std::size_t>(grid.cell_id(a))] += 0.5 * d;
      w[static_cast<std::size_t>(grid.cell_id(b))] += 0.5 * d;
    }
  }
  return w;
}

double rect_row_weight(const std::vector<double>& w, int grid_w, const Rect& r, Coord y) {
  double s = 0.0;
  for (Coord x = r.lo.x; x <= r.hi.x; ++x) {
    s += w[static_cast<std::size_t>(y) * grid_w + x];
  }
  return s;
}

double rect_col_weight(const std::vector<double>& w, int grid_w, const Rect& r, Coord x) {
  double s = 0.0;
  for (Coord y = r.lo.y; y <= r.hi.y; ++y) {
    s += w[static_cast<std::size_t>(y) * grid_w + x];
  }
  return s;
}

/// Splits `rect` into k tiles by recursive weighted bisection. The split
/// coordinate minimises |prefix - (k/2)/k * total| over the legal range
/// (both halves keep >= min_extent cells), scanning low-to-high so ties
/// resolve to the lowest coordinate — a pure function of its inputs.
void split_rect(const Rect& rect, int k, int min_extent,
                const std::vector<double>& weights, int grid_w,
                std::vector<Rect>& out) {
  const Coord wx = static_cast<Coord>(rect.hi.x - rect.lo.x + 1);
  const Coord wy = static_cast<Coord>(rect.hi.y - rect.lo.y + 1);
  bool split_x = wx >= wy;  // longer axis first; ties split vertically (x)
  if (split_x && wx < 2 * min_extent) split_x = false;
  if (!split_x && wy < 2 * min_extent) split_x = wx >= 2 * min_extent;
  if (k <= 1 || (wx < 2 * min_extent && wy < 2 * min_extent)) {
    out.push_back(rect);
    return;
  }
  const int kl = k / 2;
  const int kr = k - kl;
  const double frac = static_cast<double>(kl) / static_cast<double>(k);

  const Coord lo = split_x ? rect.lo.x : rect.lo.y;
  const Coord hi = split_x ? rect.hi.x : rect.hi.y;
  // Cut after coordinate c: low half [lo, c], high half [c+1, hi].
  const Coord c_min = static_cast<Coord>(lo + min_extent - 1);
  const Coord c_max = static_cast<Coord>(hi - min_extent);
  Coord cut = c_min;
  if (weights.empty()) {
    const Coord extent = static_cast<Coord>(hi - lo + 1);
    cut = static_cast<Coord>(lo + (static_cast<long long>(extent) * kl) / k - 1);
    cut = std::clamp(cut, c_min, c_max);
  } else {
    double total = 0.0;
    for (Coord c = lo; c <= hi; ++c) {
      total += split_x ? rect_col_weight(weights, grid_w, rect, c)
                       : rect_row_weight(weights, grid_w, rect, c);
    }
    double prefix = 0.0;
    double best = -1.0;
    for (Coord c = lo; c <= c_max; ++c) {
      prefix += split_x ? rect_col_weight(weights, grid_w, rect, c)
                        : rect_row_weight(weights, grid_w, rect, c);
      if (c < c_min) continue;
      const double err = std::abs(prefix - frac * total);
      if (best < 0.0 || err < best) {
        best = err;
        cut = c;
      }
    }
  }

  Rect low = rect;
  Rect high = rect;
  if (split_x) {
    low.hi.x = cut;
    high.lo.x = static_cast<Coord>(cut + 1);
  } else {
    low.hi.y = cut;
    high.lo.y = static_cast<Coord>(cut + 1);
  }
  split_rect(low, kl, min_extent, weights, grid_w, out);
  split_rect(high, kr, min_extent, weights, grid_w, out);
}

Rect clamp_to_grid(Rect r, const grid::GCellGrid& grid) {
  r.lo.x = std::max<Coord>(r.lo.x, 0);
  r.lo.y = std::max<Coord>(r.lo.y, 0);
  r.hi.x = std::min<Coord>(r.hi.x, static_cast<Coord>(grid.width() - 1));
  r.hi.y = std::min<Coord>(r.hi.y, static_cast<Coord>(grid.height() - 1));
  return r;
}

}  // namespace

PartitionPlan build_partition_plan(const design::Design& design,
                                   const PartitionConfig& config,
                                   const grid::DemandMap* committed) {
  const grid::GCellGrid& grid = design.grid();
  PartitionPlan plan;

  const Rect full{{0, 0},
                  {static_cast<Coord>(grid.width() - 1),
                   static_cast<Coord>(grid.height() - 1)}};
  const int k = std::max(1, config.partitions);
  const int min_extent = std::max(1, config.min_region_extent);
  std::vector<double> weights;
  if (config.seeding == Seeding::kCongestionAware) {
    weights = cell_weights(design, committed);
  }
  std::vector<Rect> cores;
  split_rect(full, k, min_extent, weights, grid.width(), cores);

  const int halo = std::max(0, config.halo);
  plan.regions.reserve(cores.size());
  for (const Rect& core : cores) {
    plan.regions.push_back(Region{core, clamp_to_grid(core.inflated(halo), grid)});
  }

  plan.net_region.assign(design.net_count(), kNetLocal);
  plan.region_nets.resize(plan.regions.size());
  for (const std::size_t idx : design.routable_nets()) {
    const Rect box = Rect::bounding_box(design.net(idx).pins);
    int region = kNetCross;
    for (std::size_t r = 0; r < plan.regions.size(); ++r) {
      // Cores are disjoint axis-aligned tiles, so containing both corners
      // means containing the whole box; at most one region matches.
      if (plan.regions[r].core.contains(box.lo) && plan.regions[r].core.contains(box.hi)) {
        region = static_cast<int>(r);
        break;
      }
    }
    if (region == kNetCross) {
      // A net that straddles a cut but still fits one region's halo window
      // is routed region-locally — that is what the halo margin is for.
      // Overlapping halo traffic from the neighbouring region is resolved
      // by the reconciliation pass; first match in region order keeps the
      // assignment deterministic. Only nets no window can hold stay serial.
      for (std::size_t r = 0; r < plan.regions.size(); ++r) {
        if (plan.regions[r].halo.contains(box.lo) &&
            plan.regions[r].halo.contains(box.hi)) {
          region = static_cast<int>(r);
          break;
        }
      }
    }
    plan.net_region[idx] = region;
    if (region >= 0) {
      plan.region_nets[static_cast<std::size_t>(region)].push_back(idx);
    } else {
      plan.cross_nets.push_back(idx);
    }
  }
  return plan;
}

RegionSlice slice_region(const grid::GCellGrid& parent, const Region& region) {
  RegionSlice slice;
  slice.origin = region.halo.lo;
  const int sw = region.halo.width() + 1;
  const int sh = region.halo.height() + 1;
  slice.grid = grid::GCellGrid(sw, sh, parent.layers());
  slice.parent_edge.assign(static_cast<std::size_t>(slice.grid.edge_count()),
                           grid::kInvalidEdge);
  const Coord ox = slice.origin.x;
  const Coord oy = slice.origin.y;
  for (Coord y = 0; y < sh; ++y) {
    for (Coord x = 0; x + 1 < sw; ++x) {
      slice.parent_edge[static_cast<std::size_t>(slice.grid.h_edge(x, y))] =
          parent.h_edge(static_cast<Coord>(x + ox), static_cast<Coord>(y + oy));
    }
  }
  for (Coord y = 0; y + 1 < sh; ++y) {
    for (Coord x = 0; x < sw; ++x) {
      slice.parent_edge[static_cast<std::size_t>(slice.grid.v_edge(x, y))] =
          parent.v_edge(static_cast<Coord>(x + ox), static_cast<Coord>(y + oy));
    }
  }
  return slice;
}

std::vector<float> slice_capacities(const RegionSlice& slice,
                                    const std::vector<float>& parent_capacities,
                                    const grid::DemandMap* committed) {
  std::vector<float> cap(slice.parent_edge.size(), 0.0f);
  for (std::size_t e = 0; e < cap.size(); ++e) {
    const grid::EdgeId pe = slice.parent_edge[e];
    float c = parent_capacities[static_cast<std::size_t>(pe)];
    if (committed != nullptr) c -= static_cast<float>(committed->demand(pe));
    cap[e] = std::max(0.0f, c);
  }
  return cap;
}

grid::DemandMap snapshot_demand(const grid::DemandMap& parent,
                                const RegionSlice& slice) {
  grid::DemandMap dm(slice.grid);
  for (std::size_t e = 0; e < slice.parent_edge.size(); ++e) {
    const double d = parent.demand(slice.parent_edge[e]);
    // Parent values are sums of 2^-20-quantized increments, so add()'s
    // re-quantization is the identity and the copy is byte-exact.
    if (d != 0.0) dm.add(static_cast<grid::EdgeId>(e), d);
  }
  return dm;
}

void merge_demand(grid::DemandMap& parent, const RegionSlice& slice,
                  const grid::DemandMap& slice_demand, double sign) {
  for (std::size_t e = 0; e < slice.parent_edge.size(); ++e) {
    const double d = slice_demand.demand(static_cast<grid::EdgeId>(e));
    if (d != 0.0) parent.add(slice.parent_edge[e], sign * d);
  }
}

design::Design make_region_design(const design::Design& parent,
                                  const RegionSlice& slice,
                                  const std::vector<std::size_t>& net_indices,
                                  std::string name) {
  std::vector<design::Net> nets;
  nets.reserve(net_indices.size());
  for (const std::size_t idx : net_indices) {
    design::Net net = parent.net(idx);
    for (Point& p : net.pins) {
      p.x = static_cast<Coord>(p.x - slice.origin.x);
      p.y = static_cast<Coord>(p.y - slice.origin.y);
    }
    nets.push_back(std::move(net));
  }
  return design::Design(std::move(name), slice.grid, std::move(nets));
}

void translate_route(eval::NetRoute& net, const geom::Point& origin) {
  for (dag::PatternPath& path : net.paths) {
    for (Point& p : path.waypoints) {
      p.x = static_cast<Coord>(p.x + origin.x);
      p.y = static_cast<Coord>(p.y + origin.y);
    }
  }
}

}  // namespace dgr::partition
