#pragma once
/// \file
/// PartitionedRouter: partition-parallel routing behind the Router
/// interface (DESIGN.md §11), registered as "partitioned".
///
/// route() tiles the grid with build_partition_plan, routes every region's
/// fully-contained nets concurrently on util::ParallelRuntime — each region
/// job builds a RegionSlice sub-design and a region RoutingContext whose
/// capacities are the residuals a committed-demand halo snapshot leaves,
/// then runs a fresh instance of any registered leaf router — and finally
/// merges the regions in fixed region order and reconciles serially: the
/// cross-boundary set routes against the merged residuals, and a bounded
/// maze-refine pass cleans up halo conflicts. Region results land in
/// per-region slots and every serial pass walks them in region/net order,
/// so the output is bitwise identical across worker counts at a fixed
/// partition count.

#include "partition/partition.hpp"
#include "pipeline/adapters.hpp"
#include "pipeline/router.hpp"

namespace dgr::partition {

class PartitionedRouter : public pipeline::Router {
 public:
  /// `region_options` configures the leaf engine each region instantiates
  /// (config.region_router names it; "partitioned" is rejected and falls
  /// back to "cugr2-lite" so the factory cannot recurse).
  explicit PartitionedRouter(PartitionConfig config = {},
                             pipeline::RouterOptions region_options = {});

  std::string_view name() const override { return "partitioned"; }
  eval::RouteSolution route(pipeline::RoutingContext& ctx) override;

  const PartitionConfig& config() const { return config_; }

 private:
  PartitionConfig config_;
  pipeline::RouterOptions region_options_;
};

}  // namespace dgr::partition
