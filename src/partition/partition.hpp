#pragma once
/// \file
/// Spatial partitioning of a routing problem (DESIGN.md §11).
///
/// A Partitioner tiles the g-cell grid into K disjoint core rectangles, each
/// inflated by a halo margin, and classifies every net: a routable net whose
/// pin bounding box fits inside exactly one region *core* is region-local
/// (it can be routed inside that region's halo window without seeing any
/// other region's nets); everything else goes to the cross-boundary set and
/// is routed serially after the regions merge. GANGR motivates seeding the
/// tiling from congestion; here the per-cell weight is pin density plus any
/// committed demand the caller passes in, so hot spots land in smaller
/// tiles and the per-region work balances.
///
/// This header is deliberately pipeline-free (grid/design/eval only): the
/// PartitionedRouter in partition/router.hpp layers the pipeline types on
/// top, and pipeline/adapters.hpp can embed a PartitionConfig in
/// RouterOptions without an include cycle.

#include <cstdint>
#include <string>
#include <vector>

#include "design/design.hpp"
#include "eval/solution.hpp"
#include "geom/geom.hpp"
#include "grid/demand_map.hpp"
#include "grid/gcell_grid.hpp"

namespace dgr::partition {

/// How the partitioner picks split coordinates.
enum class Seeding : std::uint8_t {
  /// Balance per-cell weight = 1 + pin density + committed demand pressure
  /// (the DemandMap snapshot the caller provides). Hot regions get smaller
  /// tiles; the plan is a pure function of (design, config, snapshot).
  kCongestionAware = 0,
  /// Ignore weights: split every rect at its geometric midpoint.
  kUniform = 1,
};

struct PartitionConfig {
  /// Requested region count. <= 1 disables partitioning (the partitioned
  /// router delegates to the region router on the full grid).
  int partitions = 0;
  /// Halo margin in g-cells: each region routes inside core.inflated(halo),
  /// clamped to the grid, so region-local nets may detour a little past
  /// their core without entering another region's core-owned state.
  int halo = 2;
  Seeding seeding = Seeding::kCongestionAware;
  /// Registry name of the engine that routes each region and the
  /// cross-boundary set. "partitioned" itself is rejected (no recursion).
  std::string region_router = "cugr2-lite";
  /// Bound on the reconciliation maze-refine rounds over the merged result.
  int reconcile_rounds = 1;
  /// A rect is never split below this core extent on either axis, so K is
  /// silently reduced on small grids (the plan reports what it built).
  int min_region_extent = 4;
};

/// One tile of the plan. Cores are disjoint and cover the grid; halo is
/// core.inflated(config.halo) clamped to the grid, so halos of neighbouring
/// regions overlap each other's cores by up to `halo` cells.
struct Region {
  geom::Rect core;
  geom::Rect halo;
};

/// net_region codes for nets that belong to no single region.
inline constexpr int kNetLocal = -2;  ///< not routable (single g-cell)
inline constexpr int kNetCross = -1;  ///< bounding box spans core boundaries

struct PartitionPlan {
  std::vector<Region> regions;
  /// Per design-net classification: region index, kNetCross, or kNetLocal.
  std::vector<int> net_region;
  /// Routable design-net indices fully contained in each region's core,
  /// in ascending net order (deterministic region sub-design).
  std::vector<std::vector<std::size_t>> region_nets;
  /// Routable design-net indices in the cross-boundary set, ascending.
  std::vector<std::size_t> cross_nets;

  std::size_t region_count() const { return regions.size(); }
};

/// Builds a PartitionPlan by recursive weighted bisection. `committed` may
/// be null (weights fall back to pin density alone); when present it must be
/// sized for `design.grid()`. The result depends only on (design, config,
/// committed) — never on thread count — which is what extends the repo's
/// determinism contract to partitioned routing.
PartitionPlan build_partition_plan(const design::Design& design,
                                   const PartitionConfig& config,
                                   const grid::DemandMap* committed = nullptr);

/// A region's routing window: a standalone sub-grid over the halo rect plus
/// the index maps back to the parent grid.
struct RegionSlice {
  grid::GCellGrid grid;          ///< (halo width+1) x (halo height+1) cells
  geom::Point origin;            ///< parent coordinates of slice cell (0,0)
  /// Per slice-edge parent EdgeId (slice edges are interior edges of the
  /// halo rect, so every one has a parent).
  std::vector<grid::EdgeId> parent_edge;
};

/// Cuts the halo window of `region` out of the parent grid. Layers (and so
/// per-direction capacities) are inherited from the parent.
RegionSlice slice_region(const grid::GCellGrid& parent, const Region& region);

/// Residual per-edge capacities of a slice: parent capacity minus the
/// committed demand snapshot on the same parent edge, clamped at >= 0.
/// `committed` may be null (no demand outside the region yet).
std::vector<float> slice_capacities(const RegionSlice& slice,
                                    const std::vector<float>& parent_capacities,
                                    const grid::DemandMap* committed = nullptr);

/// Copies the parent demand on the slice's edges into a slice-indexed map.
/// Values transfer verbatim (they are already on the 2^-20 quantization
/// grid), so snapshot -> merge(+1) -> merge(-1) round-trips are
/// byte-identical even when neighbouring halos overlap.
grid::DemandMap snapshot_demand(const grid::DemandMap& parent,
                                const RegionSlice& slice);

/// Adds (`sign`=+1) or removes (`sign`=-1) a slice demand map into the
/// parent map, edge by edge through RegionSlice::parent_edge.
void merge_demand(grid::DemandMap& parent, const RegionSlice& slice,
                  const grid::DemandMap& slice_demand, double sign = 1.0);

/// Sub-design of the region: the given parent nets re-based into slice
/// coordinates (pins - origin). Net order follows `net_indices`.
design::Design make_region_design(const design::Design& parent,
                                  const RegionSlice& slice,
                                  const std::vector<std::size_t>& net_indices,
                                  std::string name);

/// Translates a slice-coordinate route in place to parent coordinates.
void translate_route(eval::NetRoute& net, const geom::Point& origin);

}  // namespace dgr::partition
