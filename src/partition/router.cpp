#include "partition/router.hpp"

#include <algorithm>
#include <cstdint>
#include <exception>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/registry.hpp"
#include "post/maze_refine.hpp"
#include "util/parallel.hpp"
#include "util/status.hpp"
#include "util/timer.hpp"

namespace dgr::partition {

namespace {

using dgr::Status;
using dgr::StatusCode;

/// splitmix64 finalizer: decorrelates the per-region RNG streams from the
/// context seed deterministically (same mixing for any worker count).
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (salt + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// One region job's output slot: written only by the job that owns it,
/// consumed by the serial merge in region order.
struct RegionResult {
  eval::RouteSolution solution;  ///< parent coordinates, parent net indices
  pipeline::RouterStats stats;
  Status status;
};

}  // namespace

PartitionedRouter::PartitionedRouter(PartitionConfig config,
                                     pipeline::RouterOptions region_options)
    : config_(std::move(config)), region_options_(std::move(region_options)) {
  if (config_.region_router.empty() || config_.region_router == "partitioned") {
    config_.region_router = "cugr2-lite";
  }
  config_.partitions = std::max(config_.partitions, 1);
}

eval::RouteSolution PartitionedRouter::route(pipeline::RoutingContext& ctx) {
  DGR_TRACE_SCOPE("route.partitioned");
  reset_stats();
  const design::Design& dsn = ctx.design();
  const grid::GCellGrid& grid = dsn.grid();

  // ---- plan ---------------------------------------------------------------
  util::Timer timer;
  // The live demand doubles as the congestion-seeding signal. It only
  // counts as *committed outside demand* (subtracted from region
  // capacities) when it does not come from a warm start: a warm start
  // seeds the demand of the very nets being rerouted, which must not be
  // charged against themselves.
  const grid::DemandMap committed = ctx.demand();
  const grid::DemandMap* outside =
      ctx.warm_start() == nullptr ? &committed : nullptr;
  PartitionPlan plan;
  {
    DGR_TRACE_SCOPE("partition.plan");
    plan = build_partition_plan(dsn, config_, &committed);
  }
  const std::size_t regions = plan.region_count();
  stats_.add_stage("partition", timer.seconds());
  stats_.add_counter("partitions", static_cast<double>(regions));
  stats_.add_counter("halo", static_cast<double>(config_.halo));
  stats_.add_counter("cross_nets", static_cast<double>(plan.cross_nets.size()));
  obs::metrics().gauge("partition.regions").set(static_cast<double>(regions));

  // ---- delegate when the plan degenerates to one region -------------------
  if (regions <= 1) {
    const std::unique_ptr<pipeline::Router> leaf =
        pipeline::make_router(config_.region_router, region_options_);
    if (leaf == nullptr) {
      stats_.status = Status(StatusCode::kNotFound,
                             "partitioned: no region router registered under '" +
                                 config_.region_router + "'");
      return {};
    }
    eval::RouteSolution sol = leaf->route(ctx);  // leaf syncs ctx demand
    stats_.children.push_back(leaf->stats());
    stats_.status = leaf->stats().status;
    stats_.degraded = leaf->stats().degraded;
    stats_.add_stage("regions", leaf->stats().total_seconds());
    return sol;
  }

  // ---- region stage: concurrent, slot-isolated ----------------------------
  timer.reset();
  std::vector<RegionResult> results(regions);
  {
    DGR_TRACE_SCOPE("partition.regions");
    util::ParallelRuntime::for_each(
        0, regions,
        [&](std::size_t r) {
          // Region jobs already run as pool stage functions; the guard makes
          // every dispatch inside the leaf router run inline (the pool's
          // single-client discipline forbids nested submissions).
          util::SerialSection serial;
          DGR_TRACE_SCOPE("partition.region");
          RegionResult& out = results[r];
          const std::vector<std::size_t>& nets = plan.region_nets[r];
          out.stats.router = config_.region_router;
          out.stats.add_counter("region", static_cast<double>(r));
          out.stats.add_counter("region_nets", static_cast<double>(nets.size()));
          out.stats.add_counter(
              "core_cells",
              static_cast<double>(plan.regions[r].core.width() + 1) *
                  static_cast<double>(plan.regions[r].core.height() + 1));
          if (nets.empty()) return;
          try {
            const RegionSlice slice = slice_region(grid, plan.regions[r]);
            design::Design sub = make_region_design(
                dsn, slice, nets, dsn.name() + "#r" + std::to_string(r));
            pipeline::ContextOptions copts;
            copts.capacities = slice_capacities(slice, ctx.capacities(), outside);
            copts.via_beta = ctx.via_beta();
            copts.seed = mix_seed(ctx.seed(), r);
            pipeline::RoutingContext subctx(sub, std::move(copts));
            subctx.set_cancel_flag(ctx.cancel_flag());
            if (ctx.stage_budget_armed()) {
              subctx.set_stage_budget(ctx.stage_budget_remaining());
            }
            const std::unique_ptr<pipeline::Router> leaf =
                pipeline::make_router(config_.region_router, region_options_);
            if (leaf == nullptr) {
              out.status = Status(StatusCode::kNotFound,
                                  "partitioned: no region router registered under '" +
                                      config_.region_router + "'");
              return;
            }
            eval::RouteSolution rsol = leaf->route(subctx);
            out.stats.stages = leaf->stats().stages;
            for (const auto& kv : leaf->stats().counters) {
              out.stats.counters.push_back(kv);
            }
            out.stats.status = leaf->stats().status;
            out.stats.degraded = leaf->stats().degraded;
            out.status = leaf->stats().status;
            out.solution.nets.reserve(rsol.nets.size());
            for (eval::NetRoute& nr : rsol.nets) {
              translate_route(nr, slice.origin);
              nr.design_net = nets[nr.design_net];
              out.solution.nets.push_back(std::move(nr));
            }
            obs::metrics().counter("partition.regions_routed").add(1);
          } catch (const std::exception& e) {
            out.status = Status(StatusCode::kInternal,
                                "partitioned: region " + std::to_string(r) +
                                    " failed: " + e.what());
          }
        },
        /*grain=*/1);
  }
  stats_.add_stage("regions", timer.seconds());

  // ---- merge: fixed region order, independent of completion order ---------
  timer.reset();
  const std::size_t net_count = dsn.net_count();
  std::vector<std::vector<dag::PatternPath>> paths_of(net_count);
  std::vector<char> has_route(net_count, 0);
  std::vector<std::size_t> pending = plan.cross_nets;  // ascending already
  for (std::size_t r = 0; r < regions; ++r) {
    RegionResult& res = results[r];
    stats_.children.push_back(std::move(res.stats));
    if (!res.status.ok()) {
      // A failed region's nets fall back to the serial reconcile pass; the
      // run degrades instead of dying.
      stats_.degraded = true;
      pending.insert(pending.end(), plan.region_nets[r].begin(),
                     plan.region_nets[r].end());
      obs::metrics().counter("partition.region_failures").add(1);
      continue;
    }
    for (eval::NetRoute& nr : res.solution.nets) {
      if (nr.paths.empty()) continue;  // broken in-region: reroute serially
      paths_of[nr.design_net] = std::move(nr.paths);
      has_route[nr.design_net] = 1;
    }
    for (const std::size_t idx : plan.region_nets[r]) {
      if (!has_route[idx]) pending.push_back(idx);
    }
  }
  std::sort(pending.begin(), pending.end());
  pending.erase(std::unique(pending.begin(), pending.end()), pending.end());

  eval::RouteSolution merged;
  merged.design = &dsn;
  std::vector<std::size_t> slot_of(net_count, 0);
  merged.nets.reserve(dsn.routable_nets().size());
  for (const std::size_t idx : dsn.routable_nets()) {
    slot_of[idx] = merged.nets.size();
    merged.nets.push_back({idx, std::move(paths_of[idx])});
  }
  stats_.add_stage("merge", timer.seconds());

  // ---- reconcile: cross-boundary route + bounded halo-conflict refine -----
  timer.reset();
  Status reconcile_status;
  {
    DGR_TRACE_SCOPE("partition.reconcile");
    if (!pending.empty()) {
      grid::DemandMap region_demand = merged.demand(ctx.via_beta());
      std::vector<float> residual = ctx.capacities();
      for (std::size_t ei = 0; ei < residual.size(); ++ei) {
        residual[ei] = std::max(
            0.0f, residual[ei] - static_cast<float>(region_demand.demand(
                                     static_cast<grid::EdgeId>(ei))));
      }
      std::vector<design::Net> cross_nets;
      cross_nets.reserve(pending.size());
      for (const std::size_t idx : pending) cross_nets.push_back(dsn.net(idx));
      design::Design cross_design(dsn.name() + "#cross", grid,
                                  std::move(cross_nets));
      pipeline::ContextOptions copts;
      copts.capacities = std::move(residual);
      copts.via_beta = ctx.via_beta();
      copts.seed = mix_seed(ctx.seed(), regions + 1);
      pipeline::RoutingContext crossctx(cross_design, std::move(copts));
      crossctx.set_cancel_flag(ctx.cancel_flag());
      if (ctx.stage_budget_armed()) {
        crossctx.set_stage_budget(ctx.stage_budget_remaining());
      }
      // The cross pass runs serially on the full grid, so it is kept cheap:
      // pattern routing over the merged congestion only, no per-net maze
      // escapes — the maze-refine reconcile below repairs any overflow it
      // leaves at a fraction of the cost of full-grid maze fallbacks.
      pipeline::RouterOptions cross_options = region_options_;
      cross_options.cugr2.maze_fallback = false;
      cross_options.cugr2.rrr_rounds =
          std::max(2, region_options_.cugr2.rrr_rounds / 2);
      const std::unique_ptr<pipeline::Router> leaf =
          pipeline::make_router(config_.region_router, cross_options);
      if (leaf == nullptr) {
        reconcile_status =
            Status(StatusCode::kNotFound,
                   "partitioned: no region router registered under '" +
                       config_.region_router + "'");
      } else {
        try {
          eval::RouteSolution cross_sol = leaf->route(crossctx);
          pipeline::RouterStats cross_stats = leaf->stats();
          cross_stats.add_counter("cross_pass", 1.0);
          stats_.children.push_back(std::move(cross_stats));
          reconcile_status = leaf->stats().status;
          for (eval::NetRoute& nr : cross_sol.nets) {
            merged.nets[slot_of[pending[nr.design_net]]].paths =
                std::move(nr.paths);
          }
        } catch (const std::exception& e) {
          reconcile_status = Status(
              StatusCode::kInternal,
              std::string("partitioned: cross-boundary route failed: ") + e.what());
        }
      }
    }
    if (config_.reconcile_rounds > 0) {
      post::MazeRefineOptions ropts = region_options_.refine;
      ropts.max_rounds = config_.reconcile_rounds;
      ropts.via_beta = ctx.via_beta();
      const post::MazeRefineStats rs =
          post::maze_refine(merged, ctx.capacities(), ropts);
      stats_.add_counter("reconcile_rerouted", static_cast<double>(rs.nets_rerouted));
      stats_.add_counter("reconcile_improved", static_cast<double>(rs.nets_improved));
      obs::metrics().counter("partition.reconcile_rerouted").add(rs.nets_rerouted);
    }
  }
  stats_.add_stage("reconcile", timer.seconds());
  stats_.add_counter("reconciled_nets", static_cast<double>(pending.size()));
  if (!reconcile_status.ok()) {
    stats_.degraded = true;
    stats_.status = reconcile_status;
  }

  // Leave the context's live demand equal to the returned solution's.
  ctx.reset_demand();
  ctx.commit(merged);
  return merged;
}

}  // namespace dgr::partition
