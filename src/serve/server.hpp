#pragma once
/// \file
/// The dgr::serve daemon core: admission control, a bounded job queue,
/// worker threads over the routing pipeline, a deadline watchdog, and
/// graceful shutdown.
///
/// Request life cycle (DESIGN.md §10 has the state machine):
///
///   submit ── parse ──► control op? ──► answered inline (ping/stats/…)
///              │
///              ├─ admission: shutting down / rate limited / queue full /
///              │             serve.enqueue fault  ──► REJECTED (typed)
///              ▼
///           queued ──► worker: deadline already passed ──► FAILED
///              │                serve.dispatch fault    ──► FAILED
///              ▼
///           running ──► retry-on-divergence ──► degrade-on-final ──► OK
///              │                                        │
///              └── watchdog cancel / poisoned request ──► FAILED (typed)
///
/// Accounting invariant, checked by the chaos load test and reported by
/// "stats": every submitted line is counted exactly once as succeeded,
/// rejected (refused before the queue), or failed (accepted but answered
/// ok:false) — offered = succeeded + rejected + failed. The daemon never
/// crashes on a request: worker dispatch is exception-isolated, so a
/// poisoned request becomes a typed kInternal/kInvalidDesign response, not
/// process death.
///
/// Retry policy ("route"): a kNumericDivergence from the primary router is
/// retried with a reseeded solver (seed + attempt * golden-ratio) while
/// attempts remain — StageBudgets::degrade_on_divergence is false for
/// non-final attempts so the divergence surfaces instead of degrading. The
/// final attempt restores the PR 3 contract: divergence (and timeouts,
/// resource exhaustion, injected faults) degrade to the fallback router.
///
/// Deadlines: deadline_ms covers queue wait + execution. The remaining
/// time is mapped onto PipelineOptions::budgets.route_seconds (graceful,
/// in-pipeline), and the watchdog thread sets the job's cooperative cancel
/// flag once the absolute deadline passes (hard stop for overruns — the
/// solver checks it every train iteration, the baselines between rounds).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "design/io.hpp"
#include "pipeline/pipeline.hpp"
#include "serve/flight.hpp"
#include "serve/protocol.hpp"
#include "serve/session.hpp"

namespace dgr::serve {

/// Service-level objectives behind the serve.slo.* gauges (DESIGN.md §10).
struct SloOptions {
  /// Requests should finish within this many milliseconds...
  double latency_objective_ms = 500.0;
  /// ...for at least this fraction of traffic (0.99 = "p99 under
  /// objective"). latency_budget_burn = over-objective fraction / (1 -
  /// target): burn > 1 means the latency budget is being spent faster than
  /// the SLO allows.
  double latency_target = 0.99;
  /// Required fraction of finished requests that did not fail
  /// (rejections are load shedding, not unavailability).
  double availability_target = 0.999;
};

struct ServerOptions {
  int workers = 2;                  ///< routing worker threads
  std::size_t queue_capacity = 16;  ///< bounded admission queue
  /// Default per-request deadline (ms); 0 = none. A request's own
  /// "deadline_ms" overrides.
  double default_deadline_ms = 0.0;
  std::string default_router = "dgr";
  std::string fallback_router = "cugr2-lite";  ///< degradation target
  /// DGR iteration count applied when the request does not override; 0
  /// keeps router_options.dgr.iterations.
  int default_iterations = 60;
  /// Partition count applied when the request carries no "partitions"
  /// field: >= 2 routes every request through the "partitioned" engine
  /// (the requested router becomes its region router); 0/1 = sequential.
  int default_partitions = 0;
  /// Route attempts per request (>= 1); non-final attempts surface
  /// kNumericDivergence for a reseeded retry.
  int max_attempts = 2;
  /// Token-bucket admission rate (requests/second); 0 disables.
  double rate_limit_per_sec = 0.0;
  double rate_burst = 8.0;  ///< bucket capacity
  double watchdog_poll_ms = 2.0;
  /// Untrusted-input caps forwarded to design::try_read_design.
  design::DesignLimits design_limits;
  SessionCacheOptions cache;
  /// Base engine options; per-request fields (seed, iterations, telemetry,
  /// budget, cancel flag) are stamped over a copy.
  pipeline::RouterOptions router_options;
  /// Flushed on shutdown when non-empty; rewritten every
  /// metrics_interval_s while running when the exporter is on.
  std::string metrics_snapshot_path;
  std::string trace_path;  ///< Chrome trace (needs obs::set_tracing upstream)
  /// Continuous export period in seconds; 0 keeps flush-at-shutdown only.
  /// The exporter thread rewrites metrics_snapshot_path and
  /// prometheus_path (whichever are set) every interval.
  double metrics_interval_s = 0.0;
  /// Prometheus text-exposition file (a node_exporter-style scrape target);
  /// written by the exporter and at shutdown when non-empty.
  std::string prometheus_path;
  /// SLO objectives for the serve.slo.* gauges.
  SloOptions slo;
  /// Flight-recorder ring capacity (rounded up to a power of two).
  std::size_t flight_capacity = 256;
  /// Flight-recorder artifact path, dumped on any INTERNAL response, on
  /// watchdog cancellation, and at shutdown. Empty = no dumps (the ring
  /// still records and reports through "stats").
  std::string flight_path;
};

class Server {
 public:
  /// Receives the serialized one-line response (no trailing newline). May
  /// be invoked from a worker thread; transports serialise their writes.
  using Sink = std::function<void(const std::string&)>;

  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns the workers and the watchdog. Idempotent.
  void start();

  /// Handles one request line. Control ops (ping/stats/shutdown) and
  /// admission rejections answer `sink` inline on the calling thread; data
  /// ops answer later from a worker.
  void submit(const std::string& line, Sink sink);

  /// Blocking convenience (tests, load generator): submit + wait.
  std::string call(const std::string& line);

  /// Stops the daemon. `drain` answers the queued jobs before stopping;
  /// otherwise queued jobs are answered kCancelled and in-flight jobs get
  /// their cancel flag set. Flushes the metrics snapshot / trace when
  /// configured. Idempotent.
  void shutdown(bool drain = true);

  /// A "shutdown" request was received; the transport should exit its read
  /// loop and call shutdown().
  bool stop_requested() const { return stop_requested_.load(std::memory_order_relaxed); }

  // ---- introspection (tests, stats op) -------------------------------------
  struct Accounting {
    std::int64_t offered = 0;
    std::int64_t succeeded = 0;
    std::int64_t rejected = 0;
    std::int64_t failed = 0;
  };
  Accounting accounting() const;

  SessionCache& sessions() { return sessions_; }
  const ServerOptions& options() const { return options_; }
  std::size_t queue_depth() const;
  FlightRecorder& flight() { return flight_; }

 private:
  enum class Outcome { kSucceeded, kRejected, kFailed };

  struct Job {
    Request request;
    Sink sink;
    std::chrono::steady_clock::time_point submitted;
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
    /// Set by the watchdog (or cancel-all shutdown); polled cooperatively
    /// by the routing stages through RoutingContext::cancel_flag.
    std::shared_ptr<std::atomic<bool>> cancel;
    // Flight-recorder context, filled as the request moves through its
    // lifecycle (admission depth at enqueue, attempts/degraded by
    // handle_route) and harvested by respond().
    std::uint32_t queue_depth_at_admission = 0;
    int attempts = 0;
    bool degraded = false;
  };

  void worker_loop();
  void watchdog_loop();
  void exporter_loop();

  /// Single exit point for every request: classifies the outcome into the
  /// accounting counters, observes latency, serialises, and invokes the
  /// sink. Exactly one respond() per submitted line keeps the accounting
  /// invariant true by construction.
  void respond(const Job& job, Response response, Outcome outcome);

  /// True when the job was admitted; false when it was rejected (already
  /// answered).
  bool admit(Job job);

  void execute(Job& job);
  Response handle_load(const Job& job);
  Response handle_route(Job& job);
  Response handle_eco(const Job& job);
  Response handle_stats(const Request& request);
  Response handle_metrics(const Request& request);

  /// Recomputes the serve.slo.* gauges from the latency histogram and the
  /// accounting counters (cheap: one walk over ~14 buckets).
  void update_slo_gauges();
  /// Appends the request to the flight ring; dumps the artifact when the
  /// response is INTERNAL or the job's cancel flag was raised.
  void record_flight(const Job& job, const Response& response, double latency_ms);
  /// One exporter tick: refresh SLO gauges, rewrite the snapshot /
  /// Prometheus files.
  void export_artifacts();

  void flush_artifacts();

  ServerOptions options_;
  SessionCache sessions_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool stop_workers_ = false;
  double rate_tokens_ = 0.0;
  std::chrono::steady_clock::time_point rate_last_;

  /// What the watchdog needs from an in-flight job: where to signal the
  /// cancellation and when. Registered for the duration of execute().
  struct ActiveEntry {
    std::shared_ptr<std::atomic<bool>> cancel;
    std::chrono::steady_clock::time_point deadline;
  };
  std::mutex active_mu_;
  std::vector<ActiveEntry> active_;
  std::atomic<bool> watchdog_stop_{false};

  FlightRecorder flight_;

  std::vector<std::thread> workers_;
  std::thread watchdog_;
  std::thread exporter_;
  std::atomic<bool> exporter_stop_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<int> in_flight_{0};

  std::atomic<std::int64_t> offered_{0};
  std::atomic<std::int64_t> succeeded_{0};
  std::atomic<std::int64_t> rejected_{0};
  std::atomic<std::int64_t> failed_{0};
};

}  // namespace dgr::serve
