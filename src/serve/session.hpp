#pragma once
/// \file
/// Session cache: parsed designs, routing contexts, and ECO engines kept
/// warm across requests, LRU-evicted under a memory budget.
///
/// A session is the unit of state a client builds up with "load" and then
/// exercises with "route"/"eco" requests. Keeping it server-side is what
/// makes the daemon worth running: the parsed Design, the context's cached
/// DagForest (DGR's candidate pools — the expensive part of a cold route),
/// and the ECO engine's incremental state are all paid once per session,
/// not once per request.
///
/// Concurrency: the cache map has its own mutex; each Session carries a
/// mutex that serialises the jobs targeting it, so concurrent requests on
/// *different* sessions run in parallel while a session's own request
/// stream stays ordered — the property behind the workers-{1,2,4}
/// determinism test. Sessions are handed out as shared_ptr, so eviction
/// never pulls state out from under an in-flight job: the job keeps its
/// reference, the cache just forgets the name.
///
/// Memory accounting is an estimate, not malloc truth: design bytes
/// (pins + names + per-edge capacity vectors) + cached forest bytes
/// (DagForest::memory_bytes) + the last route's solver high-water mark
/// (RouterStats::solver_bytes, which includes Tape::memory_bytes) + the
/// kept base solution. Deterministic inputs give deterministic accounting,
/// which the eviction test relies on.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "design/design.hpp"
#include "eco/eco.hpp"
#include "eval/solution.hpp"
#include "pipeline/context.hpp"

namespace dgr::serve {

/// Deterministic size estimates used by the cache's budget accounting.
std::size_t estimate_design_bytes(const design::Design& design);
std::size_t estimate_solution_bytes(const eval::RouteSolution& solution);

struct Session {
  std::string name;
  std::uint64_t seed = 1;
  /// Owns the design at a stable address (the context references it).
  std::unique_ptr<design::Design> design;
  /// Lazily built; holds the cached DagForest across requests.
  std::unique_ptr<pipeline::RoutingContext> ctx;
  /// Last kept ("keep":true) route solution — ECO baseline + warm starts.
  eval::RouteSolution base;
  /// Lazily built on the first eco request; owns the evolving DesignState.
  std::unique_ptr<eco::EcoEngine> eco;
  /// Serialises jobs targeting this session.
  std::mutex mu;

  // Accounting (written under mu, read by the cache under its own lock).
  std::atomic<std::size_t> design_bytes{0};
  std::atomic<std::size_t> forest_bytes{0};
  std::atomic<std::size_t> solver_bytes{0};
  std::atomic<std::size_t> solution_bytes{0};

  std::size_t memory_bytes() const {
    return design_bytes.load(std::memory_order_relaxed) +
           forest_bytes.load(std::memory_order_relaxed) +
           solver_bytes.load(std::memory_order_relaxed) +
           solution_bytes.load(std::memory_order_relaxed);
  }

  /// The session's routing context, built on first use with `options`
  /// (seed forced to the session seed). Call under `mu`.
  pipeline::RoutingContext& context(pipeline::ContextOptions options = {});
};

struct SessionCacheOptions {
  std::size_t max_sessions = 8;          ///< 0 = unlimited
  std::size_t memory_budget_bytes = 0;   ///< 0 = unlimited
};

/// Named-session store with least-recently-used eviction. All methods are
/// thread-safe. Gauges serve.sessions / serve.cache_bytes and counter
/// serve.cache.evictions track its state.
class SessionCache {
 public:
  explicit SessionCache(SessionCacheOptions options = {});

  /// Inserts (or replaces) a session holding `design`, then evicts LRU
  /// entries until the cache is inside its limits — the new session itself
  /// is never the one evicted.
  std::shared_ptr<Session> put(const std::string& name, design::Design design,
                               std::uint64_t seed);

  /// Looks the session up and marks it most-recently-used.
  std::shared_ptr<Session> find(const std::string& name);

  bool erase(const std::string& name);

  /// Re-checks the budget after a session's accounting grew (post-route).
  void enforce_budget();

  std::size_t size() const;
  std::size_t memory_bytes() const;
  std::int64_t evictions() const { return evictions_; }
  /// Cached session names, most recently used first.
  std::vector<std::string> names() const;

 private:
  struct Entry {
    std::shared_ptr<Session> session;
    std::uint64_t last_used = 0;
  };

  void evict_locked(const Session* keep);
  std::size_t memory_bytes_locked() const;
  void publish_gauges_locked() const;

  SessionCacheOptions options_;
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::uint64_t seq_ = 0;
  std::int64_t evictions_ = 0;
};

}  // namespace dgr::serve
