#pragma once
/// \file
/// Failure flight recorder: the daemon's black box (DESIGN.md §10).
///
/// A bounded lock-free ring of fixed-size per-request summaries. Every
/// response appends one record on its way out; the ring overwrites its
/// oldest lap, so at any moment it holds the last `capacity` requests. On
/// an INTERNAL response, a watchdog cancellation, or shutdown the server
/// dumps the ring as a `dgr-flight-v1` JSON artifact — enough context
/// (status, latency, retries, degradation, fault sites fired, queue depth
/// at admission) to reconstruct what the daemon was doing when it broke,
/// without any per-request allocation on the happy path.
///
/// Concurrency: record() is wait-free for writers (one fetch_add to claim a
/// ticket, POD stores, one release publish of the slot's sequence). Readers
/// (to_json/dump) never block writers: a slot whose sequence does not match
/// the expected ticket — being overwritten mid-read — is skipped and
/// counted as dropped, the classic seqlock bargain.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace dgr::serve {

/// One request's summary. POD with fixed-size fields so a slot write is a
/// plain member-wise store (no allocation, safe to overwrite concurrently
/// with a reader that will detect the race via the slot sequence). Strings
/// are NUL-terminated and silently truncated to the field size.
struct FlightRecord {
  char id[48] = {};
  char op[16] = {};
  char session[40] = {};
  char fault_sites[96] = {};  ///< comma-joined site names, possibly truncated
  double latency_ms = 0.0;
  int status = 0;  ///< util::StatusCode of the response
  int attempts = 0;  ///< router attempts run (0 for non-route/eco ops)
  std::uint32_t queue_depth = 0;  ///< depth observed at admission
  std::uint32_t fault_fires = 0;  ///< fires attributed to this request
  bool degraded = false;  ///< fallback router produced the response
  bool cancelled = false;  ///< cancel flag was raised (watchdog or shutdown)

  void set_id(std::string_view v);
  void set_op(std::string_view v);
  void set_session(std::string_view v);
  /// Comma-joins `sites` into fault_sites (truncating once full) and stores
  /// the true count in fault_fires.
  void set_fault_sites(const std::vector<std::string>& sites);
};

class FlightRecorder {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit FlightRecorder(std::size_t capacity = 256);

  /// Appends one record, overwriting the oldest lap when full. Wait-free.
  void record(const FlightRecord& rec);

  std::size_t capacity() const { return mask_ + 1; }
  /// Records currently readable (<= capacity). Approximate under load.
  std::size_t size() const;
  /// Records ever written.
  std::uint64_t total() const { return head_.load(std::memory_order_acquire); }
  /// Completed dump() calls.
  std::uint64_t dumps() const { return dumps_.load(std::memory_order_acquire); }

  /// The ring as a `dgr-flight-v1` document, oldest record first. `reason`
  /// names the trigger: "internal", "watchdog_cancel", "shutdown" (tests
  /// use "manual").
  obs::json::Value to_json(std::string_view reason) const;

  /// Writes to_json(reason) to `path` (serialised against concurrent
  /// dumps; last dump wins the file). Returns false on I/O failure.
  bool dump(const std::string& path, std::string_view reason);

 private:
  struct Slot {
    /// ticket+1 once the record for that ticket is fully published; any
    /// other value means empty or mid-overwrite.
    std::atomic<std::uint64_t> seq{0};
    FlightRecord rec;
  };

  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> dumps_{0};
  std::mutex dump_mu_;
};

/// Schema check for dgr-flight-v1 documents (mirrors
/// obs::validate_bench_json; used by bench/check_bench_schema and tests).
bool validate_flight_json(const obs::json::Value& doc, std::string* error = nullptr);

}  // namespace dgr::serve
