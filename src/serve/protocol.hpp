#pragma once
/// \file
/// dgr::serve wire protocol: line-delimited JSON requests and responses.
///
/// The daemon speaks one JSON object per line, over stdin/stdout or a Unix
/// domain socket (serve/transport.hpp). The parse/emit layer reuses the
/// dgr::obs JSON model, so every response is byte-deterministic for
/// deterministic inputs and self-validates with the same parser the bench
/// schema gate uses.
///
/// Request envelope (DESIGN.md §10 has the full grammar):
///
///   {"id":"r1","op":"load","session":"s1","design":"dgrd 1\n..."}
///   {"id":"r2","op":"route","session":"s1","router":"dgr",
///    "deadline_ms":500,"seed":3}
///   {"id":"r3","op":"eco","session":"s1",
///    "mutation":{"kind":"add_blockage","rect":[2,2,5,5],"scale":0.25}}
///   {"id":"r4","op":"stats"}
///   {"id":"r5","op":"ping"}   {"id":"r6","op":"shutdown"}
///   {"id":"r7","op":"metrics","format":"prometheus"}
///
/// Response envelope:
///
///   {"id":"r2","op":"route","ok":true,"result":{...}}
///   {"id":"r2","op":"route","ok":false,
///    "error":{"code":"STAGE_TIMEOUT","message":"..."}}
///
/// Every failure path — malformed JSON, admission rejection, injected
/// fault, mid-flight cancellation — answers with the ok:false envelope and
/// a typed StatusCode name; the daemon never answers with free-form text
/// and never crashes on hostile input (the serve.* chaos suite proves it).

#include <string>

#include "design/mutate.hpp"
#include "obs/json.hpp"
#include "util/status.hpp"

namespace dgr::serve {

/// Request verbs. Control-plane ops (ping/stats/metrics/shutdown) execute
/// inline; data-plane ops (load/route/eco) go through the
/// admission-controlled job queue.
enum class Op : int { kPing, kLoad, kRoute, kEco, kStats, kMetrics, kShutdown };

const char* op_name(Op op);

/// One parsed request. Only the fields of the active `op` are meaningful.
struct Request {
  std::string id;  ///< echoed verbatim in the response
  Op op = Op::kPing;
  std::string session;  ///< session key (load/route/eco)

  // ---- load ---------------------------------------------------------------
  std::string design_text;  ///< inline .dgrd payload ("design" field)
  std::string design_path;  ///< or a server-side file path ("path" field)
  std::uint64_t seed = 1;   ///< context seed for the session / dgr training

  // ---- route / eco --------------------------------------------------------
  std::string router;        ///< registry name; empty = server default
  /// Degradation fallback: empty = server default, "none" disables
  /// degradation for this request (typed errors surface instead).
  std::string fallback;
  double deadline_ms = 0.0;  ///< per-request deadline; 0 = server default
  int iterations = 0;        ///< DGR iteration override; 0 = server default
  /// Partition-parallel routing: "partitions" >= 2 routes through the
  /// "partitioned" engine with the requested router as its region router;
  /// 1 forces sequential; 0 / absent = server default.
  int partitions = 0;
  bool has_partitions = false;  ///< a "partitions" field was present
  bool telemetry = false;    ///< record convergence telemetry
  bool keep = true;          ///< keep the result as the session's base state
  bool has_seed = false;     ///< a "seed" field was present

  // ---- metrics ------------------------------------------------------------
  std::string format;  ///< "json" (default) or "prometheus"

  // ---- eco ----------------------------------------------------------------
  bool has_mutation = false;
  design::Mutation mutation;
  /// {"mutation":{"generate":true,"seed":N}} asks the server to draw a
  /// seeded mutation from the session's design state (load generators).
  bool generate_mutation = false;
  std::uint64_t mutation_seed = 1;
};

/// Parses one request line. Typed failures: kParseError (not JSON / not an
/// object / wrong field type), kInvalidArgument (unknown op, missing
/// required field, bad mutation payload), kFaultInjected (serve.parse chaos
/// site). When the line carried a recoverable "id" it is returned inside
/// the error message's envelope via `recover_request_id`.
Result<Request> parse_request(const std::string& line);

/// Best-effort id extraction from a line that failed full parsing, so the
/// error response can still be correlated by the client. Returns "" when
/// nothing recoverable is found.
std::string recover_request_id(const std::string& line);

/// Parses the "mutation" object of an eco request into a design::Mutation.
Result<design::Mutation> parse_mutation(const obs::json::Value& doc);

struct Response {
  std::string id;
  std::string op;  ///< op_name of the request (or "?" when unparseable)
  Status status;   ///< OK => `result` is the payload; else a typed error
  obs::json::Value result;
};

/// Serialises a response to its one-line wire form (no trailing newline).
/// Hosts the serve.respond chaos site: an injected fault here falls back to
/// a minimal — still well-formed — error envelope, so even a poisoned
/// serialisation path answers valid JSON.
std::string serialize_response(const Response& response);

/// Builds the ok:false envelope for `status`.
Response error_response(std::string id, std::string op, Status status);

/// Validates the response envelope (tests + chaos suite): object with
/// string "id"/"op", bool "ok", and exactly one of "result" (object, when
/// ok) or "error" {code:string, message:string} (when not ok).
bool validate_response_json(const obs::json::Value& doc, std::string* error = nullptr);

}  // namespace dgr::serve
