#include "serve/session.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "obs/metrics.hpp"

namespace dgr::serve {

std::size_t estimate_design_bytes(const design::Design& design) {
  std::size_t bytes = sizeof(design::Design);
  for (const design::Net& net : design.nets()) {
    bytes += sizeof(design::Net) + net.name.size() +
             net.pins.size() * sizeof(geom::Point);
  }
  // Per-edge working vectors every route materialises (capacities + demand).
  bytes += static_cast<std::size_t>(design.grid().edge_count()) * 2 * sizeof(float);
  return bytes;
}

std::size_t estimate_solution_bytes(const eval::RouteSolution& solution) {
  std::size_t bytes = 0;
  for (const eval::NetRoute& net : solution.nets) {
    bytes += sizeof(eval::NetRoute) + net.paths.size() * sizeof(dag::PatternPath);
  }
  return bytes;
}

pipeline::RoutingContext& Session::context(pipeline::ContextOptions options) {
  if (ctx == nullptr) {
    options.seed = seed;
    ctx = std::make_unique<pipeline::RoutingContext>(*design, options);
  }
  return *ctx;
}

SessionCache::SessionCache(SessionCacheOptions options) : options_(options) {
  publish_gauges_locked();
}

std::shared_ptr<Session> SessionCache::put(const std::string& name,
                                           design::Design design, std::uint64_t seed) {
  auto session = std::make_shared<Session>();
  session->name = name;
  session->seed = seed;
  session->design = std::make_unique<design::Design>(std::move(design));
  session->design_bytes.store(estimate_design_bytes(*session->design),
                              std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const Entry& e) { return e.session->name == name; }),
                 entries_.end());
  entries_.push_back(Entry{session, ++seq_});
  evict_locked(session.get());
  publish_gauges_locked();
  return session;
}

std::shared_ptr<Session> SessionCache::find(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries_) {
    if (e.session->name == name) {
      e.last_used = ++seq_;
      return e.session;
    }
  }
  return nullptr;
}

bool SessionCache::erase(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t before = entries_.size();
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const Entry& e) { return e.session->name == name; }),
                 entries_.end());
  publish_gauges_locked();
  return entries_.size() != before;
}

void SessionCache::enforce_budget() {
  std::lock_guard<std::mutex> lock(mu_);
  evict_locked(nullptr);
  publish_gauges_locked();
}

std::size_t SessionCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::size_t SessionCache::memory_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memory_bytes_locked();
}

std::vector<std::string> SessionCache::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Entry*> sorted;
  sorted.reserve(entries_.size());
  for (const Entry& e : entries_) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry* a, const Entry* b) { return a->last_used > b->last_used; });
  std::vector<std::string> out;
  out.reserve(sorted.size());
  for (const Entry* e : sorted) out.push_back(e->session->name);
  return out;
}

std::size_t SessionCache::memory_bytes_locked() const {
  std::size_t total = 0;
  for (const Entry& e : entries_) total += e.session->memory_bytes();
  return total;
}

void SessionCache::evict_locked(const Session* keep) {
  auto over_limits = [&] {
    if (options_.max_sessions > 0 && entries_.size() > options_.max_sessions) return true;
    return options_.memory_budget_bytes > 0 && entries_.size() > 1 &&
           memory_bytes_locked() > options_.memory_budget_bytes;
  };
  while (over_limits()) {
    std::size_t victim = entries_.size();
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].session.get() == keep) continue;
      if (entries_[i].last_used < oldest) {
        oldest = entries_[i].last_used;
        victim = i;
      }
    }
    if (victim == entries_.size()) break;  // only the protected session remains
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(victim));
    ++evictions_;
    obs::metrics().counter("serve.cache.evictions").add(1);
  }
}

void SessionCache::publish_gauges_locked() const {
  obs::metrics().gauge("serve.sessions").set(static_cast<double>(entries_.size()));
  obs::metrics().gauge("serve.cache_bytes").set(
      static_cast<double>(memory_bytes_locked()));
}

}  // namespace dgr::serve
