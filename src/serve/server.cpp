#include "serve/server.hpp"

#include <algorithm>
#include <future>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "pipeline/registry.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace dgr::serve {

namespace {

using obs::json::Value;

constexpr std::uint64_t kReseedStride = 0x9E3779B97F4A7C15ull;  // golden ratio

obs::Histogram& latency_histogram() {
  static obs::Histogram& h = obs::metrics().histogram(
      "serve.latency_ms",
      {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000});
  return h;
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

Value metrics_to_json(const eval::Metrics& m) {
  Value v = Value::object();
  v["wirelength"] = m.wirelength;
  v["overflow_edges"] = m.overflow_edges;
  v["total_overflow"] = m.total_overflow;
  v["peak_overflow"] = m.peak_overflow;
  v["bends"] = m.bends;
  return v;
}

Value attempt_to_json(const pipeline::RouteAttempt& a) {
  Value v = Value::object();
  v["router"] = a.router;
  v["status"] = std::string(status_code_name(a.status.code()));
  v["rollbacks"] = a.rollbacks;
  v["degraded"] = a.degraded;
  v["telemetry_samples"] = a.convergence.size();
  return v;
}

/// Quantile estimate from the fixed-bucket histogram: find the bucket the
/// rank falls in, interpolate linearly within it (the overflow bucket
/// reports its lower bound — there is no upper edge to interpolate to).
/// Deterministic given the bucket counts.
double histogram_quantile(const obs::Histogram& h, double q) {
  const std::vector<double>& bounds = h.bounds();
  std::int64_t total = 0;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) total += h.bucket(i);
  if (total <= 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    const double in_bucket = static_cast<double>(h.bucket(i));
    cumulative += in_bucket;
    if (cumulative >= rank) {
      if (i >= bounds.size()) return bounds.back();  // overflow bucket
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      const double frac = in_bucket > 0.0 ? (rank - (cumulative - in_bucket)) / in_bucket : 1.0;
      return lo + frac * (hi - lo);
    }
  }
  return bounds.back();
}

/// Fraction of observations <= x, interpolating within the containing
/// bucket. 1.0 on an empty histogram (no traffic = no SLO violation).
double histogram_fraction_le(const obs::Histogram& h, double x) {
  const std::vector<double>& bounds = h.bounds();
  std::int64_t total = 0;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) total += h.bucket(i);
  if (total <= 0) return 1.0;
  double below = 0.0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    const double hi = bounds[i];
    const double in_bucket = static_cast<double>(h.bucket(i));
    if (x >= hi) {
      below += in_bucket;
    } else if (x > lo) {
      below += in_bucket * (x - lo) / (hi - lo);
      break;
    } else {
      break;
    }
  }
  return below / static_cast<double>(total);
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      sessions_(options_.cache),
      flight_(options_.flight_capacity == 0 ? 256 : options_.flight_capacity) {
  if (options_.workers < 1) options_.workers = 1;
  if (options_.max_attempts < 1) options_.max_attempts = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
}

Server::~Server() { shutdown(false); }

void Server::start() {
  if (started_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    rate_tokens_ = options_.rate_burst;
    rate_last_ = std::chrono::steady_clock::now();
  }
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
  if (options_.metrics_interval_s > 0.0 &&
      (!options_.metrics_snapshot_path.empty() || !options_.prometheus_path.empty())) {
    exporter_ = std::thread([this] { exporter_loop(); });
  }
  DGR_LOG_INFO("serve: started %d workers, queue capacity %zu", options_.workers,
               options_.queue_capacity);
}

std::size_t Server::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return queue_.size();
}

Server::Accounting Server::accounting() const {
  Accounting a;
  a.offered = offered_.load(std::memory_order_relaxed);
  a.succeeded = succeeded_.load(std::memory_order_relaxed);
  a.rejected = rejected_.load(std::memory_order_relaxed);
  a.failed = failed_.load(std::memory_order_relaxed);
  return a;
}

void Server::respond(const Job& job, Response response, Outcome outcome) {
  switch (outcome) {
    case Outcome::kSucceeded:
      succeeded_.fetch_add(1, std::memory_order_relaxed);
      obs::metrics().counter("serve.requests.succeeded").add(1);
      break;
    case Outcome::kRejected:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      obs::metrics().counter("serve.requests.rejected").add(1);
      break;
    case Outcome::kFailed:
      failed_.fetch_add(1, std::memory_order_relaxed);
      obs::metrics().counter("serve.requests.failed").add(1);
      break;
  }
  const double latency_ms = ms_since(job.submitted);
  latency_histogram().observe(latency_ms);
  update_slo_gauges();
  const std::string line = serialize_response(response);
  // Flight capture after serialisation so a serve.respond fire is part of
  // this request's record.
  record_flight(job, response, latency_ms);
  if (job.sink) {
    try {
      job.sink(line);
    } catch (const std::exception& e) {
      DGR_LOG_WARN("serve: response sink threw: %s", e.what());
    }
  }
}

void Server::update_slo_gauges() {
  // Multiple workers may race here; every write publishes a self-consistent
  // recent value derived from the monotonic counters, so last-wins is fine.
  obs::Histogram& h = latency_histogram();
  obs::MetricsRegistry& m = obs::metrics();
  m.gauge("serve.slo.p50_ms").set(histogram_quantile(h, 0.50));
  m.gauge("serve.slo.p99_ms").set(histogram_quantile(h, 0.99));
  const Accounting a = accounting();
  const std::int64_t finished = a.succeeded + a.failed;
  const double availability =
      finished > 0 ? static_cast<double>(a.succeeded) / static_cast<double>(finished) : 1.0;
  m.gauge("serve.slo.availability").set(availability);
  m.gauge("serve.slo.error_budget_burn")
      .set((1.0 - availability) / std::max(1.0 - options_.slo.availability_target, 1e-9));
  const double within = histogram_fraction_le(h, options_.slo.latency_objective_ms);
  m.gauge("serve.slo.latency_within_objective").set(within);
  m.gauge("serve.slo.latency_budget_burn")
      .set((1.0 - within) / std::max(1.0 - options_.slo.latency_target, 1e-9));
}

void Server::record_flight(const Job& job, const Response& response, double latency_ms) {
  FlightRecord rec;
  rec.set_id(response.id.empty() ? "?" : response.id);
  rec.set_op(response.op);
  rec.set_session(job.request.session);
  rec.status = static_cast<int>(response.status.code());
  rec.latency_ms = latency_ms;
  rec.attempts = job.attempts;
  rec.degraded = job.degraded;
  rec.cancelled =
      job.cancel != nullptr && job.cancel->load(std::memory_order_relaxed);
  rec.queue_depth = job.queue_depth_at_admission;
  rec.set_fault_sites(util::fault::current_fired_sites());
  flight_.record(rec);
  if (options_.flight_path.empty()) return;
  if (response.status.code() == StatusCode::kInternal) {
    flight_.dump(options_.flight_path, "internal");
  } else if (rec.cancelled) {
    flight_.dump(options_.flight_path, "watchdog_cancel");
  }
}

void Server::submit(const std::string& line, Sink sink) {
  offered_.fetch_add(1, std::memory_order_relaxed);
  obs::metrics().counter("serve.requests.offered").add(1);

  // Submit-phase fires (serve.parse, serve.enqueue, serve.respond on the
  // inline paths) land in this request's flight record.
  util::fault::ScopedFireCollector fault_collector;

  Job job;
  job.sink = std::move(sink);
  job.submitted = std::chrono::steady_clock::now();

  if (stopping_.load(std::memory_order_relaxed)) {
    obs::metrics().counter("serve.admission.shutdown").add(1);
    respond(job,
            error_response(recover_request_id(line), "?",
                           Status(StatusCode::kCancelled, "server is shutting down")),
            Outcome::kRejected);
    return;
  }

  Result<Request> parsed = parse_request(line);
  if (!parsed.ok()) {
    respond(job, error_response(recover_request_id(line), "?", parsed.status()),
            Outcome::kFailed);
    return;
  }
  job.request = parsed.take();
  const Request& req = job.request;

  // Control-plane ops answer inline on the submitting thread.
  switch (req.op) {
    case Op::kPing: {
      Response r;
      r.id = req.id;
      r.op = op_name(req.op);
      r.result = Value::object();
      r.result["pong"] = true;
      respond(job, std::move(r), Outcome::kSucceeded);
      return;
    }
    case Op::kStats:
      respond(job, handle_stats(req), Outcome::kSucceeded);
      return;
    case Op::kMetrics:
      respond(job, handle_metrics(req), Outcome::kSucceeded);
      return;
    case Op::kShutdown: {
      stop_requested_.store(true, std::memory_order_relaxed);
      Response r;
      r.id = req.id;
      r.op = op_name(req.op);
      r.result = Value::object();
      r.result["stopping"] = true;
      respond(job, std::move(r), Outcome::kSucceeded);
      return;
    }
    default:
      break;
  }

  // Data-plane ops go through admission control into the bounded queue.
  const double deadline_ms =
      req.deadline_ms > 0.0 ? req.deadline_ms : options_.default_deadline_ms;
  if (deadline_ms > 0.0) {
    job.has_deadline = true;
    job.deadline = job.submitted + std::chrono::duration_cast<
                                       std::chrono::steady_clock::duration>(
                                       std::chrono::duration<double, std::milli>(
                                           deadline_ms));
  }
  job.cancel = std::make_shared<std::atomic<bool>>(false);
  admit(std::move(job));
}

bool Server::admit(Job job) {
  Status rejection;
  const char* counter = nullptr;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stop_workers_ || stopping_.load(std::memory_order_relaxed)) {
      rejection = Status(StatusCode::kCancelled, "server is shutting down");
      counter = "serve.admission.shutdown";
    } else if (options_.rate_limit_per_sec > 0.0) {
      const auto now = std::chrono::steady_clock::now();
      const double elapsed = std::chrono::duration<double>(now - rate_last_).count();
      rate_last_ = now;
      rate_tokens_ = std::min(options_.rate_burst,
                              rate_tokens_ + elapsed * options_.rate_limit_per_sec);
      if (rate_tokens_ < 1.0) {
        rejection = Status(StatusCode::kResourceExhausted,
                           "rate limited: token bucket empty");
        counter = "serve.admission.rate_limited";
      } else {
        rate_tokens_ -= 1.0;
      }
    }
    if (rejection.ok() && DGR_FAULT_POINT("serve.enqueue")) {
      rejection = Status(StatusCode::kFaultInjected, "injected admission fault");
      counter = "serve.admission.fault";
    }
    if (rejection.ok() && queue_.size() >= options_.queue_capacity) {
      rejection = Status(StatusCode::kResourceExhausted,
                         "admission queue full (capacity " +
                             std::to_string(options_.queue_capacity) + ")");
      counter = "serve.admission.queue_full";
    }
    if (rejection.ok()) {
      job.queue_depth_at_admission = static_cast<std::uint32_t>(queue_.size());
      queue_.push_back(std::move(job));
      obs::metrics().gauge("serve.queue_depth").set(static_cast<double>(queue_.size()));
      queue_cv_.notify_one();
      return true;
    }
  }
  obs::metrics().counter(counter).add(1);
  respond(job, error_response(job.request.id, op_name(job.request.op), rejection),
          Outcome::kRejected);
  return false;
}

void Server::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return !queue_.empty() || stop_workers_; });
      if (queue_.empty()) {
        if (stop_workers_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      obs::metrics().gauge("serve.queue_depth").set(static_cast<double>(queue_.size()));
    }
    obs::metrics().gauge("serve.in_flight")
        .set(static_cast<double>(in_flight_.fetch_add(1, std::memory_order_relaxed) + 1));
    execute(job);
    obs::metrics().gauge("serve.in_flight")
        .set(static_cast<double>(in_flight_.fetch_sub(1, std::memory_order_relaxed) - 1));
    queue_cv_.notify_all();  // wakes drain waiters
  }
}

void Server::exporter_loop() {
  const auto interval = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(options_.metrics_interval_s));
  auto next = std::chrono::steady_clock::now() + interval;
  while (!exporter_stop_.load(std::memory_order_relaxed)) {
    // Short poll so shutdown never waits out a long interval.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (std::chrono::steady_clock::now() < next) continue;
    export_artifacts();
    next += interval;
  }
}

void Server::export_artifacts() {
  update_slo_gauges();
  if (!options_.metrics_snapshot_path.empty()) {
    if (!obs::metrics().write_snapshot(options_.metrics_snapshot_path)) {
      DGR_LOG_WARN("serve: failed to write metrics snapshot to %s",
                   options_.metrics_snapshot_path.c_str());
    }
  }
  if (!options_.prometheus_path.empty()) {
    if (!obs::write_prometheus(options_.prometheus_path)) {
      DGR_LOG_WARN("serve: failed to write prometheus text to %s",
                   options_.prometheus_path.c_str());
    }
  }
}

void Server::watchdog_loop() {
  const auto poll = std::chrono::duration<double, std::milli>(
      options_.watchdog_poll_ms > 0.0 ? options_.watchdog_poll_ms : 2.0);
  while (!watchdog_stop_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(poll);
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(active_mu_);
    for (ActiveEntry& entry : active_) {
      if (now >= entry.deadline) entry.cancel->store(true, std::memory_order_relaxed);
    }
  }
}

void Server::execute(Job& job) {
  // Request-scoped trace context: every span emitted while this job runs —
  // serve.job itself, the pipeline/kernel spans below it, and pool.job
  // spans on ParallelRuntime workers (the pool captures the context at
  // submit) — carries this request's id/op/session as Chrome trace args.
  // Contexts stamp at span *emission*, so the scope is installed before
  // serve.job and outlives every handler span. Skipped when tracing is off
  // to keep the interner off the untraced fast path.
  std::optional<obs::TraceContextScope> trace_ctx;
  if (obs::tracing_enabled()) {
    trace_ctx.emplace(job.request.id, op_name(job.request.op), job.request.session);
  }
  // Worker-phase fires (serve.dispatch, pipeline.*, core.*, io.parse,
  // serve.respond — all on this thread) land in this request's record.
  util::fault::ScopedFireCollector fault_collector;
  DGR_TRACE_SCOPE("serve.job");
  if (job.has_deadline && std::chrono::steady_clock::now() >= job.deadline) {
    respond(job,
            error_response(job.request.id, op_name(job.request.op),
                           Status(StatusCode::kStageTimeout,
                                  "deadline expired while queued")),
            Outcome::kFailed);
    return;
  }
  if (DGR_FAULT_POINT("serve.dispatch")) {
    respond(job,
            error_response(job.request.id, op_name(job.request.op),
                           Status(StatusCode::kFaultInjected, "injected dispatch fault")),
            Outcome::kFailed);
    return;
  }

  // Register with the watchdog for the duration of the handler.
  if (job.has_deadline) {
    std::lock_guard<std::mutex> lock(active_mu_);
    active_.push_back(ActiveEntry{job.cancel, job.deadline});
  }
  Response response;
  try {
    // Chaos site modelling a handler crash: the only way to exercise the
    // exception-isolation path (and the flight recorder's INTERNAL dump
    // trigger) on demand.
    if (DGR_FAULT_POINT("serve.handler")) {
      throw std::runtime_error("injected handler crash");
    }
    switch (job.request.op) {
      case Op::kLoad: response = handle_load(job); break;
      case Op::kRoute: response = handle_route(job); break;
      case Op::kEco: response = handle_eco(job); break;
      default:
        response = error_response(job.request.id, op_name(job.request.op),
                                  Status(StatusCode::kInternal,
                                         "control op reached the worker pool"));
        break;
    }
  } catch (const std::exception& e) {
    // Crash isolation: a poisoned request must never take the daemon down.
    response = error_response(
        job.request.id, op_name(job.request.op),
        Status(StatusCode::kInternal, std::string("unhandled exception: ") + e.what()));
  } catch (...) {
    response = error_response(job.request.id, op_name(job.request.op),
                              Status(StatusCode::kInternal, "unhandled non-standard exception"));
  }
  if (job.has_deadline) {
    std::lock_guard<std::mutex> lock(active_mu_);
    active_.erase(std::remove_if(active_.begin(), active_.end(),
                                 [&](const ActiveEntry& e) {
                                   return e.cancel == job.cancel;
                                 }),
                  active_.end());
  }
  const Outcome outcome =
      response.status.ok() ? Outcome::kSucceeded : Outcome::kFailed;
  respond(job, std::move(response), outcome);
}

Response Server::handle_load(const Job& job) {
  const Request& req = job.request;
  Result<design::Design> parsed = [&]() -> Result<design::Design> {
    if (!req.design_text.empty()) {
      std::istringstream is(req.design_text);
      return design::try_read_design(is, options_.design_limits);
    }
    return design::try_read_design_file(req.design_path, options_.design_limits);
  }();
  if (!parsed.ok()) {
    return error_response(req.id, op_name(req.op), parsed.status());
  }
  design::Design design = parsed.take();
  const std::uint64_t seed = req.has_seed ? req.seed : 1;

  Response r;
  r.id = req.id;
  r.op = op_name(req.op);
  r.result = Value::object();
  r.result["session"] = req.session;
  r.result["design"] = design.name();
  r.result["nets"] = design.net_count();
  r.result["routable"] = design.routable_nets().size();
  Value grid = Value::array();
  grid.push_back(design.grid().width());
  grid.push_back(design.grid().height());
  r.result["grid"] = grid;

  sessions_.put(req.session, std::move(design), seed);
  return r;
}

Response Server::handle_route(Job& job) {
  const Request& req = job.request;
  std::shared_ptr<Session> session = sessions_.find(req.session);
  if (session == nullptr) {
    return error_response(req.id, op_name(req.op),
                          Status(StatusCode::kNotFound,
                                 "unknown session '" + req.session + "'"));
  }
  const std::string router = req.router.empty() ? options_.default_router : req.router;
  if (!pipeline::has_router(router)) {
    return error_response(req.id, op_name(req.op),
                          Status(StatusCode::kInvalidArgument,
                                 "unknown router '" + router + "'"));
  }
  std::string fallback =
      req.fallback.empty() ? options_.fallback_router : req.fallback;
  if (fallback == "none") fallback.clear();

  // Partition-parallel routing: "partitions" >= 2 (or the server default)
  // swaps in the partitioned engine with the requested router as its
  // region router. The parser already bounds req.partitions to [1, 64].
  const int partitions =
      req.has_partitions ? req.partitions : options_.default_partitions;
  std::string effective_router = router;
  if (partitions >= 2 && router != "partitioned") {
    if (router == "maze-refine") {
      return error_response(
          req.id, op_name(req.op),
          Status(StatusCode::kInvalidArgument,
                 "'partitions' cannot wrap warm-start-only router 'maze-refine'"));
    }
    effective_router = "partitioned";
  }

  std::lock_guard<std::mutex> session_lock(session->mu);
  pipeline::RoutingContext& ctx = session->context();
  const std::uint64_t base_seed = req.has_seed ? req.seed : session->seed;

  pipeline::PipelineResult result;
  int attempts_run = 0;
  pipeline::RouterOptions ropts;
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    attempts_run = attempt + 1;
    job.attempts = attempts_run;  // visible to the flight record on any exit
    const bool final_attempt = attempt + 1 >= options_.max_attempts;

    // Per-attempt engine options: request overrides over the server base,
    // reseeded per attempt so a diverging run explores fresh Gumbel noise.
    ropts = options_.router_options;
    if (options_.default_iterations > 0) ropts.dgr.iterations = options_.default_iterations;
    if (req.iterations > 0) ropts.dgr.iterations = req.iterations;
    ropts.dgr.record_telemetry = req.telemetry;
    ropts.dgr.seed = base_seed + static_cast<std::uint64_t>(attempt) * kReseedStride;
    if (partitions >= 2) {
      ropts.partition.partitions = partitions;
      if (router != "partitioned") ropts.partition.region_router = router;
    }

    pipeline::PipelineOptions popts;
    popts.budgets.fallback_router = fallback;
    // Retry policy: non-final attempts surface divergence for the reseeded
    // retry; the final attempt degrades exactly as the pipeline does.
    popts.budgets.degrade_on_divergence = final_attempt;
    if (job.has_deadline) {
      const double remaining =
          std::chrono::duration<double>(job.deadline - std::chrono::steady_clock::now())
              .count();
      if (remaining <= 0.0) {
        return error_response(req.id, op_name(req.op),
                              Status(StatusCode::kStageTimeout,
                                     "deadline expired before route attempt " +
                                         std::to_string(attempts_run)));
      }
      popts.budgets.route_seconds = remaining;
    }

    ctx.reset_demand();
    ctx.clear_warm_start();
    ctx.set_cancel_flag(job.cancel.get());
    pipeline::Pipeline pipe(ctx, popts);
    result = pipe.run(effective_router, ropts);
    ctx.set_cancel_flag(nullptr);

    if (result.stats.status.code() == StatusCode::kNumericDivergence && !final_attempt) {
      obs::metrics().counter("serve.requests.retries").add(1);
      DGR_LOG_INFO("serve: request %s diverged on attempt %d, reseeding",
                   req.id.c_str(), attempts_run);
      continue;
    }
    break;
  }

  job.degraded = result.stats.degraded;
  if (!result.stats.status.ok()) {
    return error_response(req.id, op_name(req.op), result.stats.status);
  }
  if (result.stats.degraded) obs::metrics().counter("serve.requests.degraded").add(1);

  // Refresh the session's memory accounting with what this route retained.
  if (ctx.has_forest(ropts.forest)) {
    session->forest_bytes.store(ctx.forest(ropts.forest).memory_bytes(),
                                std::memory_order_relaxed);
  }
  session->solver_bytes.store(result.stats.solver_bytes, std::memory_order_relaxed);

  Response r;
  r.id = req.id;
  r.op = op_name(req.op);
  r.result = Value::object();
  r.result["router"] = result.stats.router;
  r.result["seed"] = ropts.dgr.seed;
  r.result["partitions"] = partitions >= 2 ? partitions : 1;
  r.result["degraded"] = result.stats.degraded;
  r.result["attempts"] = attempts_run;
  r.result["metrics"] = metrics_to_json(result.metrics);
  r.result["weighted_overflow"] = result.weighted_overflow;
  r.result["nets_with_overflow"] = result.nets_with_overflow;
  Value stats = Value::object();
  stats["rollbacks"] = result.stats.rollbacks;
  stats["repaired_nets"] = result.stats.repaired_nets;
  if (!result.stats.attempts.empty()) {
    Value attempts = Value::array();
    for (const pipeline::RouteAttempt& a : result.stats.attempts) {
      attempts.push_back(attempt_to_json(a));
    }
    stats["route_attempts"] = attempts;
  }
  r.result["stats"] = stats;
  if (req.telemetry) {
    Value telemetry = Value::object();
    telemetry["samples"] = result.stats.convergence.size();
    telemetry["rollback_events"] = result.stats.convergence.rollbacks.size();
    if (!result.stats.convergence.empty()) {
      telemetry["final_loss"] = result.stats.convergence.samples().back().loss;
    }
    r.result["telemetry"] = telemetry;
  }

  if (req.keep) {
    session->base = std::move(result.solution);
    session->solution_bytes.store(estimate_solution_bytes(session->base),
                                  std::memory_order_relaxed);
  }
  sessions_.enforce_budget();
  return r;
}

Response Server::handle_eco(const Job& job) {
  const Request& req = job.request;
  std::shared_ptr<Session> session = sessions_.find(req.session);
  if (session == nullptr) {
    return error_response(req.id, op_name(req.op),
                          Status(StatusCode::kNotFound,
                                 "unknown session '" + req.session + "'"));
  }
  std::lock_guard<std::mutex> session_lock(session->mu);

  if (session->eco == nullptr) {
    eco::EcoOptions eopts;
    eopts.context.seed = session->seed;
    eopts.router = options_.fallback_router.empty() ? "cugr2-lite"
                                                    : options_.fallback_router;
    eopts.router_options = options_.router_options;
    auto engine = std::make_unique<eco::EcoEngine>(
        design::make_design_state(*session->design, session->seed), eopts);
    // Baseline: adopt the session's kept routing state when one exists (a
    // delta reroute then reuses it instead of routing from scratch).
    bool adopted = false;
    if (session->base.design != nullptr) {
      adopted = engine->adopt(session->base).ok();
    }
    if (!adopted) {
      Result<eco::EcoResult> base = engine->route_full();
      if (!base.ok()) {
        return error_response(req.id, op_name(req.op), base.status());
      }
    }
    session->eco = std::move(engine);
  }

  design::Mutation mutation;
  if (req.generate_mutation) {
    util::Rng rng(req.mutation_seed);
    mutation = design::generate_mutation(session->eco->state(), {}, rng);
  } else {
    mutation = req.mutation;
  }

  Result<eco::EcoResult> applied = session->eco->apply(mutation);
  if (!applied.ok()) {
    return error_response(req.id, op_name(req.op), applied.status());
  }
  const eco::EcoResult eco = applied.take();
  session->solution_bytes.store(estimate_solution_bytes(session->eco->solution()),
                                std::memory_order_relaxed);
  sessions_.enforce_budget();

  Response r;
  r.id = req.id;
  r.op = op_name(req.op);
  r.result = Value::object();
  r.result["mutation"] = mutation.label;
  r.result["applied"] = session->eco->applied();
  r.result["full_reroute"] = eco.stats.full_reroute;
  r.result["dirty_fraction"] = eco.stats.dirty_fraction;
  r.result["closure_nets"] = eco.stats.closure_dirty;
  r.result["metrics"] = metrics_to_json(eco.metrics);
  r.result["weighted_overflow"] = eco.weighted_overflow;
  return r;
}

Response Server::handle_stats(const Request& req) {
  Response r;
  r.id = req.id;
  r.op = op_name(req.op);
  r.result = Value::object();
  Value acct = Value::object();
  const Accounting a = accounting();
  // This request is already counted offered but responds after this
  // snapshot, so report it as succeeded up front to keep the published
  // numbers self-consistent (offered = succeeded + rejected + failed).
  acct["offered"] = a.offered;
  acct["succeeded"] = a.succeeded + 1;
  acct["rejected"] = a.rejected;
  acct["failed"] = a.failed;
  acct["in_flight"] = in_flight_.load(std::memory_order_relaxed);
  acct["queue_depth"] = queue_depth();
  r.result["accounting"] = acct;
  Value names = Value::array();
  for (const std::string& name : sessions_.names()) names.push_back(name);
  r.result["sessions"] = names;
  r.result["cache_bytes"] = sessions_.memory_bytes();
  // Trace-loss visibility: operators see dropped spans and ring pressure
  // here instead of silently missing events in the exported timeline.
  Value trace = Value::object();
  trace["enabled"] = obs::tracing_enabled();
  trace["buffered_events"] = obs::trace_event_count();
  trace["dropped_events"] = obs::trace_dropped();
  trace["ring_capacity"] = obs::trace_ring_capacity();
  r.result["trace"] = trace;
  Value flight = Value::object();
  flight["capacity"] = flight_.capacity();
  flight["occupancy"] = flight_.size();
  flight["recorded"] = flight_.total();
  flight["dumps"] = flight_.dumps();
  r.result["flight"] = flight;
  // Active partition configuration: what a "route" without a "partitions"
  // field gets, and the tiling the partitioned engine would use.
  Value part = Value::object();
  part["default_partitions"] =
      options_.default_partitions >= 2 ? options_.default_partitions : 1;
  part["halo"] = options_.router_options.partition.halo;
  part["seeding"] =
      options_.router_options.partition.seeding == partition::Seeding::kUniform
          ? std::string("uniform")
          : std::string("congestion");
  part["region_router"] = options_.router_options.partition.region_router;
  r.result["partition"] = part;
  r.result["metrics"] = obs::metrics().snapshot();
  return r;
}

Response Server::handle_metrics(const Request& req) {
  update_slo_gauges();  // a scrape sees fresh SLO gauges even when idle
  Response r;
  r.id = req.id;
  r.op = op_name(req.op);
  r.result = Value::object();
  r.result["format"] = req.format;
  if (req.format == "prometheus") {
    r.result["text"] = obs::prometheus_text();
  } else {
    r.result["snapshot"] = obs::metrics().snapshot();
  }
  return r;
}

std::string Server::call(const std::string& line) {
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  submit(line, [&promise](const std::string& response) { promise.set_value(response); });
  return future.get();
}

void Server::shutdown(bool drain) {
  if (stopping_.exchange(true)) {
    // A second shutdown (e.g. destructor after an explicit call) only needs
    // to make sure the threads are gone.
    for (std::thread& w : workers_) {
      if (w.joinable()) w.join();
    }
    if (watchdog_.joinable()) watchdog_.join();
    if (exporter_.joinable()) exporter_.join();
    return;
  }
  stop_requested_.store(true, std::memory_order_relaxed);

  std::deque<Job> cancelled;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!drain) cancelled.swap(queue_);
    stop_workers_ = true;
    obs::metrics().gauge("serve.queue_depth").set(static_cast<double>(queue_.size()));
  }
  if (!drain) {
    // Cancel in-flight work cooperatively, answer the queue.
    std::lock_guard<std::mutex> lock(active_mu_);
    for (ActiveEntry& entry : active_) entry.cancel->store(true, std::memory_order_relaxed);
  }
  for (Job& job : cancelled) {
    respond(job,
            error_response(job.request.id, op_name(job.request.op),
                           Status(StatusCode::kCancelled,
                                  "cancelled by server shutdown")),
            Outcome::kFailed);
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  watchdog_stop_.store(true, std::memory_order_relaxed);
  if (watchdog_.joinable()) watchdog_.join();
  exporter_stop_.store(true, std::memory_order_relaxed);
  if (exporter_.joinable()) exporter_.join();
  flush_artifacts();
  DGR_LOG_INFO("serve: shutdown complete (%s)", drain ? "drained" : "cancelled");
}

void Server::flush_artifacts() {
  export_artifacts();  // final snapshot / Prometheus state
  if (!options_.trace_path.empty()) {
    obs::set_tracing(false);
    if (!obs::write_chrome_trace(options_.trace_path)) {
      DGR_LOG_WARN("serve: failed to write trace to %s", options_.trace_path.c_str());
    }
  }
  if (!options_.flight_path.empty()) {
    if (!flight_.dump(options_.flight_path, "shutdown")) {
      DGR_LOG_WARN("serve: failed to write flight record to %s",
                   options_.flight_path.c_str());
    }
  }
}

}  // namespace dgr::serve
