#include "serve/flight.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "util/status.hpp"

namespace dgr::serve {

namespace {

void copy_field(char* dst, std::size_t cap, std::string_view v) {
  const std::size_t n = std::min(cap - 1, v.size());
  std::memcpy(dst, v.data(), n);
  dst[n] = '\0';
}

std::vector<std::string> split_sites(const char* joined) {
  std::vector<std::string> out;
  std::string_view rest(joined);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    out.emplace_back(rest.substr(0, comma));
    if (comma == std::string_view::npos) break;
    rest.remove_prefix(comma + 1);
  }
  return out;
}

}  // namespace

void FlightRecord::set_id(std::string_view v) { copy_field(id, sizeof(id), v); }
void FlightRecord::set_op(std::string_view v) { copy_field(op, sizeof(op), v); }
void FlightRecord::set_session(std::string_view v) { copy_field(session, sizeof(session), v); }

void FlightRecord::set_fault_sites(const std::vector<std::string>& sites) {
  fault_fires = static_cast<std::uint32_t>(sites.size());
  std::string joined;
  for (const std::string& s : sites) {
    if (!joined.empty()) joined += ',';
    joined += s;
  }
  copy_field(fault_sites, sizeof(fault_sites), joined);
}

FlightRecorder::FlightRecorder(std::size_t capacity) {
  std::size_t cap = 2;
  while (cap < capacity) cap <<= 1;
  slots_ = std::make_unique<Slot[]>(cap);
  mask_ = cap - 1;
}

void FlightRecorder::record(const FlightRecord& rec) {
  const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_acq_rel);
  Slot& slot = slots_[ticket & mask_];
  // Invalidate first so a reader holding the previous lap's sequence can
  // never validate a half-overwritten record, then publish with a release
  // store of this ticket's unique sequence.
  slot.seq.store(0, std::memory_order_relaxed);
  slot.rec = rec;
  slot.seq.store(ticket + 1, std::memory_order_release);
}

std::size_t FlightRecorder::size() const {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(head_.load(std::memory_order_acquire), capacity()));
}

obs::json::Value FlightRecorder::to_json(std::string_view reason) const {
  using obs::json::Value;
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t cap = capacity();
  const std::uint64_t begin = head > cap ? head - cap : 0;

  Value doc = Value::object();
  doc["schema"] = "dgr-flight-v1";
  doc["reason"] = std::string(reason);
  doc["capacity"] = cap;
  doc["recorded"] = head;
  Value records = Value::array();
  for (std::uint64_t t = begin; t < head; ++t) {
    const Slot& slot = slots_[t & mask_];
    if (slot.seq.load(std::memory_order_acquire) != t + 1) continue;
    FlightRecord rec = slot.rec;
    // Re-validate: a writer lapping us mid-copy bumped or zeroed the
    // sequence, so the copy above may be torn — drop it.
    if (slot.seq.load(std::memory_order_acquire) != t + 1) continue;
    Value r = Value::object();
    r["id"] = rec.id;
    r["op"] = rec.op;
    r["session"] = rec.session;
    r["status"] = std::string(status_code_name(static_cast<StatusCode>(rec.status)));
    r["latency_ms"] = rec.latency_ms;
    r["attempts"] = rec.attempts;
    r["degraded"] = rec.degraded;
    r["cancelled"] = rec.cancelled;
    r["queue_depth"] = static_cast<std::int64_t>(rec.queue_depth);
    Value sites = Value::array();
    for (const std::string& s : split_sites(rec.fault_sites)) sites.push_back(s);
    r["fault_sites"] = std::move(sites);
    r["fault_fires"] = static_cast<std::int64_t>(rec.fault_fires);
    records.push_back(std::move(r));
  }
  doc["dropped"] = head - records.size();
  doc["records"] = std::move(records);
  return doc;
}

bool FlightRecorder::dump(const std::string& path, std::string_view reason) {
  const obs::json::Value doc = to_json(reason);
  std::lock_guard<std::mutex> lock(dump_mu_);
  std::ofstream out(path);
  if (!out) return false;
  out << doc.dump(1) << "\n";
  if (!out) return false;
  dumps_.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

namespace {

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool require_number(const obs::json::Value& obj, std::string_view key, std::string* error) {
  const obs::json::Value* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    return fail(error, "missing or non-numeric field: " + std::string(key));
  }
  if (v->as_number() < 0) return fail(error, "negative field: " + std::string(key));
  return true;
}

bool require_string(const obs::json::Value& obj, std::string_view key, std::string* error) {
  const obs::json::Value* v = obj.find(key);
  if (v == nullptr || !v->is_string()) {
    return fail(error, "missing or non-string field: " + std::string(key));
  }
  return true;
}

bool require_bool(const obs::json::Value& obj, std::string_view key, std::string* error) {
  const obs::json::Value* v = obj.find(key);
  if (v == nullptr || !v->is_bool()) {
    return fail(error, "missing or non-bool field: " + std::string(key));
  }
  return true;
}

}  // namespace

bool validate_flight_json(const obs::json::Value& doc, std::string* error) {
  if (!doc.is_object()) return fail(error, "document is not an object");
  const obs::json::Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() || schema->as_string() != "dgr-flight-v1") {
    return fail(error, "schema field is not \"dgr-flight-v1\"");
  }
  const obs::json::Value* reason = doc.find("reason");
  if (reason == nullptr || !reason->is_string() || reason->as_string().empty()) {
    return fail(error, "missing or empty reason");
  }
  if (!require_number(doc, "capacity", error) || !require_number(doc, "recorded", error) ||
      !require_number(doc, "dropped", error)) {
    return false;
  }
  if (doc.find("capacity")->as_number() < 1) return fail(error, "capacity < 1");
  const obs::json::Value* records = doc.find("records");
  if (records == nullptr || !records->is_array()) {
    return fail(error, "missing records array");
  }
  if (records->items().size() > doc.find("capacity")->as_number()) {
    return fail(error, "more records than capacity");
  }
  for (const obs::json::Value& r : records->items()) {
    if (!r.is_object()) return fail(error, "record is not an object");
    if (!require_string(r, "id", error) || !require_string(r, "op", error) ||
        !require_string(r, "session", error) || !require_string(r, "status", error)) {
      return false;
    }
    if (r.find("id")->as_string().empty()) return fail(error, "record with empty id");
    if (r.find("status")->as_string().empty()) return fail(error, "record with empty status");
    if (!require_number(r, "latency_ms", error) || !require_number(r, "attempts", error) ||
        !require_number(r, "queue_depth", error) || !require_number(r, "fault_fires", error)) {
      return false;
    }
    if (!require_bool(r, "degraded", error) || !require_bool(r, "cancelled", error)) {
      return false;
    }
    const obs::json::Value* sites = r.find("fault_sites");
    if (sites == nullptr || !sites->is_array()) {
      return fail(error, "record missing fault_sites array");
    }
    for (const obs::json::Value& s : sites->items()) {
      if (!s.is_string() || s.as_string().empty()) {
        return fail(error, "fault_sites entry is not a non-empty string");
      }
    }
  }
  return true;
}

}  // namespace dgr::serve
