#include "serve/protocol.hpp"

#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>

#include "util/fault.hpp"

namespace dgr::serve {

namespace {

using obs::json::Value;

/// Field accessors with typed failures. A missing optional field leaves the
/// default; a present field of the wrong JSON type is a kParseError (the
/// client sent a well-formed but type-broken document — reject, don't
/// guess).
Status read_string(const Value& doc, const char* key, std::string* out, bool* present = nullptr) {
  const Value* v = doc.find(key);
  if (present != nullptr) *present = v != nullptr;
  if (v == nullptr) return Status();
  if (!v->is_string()) {
    return Status(StatusCode::kParseError,
                  std::string("request field '") + key + "' must be a string");
  }
  *out = v->as_string();
  return Status();
}

Status read_number(const Value& doc, const char* key, double* out, bool* present = nullptr) {
  const Value* v = doc.find(key);
  if (present != nullptr) *present = v != nullptr;
  if (v == nullptr) return Status();
  if (!v->is_number()) {
    return Status(StatusCode::kParseError,
                  std::string("request field '") + key + "' must be a number");
  }
  *out = v->as_number();
  return Status();
}

Status read_bool(const Value& doc, const char* key, bool* out) {
  const Value* v = doc.find(key);
  if (v == nullptr) return Status();
  if (!v->is_bool()) {
    return Status(StatusCode::kParseError,
                  std::string("request field '") + key + "' must be a boolean");
  }
  *out = v->as_bool();
  return Status();
}

Status bad_mutation(const std::string& what) {
  return Status(StatusCode::kInvalidArgument, "eco mutation: " + what);
}

/// [x, y] -> Point.
Status parse_point(const Value& v, geom::Point* out) {
  if (!v.is_array() || v.items().size() != 2 || !v.items()[0].is_number() ||
      !v.items()[1].is_number()) {
    return bad_mutation("a pin must be a [x, y] number pair");
  }
  const double x = v.items()[0].as_number();
  const double y = v.items()[1].as_number();
  if (x < 0 || y < 0 || x > std::numeric_limits<geom::Coord>::max() ||
      y > std::numeric_limits<geom::Coord>::max() || x != std::floor(x) ||
      y != std::floor(y)) {
    return bad_mutation("pin coordinates must be non-negative integers");
  }
  out->x = static_cast<geom::Coord>(x);
  out->y = static_cast<geom::Coord>(y);
  return Status();
}

Status parse_index_list(const Value& doc, const char* key, std::vector<std::size_t>* out) {
  const Value* v = doc.find(key);
  if (v == nullptr || !v->is_array()) {
    return bad_mutation(std::string("'") + key + "' must be an array of net indices");
  }
  out->reserve(v->items().size());
  for (const Value& item : v->items()) {
    if (!item.is_number() || item.as_number() < 0 ||
        item.as_number() != std::floor(item.as_number())) {
      return bad_mutation(std::string("'") + key + "' entries must be non-negative integers");
    }
    out->push_back(static_cast<std::size_t>(item.as_number()));
  }
  return Status();
}

Status parse_blockage(const Value& doc, design::Blockage* out) {
  const Value* rect = doc.find("rect");
  if (rect == nullptr || !rect->is_array() || rect->items().size() != 4) {
    return bad_mutation("'rect' must be [x0, y0, x1, y1]");
  }
  geom::Point lo, hi;
  DGR_RETURN_IF_ERROR(parse_point(
      [&] {
        Value v = Value::array();
        v.push_back(rect->items()[0]);
        v.push_back(rect->items()[1]);
        return v;
      }(),
      &lo));
  DGR_RETURN_IF_ERROR(parse_point(
      [&] {
        Value v = Value::array();
        v.push_back(rect->items()[2]);
        v.push_back(rect->items()[3]);
        return v;
      }(),
      &hi));
  if (hi.x < lo.x || hi.y < lo.y) return bad_mutation("'rect' must satisfy x0<=x1, y0<=y1");
  out->rect = {lo, hi};
  double scale = 0.0;
  DGR_RETURN_IF_ERROR(read_number(doc, "scale", &scale));
  if (scale < 0.0 || scale > 1.0) return bad_mutation("'scale' must be in [0, 1]");
  out->scale = static_cast<float>(scale);
  return Status();
}

}  // namespace

const char* op_name(Op op) {
  switch (op) {
    case Op::kPing: return "ping";
    case Op::kLoad: return "load";
    case Op::kRoute: return "route";
    case Op::kEco: return "eco";
    case Op::kStats: return "stats";
    case Op::kMetrics: return "metrics";
    case Op::kShutdown: return "shutdown";
  }
  return "?";
}

Result<design::Mutation> parse_mutation(const Value& doc) {
  if (!doc.is_object()) return bad_mutation("payload must be an object");
  design::Mutation m;
  std::string kind;
  DGR_RETURN_IF_ERROR(read_string(doc, "kind", &kind));
  if (kind == "move_pins") {
    m.kind = design::MutationKind::kMovePins;
    DGR_RETURN_IF_ERROR(parse_index_list(doc, "nets", &m.nets));
    const Value* pins = doc.find("pins");
    if (pins == nullptr || !pins->is_array() || pins->items().size() != m.nets.size()) {
      return bad_mutation("'pins' must be an array of pin lists, parallel to 'nets'");
    }
    m.new_pins.reserve(pins->items().size());
    for (const Value& list : pins->items()) {
      if (!list.is_array() || list.items().empty()) {
        return bad_mutation("each entry of 'pins' must be a non-empty array of [x, y]");
      }
      std::vector<geom::Point> pts;
      pts.reserve(list.items().size());
      for (const Value& p : list.items()) {
        geom::Point pt;
        DGR_RETURN_IF_ERROR(parse_point(p, &pt));
        pts.push_back(pt);
      }
      m.new_pins.push_back(std::move(pts));
    }
  } else if (kind == "add_nets") {
    m.kind = design::MutationKind::kAddNets;
    const Value* add = doc.find("add");
    if (add == nullptr || !add->is_array() || add->items().empty()) {
      return bad_mutation("'add' must be a non-empty array of {name, pins, class?}");
    }
    for (const Value& entry : add->items()) {
      if (!entry.is_object()) return bad_mutation("'add' entries must be objects");
      design::Net net;
      DGR_RETURN_IF_ERROR(read_string(entry, "name", &net.name));
      if (net.name.empty()) return bad_mutation("added nets need a non-empty 'name'");
      const Value* pins = entry.find("pins");
      if (pins == nullptr || !pins->is_array() || pins->items().empty()) {
        return bad_mutation("added nets need a non-empty 'pins' array");
      }
      for (const Value& p : pins->items()) {
        geom::Point pt;
        DGR_RETURN_IF_ERROR(parse_point(p, &pt));
        net.pins.push_back(pt);
      }
      double cls = 0.0;
      DGR_RETURN_IF_ERROR(read_number(entry, "class", &cls));
      m.added.push_back(std::move(net));
      m.added_class.push_back(static_cast<int>(cls));
    }
  } else if (kind == "remove_nets") {
    m.kind = design::MutationKind::kRemoveNets;
    DGR_RETURN_IF_ERROR(parse_index_list(doc, "nets", &m.nets));
    if (m.nets.empty()) return bad_mutation("'nets' must name at least one net");
  } else if (kind == "add_blockage" || kind == "move_blockage") {
    m.kind = kind == "add_blockage" ? design::MutationKind::kAddBlockage
                                    : design::MutationKind::kMoveBlockage;
    DGR_RETURN_IF_ERROR(parse_blockage(doc, &m.blockage));
    if (m.kind == design::MutationKind::kMoveBlockage) {
      double index = 0.0;
      DGR_RETURN_IF_ERROR(read_number(doc, "index", &index));
      m.blockage_index = static_cast<std::size_t>(index);
    }
  } else if (kind == "remove_blockage") {
    m.kind = design::MutationKind::kRemoveBlockage;
    double index = 0.0;
    DGR_RETURN_IF_ERROR(read_number(doc, "index", &index));
    m.blockage_index = static_cast<std::size_t>(index);
  } else if (kind == "reweight_class") {
    m.kind = design::MutationKind::kReweightClass;
    double cls = 0.0, weight = 1.0;
    DGR_RETURN_IF_ERROR(read_number(doc, "class", &cls));
    DGR_RETURN_IF_ERROR(read_number(doc, "weight", &weight));
    if (!(weight > 0.0) || !std::isfinite(weight)) {
      return bad_mutation("'weight' must be a positive finite number");
    }
    m.net_class = static_cast<int>(cls);
    m.new_weight = static_cast<float>(weight);
  } else {
    return bad_mutation("unknown kind '" + kind + "'");
  }
  m.label = "serve:" + kind;
  return m;
}

Result<Request> parse_request(const std::string& line) {
  if (DGR_FAULT_POINT("serve.parse")) {
    return Status(StatusCode::kFaultInjected, "injected request-parse fault");
  }
  Value doc;
  std::string json_error;
  if (!Value::parse(line, &doc, &json_error)) {
    return Status(StatusCode::kParseError, "request is not JSON: " + json_error);
  }
  if (!doc.is_object()) {
    return Status(StatusCode::kParseError, "request must be a JSON object");
  }

  Request req;
  DGR_RETURN_IF_ERROR(read_string(doc, "id", &req.id));
  std::string op;
  DGR_RETURN_IF_ERROR(read_string(doc, "op", &op));
  if (op == "ping") {
    req.op = Op::kPing;
  } else if (op == "load") {
    req.op = Op::kLoad;
  } else if (op == "route") {
    req.op = Op::kRoute;
  } else if (op == "eco") {
    req.op = Op::kEco;
  } else if (op == "stats") {
    req.op = Op::kStats;
  } else if (op == "metrics") {
    req.op = Op::kMetrics;
  } else if (op == "shutdown") {
    req.op = Op::kShutdown;
  } else {
    return Status(StatusCode::kInvalidArgument,
                  op.empty() ? "request is missing 'op'" : "unknown op '" + op + "'");
  }

  DGR_RETURN_IF_ERROR(read_string(doc, "session", &req.session));
  DGR_RETURN_IF_ERROR(read_string(doc, "design", &req.design_text));
  DGR_RETURN_IF_ERROR(read_string(doc, "path", &req.design_path));
  DGR_RETURN_IF_ERROR(read_string(doc, "router", &req.router));
  DGR_RETURN_IF_ERROR(read_string(doc, "fallback", &req.fallback));

  double seed = 0.0;
  DGR_RETURN_IF_ERROR(read_number(doc, "seed", &seed, &req.has_seed));
  if (req.has_seed) {
    if (seed < 0.0) return Status(StatusCode::kInvalidArgument, "'seed' must be >= 0");
    req.seed = static_cast<std::uint64_t>(seed);
  }
  double deadline = 0.0;
  DGR_RETURN_IF_ERROR(read_number(doc, "deadline_ms", &deadline));
  if (deadline < 0.0) {
    return Status(StatusCode::kInvalidArgument, "'deadline_ms' must be >= 0");
  }
  req.deadline_ms = deadline;
  double iterations = 0.0;
  DGR_RETURN_IF_ERROR(read_number(doc, "iterations", &iterations));
  if (iterations < 0.0 || iterations > 1e9) {
    return Status(StatusCode::kInvalidArgument, "'iterations' out of range");
  }
  req.iterations = static_cast<int>(iterations);
  double partitions = 0.0;
  DGR_RETURN_IF_ERROR(read_number(doc, "partitions", &partitions, &req.has_partitions));
  if (req.has_partitions) {
    if (partitions < 1.0 || partitions > 64.0 ||
        partitions != std::floor(partitions)) {
      return Status(StatusCode::kInvalidArgument,
                    "'partitions' must be an integer in [1, 64]");
    }
    req.partitions = static_cast<int>(partitions);
  }
  DGR_RETURN_IF_ERROR(read_bool(doc, "telemetry", &req.telemetry));
  DGR_RETURN_IF_ERROR(read_bool(doc, "keep", &req.keep));
  DGR_RETURN_IF_ERROR(read_string(doc, "format", &req.format));

  switch (req.op) {
    case Op::kLoad:
      if (req.session.empty()) {
        return Status(StatusCode::kInvalidArgument, "load needs a 'session' key");
      }
      if (req.design_text.empty() == req.design_path.empty()) {
        return Status(StatusCode::kInvalidArgument,
                      "load needs exactly one of 'design' (inline) or 'path'");
      }
      break;
    case Op::kRoute:
      if (req.session.empty()) {
        return Status(StatusCode::kInvalidArgument, "route needs a 'session' key");
      }
      break;
    case Op::kEco: {
      if (req.session.empty()) {
        return Status(StatusCode::kInvalidArgument, "eco needs a 'session' key");
      }
      const Value* mut = doc.find("mutation");
      if (mut == nullptr) {
        return Status(StatusCode::kInvalidArgument, "eco needs a 'mutation' object");
      }
      bool generate = false;
      DGR_RETURN_IF_ERROR(read_bool(*mut, "generate", &generate));
      if (generate) {
        req.generate_mutation = true;
        double mseed = 1.0;
        DGR_RETURN_IF_ERROR(read_number(*mut, "seed", &mseed));
        if (mseed < 0.0) return Status(StatusCode::kInvalidArgument, "mutation 'seed' must be >= 0");
        req.mutation_seed = static_cast<std::uint64_t>(mseed);
      } else {
        Result<design::Mutation> parsed = parse_mutation(*mut);
        if (!parsed.ok()) return parsed.status();
        req.mutation = parsed.take();
      }
      req.has_mutation = true;
      break;
    }
    case Op::kMetrics:
      if (req.format.empty()) req.format = "json";
      if (req.format != "json" && req.format != "prometheus") {
        return Status(StatusCode::kInvalidArgument,
                      "metrics 'format' must be \"json\" or \"prometheus\"");
      }
      break;
    default:
      break;
  }
  return req;
}

std::string recover_request_id(const std::string& line) {
  Value doc;
  if (Value::parse(line, &doc) && doc.is_object()) {
    const Value* id = doc.find("id");
    if (id != nullptr && id->is_string()) return id->as_string();
  }
  return "";
}

Response error_response(std::string id, std::string op, Status status) {
  Response r;
  r.id = std::move(id);
  r.op = std::move(op);
  r.status = std::move(status);
  return r;
}

std::string serialize_response(const Response& response) {
  // A fault here models a corrupted serialisation path; the fallback is a
  // hand-assembled minimal envelope that is still valid JSON, so clients
  // always get a parseable, correlatable answer.
  if (DGR_FAULT_POINT("serve.respond")) {
    Value doc = Value::object();
    doc["id"] = response.id;
    doc["op"] = response.op;
    doc["ok"] = false;
    Value& err = doc["error"];
    err["code"] = std::string(status_code_name(StatusCode::kFaultInjected));
    err["message"] = "injected respond fault";
    return doc.dump(0);
  }
  Value doc = Value::object();
  doc["id"] = response.id;
  doc["op"] = response.op;
  doc["ok"] = response.status.ok();
  if (response.status.ok()) {
    doc["result"] = response.result.is_object() ? response.result : Value::object();
  } else {
    Value& err = doc["error"];
    err["code"] = std::string(status_code_name(response.status.code()));
    err["message"] = response.status.message();
  }
  return doc.dump(0);
}

bool validate_response_json(const Value& doc, std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  if (!doc.is_object()) return fail("response is not an object");
  const Value* id = doc.find("id");
  if (id == nullptr || !id->is_string()) return fail("missing string 'id'");
  const Value* op = doc.find("op");
  if (op == nullptr || !op->is_string()) return fail("missing string 'op'");
  const Value* ok = doc.find("ok");
  if (ok == nullptr || !ok->is_bool()) return fail("missing bool 'ok'");
  const Value* result = doc.find("result");
  const Value* err = doc.find("error");
  if (ok->as_bool()) {
    if (result == nullptr || !result->is_object()) return fail("ok response needs object 'result'");
    if (err != nullptr) return fail("ok response must not carry 'error'");
  } else {
    if (err == nullptr || !err->is_object()) return fail("error response needs object 'error'");
    if (result != nullptr) return fail("error response must not carry 'result'");
    const Value* code = err->find("code");
    const Value* message = err->find("message");
    if (code == nullptr || !code->is_string()) return fail("'error' needs string 'code'");
    if (message == nullptr || !message->is_string()) return fail("'error' needs string 'message'");
  }
  return true;
}

}  // namespace dgr::serve
