#include "serve/transport.hpp"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <istream>
#include <mutex>
#include <ostream>
#include <utility>

#include "util/log.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define DGR_SERVE_HAVE_UNIX_SOCKETS 1
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define DGR_SERVE_HAVE_UNIX_SOCKETS 0
#endif

namespace dgr::serve {

namespace {

std::atomic<int> g_signal{0};

extern "C" void dgr_serve_signal_handler(int sig) {
  g_signal.store(sig, std::memory_order_relaxed);
}

}  // namespace

void install_signal_handlers() {
#if DGR_SERVE_HAVE_UNIX_SOCKETS
  struct sigaction sa = {};
  sa.sa_handler = dgr_serve_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocked reads return EINTR -> loop exits
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
#else
  std::signal(SIGINT, dgr_serve_signal_handler);
  std::signal(SIGTERM, dgr_serve_signal_handler);
#endif
}

int signal_received() { return g_signal.load(std::memory_order_relaxed); }

void set_signal_received(int sig) { g_signal.store(sig, std::memory_order_relaxed); }

std::size_t run_stdio(Server& server, std::istream& in, std::ostream& out) {
  std::mutex write_mu;
  std::size_t submitted = 0;
  std::string line;
  while (signal_received() == 0 && !server.stop_requested() && std::getline(in, line)) {
    if (line.empty()) continue;
    ++submitted;
    server.submit(line, [&write_mu, &out](const std::string& response) {
      std::lock_guard<std::mutex> lock(write_mu);
      out << response << '\n';
      out.flush();
    });
  }
  return submitted;
}

// ---------------------------------------------------------------------------
// UnixSocketListener
// ---------------------------------------------------------------------------

UnixSocketListener::UnixSocketListener(Server& server) : server_(server) {}

UnixSocketListener::~UnixSocketListener() { stop(); }

Status UnixSocketListener::listen(const std::string& path) {
#if !DGR_SERVE_HAVE_UNIX_SOCKETS
  (void)path;
  return Status(StatusCode::kInvalidArgument,
                "unix domain sockets are not available on this platform");
#else
  if (listen_fd_.load(std::memory_order_relaxed) >= 0) {
    return Status(StatusCode::kInvalidArgument, "listener already bound to " + path_);
  }
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status(StatusCode::kInvalidArgument, "socket path too long: " + path);
  }
  path.copy(addr.sun_path, path.size());

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status(StatusCode::kInternal, "socket() failed");
  }
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status(StatusCode::kInternal, "bind(" + path + ") failed");
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    ::unlink(path.c_str());
    return Status(StatusCode::kInternal, "listen(" + path + ") failed");
  }
  listen_fd_.store(fd, std::memory_order_release);
  path_ = path;
  stopping_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { accept_loop(); });
  DGR_LOG_INFO("serve: listening on %s", path_.c_str());
  return Status();
#endif
}

void UnixSocketListener::stop() {
#if DGR_SERVE_HAVE_UNIX_SOCKETS
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(connections_);
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
  if (!path_.empty()) ::unlink(path_.c_str());
#else
  stopping_.store(true, std::memory_order_relaxed);
#endif
}

void UnixSocketListener::accept_loop() {
#if DGR_SERVE_HAVE_UNIX_SOCKETS
  for (;;) {
    const int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0) return;  // stop() already closed the socket
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) return;
      if (errno == EINTR) continue;
      return;
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections_.emplace_back([this, fd] { serve_connection(fd); });
  }
#endif
}

void UnixSocketListener::serve_connection(int fd) {
#if DGR_SERVE_HAVE_UNIX_SOCKETS
  auto write_mu = std::make_shared<std::mutex>();
  Server::Sink sink = [fd, write_mu](const std::string& response) {
    std::lock_guard<std::mutex> lock(*write_mu);
    std::string line = response;
    line.push_back('\n');
    std::size_t off = 0;
    while (off < line.size()) {
      const ssize_t n = ::send(fd, line.data() + off, line.size() - off, 0);
      if (n <= 0) break;  // client went away; response is dropped
      off += static_cast<std::size_t>(n);
    }
  };

  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR && !stopping_.load(std::memory_order_relaxed)) continue;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) server_.submit(line, sink);
    }
    buffer.erase(0, start);
    if (server_.stop_requested()) break;
  }
  ::close(fd);
#else
  (void)fd;
#endif
}

}  // namespace dgr::serve
