#pragma once
/// \file
/// dgr::serve transports: line-delimited JSON over stdin/stdout and over a
/// Unix domain socket, plus SIGINT/SIGTERM wiring.
///
/// Both transports are thin: they split the byte stream into lines, hand
/// each line to Server::submit, and serialise the (possibly out-of-order —
/// responses carry the request id) answers onto the output with a mutex.
/// All policy — admission, deadlines, retries, shutdown draining — lives in
/// the Server.

#include <atomic>
#include <iosfwd>
#include <string>
#include <thread>

#include "serve/server.hpp"

namespace dgr::serve {

/// Installs SIGINT/SIGTERM handlers that record the signal in a process
/// flag (async-signal-safe; no handler logic). Read loops poll
/// signal_received() and shut the server down gracefully.
void install_signal_handlers();
/// The last termination signal received, or 0.
int signal_received();
/// Test hook: clears / fakes the signal flag.
void set_signal_received(int sig);

/// Reads request lines from `in` until EOF, a received signal, or a
/// "shutdown" request, answering on `out` (one response per line, flushed).
/// Returns the number of lines submitted. Does not call
/// Server::shutdown() — the caller decides drain vs. cancel.
std::size_t run_stdio(Server& server, std::istream& in, std::ostream& out);

/// Listens on a Unix domain socket; each connection gets a reader thread
/// feeding Server::submit with responses written back on the same
/// connection. Failures to bind are reported through listen()'s Status.
class UnixSocketListener {
 public:
  explicit UnixSocketListener(Server& server);
  ~UnixSocketListener();

  UnixSocketListener(const UnixSocketListener&) = delete;
  UnixSocketListener& operator=(const UnixSocketListener&) = delete;

  /// Binds `path` (unlinking a stale socket file first) and starts the
  /// accept loop.
  Status listen(const std::string& path);

  /// Stops accepting, closes the listening socket, joins the connection
  /// threads, and unlinks the socket file. Idempotent.
  void stop();

  const std::string& path() const { return path_; }

 private:
  void accept_loop();
  void serve_connection(int fd);

  Server& server_;
  std::string path_;
  /// Written by stop() while accept_loop() reads it, hence atomic.
  std::atomic<int> listen_fd_{-1};
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> connections_;
  std::atomic<bool> stopping_{false};
};

}  // namespace dgr::serve
