#include "design/design.hpp"

#include <stdexcept>

namespace dgr::design {

Design::Design(std::string name, GCellGrid grid, std::vector<Net> nets)
    : name_(std::move(name)), grid_(std::move(grid)), nets_(std::move(nets)) {
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    Net& net = nets_[i];
    if (net.pins.empty()) throw std::invalid_argument("Design: net with no pins");
    net.pins = geom::dedupe_points(std::move(net.pins));
    for (const Point& p : net.pins) {
      if (!grid_.in_bounds(p)) throw std::invalid_argument("Design: pin out of grid");
    }
    if (net.pins.size() >= 2) routable_.push_back(i);
  }
}

std::vector<float> Design::pin_density() const {
  std::vector<float> density(static_cast<std::size_t>(grid_.cell_count()), 0.0f);
  for (const Net& net : nets_) {
    for (const Point& p : net.pins) {
      density[static_cast<std::size_t>(grid_.cell_id(p))] += 1.0f;
    }
  }
  return density;
}

std::vector<float> Design::local_net_density() const {
  std::vector<float> density(static_cast<std::size_t>(grid_.cell_count()), 0.0f);
  for (const Net& net : nets_) {
    if (net.is_local()) {
      density[static_cast<std::size_t>(grid_.cell_id(net.pins.front()))] += 1.0f;
    }
  }
  return density;
}

std::vector<float> Design::capacities(float beta) const {
  grid::CapacityInputs in;
  in.pin_density = pin_density();
  in.local_nets = local_net_density();
  in.beta_default = beta;
  return grid::compute_capacities(grid_, in);
}

std::int64_t Design::total_hpwl() const {
  std::int64_t total = 0;
  for (const Net& net : nets_) total += geom::Rect::bounding_box(net.pins).hpwl();
  return total;
}

}  // namespace dgr::design
