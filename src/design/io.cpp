#include "design/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dgr::design {
namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("dgrd parse error at line " + std::to_string(line) + ": " + what);
}

}  // namespace

void write_design(std::ostream& os, const Design& design) {
  const GCellGrid& grid = design.grid();
  os << "dgrd 1\n";
  os << "design " << (design.name().empty() ? "unnamed" : design.name()) << "\n";
  os << "grid " << grid.width() << " " << grid.height() << " " << grid.layer_count() << "\n";
  for (const auto& layer : grid.layers()) {
    os << "layer " << (layer.dir == grid::Dir::kHorizontal ? 'H' : 'V') << " "
       << layer.tracks << "\n";
  }
  os << "nets " << design.net_count() << "\n";
  for (const Net& net : design.nets()) {
    os << "net " << net.name << " " << net.pins.size();
    for (const Point& p : net.pins) os << " " << p.x << " " << p.y;
    os << "\n";
  }
  os << "end\n";
  if (!os) throw std::runtime_error("dgrd write failed");
}

void write_design_file(const std::string& path, const Design& design) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  write_design(os, design);
}

Design read_design(std::istream& is) {
  int line_no = 0;
  std::string line;
  auto next_line = [&](bool required) -> bool {
    while (std::getline(is, line)) {
      ++line_no;
      // Skip blanks and # comments.
      const auto pos = line.find_first_not_of(" \t\r");
      if (pos == std::string::npos || line[pos] == '#') continue;
      return true;
    }
    if (required) fail(line_no, "unexpected end of file");
    return false;
  };

  next_line(true);
  {
    std::istringstream ss(line);
    std::string magic;
    int version = 0;
    if (!(ss >> magic >> version) || magic != "dgrd" || version != 1) {
      fail(line_no, "expected header 'dgrd 1'");
    }
  }

  next_line(true);
  std::string name;
  {
    std::istringstream ss(line);
    std::string kw;
    if (!(ss >> kw >> name) || kw != "design") fail(line_no, "expected 'design <name>'");
  }

  next_line(true);
  int w = 0, h = 0, layer_count = 0;
  {
    std::istringstream ss(line);
    std::string kw;
    if (!(ss >> kw >> w >> h >> layer_count) || kw != "grid" || w < 1 || h < 1 ||
        layer_count < 1) {
      fail(line_no, "expected 'grid <W> <H> <L>'");
    }
  }

  std::vector<grid::LayerInfo> layers;
  for (int i = 0; i < layer_count; ++i) {
    next_line(true);
    std::istringstream ss(line);
    std::string kw;
    char dir = 0;
    int tracks = -1;
    if (!(ss >> kw >> dir >> tracks) || kw != "layer" || (dir != 'H' && dir != 'V') ||
        tracks < 0) {
      fail(line_no, "expected 'layer <H|V> <tracks>'");
    }
    layers.push_back({dir == 'H' ? grid::Dir::kHorizontal : grid::Dir::kVertical, tracks});
  }

  next_line(true);
  std::size_t net_count = 0;
  {
    std::istringstream ss(line);
    std::string kw;
    if (!(ss >> kw >> net_count) || kw != "nets") fail(line_no, "expected 'nets <N>'");
  }

  std::vector<Net> nets;
  nets.reserve(net_count);
  for (std::size_t i = 0; i < net_count; ++i) {
    next_line(true);
    std::istringstream ss(line);
    std::string kw;
    Net net;
    std::size_t npins = 0;
    if (!(ss >> kw >> net.name >> npins) || kw != "net" || npins == 0) {
      fail(line_no, "expected 'net <name> <npins> ...'");
    }
    for (std::size_t k = 0; k < npins; ++k) {
      Point p;
      if (!(ss >> p.x >> p.y)) fail(line_no, "net pin list truncated");
      net.pins.push_back(p);
    }
    nets.push_back(std::move(net));
  }

  next_line(true);
  if (line.substr(line.find_first_not_of(" \t"), 3) != "end") fail(line_no, "expected 'end'");

  return Design(std::move(name), GCellGrid(w, h, std::move(layers)), std::move(nets));
}

Design read_design_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  return read_design(is);
}

}  // namespace dgr::design
