#include "design/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "util/fault.hpp"

namespace dgr::design {
namespace {

// Format limits: generous for any realistic g-cell instance, small enough
// that a corrupt count can never drive a runaway allocation or an integer
// overflow in grid arithmetic (cells and edges stay well inside int32).
constexpr long long kMaxGridDim = 1 << 16;        // per-axis g-cells
constexpr long long kMaxGridCells = 1 << 26;      // W*H
constexpr long long kMaxLayers = 256;
constexpr long long kMaxTracks = 1 << 20;
constexpr long long kMaxNets = 10'000'000;
constexpr long long kMaxPinsPerNet = 100'000;

Status parse_fail(int line, const std::string& what) {
  return Status(StatusCode::kParseError,
                "dgrd parse error at line " + std::to_string(line) + ": " + what);
}

Status limit_fail(const std::string& what) {
  return Status(StatusCode::kInvalidDesign, "dgrd input rejected: " + what);
}

}  // namespace

void write_design(std::ostream& os, const Design& design) {
  const GCellGrid& grid = design.grid();
  os << "dgrd 1\n";
  os << "design " << (design.name().empty() ? "unnamed" : design.name()) << "\n";
  os << "grid " << grid.width() << " " << grid.height() << " " << grid.layer_count() << "\n";
  for (const auto& layer : grid.layers()) {
    os << "layer " << (layer.dir == grid::Dir::kHorizontal ? 'H' : 'V') << " "
       << layer.tracks << "\n";
  }
  os << "nets " << design.net_count() << "\n";
  for (const Net& net : design.nets()) {
    os << "net " << net.name << " " << net.pins.size();
    for (const Point& p : net.pins) os << " " << p.x << " " << p.y;
    os << "\n";
  }
  os << "end\n";
  if (!os) throw std::runtime_error("dgrd write failed");
}

void write_design_file(const std::string& path, const Design& design) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  write_design(os, design);
}

Result<Design> try_read_design(std::istream& is, const DesignLimits& limits) {
  int line_no = 0;
  std::string line;
  bool truncated = false;
  bool over_bytes = false;
  std::size_t bytes_read = 0;
  auto next_line = [&]() -> bool {
    while (std::getline(is, line)) {
      ++line_no;
      // The byte cap counts everything consumed from the stream — blanks
      // and comments included — so a hostile sender cannot smuggle an
      // arbitrarily large request past the cap as comment padding.
      bytes_read += line.size() + 1;
      if (limits.max_input_bytes > 0 && bytes_read > limits.max_input_bytes) {
        over_bytes = true;
        return false;
      }
      // Skip blanks and # comments.
      const auto pos = line.find_first_not_of(" \t\r");
      if (pos == std::string::npos || line[pos] == '#') continue;
      return true;
    }
    truncated = true;
    return false;
  };
  auto eof_fail = [&]() {
    if (over_bytes) {
      return limit_fail("input exceeds the configured byte cap (" +
                        std::to_string(limits.max_input_bytes) + " bytes)");
    }
    return parse_fail(line_no, "unexpected end of file");
  };

  if (DGR_FAULT_POINT("io.parse")) {
    return Status(StatusCode::kFaultInjected, "injected dgrd parse fault");
  }

  if (!next_line()) return eof_fail();
  {
    std::istringstream ss(line);
    std::string magic;
    int version = 0;
    if (!(ss >> magic >> version) || magic != "dgrd" || version != 1) {
      return parse_fail(line_no, "expected header 'dgrd 1'");
    }
  }

  if (!next_line()) return eof_fail();
  std::string name;
  {
    std::istringstream ss(line);
    std::string kw;
    if (!(ss >> kw >> name) || kw != "design") {
      return parse_fail(line_no, "expected 'design <name>'");
    }
  }

  if (!next_line()) return eof_fail();
  // Dimensions are read as long long so negative or overflowing literals are
  // caught by explicit range checks instead of wrapping through int.
  long long w = 0, h = 0, layer_count = 0;
  {
    std::istringstream ss(line);
    std::string kw;
    if (!(ss >> kw >> w >> h >> layer_count) || kw != "grid") {
      return parse_fail(line_no, "expected 'grid <W> <H> <L>'");
    }
    if (w < 1 || h < 1 || layer_count < 1) {
      return parse_fail(line_no, "grid dimensions must be positive");
    }
    if (w > kMaxGridDim || h > kMaxGridDim || w * h > kMaxGridCells ||
        layer_count > kMaxLayers) {
      return parse_fail(line_no, "grid dimensions exceed format limits");
    }
  }

  std::vector<grid::LayerInfo> layers;
  for (long long i = 0; i < layer_count; ++i) {
    if (!next_line()) return eof_fail();
    std::istringstream ss(line);
    std::string kw;
    char dir = 0;
    long long tracks = -1;
    if (!(ss >> kw >> dir >> tracks) || kw != "layer" || (dir != 'H' && dir != 'V')) {
      return parse_fail(line_no, "expected 'layer <H|V> <tracks>'");
    }
    if (tracks < 0 || tracks > kMaxTracks) {
      return parse_fail(line_no, "layer track count out of range");
    }
    layers.push_back({dir == 'H' ? grid::Dir::kHorizontal : grid::Dir::kVertical,
                      static_cast<int>(tracks)});
  }

  if (!next_line()) return eof_fail();
  long long net_count = 0;
  {
    std::istringstream ss(line);
    std::string kw;
    if (!(ss >> kw >> net_count) || kw != "nets" || net_count < 0) {
      return parse_fail(line_no, "expected 'nets <N>' with N >= 0");
    }
    if (net_count > kMaxNets) return parse_fail(line_no, "net count exceeds format limit");
    if (limits.max_nets > 0 && net_count > limits.max_nets) {
      return limit_fail("net count " + std::to_string(net_count) +
                        " exceeds the configured cap (" + std::to_string(limits.max_nets) +
                        " nets)");
    }
  }

  long long total_pins = 0;
  std::vector<Net> nets;
  nets.reserve(static_cast<std::size_t>(net_count));
  std::unordered_set<std::string> seen_names;
  seen_names.reserve(static_cast<std::size_t>(net_count));
  for (long long i = 0; i < net_count; ++i) {
    if (!next_line()) return eof_fail();
    std::istringstream ss(line);
    std::string kw;
    Net net;
    long long npins = 0;
    if (!(ss >> kw >> net.name >> npins) || kw != "net" || npins <= 0) {
      return parse_fail(line_no, "expected 'net <name> <npins> ...'");
    }
    if (npins > kMaxPinsPerNet) return parse_fail(line_no, "pin count exceeds format limit");
    total_pins += npins;
    if (limits.max_total_pins > 0 && total_pins > limits.max_total_pins) {
      return limit_fail("total pin count exceeds the configured cap (" +
                        std::to_string(limits.max_total_pins) + " pins)");
    }
    if (!seen_names.insert(net.name).second) {
      return parse_fail(line_no, "duplicate net id '" + net.name + "'");
    }
    net.pins.reserve(static_cast<std::size_t>(npins));
    for (long long k = 0; k < npins; ++k) {
      long long x = 0, y = 0;
      if (!(ss >> x >> y)) return parse_fail(line_no, "net pin list truncated");
      if (x < 0 || y < 0 || x >= w || y >= h) {
        return parse_fail(line_no, "pin (" + std::to_string(x) + "," + std::to_string(y) +
                                       ") outside the grid");
      }
      net.pins.push_back({static_cast<geom::Coord>(x), static_cast<geom::Coord>(y)});
    }
    nets.push_back(std::move(net));
  }

  if (!next_line()) return eof_fail();
  if (line.substr(line.find_first_not_of(" \t"), 3) != "end") {
    return parse_fail(line_no, "expected 'end'");
  }

  // Design's own invariants (pin dedup, non-empty nets) are a second gate;
  // convert any rejection into a ParseError rather than letting it escape.
  try {
    return Design(std::move(name),
                  GCellGrid(static_cast<int>(w), static_cast<int>(h), std::move(layers)),
                  std::move(nets));
  } catch (const std::exception& e) {
    return parse_fail(line_no, std::string("design validation failed: ") + e.what());
  }
}

Result<Design> try_read_design_file(const std::string& path, const DesignLimits& limits) {
  std::ifstream is(path);
  if (!is) return Status(StatusCode::kNotFound, "cannot open for read: " + path);
  return try_read_design(is, limits);
}

Design read_design(std::istream& is) {
  Result<Design> result = try_read_design(is);
  if (!result.ok()) throw std::runtime_error(result.status().to_string());
  return result.take();
}

Design read_design_file(const std::string& path) {
  Result<Design> result = try_read_design_file(path);
  if (!result.ok()) throw std::runtime_error(result.status().to_string());
  return result.take();
}

}  // namespace dgr::design
