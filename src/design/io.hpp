#pragma once
// Plain-text design interchange format ("dgrd").
//
// The contest LEF/DEF files are not available offline, so the repo defines a
// minimal, line-oriented design format with the information global routing
// needs: grid extent, layer stack (direction + tracks) and nets with g-cell
// pin locations. Generated designs can be saved/loaded so experiments are
// replayable without rerunning the generator.
//
//   dgrd 1
//   design <name>
//   grid <W> <H> <L>
//   layer <H|V> <tracks>          (L lines, bottom-up)
//   nets <N>
//   net <name> <npins> <x> <y> [<x> <y> ...]
//   end
//
// The parser is hardened against hostile input: truncated files, numeric
// overflow/negative counts, zero/absurd grid dimensions, duplicate net ids
// and out-of-grid pins all yield a typed ParseError with the offending line
// number — never a crash, hang or runaway allocation (see the format limits
// in io.cpp).

#include <iosfwd>
#include <string>

#include "design/design.hpp"
#include "util/status.hpp"

namespace dgr::design {

/// Serialises a design; throws std::runtime_error on stream failure.
void write_design(std::ostream& os, const Design& design);
void write_design_file(const std::string& path, const Design& design);

/// Admission caps for parsing *untrusted* design input (a request arriving
/// over the serve daemon's socket). The parser's built-in format limits
/// guard against overflow and runaway allocation; these caps additionally
/// bound the total size a single request may hand the process. A cap of 0
/// disables that dimension. Violations return StatusCode::kInvalidDesign
/// with the exceeded limit named in the message — distinct from
/// kParseError, which keeps meaning "malformed".
struct DesignLimits {
  std::size_t max_input_bytes = 0;  ///< total bytes consumed from the stream
  long long max_nets = 0;           ///< declared net count
  long long max_total_pins = 0;     ///< pins summed over all nets
};

/// Parses a design. On malformed input returns StatusCode::kParseError with
/// a line-numbered message; on a missing file, kNotFound; on input that is
/// well-formed but exceeds `limits`, kInvalidDesign. Never throws for bad
/// input.
Result<Design> try_read_design(std::istream& is, const DesignLimits& limits = {});
Result<Design> try_read_design_file(const std::string& path,
                                    const DesignLimits& limits = {});

/// Throwing convenience wrappers over the Status API (std::runtime_error
/// carrying Status::to_string()).
Design read_design(std::istream& is);
Design read_design_file(const std::string& path);

}  // namespace dgr::design
