#pragma once
// Plain-text design interchange format ("dgrd").
//
// The contest LEF/DEF files are not available offline, so the repo defines a
// minimal, line-oriented design format with the information global routing
// needs: grid extent, layer stack (direction + tracks) and nets with g-cell
// pin locations. Generated designs can be saved/loaded so experiments are
// replayable without rerunning the generator.
//
//   dgrd 1
//   design <name>
//   grid <W> <H> <L>
//   layer <H|V> <tracks>          (L lines, bottom-up)
//   nets <N>
//   net <name> <npins> <x> <y> [<x> <y> ...]
//   end
//
// The parser is hardened against hostile input: truncated files, numeric
// overflow/negative counts, zero/absurd grid dimensions, duplicate net ids
// and out-of-grid pins all yield a typed ParseError with the offending line
// number — never a crash, hang or runaway allocation (see the format limits
// in io.cpp).

#include <iosfwd>
#include <string>

#include "design/design.hpp"
#include "util/status.hpp"

namespace dgr::design {

/// Serialises a design; throws std::runtime_error on stream failure.
void write_design(std::ostream& os, const Design& design);
void write_design_file(const std::string& path, const Design& design);

/// Parses a design. On malformed input returns StatusCode::kParseError with
/// a line-numbered message; on a missing file, kNotFound. Never throws for
/// bad input.
Result<Design> try_read_design(std::istream& is);
Result<Design> try_read_design_file(const std::string& path);

/// Throwing convenience wrappers over the Status API (std::runtime_error
/// carrying Status::to_string()).
Design read_design(std::istream& is);
Design read_design_file(const std::string& path);

}  // namespace dgr::design
