#pragma once
// Synthetic testcase generators.
//
// The ISPD'18/'19 contest benchmarks used by the paper are LEF/DEF
// distributions we cannot redistribute, so this module generates seeded
// synthetic designs that reproduce the *regimes* the evaluation needs:
//
//  * Table 1 protocol ("3 g-cells arbitrarily selected within a box for
//    each net") — reproduced verbatim by `make_table1_instance`.
//  * ispd18-like scale ladder (test1..test10) and congested 5-layer
//    ispd19-like cases — produced by `generate_ispd_like` from presets whose
//    parameters (grid, #nets, hot-spot clustering) are scaled to CPU budgets.

#include <cstdint>
#include <string>
#include <vector>

#include "design/design.hpp"

namespace dgr::design {

// ---------------------------------------------------------------------------
// Table 1 synthetic protocol
// ---------------------------------------------------------------------------

struct Table1Params {
  int grid_w = 20;
  int grid_h = 20;
  int capacity = 1;   ///< uniform cap_e for every g-cell edge
  int num_nets = 20;
  int box_size = 4;   ///< pins are drawn inside a box_size x box_size window
  int pins_per_net = 3;
};

struct Table1Instance {
  Design design;
  std::vector<float> capacities;  ///< uniform, bypasses the Eq. 1 model
};

/// Draws `num_nets` nets of `pins_per_net` random g-cells inside a randomly
/// placed box, exactly as the paper's ILP comparison protocol.
Table1Instance make_table1_instance(const Table1Params& params, std::uint64_t seed);

// ---------------------------------------------------------------------------
// ISPD-like generator
// ---------------------------------------------------------------------------

struct IspdLikeParams {
  std::string name = "synthetic";
  int grid_w = 64;
  int grid_h = 64;
  int layers = 5;             ///< 5 matches the congested ISPD'19 subset
  int tracks_per_layer = 4;
  bool reserve_pin_layer = true;  ///< metal1 carries pins, no routing tracks
  int num_nets = 1000;
  int max_pins_per_net = 12;  ///< pin count ~ 2 + geometric, clamped
  double mean_extra_pins = 1.2;
  double local_net_fraction = 0.08;  ///< nets entirely inside one g-cell
  /// Net bounding-box edge as a fraction of grid size; mixture of short
  /// (local interconnect) and long (buses / global signals) nets.
  double short_net_frac = 0.75;
  double short_span = 0.08;
  double long_span = 0.45;
  /// Congestion hot-spots: net centres are attracted to `hotspots` cluster
  /// centres with probability `hotspot_affinity` (0 = uniform layout).
  int hotspots = 3;
  double hotspot_affinity = 0.55;
  double hotspot_sigma = 0.06;  ///< cluster radius as a fraction of grid size
};

Design generate_ispd_like(const IspdLikeParams& params, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Named presets mirroring the paper's benchmark lists (scaled to CPU budgets)
// ---------------------------------------------------------------------------

/// The six congested 5-layer cases of Table 2:
///   ispd18_5m, ispd18_8m, ispd18_10m, ispd19_7m, ispd19_8m, ispd19_9m.
/// `scale` in (0,1] shrinks #nets/grid together (1.0 = repo default size,
/// already far below the contest sizes; see EXPERIMENTS.md).
std::vector<IspdLikeParams> table2_presets(double scale = 1.0);

/// The ten ispd18_test1..test10 cases of Table 3 (scale ladder).
std::vector<IspdLikeParams> table3_presets(double scale = 1.0);

}  // namespace dgr::design
