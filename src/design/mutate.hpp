#pragma once
/// \file
/// Design mutations: first-class, seeded test inputs for incremental (ECO)
/// rerouting.
///
/// Real routers are re-invoked thousands of times on slightly-perturbed
/// designs. This module models that workload: a DesignState is the evolving
/// routing problem (netlist + blockage overlay + per-class routing weights),
/// a Mutation is one atomic perturbation of it, and the seeded generators
/// draw deterministic mutation sequences — including timing-critical
/// weighted net classes and moving-obstacle walks in the spirit of
/// dynamic-grid pathfinding benchmarks — so ECO tests and benches replay
/// bit-for-bit from a seed.
///
/// The netlist part of a DesignState stays a plain `Design`, so every
/// mutated state round-trips losslessly through the .dgrd format (blockages
/// and class weights are routing-side overlays, not netlist data).

#include <cstdint>
#include <string>
#include <vector>

#include "design/design.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace dgr::design {

/// A rectangular capacity overlay: every g-cell edge whose two endpoint
/// cells both fall inside `rect` has its capacity multiplied by `scale`
/// (0 = hard obstacle, 1 = no-op).
struct Blockage {
  geom::Rect rect;
  float scale = 0.0f;

  bool covers_edge(const GCellGrid& grid, grid::EdgeId e) const {
    const auto [a, b] = grid.edge_cells(e);
    return rect.contains(a) && rect.contains(b);
  }
  friend bool operator==(const Blockage&, const Blockage&) = default;
};

/// The evolving routing problem the ECO layer operates on: the immutable
/// netlist snapshot plus the routing-side overlays mutations can touch.
struct DesignState {
  Design design;
  std::vector<Blockage> blockages;
  /// Per-net class id, parallel to design.nets(); class 0 is "default".
  std::vector<int> net_class;
  /// Routing weight per class id (timing-critical classes weigh more; the
  /// ECO layer reroutes heavier classes first).
  std::vector<float> class_weight;

  float net_weight(std::size_t net) const {
    if (net >= net_class.size()) return 1.0f;
    const int c = net_class[net];
    return c >= 0 && c < static_cast<int>(class_weight.size())
               ? class_weight[static_cast<std::size_t>(c)]
               : 1.0f;
  }

  /// Per-edge capacities: `base` (Eq. 1 with `capacity_beta` when empty)
  /// with every blockage's scale applied to the edges it covers.
  std::vector<float> capacities(float capacity_beta = 0.5f,
                                const std::vector<float>& base = {}) const;
};

/// Wraps `design` with the standard three-class partition (default / clock
/// x2 / critical x4), assigned per net by a seeded hash so the classing is a
/// pure function of (seed, net index).
DesignState make_design_state(Design design, std::uint64_t seed = 1);

// ---------------------------------------------------------------------------
// Mutations
// ---------------------------------------------------------------------------

enum class MutationKind : int {
  kMovePins,       ///< replace the pin lists of existing nets
  kAddNets,        ///< append new nets
  kRemoveNets,     ///< erase nets (indices shift; see MutationEffect)
  kAddBlockage,    ///< append a capacity overlay
  kMoveBlockage,   ///< relocate an existing overlay (moving-obstacle step)
  kRemoveBlockage, ///< erase an overlay
  kReweightClass,  ///< change one net class's routing weight
};

const char* mutation_kind_name(MutationKind kind);

/// One atomic perturbation. Only the fields of the active `kind` are read.
struct Mutation {
  MutationKind kind = MutationKind::kMovePins;
  std::string label;  ///< deterministic human-readable id for logs/benches

  // kMovePins / kRemoveNets: target nets (current design indices, ascending).
  std::vector<std::size_t> nets;
  // kMovePins: replacement pin lists, parallel to `nets`.
  std::vector<std::vector<geom::Point>> new_pins;
  // kAddNets: appended nets and their class ids (parallel; empty = class 0).
  std::vector<Net> added;
  std::vector<int> added_class;
  // kAddBlockage / kMoveBlockage destination.
  Blockage blockage;
  // kMoveBlockage / kRemoveBlockage: target overlay slot.
  std::size_t blockage_index = 0;
  // kReweightClass.
  int net_class = 0;
  float new_weight = 1.0f;
};

/// What a mutation did to the state, in terms the ECO layer needs.
struct MutationEffect {
  /// old net index -> new net index, -1 for removed nets.
  std::vector<std::ptrdiff_t> old_to_new;
  /// New-design indices of nets the mutation touched directly (moved,
  /// added, reweighted). Removed nets are gone, not dirty.
  std::vector<std::size_t> dirty;
  /// Whether edge capacities may have changed (blockage or netlist edits —
  /// pin moves shift the Eq. 1 pin-density terms too).
  bool capacity_changed = false;
};

/// Applies `m` to `state`. On success the state holds the mutated design
/// and overlays; on failure (out-of-range net/blockage/class index, pin
/// outside the grid, empty pin list) returns kInvalidArgument and leaves
/// `state` untouched.
Result<MutationEffect> apply_mutation(DesignState& state, const Mutation& m);

// ---------------------------------------------------------------------------
// Seeded generators
// ---------------------------------------------------------------------------

struct MutationParams {
  double move_fraction = 0.05;    ///< routable nets touched per move mutation
  double move_jitter = 0.12;      ///< pin displacement radius / grid size
  double add_fraction = 0.04;     ///< nets appended per add mutation
  double remove_fraction = 0.04;  ///< nets erased per remove mutation
  double blockage_span = 0.18;    ///< obstacle rect edge / grid size
  float blockage_scale = 0.25f;   ///< capacity multiplier inside an obstacle
  float reweight_min = 0.5f;      ///< new class weight drawn in
  float reweight_max = 4.0f;      ///<   [reweight_min, reweight_max)
};

/// Targeted generators: each draws one deterministic mutation of the named
/// kind from `rng`. All are pure functions of (state, params, rng state).
Mutation make_move_pins(const DesignState& state, const MutationParams& p, util::Rng& rng);
Mutation make_add_nets(const DesignState& state, const MutationParams& p, util::Rng& rng);
Mutation make_remove_nets(const DesignState& state, const MutationParams& p, util::Rng& rng);
Mutation make_add_blockage(const DesignState& state, const MutationParams& p, util::Rng& rng);
Mutation make_remove_blockage(const DesignState& state, const MutationParams& p,
                              util::Rng& rng);
Mutation make_reweight_class(const DesignState& state, const MutationParams& p,
                             util::Rng& rng);

/// One step of a moving-obstacle walk: step 0 drops a blockage, every later
/// step relocates it along a deterministic orbit around the grid centre.
/// The same (params, seed) sequence replays the same walk on any design.
Mutation make_blockage_walk_step(const DesignState& state, const MutationParams& p,
                                 std::uint64_t seed, int step);

/// Draws one mutation of a seeded-random applicable kind (kRemoveBlockage
/// only when an overlay exists, kRemoveNets only while nets remain, ...).
Mutation generate_mutation(const DesignState& state, const MutationParams& p,
                           util::Rng& rng);

}  // namespace dgr::design
