#include "design/mutate.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace dgr::design {

namespace {

using geom::Coord;
using geom::Point;
using geom::Rect;
using util::Rng;

/// splitmix64 step — the same mixer Rng seeds with, reused so net classing
/// is a pure function of (seed, index) without burning generator state.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Coord clamp_coord(std::int64_t v, int extent) {
  return static_cast<Coord>(std::clamp<std::int64_t>(v, 0, extent - 1));
}

/// Deterministic class for one net: ~80% default, ~12% clock, ~8% critical.
int draw_class(std::uint64_t seed, std::size_t net) {
  const std::uint64_t h = mix(seed ^ mix(static_cast<std::uint64_t>(net)));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u < 0.80) return 0;
  if (u < 0.92) return 1;
  return 2;
}

/// How many nets a fraction-of-routable draw touches (at least one).
std::size_t fraction_count(const DesignState& state, double fraction) {
  const std::size_t routable = state.design.routable_nets().size();
  const auto n = static_cast<std::size_t>(std::llround(fraction * routable));
  return std::max<std::size_t>(1, std::min(n, std::max<std::size_t>(1, routable)));
}

/// Draws `count` distinct routable-net indices, ascending.
std::vector<std::size_t> draw_nets(const DesignState& state, std::size_t count,
                                   Rng& rng) {
  const auto& routable = state.design.routable_nets();
  if (routable.empty()) return {};
  count = std::min(count, routable.size());
  // Seeded partial Fisher-Yates over a copy of the routable list.
  std::vector<std::size_t> pool = routable;
  std::vector<std::size_t> picked;
  picked.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(i),
                        static_cast<std::int64_t>(pool.size()) - 1));
    std::swap(pool[i], pool[j]);
    picked.push_back(pool[i]);
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

Rect draw_rect(const GCellGrid& grid, double span, Rng& rng) {
  const int w = grid.width();
  const int h = grid.height();
  const int sw = std::max(1, static_cast<int>(std::lround(span * w)));
  const int sh = std::max(1, static_cast<int>(std::lround(span * h)));
  const auto x0 = rng.uniform_int(0, std::max(0, w - sw));
  const auto y0 = rng.uniform_int(0, std::max(0, h - sh));
  return Rect{{clamp_coord(x0, w), clamp_coord(y0, h)},
              {clamp_coord(x0 + sw - 1, w), clamp_coord(y0 + sh - 1, h)}};
}

}  // namespace

std::vector<float> DesignState::capacities(float capacity_beta,
                                           const std::vector<float>& base) const {
  std::vector<float> cap = base.empty() ? design.capacities(capacity_beta) : base;
  const GCellGrid& grid = design.grid();
  for (const Blockage& b : blockages) {
    for (grid::EdgeId e = 0; e < grid.edge_count(); ++e) {
      if (b.covers_edge(grid, e)) {
        cap[static_cast<std::size_t>(e)] *= std::max(0.0f, b.scale);
      }
    }
  }
  return cap;
}

DesignState make_design_state(Design design, std::uint64_t seed) {
  DesignState state;
  state.net_class.resize(design.net_count());
  for (std::size_t i = 0; i < design.net_count(); ++i) {
    state.net_class[i] = draw_class(seed, i);
  }
  state.class_weight = {1.0f, 2.0f, 4.0f};  // default / clock / critical
  state.design = std::move(design);
  return state;
}

const char* mutation_kind_name(MutationKind kind) {
  switch (kind) {
    case MutationKind::kMovePins: return "move_pins";
    case MutationKind::kAddNets: return "add_nets";
    case MutationKind::kRemoveNets: return "remove_nets";
    case MutationKind::kAddBlockage: return "add_blockage";
    case MutationKind::kMoveBlockage: return "move_blockage";
    case MutationKind::kRemoveBlockage: return "remove_blockage";
    case MutationKind::kReweightClass: return "reweight_class";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// apply_mutation
// ---------------------------------------------------------------------------

Result<MutationEffect> apply_mutation(DesignState& state, const Mutation& m) {
  const GCellGrid& grid = state.design.grid();
  const std::size_t old_count = state.design.net_count();
  MutationEffect effect;
  effect.old_to_new.resize(old_count);
  for (std::size_t i = 0; i < old_count; ++i) {
    effect.old_to_new[i] = static_cast<std::ptrdiff_t>(i);
  }

  auto bad = [](const std::string& what) {
    return Status(StatusCode::kInvalidArgument, "apply_mutation: " + what);
  };
  auto check_pins = [&](const std::vector<Point>& pins) -> bool {
    if (pins.empty()) return false;
    for (const Point& p : pins) {
      if (!grid.in_bounds(p)) return false;
    }
    return true;
  };

  switch (m.kind) {
    case MutationKind::kMovePins: {
      if (m.nets.size() != m.new_pins.size()) {
        return bad("move_pins needs one pin list per target net");
      }
      std::vector<Net> nets(state.design.nets());
      for (std::size_t k = 0; k < m.nets.size(); ++k) {
        const std::size_t idx = m.nets[k];
        if (idx >= old_count) return bad("move_pins net index out of range");
        if (!check_pins(m.new_pins[k])) return bad("move_pins pin list invalid");
        nets[idx].pins = m.new_pins[k];
        effect.dirty.push_back(idx);
      }
      state.design = Design(state.design.name(), grid, std::move(nets));
      effect.capacity_changed = true;  // pin density feeds Eq. 1
      break;
    }
    case MutationKind::kAddNets: {
      if (m.added.empty()) return bad("add_nets with no nets");
      if (!m.added_class.empty() && m.added_class.size() != m.added.size()) {
        return bad("add_nets class list must parallel the net list");
      }
      std::vector<Net> nets(state.design.nets());
      std::vector<int> classes(state.net_class);
      for (std::size_t k = 0; k < m.added.size(); ++k) {
        if (!check_pins(m.added[k].pins)) return bad("add_nets pin list invalid");
        effect.dirty.push_back(nets.size());
        nets.push_back(m.added[k]);
        classes.push_back(m.added_class.empty() ? 0 : m.added_class[k]);
      }
      state.design = Design(state.design.name(), grid, std::move(nets));
      state.net_class = std::move(classes);
      effect.capacity_changed = true;
      break;
    }
    case MutationKind::kRemoveNets: {
      if (m.nets.empty()) return bad("remove_nets with no targets");
      std::vector<bool> removed(old_count, false);
      for (const std::size_t idx : m.nets) {
        if (idx >= old_count) return bad("remove_nets net index out of range");
        removed[idx] = true;
      }
      std::vector<Net> nets;
      std::vector<int> classes;
      nets.reserve(old_count);
      classes.reserve(old_count);
      std::ptrdiff_t next = 0;
      for (std::size_t i = 0; i < old_count; ++i) {
        if (removed[i]) {
          effect.old_to_new[i] = -1;
          continue;
        }
        effect.old_to_new[i] = next++;
        nets.push_back(state.design.net(i));
        classes.push_back(state.net_class[i]);
      }
      state.design = Design(state.design.name(), grid, std::move(nets));
      state.net_class = std::move(classes);
      effect.capacity_changed = true;
      break;
    }
    case MutationKind::kAddBlockage: {
      if (!grid.in_bounds(m.blockage.rect.lo) || !grid.in_bounds(m.blockage.rect.hi)) {
        return bad("add_blockage rect outside the grid");
      }
      state.blockages.push_back(m.blockage);
      effect.capacity_changed = true;
      break;
    }
    case MutationKind::kMoveBlockage: {
      if (m.blockage_index >= state.blockages.size()) {
        return bad("move_blockage index out of range");
      }
      if (!grid.in_bounds(m.blockage.rect.lo) || !grid.in_bounds(m.blockage.rect.hi)) {
        return bad("move_blockage rect outside the grid");
      }
      state.blockages[m.blockage_index] = m.blockage;
      effect.capacity_changed = true;
      break;
    }
    case MutationKind::kRemoveBlockage: {
      if (m.blockage_index >= state.blockages.size()) {
        return bad("remove_blockage index out of range");
      }
      state.blockages.erase(state.blockages.begin() +
                            static_cast<std::ptrdiff_t>(m.blockage_index));
      effect.capacity_changed = true;
      break;
    }
    case MutationKind::kReweightClass: {
      if (m.net_class < 0 ||
          m.net_class >= static_cast<int>(state.class_weight.size())) {
        return bad("reweight_class class id out of range");
      }
      if (!(m.new_weight > 0.0f)) return bad("reweight_class weight must be positive");
      state.class_weight[static_cast<std::size_t>(m.net_class)] = m.new_weight;
      // Every routable net of the class re-enters routing with its new
      // priority; that is the mutation's observable effect.
      for (const std::size_t i : state.design.routable_nets()) {
        if (state.net_class[i] == m.net_class) effect.dirty.push_back(i);
      }
      break;
    }
  }
  return effect;
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

Mutation make_move_pins(const DesignState& state, const MutationParams& p, Rng& rng) {
  const GCellGrid& grid = state.design.grid();
  Mutation m;
  m.kind = MutationKind::kMovePins;
  m.nets = draw_nets(state, fraction_count(state, p.move_fraction), rng);
  const double rx = std::max(1.0, p.move_jitter * grid.width());
  const double ry = std::max(1.0, p.move_jitter * grid.height());
  for (const std::size_t idx : m.nets) {
    std::vector<Point> pins = state.design.net(idx).pins;
    // Jitter each pin independently; clamping keeps the net in the grid
    // and Design's constructor re-dedupes collapsed pins.
    for (Point& pin : pins) {
      pin.x = clamp_coord(pin.x + std::llround(rng.uniform(-rx, rx)), grid.width());
      pin.y = clamp_coord(pin.y + std::llround(rng.uniform(-ry, ry)), grid.height());
    }
    m.new_pins.push_back(std::move(pins));
  }
  m.label = "move_pins:" + std::to_string(m.nets.size());
  return m;
}

Mutation make_add_nets(const DesignState& state, const MutationParams& p, Rng& rng) {
  const GCellGrid& grid = state.design.grid();
  Mutation m;
  m.kind = MutationKind::kAddNets;
  const std::size_t count = fraction_count(state, p.add_fraction);
  for (std::size_t k = 0; k < count; ++k) {
    Net net;
    // Name collisions with removed-then-readded nets are harmless to the
    // Design model; a monotone tag keeps names unique within a sequence.
    net.name = "eco_add_" + std::to_string(rng.next_u64() & 0xffffff);
    const auto cx = rng.uniform_int(0, grid.width() - 1);
    const auto cy = rng.uniform_int(0, grid.height() - 1);
    const double span = std::max(2.0, 0.2 * std::min(grid.width(), grid.height()));
    const int pins = 2 + static_cast<int>(rng.uniform_int(0, 2));
    for (int i = 0; i < pins; ++i) {
      net.pins.push_back(
          Point{clamp_coord(cx + std::llround(rng.uniform(-span, span)), grid.width()),
                clamp_coord(cy + std::llround(rng.uniform(-span, span)), grid.height())});
    }
    // Guarantee the net is routable (two distinct cells).
    if (geom::dedupe_points(net.pins).size() < 2) {
      Point q = net.pins.front();
      q.x = static_cast<Coord>(q.x + 1 < grid.width() ? q.x + 1 : q.x - 1);
      net.pins.push_back(q);
    }
    m.added.push_back(std::move(net));
    m.added_class.push_back(draw_class(rng.next_u64(), k));
  }
  m.label = "add_nets:" + std::to_string(m.added.size());
  return m;
}

Mutation make_remove_nets(const DesignState& state, const MutationParams& p, Rng& rng) {
  Mutation m;
  m.kind = MutationKind::kRemoveNets;
  m.nets = draw_nets(state, fraction_count(state, p.remove_fraction), rng);
  m.label = "remove_nets:" + std::to_string(m.nets.size());
  return m;
}

Mutation make_add_blockage(const DesignState& state, const MutationParams& p, Rng& rng) {
  Mutation m;
  m.kind = MutationKind::kAddBlockage;
  m.blockage = Blockage{draw_rect(state.design.grid(), p.blockage_span, rng),
                        p.blockage_scale};
  m.label = "add_blockage";
  return m;
}

Mutation make_remove_blockage(const DesignState& state, const MutationParams&,
                              Rng& rng) {
  Mutation m;
  m.kind = MutationKind::kRemoveBlockage;
  m.blockage_index = state.blockages.empty()
                         ? 0
                         : static_cast<std::size_t>(rng.uniform_int(
                               0, static_cast<std::int64_t>(state.blockages.size()) - 1));
  m.label = "remove_blockage:" + std::to_string(m.blockage_index);
  return m;
}

Mutation make_reweight_class(const DesignState& state, const MutationParams& p,
                             Rng& rng) {
  Mutation m;
  m.kind = MutationKind::kReweightClass;
  const auto classes = static_cast<std::int64_t>(state.class_weight.size());
  m.net_class = classes > 0 ? static_cast<int>(rng.uniform_int(0, classes - 1)) : 0;
  m.new_weight = static_cast<float>(
      rng.uniform(p.reweight_min, std::max<double>(p.reweight_min + 1e-3, p.reweight_max)));
  m.label = "reweight_class:" + std::to_string(m.net_class);
  return m;
}

Mutation make_blockage_walk_step(const DesignState& state, const MutationParams& p,
                                 std::uint64_t seed, int step) {
  const GCellGrid& grid = state.design.grid();
  const int w = grid.width();
  const int h = grid.height();
  const int sw = std::max(1, static_cast<int>(std::lround(p.blockage_span * w)));
  const int sh = std::max(1, static_cast<int>(std::lround(p.blockage_span * h)));
  // Deterministic orbit: the obstacle circles the grid centre with a seeded
  // phase, visiting a different position each step.
  const double phase = static_cast<double>(mix(seed) >> 11) * 0x1.0p-53 * 6.28318530718;
  const double angle = phase + 0.9 * step;
  const double cx = 0.5 * w + 0.3 * w * std::cos(angle);
  const double cy = 0.5 * h + 0.3 * h * std::sin(angle);
  const Coord x0 = clamp_coord(std::llround(cx - 0.5 * sw), std::max(1, w - sw + 1));
  const Coord y0 = clamp_coord(std::llround(cy - 0.5 * sh), std::max(1, h - sh + 1));
  Mutation m;
  m.blockage = Blockage{Rect{{x0, y0},
                             {clamp_coord(x0 + sw - 1, w), clamp_coord(y0 + sh - 1, h)}},
                        p.blockage_scale};
  if (step == 0 || state.blockages.empty()) {
    m.kind = MutationKind::kAddBlockage;
    m.label = "blockage_walk:add";
  } else {
    m.kind = MutationKind::kMoveBlockage;
    m.blockage_index = state.blockages.size() - 1;
    m.label = "blockage_walk:step" + std::to_string(step);
  }
  return m;
}

Mutation generate_mutation(const DesignState& state, const MutationParams& p,
                           Rng& rng) {
  for (;;) {
    const auto kind = static_cast<MutationKind>(rng.uniform_int(0, 6));
    switch (kind) {
      case MutationKind::kMovePins:
        if (state.design.routable_nets().empty()) continue;
        return make_move_pins(state, p, rng);
      case MutationKind::kAddNets:
        return make_add_nets(state, p, rng);
      case MutationKind::kRemoveNets:
        // Keep a floor of nets so long sequences cannot hollow the design.
        if (state.design.routable_nets().size() < 8) continue;
        return make_remove_nets(state, p, rng);
      case MutationKind::kAddBlockage:
        return make_add_blockage(state, p, rng);
      case MutationKind::kMoveBlockage:
        if (state.blockages.empty()) continue;
        return make_blockage_walk_step(state, p, rng.next_u64(), 1);
      case MutationKind::kRemoveBlockage:
        if (state.blockages.empty()) continue;
        return make_remove_blockage(state, p, rng);
      case MutationKind::kReweightClass:
        return make_reweight_class(state, p, rng);
    }
  }
}

}  // namespace dgr::design
