#include "design/generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace dgr::design {

using util::Rng;

Table1Instance make_table1_instance(const Table1Params& params, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Net> nets;
  nets.reserve(static_cast<std::size_t>(params.num_nets));
  const int box = std::min({params.box_size, params.grid_w, params.grid_h});
  for (int n = 0; n < params.num_nets; ++n) {
    Net net;
    net.name = "n" + std::to_string(n);
    // Random box placement, then `pins_per_net` g-cells inside it. Duplicate
    // picks are redrawn so nets stay genuinely multi-pin (matching the
    // "3 G-cells arbitrarily selected" protocol).
    const auto bx = rng.uniform_int(0, params.grid_w - box);
    const auto by = rng.uniform_int(0, params.grid_h - box);
    while (static_cast<int>(net.pins.size()) < params.pins_per_net) {
      Point p{static_cast<geom::Coord>(bx + rng.uniform_int(0, box - 1)),
              static_cast<geom::Coord>(by + rng.uniform_int(0, box - 1))};
      if (std::find(net.pins.begin(), net.pins.end(), p) == net.pins.end()) {
        net.pins.push_back(p);
      }
      // Degenerate guard: a 1x1 box cannot host distinct pins.
      if (box * box < params.pins_per_net) break;
    }
    nets.push_back(std::move(net));
  }
  // Single-direction-agnostic grid; Table 1 uses an explicit uniform cap.
  GCellGrid grid = GCellGrid::uniform(params.grid_w, params.grid_h, 2, params.capacity);
  Table1Instance inst{Design("table1", std::move(grid), std::move(nets)), {}};
  inst.capacities.assign(static_cast<std::size_t>(inst.design.grid().edge_count()),
                         static_cast<float>(params.capacity));
  return inst;
}

namespace {

Point clamp_point(double x, double y, int w, int h) {
  auto cx = static_cast<geom::Coord>(std::lround(std::clamp(x, 0.0, w - 1.0)));
  auto cy = static_cast<geom::Coord>(std::lround(std::clamp(y, 0.0, h - 1.0)));
  return Point{cx, cy};
}

}  // namespace

Design generate_ispd_like(const IspdLikeParams& p, std::uint64_t seed) {
  Rng rng(seed);
  const double gw = p.grid_w;
  const double gh = p.grid_h;

  // Hot-spot cluster centres (congested regions of the layout).
  std::vector<std::pair<double, double>> centres;
  for (int i = 0; i < p.hotspots; ++i) {
    centres.emplace_back(rng.uniform(0.15 * gw, 0.85 * gw), rng.uniform(0.15 * gh, 0.85 * gh));
  }

  std::vector<Net> nets;
  nets.reserve(static_cast<std::size_t>(p.num_nets));
  for (int n = 0; n < p.num_nets; ++n) {
    Net net;
    net.name = p.name + "_n" + std::to_string(n);

    // Net centre: hot-spot attracted with probability hotspot_affinity.
    double cx, cy;
    if (!centres.empty() && rng.uniform() < p.hotspot_affinity) {
      const auto& c = centres[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(centres.size()) - 1))];
      cx = c.first + rng.normal() * p.hotspot_sigma * gw;
      cy = c.second + rng.normal() * p.hotspot_sigma * gh;
    } else {
      cx = rng.uniform(0.0, gw);
      cy = rng.uniform(0.0, gh);
    }

    if (rng.uniform() < p.local_net_fraction) {
      // Local net: every pin in one g-cell (consumes Eq. 1 resources only).
      const Point cell = clamp_point(cx, cy, p.grid_w, p.grid_h);
      const int k = 2 + static_cast<int>(rng.uniform_int(0, 2));
      net.pins.assign(static_cast<std::size_t>(k), cell);
      nets.push_back(std::move(net));
      continue;
    }

    // Span: mixture of short local interconnect and long global nets.
    const double frac = rng.uniform() < p.short_net_frac ? p.short_span : p.long_span;
    const double span_x = std::max(1.0, frac * gw * rng.uniform(0.5, 1.5));
    const double span_y = std::max(1.0, frac * gh * rng.uniform(0.5, 1.5));

    // Pin count: 2 + geometric-ish tail, clamped.
    int pins = 2;
    while (pins < p.max_pins_per_net && rng.uniform() < p.mean_extra_pins /
                                            (p.mean_extra_pins + 1.0)) {
      ++pins;
    }
    for (int k = 0; k < pins; ++k) {
      const double px = cx + rng.uniform(-0.5, 0.5) * span_x;
      const double py = cy + rng.uniform(-0.5, 0.5) * span_y;
      net.pins.push_back(clamp_point(px, py, p.grid_w, p.grid_h));
    }
    net.pins = geom::dedupe_points(std::move(net.pins));
    if (net.pins.size() < 2) {
      // Collapsed by clamping/dedup; force a genuine 2-pin net.
      Point q = net.pins.front();
      q.x = static_cast<geom::Coord>(q.x + 1 < p.grid_w ? q.x + 1 : q.x - 1);
      net.pins.push_back(q);
    }
    nets.push_back(std::move(net));
  }

  GCellGrid grid = GCellGrid::uniform(p.grid_w, p.grid_h, p.layers, p.tracks_per_layer,
                                      p.reserve_pin_layer);
  return Design(p.name, std::move(grid), std::move(nets));
}

namespace {

IspdLikeParams scaled(IspdLikeParams p, double scale) {
  // Net count scales linearly, grid edge scales with sqrt so the routing
  // density (nets per g-cell edge) is preserved across scales.
  const double s = std::clamp(scale, 0.01, 4.0);
  p.num_nets = std::max(8, static_cast<int>(std::lround(p.num_nets * s)));
  const double gs = std::sqrt(s);
  p.grid_w = std::max(8, static_cast<int>(std::lround(p.grid_w * gs)));
  p.grid_h = std::max(8, static_cast<int>(std::lround(p.grid_h * gs)));
  return p;
}

IspdLikeParams base_preset(std::string name, int gw, int gh, int nets, int layers,
                           int tracks, int hotspots, double affinity) {
  IspdLikeParams p;
  p.name = std::move(name);
  p.grid_w = gw;
  p.grid_h = gh;
  p.num_nets = nets;
  p.layers = layers;
  p.tracks_per_layer = tracks;
  p.hotspots = hotspots;
  p.hotspot_affinity = affinity;
  return p;
}

}  // namespace

std::vector<IspdLikeParams> table2_presets(double scale) {
  // Congested 5-layer cases. Row order mirrors Table 2; relative sizes track
  // the paper's cell/net ratios (ispd19_9m largest, ispd18_5m smallest).
  // Tight track budgets + strong hot-spots make them genuinely congested.
  std::vector<IspdLikeParams> presets = {
      base_preset("ispd18_5m", 62, 61, 1400, 5, 3, 3, 0.62),
      base_preset("ispd18_8m", 90, 88, 3500, 5, 3, 4, 0.58),
      base_preset("ispd18_10m", 61, 52, 3600, 5, 3, 4, 0.62),
      base_preset("ispd19_7m", 105, 101, 7000, 5, 3, 5, 0.55),
      base_preset("ispd19_8m", 120, 114, 10500, 5, 3, 6, 0.57),
      base_preset("ispd19_9m", 134, 143, 17500, 5, 3, 7, 0.58),
  };
  for (auto& p : presets) p = scaled(std::move(p), scale);
  return presets;
}

std::vector<IspdLikeParams> table3_presets(double scale) {
  // The ispd18_test1..10 ladder: small clean cases first, then large ones.
  // Lighter congestion than Table 2 (the paper's Table 3 rows all reach
  // zero overflow); 9 layers except the small early cases.
  std::vector<IspdLikeParams> presets = {
      base_preset("ispd18_test1", 18, 18, 80, 9, 3, 1, 0.30),
      base_preset("ispd18_test2", 40, 40, 700, 9, 3, 2, 0.32),
      base_preset("ispd18_test3", 42, 42, 800, 9, 3, 2, 0.34),
      base_preset("ispd18_test4", 58, 58, 1800, 9, 3, 3, 0.36),
      base_preset("ispd18_test5", 60, 60, 1900, 9, 3, 3, 0.38),
      base_preset("ispd18_test6", 68, 68, 2400, 9, 3, 3, 0.38),
      base_preset("ispd18_test7", 88, 88, 3600, 9, 3, 4, 0.38),
      base_preset("ispd18_test8", 88, 88, 3700, 9, 3, 4, 0.38),
      base_preset("ispd18_test9", 82, 82, 3300, 9, 3, 4, 0.38),
      base_preset("ispd18_test10", 86, 86, 3700, 9, 3, 4, 0.40),
  };
  for (auto& p : presets) p = scaled(std::move(p), scale);
  return presets;
}

}  // namespace dgr::design
