#pragma once
// Netlist + grid = a routing problem instance.
//
// Pins live on g-cells (2D coordinates); the pin layer does not matter for
// 2D pattern routing and is handled by layer assignment's via accounting.
// A net whose pins all fall in a single g-cell is "local": it consumes cell
// resources (Eq. 1's local_net term) but needs no global routing.

#include <string>
#include <vector>

#include "grid/demand_map.hpp"
#include "grid/gcell_grid.hpp"

namespace dgr::design {

using geom::Point;
using grid::GCellGrid;

struct Net {
  std::string name;
  std::vector<Point> pins;  ///< deduplicated g-cell locations, >= 1 entry

  bool is_local() const {
    for (const Point& p : pins) {
      if (!(p == pins.front())) return false;
    }
    return true;
  }
};

class Design {
 public:
  Design() = default;
  Design(std::string name, GCellGrid grid, std::vector<Net> nets);

  const std::string& name() const { return name_; }
  const GCellGrid& grid() const { return grid_; }
  const std::vector<Net>& nets() const { return nets_; }
  const Net& net(std::size_t i) const { return nets_[i]; }
  std::size_t net_count() const { return nets_.size(); }

  /// Indices of nets that actually require routing (>= 2 distinct g-cells).
  const std::vector<std::size_t>& routable_nets() const { return routable_; }
  std::size_t local_net_count() const { return nets_.size() - routable_.size(); }

  /// Per-cell pin counts (input to Eq. 1).
  std::vector<float> pin_density() const;
  /// Per-cell local-net counts (input to Eq. 1).
  std::vector<float> local_net_density() const;

  /// Per-edge 2D capacities following Eq. (1) with uniform beta.
  std::vector<float> capacities(float beta = 0.5f) const;

  /// Sum over nets of pin-bounding-box half-perimeter: a lower bound on any
  /// routing solution's total wirelength.
  std::int64_t total_hpwl() const;

 private:
  std::string name_;
  GCellGrid grid_;
  std::vector<Net> nets_;
  std::vector<std::size_t> routable_;
};

}  // namespace dgr::design
