#pragma once
// Shared maze-routing machinery for the sequential baseline routers and the
// post-processing refinement stage: multi-source Dijkstra over the g-cell
// graph with a caller-supplied edge cost, and helpers to turn cell walks
// into PatternPath polylines.

#include <functional>
#include <vector>

#include "dag/path.hpp"
#include "grid/gcell_grid.hpp"
#include "util/status.hpp"

namespace dgr::routers {

using dag::PatternPath;
using geom::Point;
using grid::EdgeId;
using grid::GCellGrid;

struct MazeResult {
  bool found = false;
  double cost = 0.0;
  std::vector<Point> cells;  ///< source cell ... target cell (inclusive)
  /// Typed outcome: OK when a path was found; kUnreachableTarget when the
  /// search exhausted the grid without reaching the target (e.g. an edge
  /// cost of +inf walls it off); defaults to kCancelled so callers can tell
  /// "no path exists" apart from "search never ran".
  Status status{StatusCode::kCancelled, "maze: not attempted"};
};

/// Dijkstra from any of `sources` (all seeded at distance 0) to `target`.
/// `edge_cost` must return a strictly positive cost per g-cell edge.
/// `result.status` distinguishes success, an unreachable target and an
/// empty source set (kInvalidArgument); `cells` is empty unless found.
MazeResult maze_route(const GCellGrid& grid, const std::vector<Point>& sources,
                      Point target, const std::function<double(EdgeId)>& edge_cost);

/// Compresses a cell walk into a waypoint polyline (collinear runs merged).
/// The result is a valid PatternPath geometry (possibly non-monotone).
PatternPath compress_cells(const std::vector<Point>& cells);

}  // namespace dgr::routers
