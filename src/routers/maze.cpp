#include "routers/maze.hpp"

#include <cmath>
#include <limits>
#include <queue>

namespace dgr::routers {

MazeResult maze_route(const GCellGrid& grid, const std::vector<Point>& sources,
                      Point target, const std::function<double(EdgeId)>& edge_cost) {
  MazeResult result;
  if (sources.empty()) {
    result.status = Status(StatusCode::kInvalidArgument, "maze: empty source set");
    return result;
  }
  const auto num_cells = static_cast<std::size_t>(grid.cell_count());
  std::vector<double> dist(num_cells, std::numeric_limits<double>::infinity());
  std::vector<std::int32_t> prev(num_cells, -1);

  using QItem = std::pair<double, std::int32_t>;  // (dist, cell)
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> queue;
  for (const Point& s : sources) {
    const auto c = static_cast<std::size_t>(grid.cell_id(s));
    if (dist[c] > 0.0) {
      dist[c] = 0.0;
      queue.push({0.0, static_cast<std::int32_t>(c)});
    }
  }
  const auto target_id = static_cast<std::size_t>(grid.cell_id(target));

  while (!queue.empty()) {
    const auto [d, cell] = queue.top();
    queue.pop();
    const auto c = static_cast<std::size_t>(cell);
    if (d > dist[c]) continue;  // stale entry
    if (c == target_id) break;
    const Point p = grid.cell_point(cell);
    const Point neighbours[4] = {
        {static_cast<geom::Coord>(p.x - 1), p.y},
        {static_cast<geom::Coord>(p.x + 1), p.y},
        {p.x, static_cast<geom::Coord>(p.y - 1)},
        {p.x, static_cast<geom::Coord>(p.y + 1)},
    };
    for (const Point& q : neighbours) {
      if (!grid.in_bounds(q)) continue;
      const EdgeId e = grid.edge_between(p, q);
      const double nd = d + edge_cost(e);
      const auto qc = static_cast<std::size_t>(grid.cell_id(q));
      if (nd < dist[qc]) {
        dist[qc] = nd;
        prev[qc] = cell;
        queue.push({nd, static_cast<std::int32_t>(qc)});
      }
    }
  }

  if (!std::isfinite(dist[target_id])) {
    // Surface the dead end as a typed Status instead of a silent empty
    // result, so callers can distinguish "no path" from "not attempted".
    const Point t = grid.cell_point(static_cast<std::int32_t>(target_id));
    result.status = Status(StatusCode::kUnreachableTarget,
                           "maze: target (" + std::to_string(t.x) + "," +
                               std::to_string(t.y) + ") unreachable from " +
                               std::to_string(sources.size()) + " source(s)");
    return result;
  }
  result.found = true;
  result.status = Status();  // OK
  result.cost = dist[target_id];
  // Walk predecessors back to a source.
  std::vector<Point> reversed;
  std::int32_t cur = static_cast<std::int32_t>(target_id);
  while (cur >= 0) {
    reversed.push_back(grid.cell_point(cur));
    cur = prev[static_cast<std::size_t>(cur)];
  }
  result.cells.assign(reversed.rbegin(), reversed.rend());
  return result;
}

PatternPath compress_cells(const std::vector<Point>& cells) {
  PatternPath path;
  if (cells.empty()) return path;
  path.waypoints.push_back(cells.front());
  for (std::size_t i = 1; i + 1 < cells.size(); ++i) {
    const Point& a = path.waypoints.back();
    const Point& b = cells[i];
    const Point& c = cells[i + 1];
    const bool collinear = (a.x == b.x && b.x == c.x) || (a.y == b.y && b.y == c.y);
    if (!collinear) path.waypoints.push_back(b);
  }
  if (cells.size() > 1 || path.waypoints.front() == cells.back()) {
    path.waypoints.push_back(cells.back());
  }
  if (path.waypoints.size() == 1) path.waypoints.push_back(cells.back());
  return path;
}

}  // namespace dgr::routers
