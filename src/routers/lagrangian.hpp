#pragma once
// Lagrangian-relaxation global router, standing in for the pathfinding-model
// router of Yao et al. [DAC'23] as the other Table 3 comparator.
//
// The capacity constraints are dualised with per-edge multipliers λ_e >= 0:
// each round routes every 2-pin sub-net independently at minimum priced cost
// (wire + λ), then performs a projected subgradient step
//   λ_e <- max(0, λ_e + step * (d_e - cap_e))
// with a diminishing step size. The best primal solution seen (fewest
// overflowed edges, then wirelength) is kept.

#include "dag/path.hpp"
#include "design/design.hpp"
#include "eval/solution.hpp"
#include "rsmt/builder.hpp"

namespace dgr::routers {

struct LagrangianOptions {
  int rounds = 30;            ///< subgradient iterations
  int repair_rounds = 8;      ///< final primal repair passes (see route())
  double step0 = 1.0;         ///< initial step size (decays as step0/sqrt(k))
  float via_beta = 0.5f;      ///< via demand charge for the shared metric
  bool maze_paths = true;     ///< price paths by maze search (else L/Z only)
  dag::PathEnumOptions paths;
  rsmt::RsmtOptions rsmt;
};

struct LagrangianStats {
  int rounds_run = 0;
  double route_seconds = 0.0;
  double final_step = 0.0;
};

class LagrangianRouter {
 public:
  LagrangianRouter(const design::Design& design, std::vector<float> capacities,
                   LagrangianOptions options = {});

  eval::RouteSolution route(LagrangianStats* stats = nullptr);

 private:
  const design::Design& design_;
  std::vector<float> capacities_;
  LagrangianOptions options_;
};

}  // namespace dgr::routers
