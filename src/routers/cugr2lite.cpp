#include "routers/cugr2lite.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>

#include "routers/maze.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace dgr::routers {

using dag::PatternPath;
using eval::NetRoute;
using eval::RouteSolution;
using grid::EdgeId;

Cugr2Lite::Cugr2Lite(const design::Design& design, std::vector<float> capacities,
                     Cugr2LiteOptions options)
    : design_(design),
      capacities_(std::move(capacities)),
      options_(options),
      builder_(options.rsmt),
      demand_(design.grid()) {
  via_cost_scale_ = std::sqrt(static_cast<double>(design.grid().layer_count()));
}

double Cugr2Lite::edge_cost(EdgeId e) const {
  const double d = demand_.demand(e);
  const double cap = capacities_[static_cast<std::size_t>(e)];
  // Logistic congestion cost as in CUGR/CUGR2's probabilistic model: cheap
  // while the edge has slack, ramping steeply as demand approaches capacity.
  const double x = options_.logistic_slope * (d + 1.0 - cap);
  const double congestion = 1.0 / (1.0 + std::exp(-x));
  return options_.wl_weight + options_.congestion_weight * congestion;
}

NetRoute Cugr2Lite::route_net(std::size_t design_net, bool allow_maze) {
  NetRoute route;
  route.design_net = design_net;
  const auto& grid = design_.grid();
  const rsmt::SteinerTree tree = builder_.build(design_.net(design_net).pins);

  for (const auto& [ia, ib] : tree.edges) {
    const geom::Point a = tree.nodes[static_cast<std::size_t>(ia)];
    const geom::Point b = tree.nodes[static_cast<std::size_t>(ib)];

    // DP over the pattern candidates: pick the min-cost embedding.
    const std::vector<PatternPath> candidates = dag::enumerate_paths(a, b, options_.paths);
    double best_cost = std::numeric_limits<double>::infinity();
    const PatternPath* best = nullptr;
    for (const PatternPath& cand : candidates) {
      double cost = options_.via_weight * via_cost_scale_ *
                    static_cast<double>(cand.bend_count());
      for (const EdgeId e : cand.edges(grid)) cost += edge_cost(e);
      if (cost < best_cost) {
        best_cost = cost;
        best = &cand;
      }
    }

    PatternPath chosen = *best;
    if (allow_maze && options_.maze_fallback) {
      // Escape hatch: when every pattern candidate still crosses congestion,
      // let a maze route detour around it (CUGR2's maze refinement role).
      const MazeResult mz =
          maze_route(grid, {a}, b, [this](EdgeId e) { return edge_cost(e); });
      if (mz.found) {
        const PatternPath maze_path = compress_cells(mz.cells);
        const double maze_cost =
            mz.cost + options_.via_weight * via_cost_scale_ *
                          static_cast<double>(maze_path.bend_count());
        if (maze_cost < best_cost) chosen = maze_path;
      }
    }
    route.paths.push_back(std::move(chosen));
  }
  return route;
}

RouteSolution Cugr2Lite::route(Cugr2LiteStats* stats, const RouteSolution* warm_start) {
  util::Timer timer;
  demand_.clear();
  RouteSolution sol;
  sol.design = &design_;
  const auto& routable = design_.routable_nets();
  sol.nets.resize(routable.size());

  // Warm start: adopt the prior solution's routes (same-design solutions
  // only) so the run is pure rip-up-and-reroute from that state.
  std::vector<char> seeded(routable.size(), 0);
  if (warm_start != nullptr && warm_start->design == &design_) {
    std::vector<std::size_t> slot_of(design_.net_count(), routable.size());
    for (std::size_t i = 0; i < routable.size(); ++i) slot_of[routable[i]] = i;
    for (const NetRoute& net : warm_start->nets) {
      const std::size_t slot = slot_of[net.design_net];
      if (slot == routable.size() || net.paths.empty()) continue;
      sol.nets[slot] = net;
      RouteSolution::apply_net(demand_, design_, sol.nets[slot], options_.via_beta, +1.0);
      seeded[slot] = 1;
    }
  }

  // Initial sequential pass: short nets first (they have the least routing
  // flexibility, the classic sequential ordering heuristic).
  std::vector<std::size_t> order(routable.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    const auto hp = [&](std::size_t i) {
      return geom::Rect::bounding_box(design_.net(routable[i]).pins).hpwl();
    };
    return hp(x) < hp(y);
  });

  std::int64_t rerouted = 0;
  for (const std::size_t i : order) {
    if (seeded[i]) continue;
    sol.nets[i] = route_net(routable[i], /*allow_maze=*/false);
    RouteSolution::apply_net(demand_, design_, sol.nets[i], options_.via_beta, +1.0);
    ++rerouted;
  }

  // RRR can regress on individual rounds; keep the best snapshot seen
  // (fewest overflowed edges, then least total overflow, then wirelength).
  auto score = [&] {
    std::int64_t wl = 0;
    for (const auto& net : sol.nets) {
      for (const auto& p : net.paths) wl += p.length();
    }
    return std::tuple(demand_.overflowed_edge_count(capacities_),
                      demand_.total_overflow(capacities_), wl);
  };
  RouteSolution best = sol;
  auto best_score = score();

  bool timed_out = false;
  int round = 0;
  for (; round < options_.rrr_rounds; ++round) {
    if (options_.time_budget_seconds > 0.0 &&
        timer.seconds() >= options_.time_budget_seconds) {
      timed_out = true;
      break;
    }
    if (options_.cancel_flag != nullptr &&
        options_.cancel_flag->load(std::memory_order_relaxed)) {
      timed_out = true;
      break;
    }
    // Collect nets crossing overflowed edges.
    std::vector<std::size_t> victims;
    for (std::size_t i = 0; i < sol.nets.size(); ++i) {
      bool over = false;
      for (const PatternPath& p : sol.nets[i].paths) {
        for (const EdgeId e : p.edges(design_.grid())) {
          if (demand_.demand(e) > capacities_[static_cast<std::size_t>(e)] + 1e-6) {
            over = true;
            break;
          }
        }
        if (over) break;
      }
      if (over) victims.push_back(i);
    }
    if (victims.empty()) break;

    // Maze escape only in the later half of the RRR schedule.
    const bool allow_maze = round + 1 >= (options_.rrr_rounds + 1) / 2;
    for (const std::size_t i : victims) {
      RouteSolution::apply_net(demand_, design_, sol.nets[i], options_.via_beta, -1.0);
      sol.nets[i] = route_net(routable[i], allow_maze);
      RouteSolution::apply_net(demand_, design_, sol.nets[i], options_.via_beta, +1.0);
      ++rerouted;
    }
    DGR_LOG_DEBUG("cugr2lite round %d: %zu victims", round, victims.size());
    const auto s = score();
    if (s < best_score) {
      best_score = s;
      best = sol;
    }
  }

  if (stats != nullptr) {
    stats->rounds_run = round;
    stats->nets_rerouted = rerouted;
    stats->route_seconds = timer.seconds();
    stats->timed_out = timed_out;
  }
  return best;
}

}  // namespace dgr::routers
