#pragma once
// CUGR2-lite: a sequential DAG-based pattern router with rip-up-and-reroute,
// standing in for CUGR2 [Liu & Young, DAC'23] as the Table 2 / Fig. 5
// comparator. Same algorithmic family as the original:
//   - FLUTE-equivalent RSMT per net, split into 2-pin sub-nets,
//   - per-sub-net DP over L-/Z-shape pattern candidates against a live
//     demand map with a logistic congestion cost,
//   - nets through overflowed edges are ripped and rerouted each round,
//     with maze routing as the escape hatch in late rounds.
// Being sequential, it optimises one net at a time — exactly the local-view
// weakness DGR's concurrent optimisation addresses.

#include <atomic>

#include "dag/path.hpp"
#include "design/design.hpp"
#include "eval/solution.hpp"
#include "rsmt/builder.hpp"

namespace dgr::routers {

struct Cugr2LiteOptions {
  int rrr_rounds = 5;            ///< rip-up & reroute iterations
  float via_beta = 0.5f;         ///< via demand charge (matches Eq. 2)
  double wl_weight = 0.5;        ///< unit wire cost
  double via_weight = 4.0;       ///< per-bend cost (scaled by sqrt(L))
  double congestion_weight = 500.0;  ///< logistic congestion penalty scale
  double logistic_slope = 2.0;   ///< steepness of the congestion cost
  dag::PathEnumOptions paths;    ///< L-only by default, Z optional
  bool maze_fallback = true;     ///< maze-reroute stubborn nets in last rounds
  rsmt::RsmtOptions rsmt;
  /// Cooperative wall-clock budget (0 = unlimited): checked between RRR
  /// rounds; the initial pass always completes so the returned solution is
  /// whole. On expiry `timed_out` is set and the best snapshot is returned.
  double time_budget_seconds = 0.0;
  /// Optional external cancel flag, polled at the same between-round
  /// checkpoints as the budget (caller-owned; the serve daemon's watchdog
  /// sets it from another thread). Reads-true behaves as a budget expiry.
  const std::atomic<bool>* cancel_flag = nullptr;
};

struct Cugr2LiteStats {
  int rounds_run = 0;
  std::int64_t nets_rerouted = 0;
  double route_seconds = 0.0;
  bool timed_out = false;  ///< RRR stopped early on the time budget
};

class Cugr2Lite {
 public:
  Cugr2Lite(const design::Design& design, std::vector<float> capacities,
            Cugr2LiteOptions options = {});

  /// Routes every routable net. When `warm_start` is a solution of the same
  /// design, its routes seed the initial state (nets it misses are routed
  /// cold) and the run proceeds straight to rip-up-and-reroute — the
  /// pipeline-level RRR re-entry hook.
  eval::RouteSolution route(Cugr2LiteStats* stats = nullptr,
                            const eval::RouteSolution* warm_start = nullptr);

 private:
  /// Routes one net's sub-nets against the current demand; returns the route.
  eval::NetRoute route_net(std::size_t design_net, bool allow_maze);

  /// Cost of pushing one more unit of wire across edge e.
  double edge_cost(grid::EdgeId e) const;

  const design::Design& design_;
  std::vector<float> capacities_;
  Cugr2LiteOptions options_;
  rsmt::RsmtBuilder builder_;
  grid::DemandMap demand_;
  double via_cost_scale_ = 1.0;
};

}  // namespace dgr::routers
