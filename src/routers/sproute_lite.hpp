#pragma once
// SPRoute-lite: a PathFinder-style negotiation-based maze router with soft
// capacity, standing in for SPRoute 2.0 [He et al., ASP-DAC'22] as a
// Table 3 comparator.
//
// Each net is routed pin-by-pin with multi-source Dijkstra (the grown
// component is the source set), under the classic negotiated-congestion
// cost: base + present-overuse penalty scaled by accumulated edge history.
// Soft capacity makes edges expensive *before* they saturate, which is the
// detailed-routability device SPRoute 2.0 adds over plain PathFinder.

#include <atomic>

#include "design/design.hpp"
#include "eval/solution.hpp"

namespace dgr::routers {

struct SpRouteLiteOptions {
  int max_rounds = 8;           ///< negotiation iterations
  float via_beta = 0.5f;        ///< via demand charge for the shared metric
  double present_factor = 8.0;  ///< penalty per unit of present overuse
  double history_step = 1.0;    ///< history increment on overflowed edges
  double history_factor = 2.0;  ///< history multiplier in the cost
  double soft_capacity = 0.9;   ///< fraction of cap where cost starts rising
  /// Cooperative wall-clock budget (0 = unlimited): checked between
  /// negotiation rounds; the initial pass always completes so the returned
  /// solution is whole. On expiry `timed_out` is set.
  double time_budget_seconds = 0.0;
  /// Optional external cancel flag, polled at the same between-round
  /// checkpoints as the budget (caller-owned; the serve daemon's watchdog
  /// sets it from another thread). Reads-true behaves as a budget expiry.
  const std::atomic<bool>* cancel_flag = nullptr;
};

struct SpRouteLiteStats {
  int rounds_run = 0;
  std::int64_t reroutes = 0;
  double route_seconds = 0.0;
  bool timed_out = false;  ///< negotiation stopped early on the time budget
};

class SpRouteLite {
 public:
  SpRouteLite(const design::Design& design, std::vector<float> capacities,
              SpRouteLiteOptions options = {});

  /// Routes every routable net. When `warm_start` is a solution of the same
  /// design, its routes seed the initial state (nets it misses are routed
  /// cold) and negotiation resumes from there — the pipeline-level
  /// rip-up-and-reroute re-entry hook.
  eval::RouteSolution route(SpRouteLiteStats* stats = nullptr,
                            const eval::RouteSolution* warm_start = nullptr);

 private:
  eval::NetRoute route_net(std::size_t design_net);
  double edge_cost(grid::EdgeId e) const;

  const design::Design& design_;
  std::vector<float> capacities_;
  SpRouteLiteOptions options_;
  grid::DemandMap demand_;
  std::vector<double> history_;
};

}  // namespace dgr::routers
