#include "routers/sproute_lite.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>

#include "routers/maze.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace dgr::routers {

using eval::NetRoute;
using eval::RouteSolution;
using geom::Point;
using grid::EdgeId;

SpRouteLite::SpRouteLite(const design::Design& design, std::vector<float> capacities,
                         SpRouteLiteOptions options)
    : design_(design),
      capacities_(std::move(capacities)),
      options_(options),
      demand_(design.grid()),
      history_(static_cast<std::size_t>(design.grid().edge_count()), 0.0) {}

double SpRouteLite::edge_cost(EdgeId e) const {
  const double d = demand_.demand(e);
  const double cap = capacities_[static_cast<std::size_t>(e)];
  // Soft capacity: overuse is measured against soft_capacity * cap, so the
  // router starts avoiding an edge before it is actually full.
  const double soft_cap = options_.soft_capacity * cap;
  const double overuse = std::max(0.0, d + 1.0 - soft_cap);
  const double present = options_.present_factor * overuse;
  const double hist = options_.history_factor * history_[static_cast<std::size_t>(e)];
  return 1.0 + present * (1.0 + hist);
}

NetRoute SpRouteLite::route_net(std::size_t design_net) {
  NetRoute route;
  route.design_net = design_net;
  const auto& grid = design_.grid();
  std::vector<Point> pins = geom::dedupe_points(design_.net(design_net).pins);

  // Grow a connected component pin by pin, nearest unconnected pin first.
  std::vector<Point> component{pins.front()};
  std::vector<bool> connected(pins.size(), false);
  connected[0] = true;
  for (std::size_t step = 1; step < pins.size(); ++step) {
    // Nearest unconnected pin to the component (Manhattan heuristic).
    std::size_t next = pins.size();
    std::int64_t best_d = std::numeric_limits<std::int64_t>::max();
    for (std::size_t i = 0; i < pins.size(); ++i) {
      if (connected[i]) continue;
      for (const Point& c : component) {
        const std::int64_t d = geom::manhattan(pins[i], c);
        if (d < best_d) {
          best_d = d;
          next = i;
        }
      }
    }
    const MazeResult mz = maze_route(grid, component, pins[next],
                                     [this](EdgeId e) { return edge_cost(e); });
    if (!mz.found) {
      // The grid is connected so this only happens with a pathological cost
      // function; return an (empty) incomplete route rather than fabricate
      // geometry — the pipeline's validation gate repairs such nets.
      DGR_LOG_WARN("sproute_lite net %zu: %s", design_net, mz.status.to_string().c_str());
      route.paths.clear();
      return route;
    }
    dag::PatternPath path = compress_cells(mz.cells);
    for (const Point& cell : mz.cells) component.push_back(cell);
    route.paths.push_back(std::move(path));
    connected[next] = true;
  }
  return route;
}

RouteSolution SpRouteLite::route(SpRouteLiteStats* stats, const RouteSolution* warm_start) {
  util::Timer timer;
  demand_.clear();
  std::fill(history_.begin(), history_.end(), 0.0);

  RouteSolution sol;
  sol.design = &design_;
  const auto& routable = design_.routable_nets();
  sol.nets.resize(routable.size());

  // Warm start: adopt the prior solution's routes (same-design solutions
  // only); negotiation then rips up only what still overflows.
  std::vector<char> seeded(routable.size(), 0);
  if (warm_start != nullptr && warm_start->design == &design_) {
    std::vector<std::size_t> slot_of(design_.net_count(), routable.size());
    for (std::size_t i = 0; i < routable.size(); ++i) slot_of[routable[i]] = i;
    for (const NetRoute& net : warm_start->nets) {
      const std::size_t slot = slot_of[net.design_net];
      if (slot == routable.size() || net.paths.empty()) continue;
      sol.nets[slot] = net;
      RouteSolution::apply_net(demand_, design_, sol.nets[slot], options_.via_beta, +1.0);
      seeded[slot] = 1;
    }
  }

  std::int64_t reroutes = 0;
  for (std::size_t i = 0; i < routable.size(); ++i) {
    if (seeded[i]) continue;
    sol.nets[i] = route_net(routable[i]);
    RouteSolution::apply_net(demand_, design_, sol.nets[i], options_.via_beta, +1.0);
    ++reroutes;
  }

  // Negotiation is not monotone round-to-round; keep the best snapshot.
  auto score = [&] {
    std::int64_t wl = 0;
    for (const auto& net : sol.nets) {
      for (const auto& p : net.paths) wl += p.length();
    }
    return std::tuple(demand_.overflowed_edge_count(capacities_),
                      demand_.total_overflow(capacities_), wl);
  };
  RouteSolution best = sol;
  auto best_score = score();

  bool timed_out = false;
  int round = 0;
  for (; round < options_.max_rounds; ++round) {
    if (options_.time_budget_seconds > 0.0 &&
        timer.seconds() >= options_.time_budget_seconds) {
      timed_out = true;
      break;
    }
    if (options_.cancel_flag != nullptr &&
        options_.cancel_flag->load(std::memory_order_relaxed)) {
      timed_out = true;
      break;
    }
    // Negotiation: bump history on overflowed edges, then reroute the nets
    // crossing them.
    std::vector<bool> edge_over(history_.size(), false);
    bool any = false;
    for (std::size_t e = 0; e < history_.size(); ++e) {
      if (demand_.demand(static_cast<EdgeId>(e)) > capacities_[e] + 1e-6) {
        edge_over[e] = true;
        history_[e] += options_.history_step;
        any = true;
      }
    }
    if (!any) break;

    for (std::size_t i = 0; i < sol.nets.size(); ++i) {
      bool over = false;
      for (const dag::PatternPath& p : sol.nets[i].paths) {
        for (const EdgeId e : p.edges(design_.grid())) {
          if (edge_over[static_cast<std::size_t>(e)]) {
            over = true;
            break;
          }
        }
        if (over) break;
      }
      if (!over) continue;
      RouteSolution::apply_net(demand_, design_, sol.nets[i], options_.via_beta, -1.0);
      sol.nets[i] = route_net(routable[i]);
      RouteSolution::apply_net(demand_, design_, sol.nets[i], options_.via_beta, +1.0);
      ++reroutes;
    }
    DGR_LOG_DEBUG("sproute_lite round %d done", round);
    const auto s = score();
    if (s < best_score) {
      best_score = s;
      best = sol;
    }
  }

  if (stats != nullptr) {
    stats->rounds_run = round;
    stats->reroutes = reroutes;
    stats->route_seconds = timer.seconds();
    stats->timed_out = timed_out;
  }
  return best;
}

}  // namespace dgr::routers
