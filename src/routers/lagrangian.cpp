#include "routers/lagrangian.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>
#include <utility>

#include "routers/maze.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace dgr::routers {

using dag::PatternPath;
using eval::NetRoute;
using eval::RouteSolution;
using geom::Point;
using grid::EdgeId;

RouteSolution LagrangianRouter::route(LagrangianStats* stats) {
  util::Timer timer;
  const auto& grid = design_.grid();
  const auto& routable = design_.routable_nets();
  rsmt::RsmtBuilder builder(options_.rsmt);

  // Fixed tree decomposition; the Lagrangian iteration re-prices paths only.
  struct SubnetRef {
    std::size_t net;  ///< index into `routable`
    Point a, b;
  };
  std::vector<SubnetRef> subnets;
  for (std::size_t i = 0; i < routable.size(); ++i) {
    const rsmt::SteinerTree tree = builder.build(design_.net(routable[i]).pins);
    for (const auto& [ia, ib] : tree.edges) {
      subnets.push_back({i, tree.nodes[static_cast<std::size_t>(ia)],
                         tree.nodes[static_cast<std::size_t>(ib)]});
    }
  }

  std::vector<double> lambda(static_cast<std::size_t>(grid.edge_count()), 0.0);
  auto priced_cost = [&](EdgeId e) {
    return 1.0 + lambda[static_cast<std::size_t>(e)];
  };

  std::vector<PatternPath> current(subnets.size());
  RouteSolution best;
  std::int64_t best_over = std::numeric_limits<std::int64_t>::max();
  std::int64_t best_wl = std::numeric_limits<std::int64_t>::max();

  int round = 0;
  double step = options_.step0;
  for (; round < options_.rounds; ++round) {
    // 1. Shortest priced route per sub-net (independent => "concurrent" in
    //    the dual sense: no net sees another's demand, only the prices).
    grid::DemandMap demand(grid);
    for (std::size_t s = 0; s < subnets.size(); ++s) {
      const SubnetRef& ref = subnets[s];
      PatternPath chosen;
      double chosen_cost = std::numeric_limits<double>::infinity();
      for (const PatternPath& cand : dag::enumerate_paths(ref.a, ref.b, options_.paths)) {
        double c = 0.0;
        for (const EdgeId e : cand.edges(grid)) c += priced_cost(e);
        if (c < chosen_cost) {
          chosen_cost = c;
          chosen = cand;
        }
      }
      if (options_.maze_paths && round > 0) {
        // Once prices exist, allow free-form detours (the pathfinding model).
        const MazeResult mz = maze_route(grid, {ref.a}, ref.b, priced_cost);
        if (mz.found && mz.cost < chosen_cost - 1e-9) chosen = compress_cells(mz.cells);
      }
      for (const EdgeId e : chosen.edges(grid)) demand.add(e, 1.0);
      current[s] = std::move(chosen);
    }

    // 2. Keep the best primal solution seen.
    std::int64_t over = demand.overflowed_edge_count(capacities_);
    std::int64_t wl = 0;
    for (const PatternPath& p : current) wl += p.length();
    if (over < best_over || (over == best_over && wl < best_wl)) {
      best_over = over;
      best_wl = wl;
      best.design = &design_;
      best.nets.assign(routable.size(), NetRoute{});
      for (std::size_t i = 0; i < routable.size(); ++i) {
        best.nets[i].design_net = routable[i];
      }
      for (std::size_t s = 0; s < subnets.size(); ++s) {
        best.nets[subnets[s].net].paths.push_back(current[s]);
      }
    }
    if (over == 0 && round > 0) break;  // feasible and prices settled

    // 3. Projected subgradient step on the multipliers.
    step = options_.step0 / std::sqrt(static_cast<double>(round + 1));
    for (std::size_t e = 0; e < lambda.size(); ++e) {
      const double g = demand.demand(static_cast<EdgeId>(e)) -
                       static_cast<double>(capacities_[e]);
      lambda[e] = std::max(0.0, lambda[e] + step * g);
    }
    DGR_LOG_DEBUG("lagrangian round %d: overflow edges=%lld", round,
                  static_cast<long long>(over));
  }

  // Final primal repair: dual pricing routes every sub-net independently, so
  // a few sub-nets keep oscillating between equally-priced alternatives and
  // the kept primal solution can retain overflow. Like Yao's rounding stage,
  // reroute nets crossing overflowed edges against the *true* residual
  // demand, accepting only strict improvements.
  if (options_.repair_rounds > 0 && !best.nets.empty()) {
    grid::DemandMap dm(grid);
    for (const NetRoute& net : best.nets) {
      RouteSolution::apply_net(dm, design_, net, options_.via_beta, +1.0);
    }
    // Repair-round interactions can regress globally; keep the best snapshot.
    auto snapshot_score = [&] {
      std::int64_t wl = 0;
      for (const NetRoute& net : best.nets) {
        for (const PatternPath& p : net.paths) wl += p.length();
      }
      return std::tuple(dm.overflowed_edge_count(capacities_),
                        dm.total_overflow(capacities_), wl);
    };
    RouteSolution repaired_best = best;
    auto repaired_score = snapshot_score();
    for (int r = 0; r < options_.repair_rounds; ++r) {
      bool changed = false;
      for (NetRoute& net : best.nets) {
        bool over = false;
        for (const PatternPath& p : net.paths) {
          for (const EdgeId e : p.edges(grid)) {
            if (dm.demand(e) > capacities_[static_cast<std::size_t>(e)] + 1e-6) {
              over = true;
              break;
            }
          }
          if (over) break;
        }
        if (!over) continue;

        RouteSolution::apply_net(dm, design_, net, options_.via_beta, -1.0);
        // (weighted marginal cost, # edges this net pushes over capacity) —
        // the edge count guard prevents smearing one heavy overflow across
        // many lightly overflowed edges.
        auto route_cost = [&](const std::vector<PatternPath>& paths) {
          double c = 0.0;
          std::int64_t over_edges = 0;
          grid::DemandMap mine(grid);
          for (const PatternPath& p : paths) {
            c += 0.5 * static_cast<double>(p.length());
            for (const EdgeId e : p.edges(grid)) mine.add(e, 1.0);
          }
          for (EdgeId e = 0; e < grid.edge_count(); ++e) {
            const double w = mine.demand(e);
            if (w <= 0.0) continue;
            const double d = dm.demand(e);
            const double cap = capacities_[static_cast<std::size_t>(e)];
            c += 500.0 * (std::max(0.0, d + w - cap) - std::max(0.0, d - cap));
            if (d + w > cap + 1e-6) ++over_edges;
          }
          return std::pair(c, over_edges);
        };
        std::vector<PatternPath> candidate;
        grid::DemandMap mine(grid);
        for (const PatternPath& p : net.paths) {
          auto price = [&](EdgeId e) {
            const double d = dm.demand(e) + mine.demand(e);
            const double cap = capacities_[static_cast<std::size_t>(e)];
            return 1.0 +
                   500.0 * (std::max(0.0, d + 1.0 - cap) - std::max(0.0, d - cap));
          };
          const MazeResult mz =
              maze_route(grid, {p.waypoints.front()}, p.waypoints.back(), price);
          // On an unreachable target keep the existing leg: an empty
          // replacement would look "cheaper" and break the net.
          PatternPath q = mz.found ? compress_cells(mz.cells) : p;
          for (const EdgeId e : q.edges(grid)) mine.add(e, 1.0);
          candidate.push_back(std::move(q));
        }
        const auto [new_cost, new_edges] = route_cost(candidate);
        const auto [old_cost, old_edges] = route_cost(net.paths);
        if (new_cost < old_cost - 1e-9 && new_edges <= old_edges) {
          net.paths = std::move(candidate);
          changed = true;
        }
        RouteSolution::apply_net(dm, design_, net, options_.via_beta, +1.0);
      }
      const auto score = snapshot_score();
      if (score < repaired_score) {
        repaired_score = score;
        repaired_best = best;
      }
      if (!changed) break;
    }
    best = std::move(repaired_best);
  }

  if (stats != nullptr) {
    stats->rounds_run = round;
    stats->route_seconds = timer.seconds();
    stats->final_step = step;
  }
  return best;
}

LagrangianRouter::LagrangianRouter(const design::Design& design,
                                   std::vector<float> capacities,
                                   LagrangianOptions options)
    : design_(design), capacities_(std::move(capacities)), options_(options) {}

}  // namespace dgr::routers
