#include "dag/path.hpp"

#include <algorithm>
#include <cassert>

namespace dgr::dag {

std::vector<EdgeId> PatternPath::edges(const GCellGrid& grid) const {
  std::vector<EdgeId> out;
  for (std::size_t i = 0; i + 1 < waypoints.size(); ++i) {
    Point cur = waypoints[i];
    const Point dst = waypoints[i + 1];
    const int dx = dst.x > cur.x ? 1 : (dst.x < cur.x ? -1 : 0);
    const int dy = dst.y > cur.y ? 1 : (dst.y < cur.y ? -1 : 0);
    assert(dx == 0 || dy == 0);
    while (!(cur == dst)) {
      const Point nxt{static_cast<geom::Coord>(cur.x + dx),
                      static_cast<geom::Coord>(cur.y + dy)};
      const EdgeId e = grid.edge_between(cur, nxt);
      assert(e != grid::kInvalidEdge);
      out.push_back(e);
      cur = nxt;
    }
  }
  return out;
}

std::int64_t PatternPath::length() const {
  std::int64_t len = 0;
  for (std::size_t i = 0; i + 1 < waypoints.size(); ++i) {
    len += geom::manhattan(waypoints[i], waypoints[i + 1]);
  }
  return len;
}

namespace {

/// Appends `path` if its waypoint list (after dropping zero-length legs) is
/// new and has at least one leg.
void add_unique_path(std::vector<PatternPath>& out, PatternPath path) {
  auto& w = path.waypoints;
  w.erase(std::unique(w.begin(), w.end()), w.end());
  if (w.size() < 2) return;
  for (const PatternPath& q : out) {
    if (q.waypoints == path.waypoints) return;
  }
  out.push_back(std::move(path));
}

}  // namespace

std::vector<PatternPath> enumerate_paths(Point a, Point b, const PathEnumOptions& opts) {
  std::vector<PatternPath> out;
  if (a == b) {
    out.push_back(PatternPath{{a, b}});
    return out;
  }
  if (a.x == b.x || a.y == b.y) {
    out.push_back(PatternPath{{a, b}});
    return out;
  }

  // Two L-shapes: bend at (b.x, a.y) = horizontal-first, and at (a.x, b.y).
  out.push_back(PatternPath{{a, Point{b.x, a.y}, b}});
  out.push_back(PatternPath{{a, Point{a.x, b.y}, b}});

  if (opts.z_samples > 0) {
    auto add_unique = [&out](PatternPath p) {
      if (p.waypoints.size() >= 3) add_unique_path(out, std::move(p));
    };
    // HVH jogs: vertical leg at x strictly between a.x and b.x.
    const int xlo = std::min(a.x, b.x), xhi = std::max(a.x, b.x);
    const int span_x = xhi - xlo;
    for (int k = 1; k <= opts.z_samples && k < span_x; ++k) {
      const auto x = static_cast<geom::Coord>(xlo + k * span_x / (opts.z_samples + 1));
      if (x <= xlo || x >= xhi) continue;
      add_unique(PatternPath{{a, Point{x, a.y}, Point{x, b.y}, b}});
    }
    // VHV jogs: horizontal leg at y strictly between a.y and b.y.
    const int ylo = std::min(a.y, b.y), yhi = std::max(a.y, b.y);
    const int span_y = yhi - ylo;
    for (int k = 1; k <= opts.z_samples && k < span_y; ++k) {
      const auto y = static_cast<geom::Coord>(ylo + k * span_y / (opts.z_samples + 1));
      if (y <= ylo || y >= yhi) continue;
      add_unique(PatternPath{{a, Point{a.x, y}, Point{b.x, y}, b}});
    }
  }
  return out;
}

std::vector<PatternPath> enumerate_paths(Point a, Point b, const PathEnumOptions& opts,
                                         const GCellGrid& grid) {
  std::vector<PatternPath> out = enumerate_paths(a, b, opts);
  if (opts.c_samples <= 0 || opts.c_detour <= 0 || a == b) return out;

  // C-shapes: leave the pin bounding box on one side, run parallel to the
  // straight span, and come back. Each sampled offset k in [1, c_samples]
  // detours by k * c_detour cells; out-of-grid candidates are skipped.
  // A detour is only emitted when the crossing leg has nonzero extent,
  // otherwise the "C" would walk the same column/row out and back.
  const geom::Rect box = geom::Rect::bounding_box({a, b});
  for (int k = 1; k <= opts.c_samples; ++k) {
    const auto d = static_cast<geom::Coord>(k * opts.c_detour);
    if (a.x != b.x) {
      // Horizontal C's (above / below the box): a -> (a.x,y) -> (b.x,y) -> b.
      for (const geom::Coord y : {static_cast<geom::Coord>(box.lo.y - d),
                                  static_cast<geom::Coord>(box.hi.y + d)}) {
        if (y < 0 || y >= grid.height()) continue;
        add_unique_path(out, PatternPath{{a, Point{a.x, y}, Point{b.x, y}, b}});
      }
    }
    if (a.y != b.y) {
      // Vertical C's (left / right of the box).
      for (const geom::Coord x : {static_cast<geom::Coord>(box.lo.x - d),
                                  static_cast<geom::Coord>(box.hi.x + d)}) {
        if (x < 0 || x >= grid.width()) continue;
        add_unique_path(out, PatternPath{{a, Point{x, a.y}, Point{x, b.y}, b}});
      }
    }
  }
  return out;
}

bool path_is_valid(const PatternPath& path, const GCellGrid& grid, bool require_monotone) {
  const auto& w = path.waypoints;
  if (w.size() < 2) return false;
  for (const Point& p : w) {
    if (!grid.in_bounds(p)) return false;
  }
  if (w.size() == 2 && w[0] == w[1]) return true;  // degenerate single-cell
  int sign_x = 0, sign_y = 0;
  for (std::size_t i = 0; i + 1 < w.size(); ++i) {
    const int dx = w[i + 1].x - w[i].x;
    const int dy = w[i + 1].y - w[i].y;
    if (dx != 0 && dy != 0) return false;  // not axis-aligned
    if (dx == 0 && dy == 0) return false;  // duplicate waypoint
    if (!require_monotone) continue;
    // Monotonicity: per-axis direction must never flip.
    if (dx != 0) {
      const int s = dx > 0 ? 1 : -1;
      if (sign_x != 0 && s != sign_x) return false;
      sign_x = s;
    } else {
      const int s = dy > 0 ? 1 : -1;
      if (sign_y != 0 && s != sign_y) return false;
      sign_y = s;
    }
  }
  return true;
}

}  // namespace dgr::dag
