#include "dag/forest.hpp"

#include <cassert>
#include <numeric>

#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace dgr::dag {

using design::Design;
using grid::EdgeId;
using grid::GCellGrid;

namespace {

/// Per-net intermediate produced by the (parallel) generation phase.
struct NetForest {
  std::vector<rsmt::SteinerTree> trees;
  // subnet endpoints per tree, and enumerated paths per subnet
  std::vector<std::vector<std::pair<Point, Point>>> tree_subnets;
  std::vector<std::vector<std::vector<PatternPath>>> subnet_paths;
};

/// True when the subnet's bounding box touches an edge whose estimated
/// pre-routing demand exceeds the adaptive-expansion threshold.
bool subnet_in_congestion(const TreeCandidateGenerator& gen, const ForestOptions& opts,
                          Point a, Point b) {
  const GCellGrid& grid = gen.design().grid();
  const auto& est = gen.congestion();
  const geom::Rect box = geom::Rect::bounding_box({a, b});
  for (geom::Coord y = box.lo.y; y <= box.hi.y; ++y) {
    for (geom::Coord x = box.lo.x; x <= box.hi.x; ++x) {
      for (const EdgeId e : {x + 1 <= box.hi.x ? grid.h_edge(x, y) : grid::kInvalidEdge,
                             y + 1 <= box.hi.y ? grid.v_edge(x, y) : grid::kInvalidEdge}) {
        if (e == grid::kInvalidEdge) continue;
        if (est[static_cast<std::size_t>(e)] >
            opts.adaptive_threshold * static_cast<float>(grid.base_capacity(e))) {
          return true;
        }
      }
    }
  }
  return false;
}

NetForest build_net(const TreeCandidateGenerator& gen, const ForestOptions& opts,
                    std::size_t net_idx) {
  NetForest nf;
  nf.trees = gen.generate(net_idx);
  nf.tree_subnets.resize(nf.trees.size());
  nf.subnet_paths.resize(nf.trees.size());
  for (std::size_t t = 0; t < nf.trees.size(); ++t) {
    const rsmt::SteinerTree& tree = nf.trees[t];
    for (const auto& [a, b] : tree.edges) {
      const Point pa = tree.nodes[static_cast<std::size_t>(a)];
      const Point pb = tree.nodes[static_cast<std::size_t>(b)];
      nf.tree_subnets[t].emplace_back(pa, pb);
      PathEnumOptions path_opts = opts.paths;
      if (opts.adaptive_expansion && subnet_in_congestion(gen, opts, pa, pb)) {
        path_opts.z_samples = std::max(path_opts.z_samples, opts.adaptive_z_samples);
      }
      nf.subnet_paths[t].push_back(
          enumerate_paths(pa, pb, path_opts, gen.design().grid()));
    }
  }
  return nf;
}

}  // namespace

DagForest DagForest::build(const Design& design, const ForestOptions& opts) {
  DGR_TRACE_SCOPE("dag.forest_build");
  DagForest forest;
  forest.design_ = &design;
  forest.opts_ = opts;
  forest.net_ids_ = design.routable_nets();
  const std::size_t num_nets = forest.net_ids_.size();

  TreeCandidateGenerator gen(design, opts.tree);

  // Phase 1 (parallel): per-net candidate generation.
  std::vector<NetForest> per_net(num_nets);
  auto gen_one = [&](std::size_t n) {
    per_net[n] = build_net(gen, opts, forest.net_ids_[n]);
  };
  if (opts.parallel_build) {
    util::ParallelRuntime::for_each(0, num_nets, gen_one, /*grain=*/16);
  } else {
    for (std::size_t n = 0; n < num_nets; ++n) gen_one(n);
  }

  // Phase 2 (serial): concatenate into flat pools.
  forest.net_tree_offsets_.reserve(num_nets + 1);
  forest.net_tree_offsets_.push_back(0);
  const GCellGrid& grid = design.grid();
  const float via_w = opts.via_demand_beta * 0.5f;

  for (std::size_t n = 0; n < num_nets; ++n) {
    NetForest& nf = per_net[n];
    for (std::size_t t = 0; t < nf.trees.size(); ++t) {
      TreeCandidate tc;
      tc.net = static_cast<std::int32_t>(n);
      tc.subnet_begin = static_cast<std::int32_t>(forest.subnets_.size());
      const auto tree_idx = static_cast<std::int32_t>(forest.trees_.size());
      for (std::size_t s = 0; s < nf.tree_subnets[t].size(); ++s) {
        Subnet sn;
        sn.tree = tree_idx;
        sn.a = nf.tree_subnets[t][s].first;
        sn.b = nf.tree_subnets[t][s].second;
        sn.path_begin = static_cast<std::int32_t>(forest.paths_.size());
        for (PatternPath& pp : nf.subnet_paths[t][s]) {
          PathCandidate pc;
          pc.subnet = static_cast<std::int32_t>(forest.subnets_.size());
          pc.tree = tree_idx;
          pc.net = static_cast<std::int32_t>(n);
          pc.wirelength = static_cast<float>(pp.length());
          pc.turns = static_cast<std::int32_t>(pp.bend_count());

          pc.inc_begin = static_cast<std::uint32_t>(forest.inc_edges_.size());
          const std::vector<EdgeId> edges = pp.edges(grid);
          for (const EdgeId e : edges) {
            forest.inc_edges_.push_back(e);
            forest.inc_weights_.push_back(1.0f);
          }
          // Via charge: the two edges meeting at each bend get +beta/2.
          // Bend k sits between leg k and leg k+1; walking the polyline, the
          // edge entering the bend and the edge leaving it are adjacent in
          // `edges` at the cumulative leg-length boundary.
          if (via_w > 0.0f && pp.bend_count() > 0) {
            std::size_t cursor = 0;
            for (std::size_t leg = 0; leg + 1 < pp.waypoints.size(); ++leg) {
              cursor += static_cast<std::size_t>(
                  geom::manhattan(pp.waypoints[leg], pp.waypoints[leg + 1]));
              if (leg + 2 < pp.waypoints.size()) {  // a bend follows this leg
                assert(cursor > 0 && cursor < edges.size() + 1);
                forest.inc_weights_[pc.inc_begin + static_cast<std::uint32_t>(cursor) - 1] +=
                    via_w;
                if (cursor < edges.size()) {
                  forest.inc_weights_[pc.inc_begin + static_cast<std::uint32_t>(cursor)] +=
                      via_w;
                }
              }
            }
          }
          pc.inc_end = static_cast<std::uint32_t>(forest.inc_edges_.size());

          pc.bend_begin = static_cast<std::uint32_t>(forest.bend_pool_.size());
          for (const Point& bend : pp.bends()) forest.bend_pool_.push_back(bend);
          pc.bend_end = static_cast<std::uint32_t>(forest.bend_pool_.size());

          forest.paths_.push_back(pc);
        }
        sn.path_end = static_cast<std::int32_t>(forest.paths_.size());
        forest.subnets_.push_back(sn);
      }
      tc.subnet_end = static_cast<std::int32_t>(forest.subnets_.size());
      tc.tree = std::move(nf.trees[t]);
      forest.trees_.push_back(std::move(tc));
    }
    forest.net_tree_offsets_.push_back(static_cast<std::int32_t>(forest.trees_.size()));
  }

  // Phase 3: edge-major transpose (counting sort over edge ids).
  const auto num_edges = static_cast<std::size_t>(grid.edge_count());
  forest.edge_inc_offsets_.assign(num_edges + 1, 0);
  for (const EdgeId e : forest.inc_edges_) {
    ++forest.edge_inc_offsets_[static_cast<std::size_t>(e) + 1];
  }
  std::partial_sum(forest.edge_inc_offsets_.begin(), forest.edge_inc_offsets_.end(),
                   forest.edge_inc_offsets_.begin());
  forest.edge_inc_paths_.resize(forest.inc_edges_.size());
  forest.edge_inc_weights_.resize(forest.inc_edges_.size());
  {
    std::vector<std::uint32_t> cursor(forest.edge_inc_offsets_.begin(),
                                      forest.edge_inc_offsets_.end() - 1);
    for (std::size_t p = 0; p < forest.paths_.size(); ++p) {
      const PathCandidate& pc = forest.paths_[p];
      for (std::uint32_t k = pc.inc_begin; k < pc.inc_end; ++k) {
        const auto e = static_cast<std::size_t>(forest.inc_edges_[k]);
        const std::uint32_t slot = cursor[e]++;
        forest.edge_inc_paths_[slot] = static_cast<std::int32_t>(p);
        forest.edge_inc_weights_[slot] = forest.inc_weights_[k];
      }
    }
  }

  return forest;
}

PatternPath DagForest::path_geometry(std::size_t i) const {
  const PathCandidate& pc = paths_[i];
  const Subnet& sn = subnets_[static_cast<std::size_t>(pc.subnet)];
  PatternPath pp;
  pp.waypoints.push_back(sn.a);
  for (std::uint32_t k = pc.bend_begin; k < pc.bend_end; ++k) {
    pp.waypoints.push_back(bend_pool_[k]);
  }
  pp.waypoints.push_back(sn.b);
  return pp;
}

std::size_t DagForest::memory_bytes() const {
  std::size_t bytes = 0;
  bytes += trees_.capacity() * sizeof(TreeCandidate);
  for (const TreeCandidate& t : trees_) {
    bytes += t.tree.nodes.capacity() * sizeof(Point) +
             t.tree.edges.capacity() * sizeof(std::pair<int, int>);
  }
  bytes += subnets_.capacity() * sizeof(Subnet);
  bytes += paths_.capacity() * sizeof(PathCandidate);
  bytes += bend_pool_.capacity() * sizeof(Point);
  bytes += inc_edges_.capacity() * sizeof(EdgeId);
  bytes += inc_weights_.capacity() * sizeof(float);
  bytes += edge_inc_offsets_.capacity() * sizeof(std::uint32_t);
  bytes += edge_inc_paths_.capacity() * sizeof(std::int32_t);
  bytes += edge_inc_weights_.capacity() * sizeof(float);
  bytes += net_tree_offsets_.capacity() * sizeof(std::int32_t);
  bytes += net_ids_.capacity() * sizeof(std::size_t);
  return bytes;
}

}  // namespace dgr::dag
