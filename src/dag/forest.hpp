#pragma once
// The routing DAG forest F = {T, S, P} (Section 3 of the paper).
//
//   T  tree candidate pool   — every routing-tree candidate of every net,
//                              grouped contiguously per net,
//   S  2-pin subnet pool     — every tree edge of every tree candidate,
//                              grouped contiguously per tree,
//   P  path candidate pool   — every pattern path of every subnet,
//                              grouped contiguously per subnet.
//
// The contiguous grouping *is* the constraint structure: Eq. (7) is a
// softmax over each subnet's path slice, Eq. (8) over each net's tree slice.
//
// The forest also prebuilds the weighted path<->edge incidence used by the
// demand computation Eq. (2)/(10): entry weight 1 for a wire crossing, plus
// beta/2 on each of the two edges meeting at a bend (the via charge; see
// DESIGN.md interpretation note 1). Both the path-major CSR (backward pass)
// and its edge-major transpose (deterministic forward reduction) are stored.

#include <cstdint>
#include <vector>

#include "dag/path.hpp"
#include "dag/tree_candidates.hpp"
#include "design/design.hpp"

namespace dgr::dag {

struct ForestOptions {
  TreeCandidateOptions tree;
  PathEnumOptions paths;
  /// Beta of Eq. (2): via demand charged per bend. 0 disables via demand
  /// (the Table 1 ILP protocol is wire-only).
  float via_demand_beta = 0.5f;
  /// Build the per-net generation phase in parallel.
  bool parallel_build = true;

  /// Adaptive forest expansion — the future direction the paper sketches in
  /// Section 3.1 ("adaptive expansion of the forest by introducing new DAGs
  /// and DAG edges for nets in congested areas"): subnets whose bounding box
  /// touches an edge whose *estimated* pre-routing demand exceeds
  /// `adaptive_threshold` x base capacity additionally receive Z-shape
  /// candidates with `adaptive_z_samples` jogs; everything else stays with
  /// the cheap default `paths` enumeration.
  bool adaptive_expansion = false;
  float adaptive_threshold = 0.8f;
  int adaptive_z_samples = 3;
};

struct TreeCandidate {
  std::int32_t net = 0;           ///< forest-net index (dense over routable nets)
  std::int32_t subnet_begin = 0;  ///< [subnet_begin, subnet_end) in subnet pool
  std::int32_t subnet_end = 0;
  rsmt::SteinerTree tree;
};

struct Subnet {
  std::int32_t tree = 0;        ///< owning tree-candidate index
  Point a, b;                   ///< the 2-pin endpoints
  std::int32_t path_begin = 0;  ///< [path_begin, path_end) in path pool
  std::int32_t path_end = 0;
};

struct PathCandidate {
  std::int32_t subnet = 0;
  std::int32_t tree = 0;       ///< owning tree-candidate index (denormalised)
  std::int32_t net = 0;        ///< owning forest-net index (denormalised)
  float wirelength = 0.0f;     ///< WL_i of Eq. (4)
  std::int32_t turns = 0;      ///< TP_i of Eq. (5)
  std::uint32_t inc_begin = 0; ///< [inc_begin, inc_end) into incidence arrays
  std::uint32_t inc_end = 0;
  std::uint32_t bend_begin = 0;  ///< [bend_begin, bend_end) into bend pool
  std::uint32_t bend_end = 0;
};

class DagForest {
 public:
  static DagForest build(const design::Design& design, const ForestOptions& opts = {});

  // ---- pools -------------------------------------------------------------
  const std::vector<TreeCandidate>& trees() const { return trees_; }
  const std::vector<Subnet>& subnets() const { return subnets_; }
  const std::vector<PathCandidate>& paths() const { return paths_; }
  std::size_t net_count() const { return net_ids_.size(); }
  /// Design net index of forest net n.
  std::size_t design_net(std::size_t n) const { return net_ids_[n]; }

  /// Tree-candidate slice of forest net n: [offset[n], offset[n+1]).
  const std::vector<std::int32_t>& net_tree_offsets() const { return net_tree_offsets_; }

  // ---- incidence (path -> edges, weighted) --------------------------------
  const std::vector<grid::EdgeId>& inc_edges() const { return inc_edges_; }
  const std::vector<float>& inc_weights() const { return inc_weights_; }

  // ---- transpose (edge -> paths, weighted), CSR over all grid edges -------
  const std::vector<std::uint32_t>& edge_inc_offsets() const { return edge_inc_offsets_; }
  const std::vector<std::int32_t>& edge_inc_paths() const { return edge_inc_paths_; }
  const std::vector<float>& edge_inc_weights() const { return edge_inc_weights_; }

  // ---- geometry ------------------------------------------------------------
  /// Reconstructs the full waypoint polyline of path i.
  PatternPath path_geometry(std::size_t i) const;
  const std::vector<Point>& bend_pool() const { return bend_pool_; }

  const design::Design& design() const { return *design_; }
  const ForestOptions& options() const { return opts_; }

  /// Rough retained-bytes accounting for the Fig. 5b memory series.
  std::size_t memory_bytes() const;

 private:
  const design::Design* design_ = nullptr;
  ForestOptions opts_;
  std::vector<std::size_t> net_ids_;
  std::vector<std::int32_t> net_tree_offsets_;
  std::vector<TreeCandidate> trees_;
  std::vector<Subnet> subnets_;
  std::vector<PathCandidate> paths_;
  std::vector<Point> bend_pool_;
  std::vector<grid::EdgeId> inc_edges_;
  std::vector<float> inc_weights_;
  std::vector<std::uint32_t> edge_inc_offsets_;
  std::vector<std::int32_t> edge_inc_paths_;
  std::vector<float> edge_inc_weights_;
};

}  // namespace dgr::dag
