#pragma once
// Routing-tree candidate generation (Section 4.2).
//
// Per net the paper seeds the DAG forest with the FLUTE RSMT plus CUGR2's
// congestion-fine-tuned variant, and notes that further generators (SALT,
// TreeNet, ...) plug in the same way. We generate, in order:
//   0. the RSMT from rsmt::RsmtBuilder (FLUTE stand-in),
//   1. a congestion-shifted copy: each Steiner node moves (within a small
//      window) to the least-congested nearby cell under a probabilistic
//      pre-routing congestion estimate (CUGR2-style fine-tuning),
//   2. optionally a trunk/star topology (median Steiner point) for diversity.
// Candidates with identical canonical edge sets are deduplicated.

#include <vector>

#include "design/design.hpp"
#include "rsmt/builder.hpp"
#include "rsmt/salt.hpp"

namespace dgr::dag {

using design::Design;
using rsmt::SteinerTree;

/// Pre-routing probabilistic congestion estimate: every routable net spreads
/// one unit of expected wire demand uniformly over the edges inside its pin
/// bounding box (the classic bounding-box congestion model used by
/// placement/routing estimators). Returns per-edge expected demand.
std::vector<float> estimate_congestion(const Design& design);

struct TreeCandidateOptions {
  bool congestion_shifted = true;  ///< emit candidate 1
  bool trunk_topology = false;     ///< emit candidate 2
  bool salt_topology = false;      ///< emit candidate 3: shallow-light tree
  double salt_epsilon = 0.5;       ///< SALT shallowness slack
  int shift_window = 2;            ///< Steiner-node search radius (cells)
  rsmt::RsmtOptions rsmt;
};

class TreeCandidateGenerator {
 public:
  TreeCandidateGenerator(const Design& design, TreeCandidateOptions opts = {});

  /// Tree candidates for net `net_idx` (must be routable), deduplicated,
  /// candidate 0 always the plain RSMT.
  std::vector<SteinerTree> generate(std::size_t net_idx) const;

  const std::vector<float>& congestion() const { return congestion_; }
  const Design& design() const { return design_; }

 private:
  SteinerTree shift_steiner_nodes(const SteinerTree& tree) const;
  SteinerTree trunk_tree(const std::vector<geom::Point>& pins) const;
  /// Congestion seen around a cell (average over incident edges).
  float cell_congestion(geom::Point p) const;

  const Design& design_;
  TreeCandidateOptions opts_;
  rsmt::RsmtBuilder builder_;
  std::vector<float> congestion_;
};

}  // namespace dgr::dag
