#include "dag/tree_candidates.hpp"

#include <algorithm>
#include <cmath>

namespace dgr::dag {

using geom::Point;
using geom::Rect;
using grid::EdgeId;
using grid::GCellGrid;

std::vector<float> estimate_congestion(const Design& design) {
  const GCellGrid& grid = design.grid();
  std::vector<float> demand(static_cast<std::size_t>(grid.edge_count()), 0.0f);
  for (std::size_t n : design.routable_nets()) {
    const Rect box = Rect::bounding_box(design.net(n).pins);
    const int w = box.width();
    const int h = box.height();
    // Expected horizontal wire crossings: w units of wire spread over the
    // (h+1) rows of the box; symmetrically for vertical.
    if (w > 0) {
      const float per_edge = 1.0f / static_cast<float>(h + 1);
      for (geom::Coord y = box.lo.y; y <= box.hi.y; ++y) {
        for (geom::Coord x = box.lo.x; x < box.hi.x; ++x) {
          demand[static_cast<std::size_t>(grid.h_edge(x, y))] += per_edge;
        }
      }
    }
    if (h > 0) {
      const float per_edge = 1.0f / static_cast<float>(w + 1);
      for (geom::Coord x = box.lo.x; x <= box.hi.x; ++x) {
        for (geom::Coord y = box.lo.y; y < box.hi.y; ++y) {
          demand[static_cast<std::size_t>(grid.v_edge(x, y))] += per_edge;
        }
      }
    }
  }
  return demand;
}

TreeCandidateGenerator::TreeCandidateGenerator(const Design& design,
                                               TreeCandidateOptions opts)
    : design_(design),
      opts_(opts),
      builder_(opts.rsmt),
      congestion_(estimate_congestion(design)) {}

float TreeCandidateGenerator::cell_congestion(Point p) const {
  const GCellGrid& grid = design_.grid();
  float total = 0.0f;
  int count = 0;
  auto add = [&](EdgeId e) {
    total += congestion_[static_cast<std::size_t>(e)] -
             static_cast<float>(grid.base_capacity(e));
    ++count;
  };
  if (p.x > 0) add(grid.h_edge(p.x - 1, p.y));
  if (p.x + 1 < grid.width()) add(grid.h_edge(p.x, p.y));
  if (p.y > 0) add(grid.v_edge(p.x, p.y - 1));
  if (p.y + 1 < grid.height()) add(grid.v_edge(p.x, p.y));
  return count > 0 ? total / static_cast<float>(count) : 0.0f;
}

SteinerTree TreeCandidateGenerator::shift_steiner_nodes(const SteinerTree& tree) const {
  const GCellGrid& grid = design_.grid();
  SteinerTree shifted = tree;
  for (std::size_t v = shifted.pin_count; v < shifted.nodes.size(); ++v) {
    const Point orig = shifted.nodes[v];
    Point best = orig;
    // Penalise wirelength growth so the shift trades congestion against WL
    // the way CUGR2's fine-tuning does.
    float best_score = cell_congestion(orig);
    for (int dx = -opts_.shift_window; dx <= opts_.shift_window; ++dx) {
      for (int dy = -opts_.shift_window; dy <= opts_.shift_window; ++dy) {
        const Point cand{static_cast<geom::Coord>(orig.x + dx),
                         static_cast<geom::Coord>(orig.y + dy)};
        if (!grid.in_bounds(cand) || cand == orig) continue;
        const float wl_penalty = 0.5f * static_cast<float>(std::abs(dx) + std::abs(dy));
        const float score = cell_congestion(cand) + wl_penalty;
        if (score < best_score) {
          best_score = score;
          best = cand;
        }
      }
    }
    shifted.nodes[v] = best;
  }
  shifted.simplify();
  return shifted;
}

SteinerTree TreeCandidateGenerator::trunk_tree(const std::vector<Point>& pins) const {
  // Star through the coordinate-wise median: robust, short, very different
  // topology from the RSMT, which is what candidate diversity wants.
  std::vector<geom::Coord> xs, ys;
  xs.reserve(pins.size());
  ys.reserve(pins.size());
  for (const Point& p : pins) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  std::nth_element(xs.begin(), xs.begin() + xs.size() / 2, xs.end());
  std::nth_element(ys.begin(), ys.begin() + ys.size() / 2, ys.end());
  const Point centre{xs[xs.size() / 2], ys[ys.size() / 2]};

  SteinerTree tree;
  tree.nodes = pins;
  tree.pin_count = pins.size();
  int centre_idx = -1;
  for (std::size_t i = 0; i < pins.size(); ++i) {
    if (pins[i] == centre) centre_idx = static_cast<int>(i);
  }
  if (centre_idx < 0) {
    centre_idx = static_cast<int>(tree.nodes.size());
    tree.nodes.push_back(centre);
  }
  for (std::size_t i = 0; i < pins.size(); ++i) {
    if (static_cast<int>(i) != centre_idx) tree.edges.emplace_back(centre_idx, static_cast<int>(i));
  }
  tree.simplify();
  return tree;
}

std::vector<SteinerTree> TreeCandidateGenerator::generate(std::size_t net_idx) const {
  const auto& pins = design_.net(net_idx).pins;
  std::vector<SteinerTree> out;
  out.push_back(builder_.build(pins));

  auto push_unique = [&out](SteinerTree t) {
    const auto key = t.canonical_edges();
    for (const SteinerTree& existing : out) {
      if (existing.canonical_edges() == key) return;
    }
    out.push_back(std::move(t));
  };

  if (opts_.congestion_shifted) push_unique(shift_steiner_nodes(out.front()));
  if (opts_.trunk_topology && pins.size() >= 3) push_unique(trunk_tree(pins));
  if (opts_.salt_topology && pins.size() >= 3) {
    // Shallow-light candidate (SALT family): short source-to-sink paths at
    // bounded extra wirelength. Pin 0 is taken as the driver.
    push_unique(rsmt::salt_tree(pins, {opts_.salt_epsilon, 0}));
  }
  return out;
}

}  // namespace dgr::dag
