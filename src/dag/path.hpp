#pragma once
// 2-pin pattern-path enumeration (L- and Z-shapes).
//
// A pattern path between g-cells a and b is a monotone rectilinear polyline;
// its wirelength is always manhattan(a,b) and its via pressure comes from
// its bends (turning points). The DAG forest stores each path as the list
// of g-cell edges it crosses plus its bend cells.

#include <vector>

#include "grid/gcell_grid.hpp"

namespace dgr::dag {

using geom::Point;
using grid::EdgeId;
using grid::GCellGrid;

/// A concrete embedded path: waypoints a, bends..., b (each consecutive pair
/// axis-aligned).
struct PatternPath {
  std::vector<Point> waypoints;  ///< >= 2 entries; consecutive entries axis-aligned

  std::size_t bend_count() const { return waypoints.size() - 2; }
  /// All g-cell edges crossed, in walk order.
  std::vector<EdgeId> edges(const GCellGrid& grid) const;
  /// Bend cells (waypoints minus the two endpoints).
  std::vector<Point> bends() const {
    return {waypoints.begin() + 1, waypoints.end() - 1};
  }
  std::int64_t length() const;
};

struct PathEnumOptions {
  /// Number of extra Z-shape candidates per orientation (0 = L-shapes only,
  /// the paper's default; Section 3.1 mentions Z/C/monotone as extensions).
  int z_samples = 0;
  /// Number of C-shape (detour) candidates per side. A C-shape leaves the
  /// pin bounding box by `c_detour` cells and comes back, so its wirelength
  /// exceeds manhattan(a,b) by 2*c_detour — the escape pattern routers use
  /// when everything inside the box is congested. Requires grid bounds at
  /// enumeration time, so C-shapes are only produced by the grid-aware
  /// overload below.
  int c_samples = 0;
  int c_detour = 1;
};

/// Enumerates pattern-path candidates between a and b:
///  - a == b            -> one degenerate zero-length path
///  - axis-aligned      -> the single straight path
///  - otherwise         -> the two L-shapes, plus optional Z-shapes with an
///                         intermediate jog (HVH jogs at sampled x, VHV jogs
///                         at sampled y), deduplicated.
/// This overload never emits C-shapes (no grid to clamp them against).
std::vector<PatternPath> enumerate_paths(Point a, Point b, const PathEnumOptions& opts = {});

/// Grid-aware overload: everything above plus C-shape detours (clamped to
/// the grid; candidates that would leave it are skipped).
std::vector<PatternPath> enumerate_paths(Point a, Point b, const PathEnumOptions& opts,
                                         const GCellGrid& grid);

/// Validates a path: in-bounds, consecutive waypoints axis-aligned and
/// distinct (except the degenerate single-cell case). When
/// `require_monotone` is set, per-axis direction must never flip (true for
/// L/Z patterns; C-shapes and maze detours are legitimately non-monotone).
bool path_is_valid(const PatternPath& path, const GCellGrid& grid,
                   bool require_monotone = true);

}  // namespace dgr::dag
