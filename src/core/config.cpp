#include "core/config.hpp"

#include <cstdio>

namespace dgr::core {

std::string describe(const DgrConfig& config) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "DGR(act=%s, iters=%d, lr=%.3g, t0=%.2f, decay=%.2f/%d, gumbel=%d, "
                "top_p=%.2f, seed=%llu)",
                ad::activation_name(config.activation), config.iterations,
                config.learning_rate, config.initial_temperature, config.temperature_decay,
                config.temperature_interval, config.use_gumbel ? 1 : 0, config.top_p,
                static_cast<unsigned long long>(config.seed));
  return buf;
}

}  // namespace dgr::core
