#pragma once
/// \file
/// \brief DGR hyper-parameters. Defaults follow Section 5 of the paper:
/// ICCAD'19 metric weights (500 / 4 / 0.5), sigmoid overflow activation,
/// Adam lr 0.3, 1000 iterations, initial temperature 1 scaled by 0.9 every
/// 100 iterations, Gumbel noise on, top-p extraction.

#include <atomic>
#include <cstdint>
#include <string>

#include "ad/ops.hpp"

namespace dgr::core {

struct DgrConfig {
  // Objective weights: cost = a3*overflow + a2*via + a1*wirelength.
  float weight_wirelength = 0.5f;  ///< a1
  float weight_via = 4.0f;         ///< a2
  float weight_overflow = 500.0f;  ///< a3

  ad::Activation activation = ad::Activation::kSigmoid;
  float activation_alpha = 1.0f;  ///< LeakyReLU/CELU parameter

  int iterations = 1000;
  double learning_rate = 0.3;

  float initial_temperature = 1.0f;
  float temperature_decay = 0.9f;
  int temperature_interval = 100;  ///< iterations between decays
  bool use_gumbel = true;          ///< Gumbel noise on logits

  float top_p = 0.9f;  ///< cumulative-probability threshold for extraction

  std::uint64_t seed = 1;
  float init_logit_std = 0.5f;  ///< random logit initialisation scale

  bool record_history = false;  ///< keep per-iteration cost curves

  /// Record the full convergence telemetry series (loss, overflow
  /// expectation, temperature, gradient norm, rollback events — the data
  /// behind the paper's Fig. 5/6 convergence plots) into
  /// TrainStats::telemetry. The buffer is pre-reserved for `iterations`
  /// samples so the train loop performs no per-step heap allocation.
  bool record_telemetry = false;

  // ---- numeric health / fault tolerance (DESIGN.md §7) --------------------
  /// Finite-check the loss and gradients every iteration *before* the Adam
  /// step, so a NaN can never corrupt the optimizer moments. On a failed
  /// check the solver rolls back to its best-so-far checkpoint, re-anneals
  /// the temperature from there and replays with fresh (decorrelated) Gumbel
  /// noise, up to `max_rollbacks` times; an exhausted budget ends training
  /// with StatusCode::kNumericDivergence and the checkpoint parameters.
  bool health_checks = true;
  int max_rollbacks = 3;  ///< divergence rollback retry budget
  /// Wall-clock budget for train() in seconds; 0 = unlimited. On expiry the
  /// loop stops at the best-so-far checkpoint and reports
  /// StatusCode::kStageTimeout (the pipeline's cooperative stage budget).
  double time_budget_seconds = 0.0;
  /// Optional external cancel flag, polled once per train iteration. When
  /// it reads true the loop stops at the best-so-far checkpoint exactly as
  /// a budget expiry (kStageTimeout). Owned by the caller (the serve
  /// daemon's deadline watchdog sets it from another thread); must outlive
  /// train(). nullptr = no external cancellation.
  const std::atomic<bool>* cancel_flag = nullptr;

  /// Use the fused softmax→demand and overflow+sum tape kernels (single
  /// pool submission per chain). Off = the original one-op-per-primitive
  /// graph; kept for A/B benchmarking and as a reference implementation.
  bool fused_kernels = true;

  /// Reuse one arena-backed tape across train_step calls (Tape::reset keeps
  /// capacity → zero-malloc steady state, watched by the ad.arena_regrowth
  /// counter). Off = a fresh tape per iteration, kept for A/B benchmarking;
  /// results are bitwise identical either way.
  bool reuse_tape = true;
};

/// One-line description for logs/bench labels.
std::string describe(const DgrConfig& config);

}  // namespace dgr::core
