// Discrete extraction (Section 4.5): trees by argmax probability (annealing
// drives these near one-hot); 2-pin paths by top-p sampling — rank candidates
// by probability, keep the smallest prefix whose cumulative probability
// passes top_p, then commit subnets in decreasing-confidence order picking
// the member of the top-p set with the least *true* incremental cost against
// the capacity left by already-committed paths.
//
// The body lives in detail::extract_solution so BatchedDgrSolver extracts
// per-design solutions through the same code path.

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/forward.hpp"
#include "core/solver.hpp"
#include "obs/trace.hpp"

namespace dgr::core {

namespace detail {

eval::RouteSolution extract_solution(const dag::DagForest& forest,
                                     const Relaxation& relax,
                                     const std::vector<float>& capacities,
                                     const DgrConfig& config, float via_cost_scale,
                                     const std::vector<float>& q,
                                     const std::vector<float>& p) {
  DGR_TRACE_SCOPE("core.extract");
  const auto& trees = forest.trees();
  const auto& subnets = forest.subnets();
  const auto& paths = forest.paths();
  const auto& net_offsets = relax.tree_group_offsets;
  const std::size_t num_nets = forest.net_count();

  // 1. Argmax tree per net.
  std::vector<std::int32_t> chosen_tree(num_nets);
  for (std::size_t n = 0; n < num_nets; ++n) {
    const auto lo = static_cast<std::size_t>(net_offsets[n]);
    const auto hi = static_cast<std::size_t>(net_offsets[n + 1]);
    std::size_t best = lo;
    for (std::size_t j = lo + 1; j < hi; ++j) {
      if (q[j] > q[best]) best = j;
    }
    chosen_tree[n] = static_cast<std::int32_t>(best);
  }

  // 2. Gather the chosen trees' subnets, ranked by selection confidence.
  struct PendingSubnet {
    std::int32_t subnet;
    float max_prob;
  };
  std::vector<PendingSubnet> pending;
  for (std::size_t n = 0; n < num_nets; ++n) {
    const dag::TreeCandidate& tc = trees[static_cast<std::size_t>(chosen_tree[n])];
    for (std::int32_t s = tc.subnet_begin; s < tc.subnet_end; ++s) {
      const dag::Subnet& sn = subnets[static_cast<std::size_t>(s)];
      float mx = 0.0f;
      for (std::int32_t i = sn.path_begin; i < sn.path_end; ++i) {
        mx = std::max(mx, p[static_cast<std::size_t>(i)]);
      }
      pending.push_back({s, mx});
    }
  }
  std::stable_sort(pending.begin(), pending.end(),
                   [](const PendingSubnet& a, const PendingSubnet& b) {
                     return a.max_prob > b.max_prob;
                   });

  // 3. Greedy commitment with true residual capacities.
  std::vector<double> demand(capacities.size(), 0.0);
  const auto& inc_edges = forest.inc_edges();
  const auto& inc_weights = forest.inc_weights();

  auto marginal_cost = [&](std::size_t path_idx) -> double {
    const dag::PathCandidate& pc = paths[path_idx];
    double over = 0.0;
    for (std::uint32_t k = pc.inc_begin; k < pc.inc_end; ++k) {
      const auto e = static_cast<std::size_t>(inc_edges[k]);
      const double w = inc_weights[k];
      const double cap = capacities[e];
      over += std::max(0.0, demand[e] + w - cap) - std::max(0.0, demand[e] - cap);
    }
    return static_cast<double>(config.weight_overflow) * over +
           static_cast<double>(config.weight_wirelength) * pc.wirelength +
           static_cast<double>(config.weight_via) * via_cost_scale * pc.turns;
  };

  std::vector<std::int32_t> chosen_path(subnets.size(), -1);
  std::vector<std::size_t> order;  // candidate scratch
  for (const PendingSubnet& ps : pending) {
    const dag::Subnet& sn = subnets[static_cast<std::size_t>(ps.subnet)];
    order.clear();
    for (std::int32_t i = sn.path_begin; i < sn.path_end; ++i) {
      order.push_back(static_cast<std::size_t>(i));
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) { return p[a] > p[b]; });
    // Top-p prefix (always at least the argmax candidate).
    double cum = 0.0;
    std::size_t keep = 0;
    for (; keep < order.size(); ++keep) {
      cum += p[order[keep]];
      if (cum > config.top_p) {
        ++keep;
        break;
      }
    }
    keep = std::max<std::size_t>(1, std::min(keep, order.size()));

    std::size_t best = order[0];
    double best_cost = marginal_cost(best);
    for (std::size_t k = 1; k < keep; ++k) {
      const double c = marginal_cost(order[k]);
      if (c < best_cost - 1e-9) {
        best_cost = c;
        best = order[k];
      }
    }
    chosen_path[static_cast<std::size_t>(ps.subnet)] = static_cast<std::int32_t>(best);
    const dag::PathCandidate& pc = paths[best];
    for (std::uint32_t k = pc.inc_begin; k < pc.inc_end; ++k) {
      demand[static_cast<std::size_t>(inc_edges[k])] += inc_weights[k];
    }
  }

  // 4. Materialise the RouteSolution.
  eval::RouteSolution sol;
  sol.design = &forest.design();
  sol.nets.resize(num_nets);
  for (std::size_t n = 0; n < num_nets; ++n) {
    eval::NetRoute& route = sol.nets[n];
    route.design_net = forest.design_net(n);
    const dag::TreeCandidate& tc = trees[static_cast<std::size_t>(chosen_tree[n])];
    for (std::int32_t s = tc.subnet_begin; s < tc.subnet_end; ++s) {
      const std::int32_t pi = chosen_path[static_cast<std::size_t>(s)];
      route.paths.push_back(forest.path_geometry(static_cast<std::size_t>(pi)));
    }
  }
  return sol;
}

}  // namespace detail

eval::RouteSolution DgrSolver::extract() const {
  const float t_final = temperature_at(config_.iterations - 1);
  return detail::extract_solution(forest_, relax_, capacities_, config_,
                                  via_cost_scale_, tree_probs(t_final),
                                  path_probs(t_final));
}

}  // namespace dgr::core
