#pragma once
/// \file
/// \brief Shared graph-construction and extraction internals of the DGR
/// solver, factored out of DgrSolver so BatchedDgrSolver (core/batch.hpp)
/// records the *same* per-design computation graph and runs the same
/// discrete extraction without duplicating either. Everything here is
/// deterministic given its inputs — the batched/solo bitwise-equivalence
/// tests lean on that.

#include <vector>

#include "core/solver.hpp"

namespace dgr::core::detail {

/// The annealing schedule (Section 5): initial temperature decayed every
/// `temperature_interval` iterations. Pure function of (config, iteration) —
/// shared by the solo and batched solvers.
float temperature_schedule(const DgrConfig& config, int iteration);

/// Handles into one design's forward graph on a tape.
struct ForwardGraph {
  ad::NodeId cost;
  ad::NodeId path_logits;
  ad::NodeId tree_logits;
  CostBreakdown breakdown;
};

/// Records the Fig. 4 computation graph for one design onto `tape`.
/// `params` points at this design's [path logits | tree logits] slab
/// (path_count + tree_count floats). Multiple designs may be recorded onto
/// one tape back-to-back; their subgraphs are disjoint, which is what makes
/// Tape::backward_multi equivalent to per-design backward calls.
ForwardGraph build_forward_graph(ad::Tape& tape, const Relaxation& relax,
                                 const std::vector<float>& capacities,
                                 const float* params, const DgrConfig& config,
                                 float via_cost_scale, float temperature,
                                 const std::vector<float>* path_noise,
                                 const std::vector<float>* tree_noise);

/// Discrete extraction (Section 4.5) from already-computed tree probabilities
/// `q` and path probabilities `p` at the final temperature.
eval::RouteSolution extract_solution(const dag::DagForest& forest,
                                     const Relaxation& relax,
                                     const std::vector<float>& capacities,
                                     const DgrConfig& config, float via_cost_scale,
                                     const std::vector<float>& q,
                                     const std::vector<float>& p);

}  // namespace dgr::core::detail
