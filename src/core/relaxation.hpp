#pragma once
// Continuous relaxation plumbing (Section 4.3): flattens the DAG forest's
// grouping and incidence into the arrays the ad:: kernels consume. Built
// once per forest; owned by the solver so the Tape's by-reference captures
// stay valid.

#include <cstdint>
#include <vector>

#include "ad/ops.hpp"
#include "dag/forest.hpp"

namespace dgr::core {

struct Relaxation {
  const dag::DagForest* forest = nullptr;

  /// Paths grouped by subnet: softmax groups for p (Eq. 7). Size |S|+1.
  std::vector<std::int32_t> path_group_offsets;
  /// Trees grouped by net: softmax groups for q (Eq. 8). Size |N|+1.
  std::vector<std::int32_t> tree_group_offsets;
  /// Owning tree-candidate index per path (the gather of q_tree(i)). Size |P|.
  std::vector<std::int32_t> path_tree;
  /// Contiguous path range per tree candidate (paths are tree-major in the
  /// forest pools). Size |T|+1. Lets the fused backward scatter into q be a
  /// deterministic parallel loop over trees.
  std::vector<std::int32_t> tree_path_offsets;
  /// Transposed-incidence row offsets per path. Size |P|+1.
  std::vector<std::uint32_t> path_inc_offsets;

  /// WL_i per path (Eq. 4) and TP_i per path (Eq. 5). Size |P|.
  std::vector<float> wirelength;
  std::vector<float> turns;

  /// Wired to the forest's CSR pair; rows = g-cell edges.
  ad::SparseIncidence incidence;

  // incidence.bwd_offsets points at this struct's own path_inc_offsets, so
  // relocation must re-bind it: the move operations do, and copying is
  // disabled (every owner holds exactly one Relaxation per forest anyway).
  Relaxation() = default;
  Relaxation(Relaxation&& other) noexcept { *this = std::move(other); }
  Relaxation& operator=(Relaxation&& other) noexcept {
    forest = other.forest;
    path_group_offsets = std::move(other.path_group_offsets);
    tree_group_offsets = std::move(other.tree_group_offsets);
    path_tree = std::move(other.path_tree);
    tree_path_offsets = std::move(other.tree_path_offsets);
    path_inc_offsets = std::move(other.path_inc_offsets);
    wirelength = std::move(other.wirelength);
    turns = std::move(other.turns);
    incidence = other.incidence;
    incidence.bwd_offsets = &path_inc_offsets;
    return *this;
  }
  Relaxation(const Relaxation&) = delete;
  Relaxation& operator=(const Relaxation&) = delete;

  std::size_t path_count() const { return path_tree.size(); }
  std::size_t tree_count() const { return forest->trees().size(); }
  std::size_t subnet_count() const { return path_group_offsets.size() - 1; }

  static Relaxation build(const dag::DagForest& forest);

  std::size_t memory_bytes() const;
};

}  // namespace dgr::core
