#include "core/batch.hpp"

#include <cmath>
#include <stdexcept>

#include "core/forward.hpp"
#include "obs/trace.hpp"

namespace dgr::core {

BatchedDgrSolver::BatchedDgrSolver(DgrConfig config)
    : config_(config), adam_(0, ad::AdamConfig{config.learning_rate, 0.9, 0.999, 1e-8}) {}

std::size_t BatchedDgrSolver::add_design(const dag::DagForest& forest,
                                         std::vector<float> capacities,
                                         std::uint64_t seed) {
  if (started_) {
    throw std::logic_error("BatchedDgrSolver: add_design after training started");
  }
  if (capacities.size() !=
      static_cast<std::size_t>(forest.design().grid().edge_count())) {
    throw std::invalid_argument("BatchedDgrSolver: capacity vector size mismatch");
  }
  Entry e;
  e.forest = &forest;
  e.relax = Relaxation::build(forest);
  e.capacities = std::move(capacities);
  e.param_off = params_.size();
  e.via_cost_scale =
      std::sqrt(static_cast<float>(forest.design().grid().layer_count()));
  e.rng = util::Rng(seed);

  // Identical logit init to DgrSolver's constructor with this seed.
  const std::size_t count = e.relax.path_count() + e.relax.tree_count();
  params_.resize(e.param_off + count);
  util::Rng init = e.rng.fork(0xC0FFEE);
  for (std::size_t i = 0; i < count; ++i) {
    params_[e.param_off + i] =
        static_cast<float>(init.normal()) * config_.init_logit_std;
  }

  designs_.push_back(std::move(e));
  return designs_.size() - 1;
}

float BatchedDgrSolver::temperature_at(int iteration) const {
  return detail::temperature_schedule(config_, iteration);
}

void BatchedDgrSolver::train_step(int iteration) {
  DGR_TRACE_SCOPE("core.batch.train_step");
  if (designs_.empty()) throw std::logic_error("BatchedDgrSolver: empty batch");
  if (!started_) {
    adam_ = ad::Adam(params_.size(),
                     ad::AdamConfig{config_.learning_rate, 0.9, 0.999, 1e-8});
    grads_.resize(params_.size());
    started_ = true;
  }
  const float t = temperature_at(iteration);

  tape_.reset();
  roots_.clear();
  // Record all designs back-to-back; remember each design's logit nodes via
  // the roots of its graph. ForwardGraph handles are only needed transiently
  // per design, except the logit ids used for the grad copy below.
  struct Handles {
    ad::NodeId cost, path_logits, tree_logits;
  };
  static thread_local std::vector<Handles> handles;
  handles.clear();
  for (Entry& e : designs_) {
    const std::vector<float>* pn = nullptr;
    const std::vector<float>* tn = nullptr;
    if (config_.use_gumbel) {
      // Same stream as DgrSolver::train_step generation 0 with this seed.
      util::Rng noise_rng =
          e.rng.fork(0x6E015E ^ static_cast<std::uint64_t>(iteration));
      e.path_noise.resize(e.relax.path_count());
      e.tree_noise.resize(e.relax.tree_count());
      for (float& g : e.path_noise) g = static_cast<float>(noise_rng.gumbel());
      for (float& g : e.tree_noise) g = static_cast<float>(noise_rng.gumbel());
      pn = &e.path_noise;
      tn = &e.tree_noise;
    }
    const detail::ForwardGraph fw = detail::build_forward_graph(
        tape_, e.relax, e.capacities, params_.data() + e.param_off, config_,
        e.via_cost_scale, t, pn, tn);
    e.last_breakdown = fw.breakdown;
    handles.push_back({fw.cost, fw.path_logits, fw.tree_logits});
    roots_.push_back(fw.cost);
  }

  // One reverse replay for the whole batch.
  tape_.backward_multi(roots_);

  for (std::size_t d = 0; d < designs_.size(); ++d) {
    const Entry& e = designs_[d];
    const std::span<const double> gp = tape_.grad(handles[d].path_logits);
    const std::span<const double> gt = tape_.grad(handles[d].tree_logits);
    std::copy(gp.begin(), gp.end(),
              grads_.begin() + static_cast<std::ptrdiff_t>(e.param_off));
    std::copy(gt.begin(), gt.end(),
              grads_.begin() + static_cast<std::ptrdiff_t>(e.param_off + gp.size()));
  }

  // Shared elementwise Adam step over the concatenated arena — identical to
  // per-design steps because the moments never mix coordinates.
  adam_.step(params_, grads_);
}

void BatchedDgrSolver::train() {
  DGR_TRACE_SCOPE("core.batch.train");
  for (int it = 0; it < config_.iterations; ++it) train_step(it);
}

std::span<const float> BatchedDgrSolver::params(std::size_t design) const {
  const Entry& e = designs_.at(design);
  return {params_.data() + e.param_off, e.relax.path_count() + e.relax.tree_count()};
}

std::span<float> BatchedDgrSolver::logits(std::size_t design) {
  const Entry& e = designs_.at(design);
  return {params_.data() + e.param_off, e.relax.path_count() + e.relax.tree_count()};
}

std::span<const double> BatchedDgrSolver::last_grads(std::size_t design) const {
  const Entry& e = designs_.at(design);
  return {grads_.data() + e.param_off, e.relax.path_count() + e.relax.tree_count()};
}

const CostBreakdown& BatchedDgrSolver::last_breakdown(std::size_t design) const {
  return designs_.at(design).last_breakdown;
}

CostBreakdown BatchedDgrSolver::evaluate(std::size_t design, float temperature) const {
  const Entry& e = designs_.at(design);
  ad::Tape tape;
  return detail::build_forward_graph(tape, e.relax, e.capacities,
                                     params_.data() + e.param_off, config_,
                                     e.via_cost_scale, temperature, nullptr, nullptr)
      .breakdown;
}

std::vector<float> BatchedDgrSolver::path_probs(std::size_t design,
                                                float temperature) const {
  const Entry& e = designs_.at(design);
  ad::Tape tape;
  const ad::NodeId logits = tape.input(params_.data() + e.param_off, e.relax.path_count());
  const ad::NodeId p = ad::segment_softmax(tape, logits, e.relax.path_group_offsets,
                                           temperature, nullptr);
  const std::span<const float> pv = tape.value(p);
  return {pv.begin(), pv.end()};
}

std::vector<float> BatchedDgrSolver::tree_probs(std::size_t design,
                                                float temperature) const {
  const Entry& e = designs_.at(design);
  ad::Tape tape;
  const ad::NodeId logits = tape.input(
      params_.data() + e.param_off + e.relax.path_count(), e.relax.tree_count());
  const ad::NodeId q = ad::segment_softmax(tape, logits, e.relax.tree_group_offsets,
                                           temperature, nullptr);
  const std::span<const float> qv = tape.value(q);
  return {qv.begin(), qv.end()};
}

eval::RouteSolution BatchedDgrSolver::extract(std::size_t design) const {
  const Entry& e = designs_.at(design);
  const float t_final = temperature_at(config_.iterations - 1);
  return detail::extract_solution(*e.forest, e.relax, e.capacities, config_,
                                  e.via_cost_scale, tree_probs(design, t_final),
                                  path_probs(design, t_final));
}

}  // namespace dgr::core
