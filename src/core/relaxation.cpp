#include "core/relaxation.hpp"

#include <cassert>

namespace dgr::core {

Relaxation Relaxation::build(const dag::DagForest& forest) {
  Relaxation r;
  r.forest = &forest;

  const auto& subnets = forest.subnets();
  const auto& paths = forest.paths();

  r.path_group_offsets.reserve(subnets.size() + 1);
  r.path_group_offsets.push_back(0);
  for (const dag::Subnet& s : subnets) {
    // Pools are built in order, so path slices are contiguous.
    assert(s.path_begin == r.path_group_offsets.back());
    r.path_group_offsets.push_back(s.path_end);
  }
  assert(static_cast<std::size_t>(r.path_group_offsets.back()) == paths.size());

  r.tree_group_offsets = forest.net_tree_offsets();

  // Paths are generated tree-by-tree, so per-tree path ranges are contiguous
  // (counting sort over an already-sorted key).
  r.tree_path_offsets.assign(forest.trees().size() + 1, 0);
  for (const dag::PathCandidate& p : paths) {
    ++r.tree_path_offsets[static_cast<std::size_t>(p.tree) + 1];
  }
  for (std::size_t t = 1; t < r.tree_path_offsets.size(); ++t) {
    r.tree_path_offsets[t] += r.tree_path_offsets[t - 1];
  }
#ifndef NDEBUG
  for (std::size_t i = 1; i < paths.size(); ++i) {
    assert(paths[i - 1].tree <= paths[i].tree && "paths must be tree-major");
  }
#endif

  r.path_tree.reserve(paths.size());
  r.path_inc_offsets.reserve(paths.size() + 1);
  r.wirelength.reserve(paths.size());
  r.turns.reserve(paths.size());
  for (const dag::PathCandidate& p : paths) {
    r.path_tree.push_back(p.tree);
    r.path_inc_offsets.push_back(p.inc_begin);
    r.wirelength.push_back(p.wirelength);
    r.turns.push_back(static_cast<float>(p.turns));
  }
  r.path_inc_offsets.push_back(static_cast<std::uint32_t>(forest.inc_edges().size()));

  r.incidence.fwd_offsets = &forest.edge_inc_offsets();
  r.incidence.fwd_cols = &forest.edge_inc_paths();
  r.incidence.fwd_weights = &forest.edge_inc_weights();
  r.incidence.bwd_offsets = &r.path_inc_offsets;
  r.incidence.bwd_cols = &forest.inc_edges();
  r.incidence.bwd_weights = &forest.inc_weights();
  return r;
}

std::size_t Relaxation::memory_bytes() const {
  return path_group_offsets.capacity() * sizeof(std::int32_t) +
         tree_group_offsets.capacity() * sizeof(std::int32_t) +
         path_tree.capacity() * sizeof(std::int32_t) +
         tree_path_offsets.capacity() * sizeof(std::int32_t) +
         path_inc_offsets.capacity() * sizeof(std::uint32_t) +
         wirelength.capacity() * sizeof(float) + turns.capacity() * sizeof(float);
}

}  // namespace dgr::core
