#pragma once
/// \file
/// \brief Batched-tape execution: N independent designs trained through ONE
/// arena-backed tape (server-mode throughput, ROADMAP item 3).
///
/// Each train_step records every design's forward graph back-to-back into
/// the shared tape, seeds all N cost roots at once (Tape::backward_multi —
/// the subgraphs are disjoint, so one reverse replay produces exactly the
/// gradients N separate backward calls would), and takes a single Adam step
/// over the concatenated parameter arena. Because Adam is elementwise and
/// every per-design ingredient (logit init, Gumbel noise stream,
/// temperature schedule, kernel chunking) is identical to a solo DgrSolver
/// with the same config and that design's seed, a batched solve is
/// BITWISE-IDENTICAL to the corresponding solo solves — locked by
/// core_test's batched-vs-solo matrix. What batching buys is amortization:
/// one tape reset, one grad-arena zero, one optimizer dispatch per step.
///
/// Scope: the batched path is the throughput engine for the future serve
/// daemon. It deliberately omits DgrSolver's divergence rollback / budget
/// machinery — per-request health handling stays with the solo solver.

#include <span>
#include <vector>

#include "core/solver.hpp"

namespace dgr::core {

class BatchedDgrSolver {
 public:
  explicit BatchedDgrSolver(DgrConfig config = {});

  /// Registers a design. `seed` plays the role of DgrConfig::seed for this
  /// design's logit init and noise stream (pass config().seed to mirror a
  /// solo solver exactly). Returns the design's batch index. Add every
  /// design before the first train_step.
  std::size_t add_design(const dag::DagForest& forest, std::vector<float> capacities,
                         std::uint64_t seed);

  std::size_t design_count() const { return designs_.size(); }

  /// One shared gradient step across the whole batch.
  void train_step(int iteration);

  /// config().iterations steps (no rollback machinery — see file comment).
  void train();

  float temperature_at(int iteration) const;

  /// Per-design views/results. `last_grads` is valid after a train_step and
  /// until the next one.
  std::span<const float> params(std::size_t design) const;
  std::span<const double> last_grads(std::size_t design) const;
  const CostBreakdown& last_breakdown(std::size_t design) const;
  CostBreakdown evaluate(std::size_t design, float temperature) const;
  std::vector<float> path_probs(std::size_t design, float temperature) const;
  std::vector<float> tree_probs(std::size_t design, float temperature) const;
  eval::RouteSolution extract(std::size_t design) const;

  /// Direct logit access (warm starts / tests), [path | tree] per design.
  std::span<float> logits(std::size_t design);

  const DgrConfig& config() const { return config_; }
  /// High-water footprint of the shared tape (all designs together).
  std::size_t tape_memory_bytes() const { return tape_.memory_bytes(); }

 private:
  struct Entry {
    const dag::DagForest* forest = nullptr;
    Relaxation relax;
    std::vector<float> capacities;
    std::size_t param_off = 0;
    float via_cost_scale = 1.0f;
    util::Rng rng;
    /// Noise buffers per design (records borrow them only during forward).
    std::vector<float> path_noise;
    std::vector<float> tree_noise;
    CostBreakdown last_breakdown;
  };

  DgrConfig config_;
  std::vector<Entry> designs_;
  std::vector<float> params_;   ///< concatenated [path | tree] logit slabs
  std::vector<double> grads_;   ///< concatenated gradients (last step)
  ad::Adam adam_;               ///< rebuilt when the batch grows
  ad::Tape tape_;               ///< the shared, reused tape
  std::vector<ad::NodeId> roots_;
  bool started_ = false;
};

}  // namespace dgr::core
