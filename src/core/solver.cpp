#include "core/solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/forward.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace dgr::core {

DgrSolver::DgrSolver(const dag::DagForest& forest, std::vector<float> capacities,
                     DgrConfig config)
    : forest_(forest),
      relax_(Relaxation::build(forest)),
      capacities_(std::move(capacities)),
      config_(config),
      params_(relax_.path_count() + relax_.tree_count(), 0.0f),
      adam_(params_.size(), ad::AdamConfig{config.learning_rate, 0.9, 0.999, 1e-8}),
      rng_(config.seed) {
  if (capacities_.size() != static_cast<std::size_t>(forest.design().grid().edge_count())) {
    throw std::invalid_argument("DgrSolver: capacity vector size mismatch");
  }
  via_cost_scale_ =
      std::sqrt(static_cast<float>(forest.design().grid().layer_count()));
  // Random logit initialisation ("w is initialized randomly", Section 5).
  util::Rng init = rng_.fork(0xC0FFEE);
  for (float& w : params_) {
    w = static_cast<float>(init.normal()) * config_.init_logit_std;
  }
}

float DgrSolver::temperature_at(int iteration) const {
  return detail::temperature_schedule(config_, iteration);
}

DgrSolver::Forward DgrSolver::build_forward(ad::Tape& tape, float temperature,
                                            const std::vector<float>* path_noise,
                                            const std::vector<float>* tree_noise) const {
  const detail::ForwardGraph fw =
      detail::build_forward_graph(tape, relax_, capacities_, params_.data(), config_,
                                  via_cost_scale_, temperature, path_noise, tree_noise);
  return Forward{fw.cost, fw.path_logits, fw.tree_logits, fw.breakdown};
}

double DgrSolver::train_step(int iteration) {
  DGR_TRACE_SCOPE("core.train_step");
  const float t = temperature_at(iteration);
  const std::size_t np = relax_.path_count();
  const std::size_t nt = relax_.tree_count();

  if (config_.use_gumbel) {
    // Generation 0 reproduces the historical noise stream exactly; each
    // rollback bumps the generation so replayed iterations decorrelate.
    util::Rng noise_rng = rng_.fork(0x6E015E ^ static_cast<std::uint64_t>(iteration) ^
                                    (static_cast<std::uint64_t>(noise_generation_) << 40));
    path_noise_.resize(np);
    tree_noise_.resize(nt);
    for (float& g : path_noise_) g = static_cast<float>(noise_rng.gumbel());
    for (float& g : tree_noise_) g = static_cast<float>(noise_rng.gumbel());
  }

  // Steady-state iterations re-record the same graph shape into the reused
  // member tape, so after the first step neither the tape nor the noise /
  // gradient buffers allocate (the ad.arena_regrowth counter proves it).
  // reuse_tape=false reverts to a fresh tape per step for A/B measurement.
  ad::Tape fresh;
  ad::Tape& tape = config_.reuse_tape ? tape_ : fresh;
  if (config_.reuse_tape) tape_.reset();
  const Forward fw = build_forward(tape, t, config_.use_gumbel ? &path_noise_ : nullptr,
                                   config_.use_gumbel ? &tree_noise_ : nullptr);
  tape.backward(fw.cost);
  peak_tape_bytes_ = std::max(peak_tape_bytes_, tape.memory_bytes());

  // Concatenate gradients and take one Adam step over all logits.
  std::vector<double>& grads = grads_;
  grads.resize(params_.size());
  {
    const std::span<const double> gp = tape.grad(fw.path_logits);
    const std::span<const double> gt = tape.grad(fw.tree_logits);
    std::copy(gp.begin(), gp.end(), grads.begin());
    std::copy(gt.begin(), gt.end(), grads.begin() + static_cast<std::ptrdiff_t>(np));
  }

  double cost = fw.breakdown.total;
  if (DGR_FAULT_POINT("core.loss")) cost = std::numeric_limits<double>::quiet_NaN();
  if (DGR_FAULT_POINT("core.grad") && !grads.empty()) {
    grads[0] = std::numeric_limits<double>::quiet_NaN();
  }

  // Numeric-health sentinel: a single fused accumulation over the gradient
  // vector — any NaN/Inf poisons the running sum, so one isfinite() at the
  // end covers every element (a finite sum of this many bounded gradients
  // cannot overflow). Checked BEFORE the Adam step so a poisoned gradient
  // never reaches the optimizer moments. The squared sum rides along in the
  // same sweep for the convergence telemetry's gradient norm.
  double grad_acc = 0.0;
  double grad_sq = 0.0;
  for (const double g : grads) {
    grad_acc += g;
    grad_sq += g * g;
  }
  last_grad_norm_ = std::sqrt(grad_sq);
  last_breakdown_ = fw.breakdown;
  last_step_finite_ = std::isfinite(cost) && std::isfinite(grad_acc);
  if (config_.health_checks && !last_step_finite_) {
    return cost;  // skip the update; train() decides whether to roll back
  }

  adam_.step(params_, grads);
  return cost;
}

TrainStats DgrSolver::train() {
  DGR_TRACE_SCOPE("core.train");
  TrainStats stats;
  util::Timer timer;
  if (config_.record_history) stats.cost_history.reserve(static_cast<std::size_t>(config_.iterations));
  // Telemetry capacity is reserved once, up front: the train loop must do
  // no per-step heap allocation (pushes past this capacity are counted by
  // the obs.convergence.unreserved_growth metric and asserted zero in tests).
  if (config_.record_telemetry) {
    stats.telemetry.reserve(static_cast<std::size_t>(config_.iterations));
  }

  // The seeded initialisation is always a legal restore point; after that
  // the checkpoint tracks the best (lowest training cost) iterate seen.
  Checkpoint best;
  best.params = params_;
  best.next_iteration = 0;
  best.cost = std::numeric_limits<double>::infinity();

  bool restore_checkpoint = false;
  int it = 0;
  int steps_executed = 0;
  while (it < config_.iterations) {
    if (config_.time_budget_seconds > 0.0 &&
        timer.seconds() >= config_.time_budget_seconds) {
      stats.status = Status(StatusCode::kStageTimeout,
                            "train: wall-clock budget exhausted at iteration " +
                                std::to_string(it) + "/" + std::to_string(config_.iterations));
      restore_checkpoint = best.cost < std::numeric_limits<double>::infinity();
      break;
    }
    if (config_.cancel_flag != nullptr &&
        config_.cancel_flag->load(std::memory_order_relaxed)) {
      stats.status = Status(StatusCode::kStageTimeout,
                            "train: cancelled by deadline watchdog at iteration " +
                                std::to_string(it) + "/" + std::to_string(config_.iterations));
      restore_checkpoint = best.cost < std::numeric_limits<double>::infinity();
      break;
    }

    const double cost = train_step(it);
    ++steps_executed;

    if (config_.health_checks && !last_step_finite_) {
      // Divergence: the sentinel already kept the Adam state clean; roll the
      // parameters back to the checkpoint, clear the (possibly stale)
      // moments, and replay from there with fresh noise. Resuming at the
      // checkpoint's iteration re-anneals the temperature automatically.
      if (stats.rollbacks >= config_.max_rollbacks) {
        stats.status = Status(StatusCode::kNumericDivergence,
                              "train: non-finite loss/gradients at iteration " +
                                  std::to_string(it) + ", rollback budget (" +
                                  std::to_string(config_.max_rollbacks) + ") exhausted");
        restore_checkpoint = true;
        break;
      }
      ++stats.rollbacks;
      DGR_LOG_WARN("train: non-finite loss/gradients at iteration %d; rollback %d/%d to "
                   "iteration %d",
                   it, stats.rollbacks, config_.max_rollbacks, best.next_iteration);
      DGR_TRACE_INSTANT("core.rollback");
      params_ = best.params;
      adam_.reset();
      ++noise_generation_;
      if (config_.record_history) {
        stats.cost_history.resize(static_cast<std::size_t>(best.next_iteration));
      }
      if (config_.record_telemetry) {
        // Rewind the kept trajectory; the rollback event itself survives.
        stats.telemetry.truncate(static_cast<std::size_t>(best.next_iteration));
        stats.telemetry.rollbacks.push_back({it, best.next_iteration});
      }
      it = best.next_iteration;
      continue;
    }

    if (config_.record_history) stats.cost_history.push_back(cost);
    if (config_.record_telemetry) {
      stats.telemetry.push(
          {it, cost, last_breakdown_.overflow, temperature_at(it), last_grad_norm_});
    }
    // Per-iteration counter series for the Chrome trace (one relaxed load
    // each when tracing is off).
    DGR_TRACE_COUNTER("dgr.loss", cost);
    DGR_TRACE_COUNTER("dgr.overflow", last_breakdown_.overflow);
    DGR_TRACE_COUNTER("dgr.temperature", temperature_at(it));
    DGR_TRACE_COUNTER("dgr.grad_norm", last_grad_norm_);
    if (cost < best.cost) {
      best.cost = cost;
      best.params = params_;
      best.next_iteration = it + 1;
    }
    if ((it + 1) % 100 == 0) {
      DGR_LOG_DEBUG("iter %d/%d cost=%.4f t=%.3f", it + 1, config_.iterations, cost,
                    temperature_at(it));
    }
    ++it;
  }

  // On any early stop, leave the best healthy checkpoint behind so
  // extract() still produces the last healthy solution.
  if (restore_checkpoint) params_ = best.params;

  stats.iterations_run = steps_executed;
  stats.train_seconds = timer.seconds();
  obs::metrics().counter("core.train.iterations").add(steps_executed);
  if (stats.rollbacks > 0) {
    obs::metrics().counter("core.train.rollbacks").add(stats.rollbacks);
  }
  stats.final_cost = evaluate(temperature_at(std::clamp(it, 0, std::max(0, config_.iterations - 1))));
  stats.tape_bytes = peak_tape_bytes_;
  return stats;
}

CostBreakdown DgrSolver::evaluate(float temperature) const {
  ad::Tape tape;
  return build_forward(tape, temperature, nullptr, nullptr).breakdown;
}

std::vector<float> DgrSolver::path_probs(float temperature) const {
  ad::Tape tape;
  const ad::NodeId logits = tape.input(params_.data(), relax_.path_count());
  const ad::NodeId p =
      ad::segment_softmax(tape, logits, relax_.path_group_offsets, temperature, nullptr);
  const std::span<const float> pv = tape.value(p);
  return {pv.begin(), pv.end()};
}

std::vector<float> DgrSolver::tree_probs(float temperature) const {
  ad::Tape tape;
  const ad::NodeId logits =
      tape.input(params_.data() + relax_.path_count(), relax_.tree_count());
  const ad::NodeId q =
      ad::segment_softmax(tape, logits, relax_.tree_group_offsets, temperature, nullptr);
  const std::span<const float> qv = tape.value(q);
  return {qv.begin(), qv.end()};
}

}  // namespace dgr::core
