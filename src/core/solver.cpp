#include "core/solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace dgr::core {

DgrSolver::DgrSolver(const dag::DagForest& forest, std::vector<float> capacities,
                     DgrConfig config)
    : forest_(forest),
      relax_(Relaxation::build(forest)),
      capacities_(std::move(capacities)),
      config_(config),
      params_(relax_.path_count() + relax_.tree_count(), 0.0f),
      adam_(params_.size(), ad::AdamConfig{config.learning_rate, 0.9, 0.999, 1e-8}),
      rng_(config.seed) {
  if (capacities_.size() != static_cast<std::size_t>(forest.design().grid().edge_count())) {
    throw std::invalid_argument("DgrSolver: capacity vector size mismatch");
  }
  via_cost_scale_ =
      std::sqrt(static_cast<float>(forest.design().grid().layer_count()));
  // Random logit initialisation ("w is initialized randomly", Section 5).
  util::Rng init = rng_.fork(0xC0FFEE);
  for (float& w : params_) {
    w = static_cast<float>(init.normal()) * config_.init_logit_std;
  }
}

float DgrSolver::temperature_at(int iteration) const {
  const int decays = config_.temperature_interval > 0
                         ? iteration / config_.temperature_interval
                         : 0;
  return config_.initial_temperature *
         std::pow(config_.temperature_decay, static_cast<float>(decays));
}

DgrSolver::Forward DgrSolver::build_forward(ad::Tape& tape, float temperature,
                                            const std::vector<float>* path_noise,
                                            const std::vector<float>* tree_noise) const {
  const std::size_t np = relax_.path_count();
  const std::size_t nt = relax_.tree_count();

  Forward fw;
  fw.path_logits = tape.input(params_.data(), np);
  fw.tree_logits = tape.input(params_.data() + np, nt);

  ad::NodeId eff, overflow;
  if (config_.fused_kernels) {
    // Fused hot path: softmax→coupling→demand as one multi-stage job, and
    // the Eq. 9 overflow term as a single activation+reduction pass.
    const ad::FusedSelectionDemand sel = ad::fused_softmax_demand(
        tape, fw.path_logits, fw.tree_logits, relax_.path_group_offsets,
        relax_.tree_group_offsets, relax_.path_tree, relax_.tree_path_offsets,
        relax_.incidence, temperature, path_noise, tree_noise);
    eff = sel.eff;
    overflow = ad::fused_overflow_cost(tape, sel.demand, capacities_,
                                       config_.activation, config_.activation_alpha);
  } else {
    // Reference graph, one op per primitive.
    // p = gumbel_softmax(w_path) over subnet groups; q over net groups.
    const ad::NodeId p = ad::segment_softmax(tape, fw.path_logits,
                                             relax_.path_group_offsets, temperature,
                                             path_noise);
    const ad::NodeId q = ad::segment_softmax(tape, fw.tree_logits,
                                             relax_.tree_group_offsets, temperature,
                                             tree_noise);

    // eff_i = q_tree(i) * p_i — joint selection mass of path i.
    eff = ad::gather_mul(tape, q, relax_.path_tree, p);

    // Expected demand (Eq. 10): weighted scatter of eff over crossed edges
    // (weights already include the beta/2 via charges).
    const ad::NodeId demand = ad::spmv(tape, eff, relax_.incidence);

    // overflow_cost = Σ_e f(d_e - cap_e) (Eq. 9).
    const ad::NodeId slack = ad::sub_const(tape, demand, capacities_);
    const ad::NodeId overflow_vec =
        ad::apply_activation(tape, slack, config_.activation, config_.activation_alpha);
    overflow = ad::weighted_sum(tape, overflow_vec);
  }

  // wirelength_cost = Σ eff_i WL_i (Eq. 11); via_cost = √L Σ eff_i TP_i (Eq. 12).
  const ad::NodeId wl = ad::weighted_sum(tape, eff, relax_.wirelength);
  const ad::NodeId via = ad::weighted_sum(tape, eff, relax_.turns);

  fw.cost = ad::combine(tape, {overflow, via, wl},
                        {config_.weight_overflow, config_.weight_via * via_cost_scale_,
                         config_.weight_wirelength});

  fw.breakdown.overflow = tape.value(overflow)[0];
  fw.breakdown.wirelength = tape.value(wl)[0];
  fw.breakdown.via = static_cast<double>(via_cost_scale_) * tape.value(via)[0];
  fw.breakdown.total = tape.value(fw.cost)[0];
  return fw;
}

double DgrSolver::train_step(int iteration) {
  DGR_TRACE_SCOPE("core.train_step");
  const float t = temperature_at(iteration);
  const std::size_t np = relax_.path_count();
  const std::size_t nt = relax_.tree_count();

  std::vector<float> path_noise, tree_noise;
  if (config_.use_gumbel) {
    // Generation 0 reproduces the historical noise stream exactly; each
    // rollback bumps the generation so replayed iterations decorrelate.
    util::Rng noise_rng = rng_.fork(0x6E015E ^ static_cast<std::uint64_t>(iteration) ^
                                    (static_cast<std::uint64_t>(noise_generation_) << 40));
    path_noise.resize(np);
    tree_noise.resize(nt);
    for (float& g : path_noise) g = static_cast<float>(noise_rng.gumbel());
    for (float& g : tree_noise) g = static_cast<float>(noise_rng.gumbel());
  }

  ad::Tape tape;
  const Forward fw = build_forward(tape, t, config_.use_gumbel ? &path_noise : nullptr,
                                   config_.use_gumbel ? &tree_noise : nullptr);
  tape.backward(fw.cost);
  peak_tape_bytes_ = std::max(peak_tape_bytes_, tape.memory_bytes());

  // Concatenate gradients and take one Adam step over all logits.
  std::vector<double> grads(params_.size());
  {
    const auto& gp = tape.grad(fw.path_logits);
    const auto& gt = tape.grad(fw.tree_logits);
    std::copy(gp.begin(), gp.end(), grads.begin());
    std::copy(gt.begin(), gt.end(), grads.begin() + static_cast<std::ptrdiff_t>(np));
  }

  double cost = fw.breakdown.total;
  if (DGR_FAULT_POINT("core.loss")) cost = std::numeric_limits<double>::quiet_NaN();
  if (DGR_FAULT_POINT("core.grad") && !grads.empty()) {
    grads[0] = std::numeric_limits<double>::quiet_NaN();
  }

  // Numeric-health sentinel: a single fused accumulation over the gradient
  // vector — any NaN/Inf poisons the running sum, so one isfinite() at the
  // end covers every element (a finite sum of this many bounded gradients
  // cannot overflow). Checked BEFORE the Adam step so a poisoned gradient
  // never reaches the optimizer moments. The squared sum rides along in the
  // same sweep for the convergence telemetry's gradient norm.
  double grad_acc = 0.0;
  double grad_sq = 0.0;
  for (const double g : grads) {
    grad_acc += g;
    grad_sq += g * g;
  }
  last_grad_norm_ = std::sqrt(grad_sq);
  last_breakdown_ = fw.breakdown;
  last_step_finite_ = std::isfinite(cost) && std::isfinite(grad_acc);
  if (config_.health_checks && !last_step_finite_) {
    return cost;  // skip the update; train() decides whether to roll back
  }

  adam_.step(params_, grads);
  return cost;
}

TrainStats DgrSolver::train() {
  DGR_TRACE_SCOPE("core.train");
  TrainStats stats;
  util::Timer timer;
  if (config_.record_history) stats.cost_history.reserve(static_cast<std::size_t>(config_.iterations));
  // Telemetry capacity is reserved once, up front: the train loop must do
  // no per-step heap allocation (pushes past this capacity are counted by
  // the obs.convergence.unreserved_growth metric and asserted zero in tests).
  if (config_.record_telemetry) {
    stats.telemetry.reserve(static_cast<std::size_t>(config_.iterations));
  }

  // The seeded initialisation is always a legal restore point; after that
  // the checkpoint tracks the best (lowest training cost) iterate seen.
  Checkpoint best;
  best.params = params_;
  best.next_iteration = 0;
  best.cost = std::numeric_limits<double>::infinity();

  bool restore_checkpoint = false;
  int it = 0;
  int steps_executed = 0;
  while (it < config_.iterations) {
    if (config_.time_budget_seconds > 0.0 &&
        timer.seconds() >= config_.time_budget_seconds) {
      stats.status = Status(StatusCode::kStageTimeout,
                            "train: wall-clock budget exhausted at iteration " +
                                std::to_string(it) + "/" + std::to_string(config_.iterations));
      restore_checkpoint = best.cost < std::numeric_limits<double>::infinity();
      break;
    }

    const double cost = train_step(it);
    ++steps_executed;

    if (config_.health_checks && !last_step_finite_) {
      // Divergence: the sentinel already kept the Adam state clean; roll the
      // parameters back to the checkpoint, clear the (possibly stale)
      // moments, and replay from there with fresh noise. Resuming at the
      // checkpoint's iteration re-anneals the temperature automatically.
      if (stats.rollbacks >= config_.max_rollbacks) {
        stats.status = Status(StatusCode::kNumericDivergence,
                              "train: non-finite loss/gradients at iteration " +
                                  std::to_string(it) + ", rollback budget (" +
                                  std::to_string(config_.max_rollbacks) + ") exhausted");
        restore_checkpoint = true;
        break;
      }
      ++stats.rollbacks;
      DGR_LOG_WARN("train: non-finite loss/gradients at iteration %d; rollback %d/%d to "
                   "iteration %d",
                   it, stats.rollbacks, config_.max_rollbacks, best.next_iteration);
      DGR_TRACE_INSTANT("core.rollback");
      params_ = best.params;
      adam_.reset();
      ++noise_generation_;
      if (config_.record_history) {
        stats.cost_history.resize(static_cast<std::size_t>(best.next_iteration));
      }
      if (config_.record_telemetry) {
        // Rewind the kept trajectory; the rollback event itself survives.
        stats.telemetry.truncate(static_cast<std::size_t>(best.next_iteration));
        stats.telemetry.rollbacks.push_back({it, best.next_iteration});
      }
      it = best.next_iteration;
      continue;
    }

    if (config_.record_history) stats.cost_history.push_back(cost);
    if (config_.record_telemetry) {
      stats.telemetry.push(
          {it, cost, last_breakdown_.overflow, temperature_at(it), last_grad_norm_});
    }
    // Per-iteration counter series for the Chrome trace (one relaxed load
    // each when tracing is off).
    DGR_TRACE_COUNTER("dgr.loss", cost);
    DGR_TRACE_COUNTER("dgr.overflow", last_breakdown_.overflow);
    DGR_TRACE_COUNTER("dgr.temperature", temperature_at(it));
    DGR_TRACE_COUNTER("dgr.grad_norm", last_grad_norm_);
    if (cost < best.cost) {
      best.cost = cost;
      best.params = params_;
      best.next_iteration = it + 1;
    }
    if ((it + 1) % 100 == 0) {
      DGR_LOG_DEBUG("iter %d/%d cost=%.4f t=%.3f", it + 1, config_.iterations, cost,
                    temperature_at(it));
    }
    ++it;
  }

  // On any early stop, leave the best healthy checkpoint behind so
  // extract() still produces the last healthy solution.
  if (restore_checkpoint) params_ = best.params;

  stats.iterations_run = steps_executed;
  stats.train_seconds = timer.seconds();
  obs::metrics().counter("core.train.iterations").add(steps_executed);
  if (stats.rollbacks > 0) {
    obs::metrics().counter("core.train.rollbacks").add(stats.rollbacks);
  }
  stats.final_cost = evaluate(temperature_at(std::clamp(it, 0, std::max(0, config_.iterations - 1))));
  stats.tape_bytes = peak_tape_bytes_;
  return stats;
}

CostBreakdown DgrSolver::evaluate(float temperature) const {
  ad::Tape tape;
  return build_forward(tape, temperature, nullptr, nullptr).breakdown;
}

std::vector<float> DgrSolver::path_probs(float temperature) const {
  ad::Tape tape;
  const ad::NodeId logits = tape.input(params_.data(), relax_.path_count());
  const ad::NodeId p =
      ad::segment_softmax(tape, logits, relax_.path_group_offsets, temperature, nullptr);
  return tape.value(p);
}

std::vector<float> DgrSolver::tree_probs(float temperature) const {
  ad::Tape tape;
  const ad::NodeId logits =
      tape.input(params_.data() + relax_.path_count(), relax_.tree_count());
  const ad::NodeId q =
      ad::segment_softmax(tape, logits, relax_.tree_group_offsets, temperature, nullptr);
  return tape.value(q);
}

}  // namespace dgr::core
