#pragma once
/// \file
/// \brief The differentiable global router (Sections 4.3–4.5).
///
/// Trainables: one logit per path candidate and one per tree candidate.
/// Each iteration builds the expectation of the Eq. (3) cost on an ad::Tape
/// (Gumbel-softmax over groups -> coupled selection mass -> expected demand
/// -> activation overflow + WL + via terms), back-propagates, and takes an
/// Adam step; the temperature anneals on a fixed schedule. extract() turns
/// the optimised probabilities into a discrete RouteSolution (argmax trees,
/// top-p paths with greedy commitment).

#include <vector>

#include "ad/adam.hpp"
#include "core/config.hpp"
#include "core/relaxation.hpp"
#include "eval/solution.hpp"
#include "obs/convergence.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace dgr::core {

struct CostBreakdown {
  double total = 0.0;
  double overflow = 0.0;    ///< Σ f(d - cap), pre-weight
  double wirelength = 0.0;  ///< Σ eff * WL, pre-weight
  double via = 0.0;         ///< √L Σ eff * TP, pre-weight
};

struct TrainStats {
  int iterations_run = 0;              ///< gradient steps executed (incl. replays)
  double train_seconds = 0.0;
  CostBreakdown final_cost;            ///< noise-free cost at final temperature
  std::vector<double> cost_history;    ///< per-iteration training cost (if recorded)
  /// Convergence telemetry (when DgrConfig::record_telemetry): loss,
  /// overflow expectation, temperature, gradient norm per kept iteration
  /// plus rollback events. Pre-reserved; rewound on rollback like
  /// cost_history so samples align with the kept trajectory.
  obs::ConvergenceSeries telemetry;
  std::size_t tape_bytes = 0;          ///< peak tape footprint ("GPU memory" proxy)
  int rollbacks = 0;                   ///< divergence rollbacks taken (health sentinel)
  /// OK on a clean run; kNumericDivergence when the rollback budget was
  /// exhausted, kStageTimeout when the wall-clock budget expired. On a
  /// non-OK status the solver's parameters are the best-so-far checkpoint,
  /// so extract() still yields the last healthy solution.
  Status status;
};

class DgrSolver {
 public:
  /// `capacities`: per-edge 2D capacities (Eq. 1 output or an explicit
  /// uniform vector for the Table 1 protocol). Copied.
  DgrSolver(const dag::DagForest& forest, std::vector<float> capacities,
            DgrConfig config = {});

  /// Runs the full training loop.
  TrainStats train();

  /// One gradient step at the given iteration index (exposed for tests and
  /// custom schedules). Returns the (stochastic) training cost. When
  /// config().health_checks is on and the loss or gradients are non-finite,
  /// the Adam update is skipped (the optimizer state stays clean) and
  /// last_step_finite() reports false.
  double train_step(int iteration);

  /// Numeric-health verdict of the most recent train_step().
  bool last_step_finite() const { return last_step_finite_; }

  /// L2 norm of the full parameter gradient of the most recent train_step().
  double last_grad_norm() const { return last_grad_norm_; }
  /// Cost breakdown of the most recent train_step() (stochastic forward).
  const CostBreakdown& last_breakdown() const { return last_breakdown_; }

  /// Noise-free expected cost at temperature t (forward only).
  CostBreakdown evaluate(float temperature) const;

  /// Deterministic per-group probabilities (softmax, no noise).
  std::vector<float> path_probs(float temperature) const;
  std::vector<float> tree_probs(float temperature) const;

  /// Discrete extraction (Section 4.5): argmax trees, top-p paths committed
  /// greedily in decreasing-confidence order against true residual capacity.
  eval::RouteSolution extract() const;

  float temperature_at(int iteration) const;
  const Relaxation& relaxation() const { return relax_; }
  const DgrConfig& config() const { return config_; }
  const std::vector<float>& capacities() const { return capacities_; }

  /// Direct logit access (tests / warm starts).
  std::vector<float>& logits() { return params_; }
  std::size_t path_logit_count() const { return relax_.path_count(); }
  std::size_t tree_logit_count() const { return relax_.tree_count(); }

 private:
  struct Forward {
    ad::NodeId cost;
    ad::NodeId path_logits;
    ad::NodeId tree_logits;
    CostBreakdown breakdown;
  };
  /// Builds the Fig. 4 computation graph on `tape`.
  Forward build_forward(ad::Tape& tape, float temperature,
                        const std::vector<float>* path_noise,
                        const std::vector<float>* tree_noise) const;

  /// Best-so-far solver state for divergence rollback: a parameter snapshot
  /// plus the iteration the replay resumes from (which also re-anneals the
  /// temperature, since the schedule is a pure function of the iteration).
  struct Checkpoint {
    std::vector<float> params;
    int next_iteration = 0;
    double cost = 0.0;
  };

  const dag::DagForest& forest_;
  Relaxation relax_;
  std::vector<float> capacities_;
  DgrConfig config_;
  std::vector<float> params_;  ///< [path logits | tree logits]
  ad::Adam adam_;
  util::Rng rng_;
  /// Reused across train_step calls (config.reuse_tape): reset() keeps the
  /// arena capacity, so steady-state iterations record the same graph with
  /// zero heap allocation. The noise/grad buffers below reach a fixed size
  /// after the first step for the same reason.
  ad::Tape tape_;
  std::vector<float> path_noise_;
  std::vector<float> tree_noise_;
  std::vector<double> grads_;
  float via_cost_scale_ = 1.0f;  ///< √L of Eq. (5)
  std::size_t peak_tape_bytes_ = 0;
  bool last_step_finite_ = true;
  double last_grad_norm_ = 0.0;
  CostBreakdown last_breakdown_;
  /// Bumped on every rollback so the replayed iterations draw fresh Gumbel
  /// noise (replaying the exact diverging trajectory would just diverge
  /// again). Deterministic: a pure function of the rollback count.
  int noise_generation_ = 0;
};

}  // namespace dgr::core
