#include "core/forward.hpp"

#include <algorithm>
#include <cmath>

#include "ad/ops.hpp"

namespace dgr::core::detail {

float temperature_schedule(const DgrConfig& config, int iteration) {
  const int decays = config.temperature_interval > 0
                         ? iteration / config.temperature_interval
                         : 0;
  // Floor the schedule: at extreme iteration counts (serve clients may ask
  // for millions) the decayed product underflows float to exactly 0, which
  // the softmax ops reject. A tiny positive temperature is numerically an
  // argmax and keeps every downstream op legal.
  constexpr float kMinTemperature = 1e-6f;
  return std::max(config.initial_temperature *
                      std::pow(config.temperature_decay, static_cast<float>(decays)),
                  kMinTemperature);
}

ForwardGraph build_forward_graph(ad::Tape& tape, const Relaxation& relax,
                                 const std::vector<float>& capacities,
                                 const float* params, const DgrConfig& config,
                                 float via_cost_scale, float temperature,
                                 const std::vector<float>* path_noise,
                                 const std::vector<float>* tree_noise) {
  const std::size_t np = relax.path_count();
  const std::size_t nt = relax.tree_count();

  ForwardGraph fw;
  fw.path_logits = tape.input(params, np);
  fw.tree_logits = tape.input(params + np, nt);

  ad::NodeId eff, overflow;
  if (config.fused_kernels) {
    // Fused hot path: softmax→coupling→demand as one multi-stage job, and
    // the Eq. 9 overflow term as a single activation+reduction pass.
    const ad::FusedSelectionDemand sel = ad::fused_softmax_demand(
        tape, fw.path_logits, fw.tree_logits, relax.path_group_offsets,
        relax.tree_group_offsets, relax.path_tree, relax.tree_path_offsets,
        relax.incidence, temperature, path_noise, tree_noise);
    eff = sel.eff;
    overflow = ad::fused_overflow_cost(tape, sel.demand, capacities,
                                       config.activation, config.activation_alpha);
  } else {
    // Reference graph, one op per primitive.
    // p = gumbel_softmax(w_path) over subnet groups; q over net groups.
    const ad::NodeId p = ad::segment_softmax(tape, fw.path_logits,
                                             relax.path_group_offsets, temperature,
                                             path_noise);
    const ad::NodeId q = ad::segment_softmax(tape, fw.tree_logits,
                                             relax.tree_group_offsets, temperature,
                                             tree_noise);

    // eff_i = q_tree(i) * p_i — joint selection mass of path i.
    eff = ad::gather_mul(tape, q, relax.path_tree, p);

    // Expected demand (Eq. 10): weighted scatter of eff over crossed edges
    // (weights already include the beta/2 via charges).
    const ad::NodeId demand = ad::spmv(tape, eff, relax.incidence);

    // overflow_cost = Σ_e f(d_e - cap_e) (Eq. 9).
    const ad::NodeId slack = ad::sub_const(tape, demand, capacities);
    const ad::NodeId overflow_vec =
        ad::apply_activation(tape, slack, config.activation, config.activation_alpha);
    overflow = ad::weighted_sum(tape, overflow_vec);
  }

  // wirelength_cost = Σ eff_i WL_i (Eq. 11); via_cost = √L Σ eff_i TP_i (Eq. 12).
  const ad::NodeId wl = ad::weighted_sum(tape, eff, relax.wirelength);
  const ad::NodeId via = ad::weighted_sum(tape, eff, relax.turns);

  fw.cost = ad::combine(tape, {overflow, via, wl},
                        {config.weight_overflow, config.weight_via * via_cost_scale,
                         config.weight_wirelength});

  fw.breakdown.overflow = tape.value(overflow)[0];
  fw.breakdown.wirelength = tape.value(wl)[0];
  fw.breakdown.via = static_cast<double>(via_cost_scale) * tape.value(via)[0];
  fw.breakdown.total = tape.value(fw.cost)[0];
  return fw;
}

}  // namespace dgr::core::detail
