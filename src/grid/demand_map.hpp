#pragma once
// Mutable per-edge routing demand, shared by every router in the repo.
//
// Sequential baselines (CUGR2-lite, SPRoute-lite, Lagrangian) mutate a
// DemandMap incrementally as they commit/rip-up nets; DGR's differentiable
// solver produces an *expected* demand internally and only materialises a
// DemandMap when extracting the discrete solution.

#include <cmath>
#include <cstdint>
#include <vector>

#include "grid/gcell_grid.hpp"

namespace dgr::grid {

class DemandMap {
 public:
  DemandMap() = default;
  explicit DemandMap(const GCellGrid& grid)
      : demand_(static_cast<std::size_t>(grid.edge_count()), 0.0) {}

  std::size_t edge_count() const { return demand_.size(); }
  double demand(EdgeId e) const { return demand_[static_cast<std::size_t>(e)]; }
  void add(EdgeId e, double amount) {
    demand_[static_cast<std::size_t>(e)] += quantize(amount);
  }

  /// Snaps an increment to the 2^-20 grid. Every amount committed this way
  /// is an exact dyadic double, so arbitrary interleavings of commit (+a)
  /// and uncommit (−a) are exact sums: rip-up restores the demand state
  /// byte-for-byte even for non-dyadic via charges (e.g. via_beta = 0.3).
  /// The 2^-20 grid (≈1e-6 resolution) is far below any demand tolerance
  /// used by the eval/validation layers.
  static double quantize(double amount) {
    constexpr double kScale = 1 << 20;
    constexpr double kInvScale = 1.0 / (1 << 20);
    return std::round(amount * kScale) * kInvScale;
  }
  void clear() { std::fill(demand_.begin(), demand_.end(), 0.0); }

  const std::vector<double>& raw() const { return demand_; }

  /// Total overflow Σ_e max(0, d_e − cap_e).
  double total_overflow(const std::vector<float>& cap) const;

  /// Number of edges with d_e > cap_e (the "# G-cell edges w/ overflow"
  /// column of Tables 2–3). `eps` guards float round-off.
  std::int64_t overflowed_edge_count(const std::vector<float>& cap,
                                     double eps = 1e-6) const;

  /// Maximum single-edge overflow (used by the Fig. 6 weighted metric).
  double peak_overflow(const std::vector<float>& cap) const;

 private:
  std::vector<double> demand_;
};

}  // namespace dgr::grid
