#include "grid/demand_map.hpp"

#include <algorithm>

namespace dgr::grid {

double DemandMap::total_overflow(const std::vector<float>& cap) const {
  double total = 0.0;
  for (std::size_t e = 0; e < demand_.size(); ++e) {
    const double over = demand_[e] - cap[e];
    if (over > 0.0) total += over;
  }
  return total;
}

std::int64_t DemandMap::overflowed_edge_count(const std::vector<float>& cap,
                                              double eps) const {
  std::int64_t count = 0;
  for (std::size_t e = 0; e < demand_.size(); ++e) {
    if (demand_[e] > cap[e] + eps) ++count;
  }
  return count;
}

double DemandMap::peak_overflow(const std::vector<float>& cap) const {
  double peak = 0.0;
  for (std::size_t e = 0; e < demand_.size(); ++e) {
    peak = std::max(peak, demand_[e] - cap[e]);
  }
  return peak;
}

}  // namespace dgr::grid
