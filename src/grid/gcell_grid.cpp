#include "grid/gcell_grid.hpp"

#include <cassert>
#include <stdexcept>

namespace dgr::grid {

GCellGrid::GCellGrid(int width, int height, std::vector<LayerInfo> layers)
    : width_(width), height_(height), layers_(std::move(layers)) {
  if (width < 1 || height < 1) throw std::invalid_argument("GCellGrid: empty grid");
  for (const LayerInfo& l : layers_) {
    if (l.dir == Dir::kHorizontal) {
      h_tracks_ += l.tracks;
      ++h_layers_;
    } else {
      v_tracks_ += l.tracks;
      ++v_layers_;
    }
  }
}

GCellGrid GCellGrid::uniform(int width, int height, int layer_count, int tracks_per_layer,
                             bool reserve_pin_layer) {
  std::vector<LayerInfo> layers(static_cast<std::size_t>(layer_count));
  for (int i = 0; i < layer_count; ++i) {
    // Conventional HVHV... stack starting with a horizontal metal1-equivalent.
    layers[static_cast<std::size_t>(i)].dir = (i % 2 == 0) ? Dir::kHorizontal : Dir::kVertical;
    layers[static_cast<std::size_t>(i)].tracks =
        (reserve_pin_layer && i == 0) ? 0 : tracks_per_layer;
  }
  return GCellGrid(width, height, std::move(layers));
}

EdgeId GCellGrid::edge_between(Point a, Point b) const {
  if (!in_bounds(a) || !in_bounds(b)) return kInvalidEdge;
  if (a.y == b.y && (a.x == b.x + 1 || b.x == a.x + 1)) {
    return h_edge(std::min(a.x, b.x), a.y);
  }
  if (a.x == b.x && (a.y == b.y + 1 || b.y == a.y + 1)) {
    return v_edge(a.x, std::min(a.y, b.y));
  }
  return kInvalidEdge;
}

std::pair<Point, Point> GCellGrid::edge_cells(EdgeId e) const {
  assert(e >= 0 && e < edge_count());
  if (e < h_edge_count()) {
    const Coord x = static_cast<Coord>(e % (width_ - 1));
    const Coord y = static_cast<Coord>(e / (width_ - 1));
    return {Point{x, y}, Point{static_cast<Coord>(x + 1), y}};
  }
  const EdgeId v = e - h_edge_count();
  const Coord x = static_cast<Coord>(v % width_);
  const Coord y = static_cast<Coord>(v / width_);
  return {Point{x, y}, Point{x, static_cast<Coord>(y + 1)}};
}

std::vector<float> compute_capacities(const GCellGrid& grid, const CapacityInputs& in) {
  const EdgeId ne = grid.edge_count();
  std::vector<float> cap(static_cast<std::size_t>(ne));

  auto cell_pressure = [&](CellId c) -> float {
    float p = 0.0f;
    const float beta = in.beta.empty() ? in.beta_default
                                       : in.beta[static_cast<std::size_t>(c)];
    if (!in.pin_density.empty()) p += beta * in.pin_density[static_cast<std::size_t>(c)];
    if (!in.local_nets.empty()) p += in.local_nets[static_cast<std::size_t>(c)];
    return p;
  };

  for (EdgeId e = 0; e < ne; ++e) {
    const auto [a, b] = grid.edge_cells(e);
    // Each endpoint cell's pressure is split evenly over its (up to 4)
    // incident edges, so a fully surrounded cell charges 1/4 per edge while
    // total charged pressure stays equal to the cell pressure.
    auto incident = [&](Point p) {
      int d = 0;
      if (p.x > 0) ++d;
      if (p.x + 1 < grid.width()) ++d;
      if (p.y > 0) ++d;
      if (p.y + 1 < grid.height()) ++d;
      return d == 0 ? 1 : d;
    };
    const float pressure = cell_pressure(grid.cell_id(a)) / static_cast<float>(incident(a)) +
                           cell_pressure(grid.cell_id(b)) / static_cast<float>(incident(b));
    const float c = static_cast<float>(grid.base_capacity(e)) - pressure;
    cap[static_cast<std::size_t>(e)] = c > 0.0f ? c : 0.0f;
  }
  return cap;
}

}  // namespace dgr::grid
