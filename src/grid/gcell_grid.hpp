#pragma once
// G-cell grid model for 2D global routing.
//
// The routing region is a W x H grid of g-cells with L routing layers, each
// layer having a preferred direction (horizontal or vertical) and a track
// count. 2D routing collapses the layers into per-direction capacities on
// the g-cell edges; layer assignment (src/post) re-expands the solution to 3D.
//
// Edge indexing convention (used by every module):
//   - horizontal edges connect (x,y)-(x+1,y), id = y*(W-1)+x, 0 <= x < W-1
//   - vertical   edges connect (x,y)-(x,y+1), id = Eh + y*W+x, 0 <= y < H-1
// with Eh = (W-1)*H. Ids fit in 32 bits for any grid we handle (<= 4000^2).

#include <cstdint>
#include <vector>

#include "geom/geom.hpp"

namespace dgr::grid {

using geom::Coord;
using geom::Point;

using EdgeId = std::int32_t;
using CellId = std::int32_t;
inline constexpr EdgeId kInvalidEdge = -1;

enum class Dir : std::uint8_t { kHorizontal = 0, kVertical = 1 };

struct LayerInfo {
  Dir dir = Dir::kHorizontal;
  int tracks = 0;  ///< routing tracks available per g-cell edge on this layer
};

/// Immutable description of the routing grid.
class GCellGrid {
 public:
  GCellGrid() = default;
  GCellGrid(int width, int height, std::vector<LayerInfo> layers);

  /// Convenience factory: `layer_count` layers alternating H,V,H,... with
  /// `tracks_per_layer` tracks each. Layer 0 is conventionally the pin layer
  /// and carries 0 tracks when `reserve_pin_layer` is set.
  static GCellGrid uniform(int width, int height, int layer_count, int tracks_per_layer,
                           bool reserve_pin_layer = false);

  int width() const { return width_; }
  int height() const { return height_; }
  int layer_count() const { return static_cast<int>(layers_.size()); }
  const std::vector<LayerInfo>& layers() const { return layers_; }

  CellId cell_count() const { return static_cast<CellId>(width_) * height_; }
  CellId cell_id(Point p) const { return static_cast<CellId>(p.y) * width_ + p.x; }
  Point cell_point(CellId c) const { return Point{static_cast<Coord>(c % width_),
                                                  static_cast<Coord>(c / width_)}; }
  bool in_bounds(Point p) const {
    return p.x >= 0 && p.x < width_ && p.y >= 0 && p.y < height_;
  }

  EdgeId h_edge_count() const { return static_cast<EdgeId>(width_ - 1) * height_; }
  EdgeId v_edge_count() const { return static_cast<EdgeId>(width_) * (height_ - 1); }
  EdgeId edge_count() const { return h_edge_count() + v_edge_count(); }

  /// Horizontal edge between (x,y) and (x+1,y).
  EdgeId h_edge(Coord x, Coord y) const { return static_cast<EdgeId>(y) * (width_ - 1) + x; }
  /// Vertical edge between (x,y) and (x,y+1).
  EdgeId v_edge(Coord x, Coord y) const {
    return h_edge_count() + static_cast<EdgeId>(y) * width_ + x;
  }

  /// Edge between two 4-adjacent cells; kInvalidEdge if not adjacent.
  EdgeId edge_between(Point a, Point b) const;

  Dir edge_dir(EdgeId e) const {
    return e < h_edge_count() ? Dir::kHorizontal : Dir::kVertical;
  }
  /// The two cells an edge joins (lower coordinate first).
  std::pair<Point, Point> edge_cells(EdgeId e) const;

  /// Total tracks across layers whose preferred direction matches `dir`.
  int direction_tracks(Dir dir) const {
    return dir == Dir::kHorizontal ? h_tracks_ : v_tracks_;
  }
  /// Number of layers with the given preferred direction.
  int direction_layers(Dir dir) const {
    return dir == Dir::kHorizontal ? h_layers_ : v_layers_;
  }
  /// Base 2D capacity of edge e = direction_tracks(edge_dir(e)).
  int base_capacity(EdgeId e) const { return direction_tracks(edge_dir(e)); }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<LayerInfo> layers_;
  int h_tracks_ = 0;
  int v_tracks_ = 0;
  int h_layers_ = 0;
  int v_layers_ = 0;
};

/// Inputs to the capacity formula (Eq. 1 of the paper):
///   cap_e = track_e - beta_v * pin_density_v - local_net_v
/// pin_density and local_nets are per-cell statistics computed from the
/// design; beta follows CUGR2 (a per-cell weight, uniform by default).
struct CapacityInputs {
  std::vector<float> pin_density;  ///< per cell; empty = all zero
  std::vector<float> local_nets;   ///< per cell; empty = all zero
  std::vector<float> beta;         ///< per cell; empty = uniform beta_default
  float beta_default = 0.5f;
};

/// Computes the per-edge 2D capacity vector. Each edge is charged half of
/// each endpoint cell's pin/local-net pressure (the cell pressure is split
/// across the directions' edges), and capacities are clamped at >= 0.
std::vector<float> compute_capacities(const GCellGrid& grid, const CapacityInputs& in);

}  // namespace dgr::grid
