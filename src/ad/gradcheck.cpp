#include "ad/gradcheck.hpp"

#include <cmath>
#include <stdexcept>

namespace dgr::ad {

GradCheckResult grad_check(const std::function<double(const std::vector<float>&)>& f,
                           const std::vector<float>& x0,
                           std::span<const double> analytic_grad, double h, double atol,
                           double rtol) {
  if (x0.size() != analytic_grad.size()) {
    throw std::invalid_argument("grad_check: size mismatch");
  }
  GradCheckResult result;
  result.ok = true;
  std::vector<float> x = x0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float orig = x[i];
    x[i] = static_cast<float>(orig + h);
    const double fp = f(x);
    x[i] = static_cast<float>(orig - h);
    const double fm = f(x);
    x[i] = orig;
    const double numeric = (fp - fm) / (2.0 * h);
    const double ana = analytic_grad[i];
    const double abs_err = std::abs(numeric - ana);
    const double scale = std::max(std::abs(numeric), std::abs(ana));
    const double rel_err = scale > 0.0 ? abs_err / scale : 0.0;
    if (abs_err > result.max_abs_err) {
      result.max_abs_err = abs_err;
      result.worst_index = i;
    }
    result.max_rel_err = std::max(result.max_rel_err, rel_err);
    if (abs_err > atol + rtol * scale) result.ok = false;
  }
  return result;
}

}  // namespace dgr::ad
