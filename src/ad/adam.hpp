#pragma once
// Adam optimizer (Kingma & Ba) over a flat parameter vector — the paper
// optimizes the trainable logits w with Adam at learning rate 0.3.

#include <cstdint>
#include <vector>

namespace dgr::ad {

struct AdamConfig {
  double lr = 0.3;  ///< paper default for DGR
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
};

class Adam {
 public:
  Adam(std::size_t size, AdamConfig config = {});

  /// Applies one update: params -= lr * m_hat / (sqrt(v_hat) + eps).
  void step(std::vector<float>& params, const std::vector<double>& grads);

  std::int64_t iteration() const { return t_; }
  const AdamConfig& config() const { return config_; }
  void set_learning_rate(double lr) { config_.lr = lr; }

  /// Zeroes the moment estimates and step count. Used by the solver's
  /// divergence rollback: stale moments computed from a poisoned trajectory
  /// must not leak into the replayed steps.
  void reset();

 private:
  AdamConfig config_;
  std::vector<double> m_;
  std::vector<double> v_;
  std::int64_t t_ = 0;
};

}  // namespace dgr::ad
