// AVX2+FMA kernels for the DGR_SIMD build. This TU alone is compiled with
// -mavx2 -mfma (see src/CMakeLists.txt) so the scalar library codegen is
// untouched; everything here is reached only through simd::active().

#include "ad/simd.hpp"

#ifdef DGR_SIMD

#include <immintrin.h>

#include <atomic>
#include <cmath>

namespace dgr::ad::simd {
namespace {

std::atomic<bool> g_enabled{true};

// Cephes-style single-precision exp (the classic avx_mathfun expansion):
// range-reduce by log2(e), degree-5 polynomial, scale by 2^n. ~1 ulp off
// libm expf — the source of the SIMD tolerance caveat.
inline __m256 exp256_ps(__m256 x) {
  const __m256 exp_hi = _mm256_set1_ps(88.3762626647949f);
  const __m256 exp_lo = _mm256_set1_ps(-88.3762626647949f);
  const __m256 log2e = _mm256_set1_ps(1.44269504088896341f);
  const __m256 c1 = _mm256_set1_ps(0.693359375f);
  const __m256 c2 = _mm256_set1_ps(-2.12194440e-4f);
  const __m256 p0 = _mm256_set1_ps(1.9875691500e-4f);
  const __m256 p1 = _mm256_set1_ps(1.3981999507e-3f);
  const __m256 p2 = _mm256_set1_ps(8.3334519073e-3f);
  const __m256 p3 = _mm256_set1_ps(4.1665795894e-2f);
  const __m256 p4 = _mm256_set1_ps(1.6666665459e-1f);
  const __m256 p5 = _mm256_set1_ps(5.0000001201e-1f);
  const __m256 one = _mm256_set1_ps(1.0f);

  x = _mm256_min_ps(x, exp_hi);
  x = _mm256_max_ps(x, exp_lo);

  __m256 fx = _mm256_fmadd_ps(x, log2e, _mm256_set1_ps(0.5f));
  fx = _mm256_floor_ps(fx);
  x = _mm256_fnmadd_ps(fx, c1, x);
  x = _mm256_fnmadd_ps(fx, c2, x);

  const __m256 xx = _mm256_mul_ps(x, x);
  __m256 y = p0;
  y = _mm256_fmadd_ps(y, x, p1);
  y = _mm256_fmadd_ps(y, x, p2);
  y = _mm256_fmadd_ps(y, x, p3);
  y = _mm256_fmadd_ps(y, x, p4);
  y = _mm256_fmadd_ps(y, x, p5);
  y = _mm256_fmadd_ps(y, xx, x);
  y = _mm256_add_ps(y, one);

  const __m256i n = _mm256_add_epi32(_mm256_cvttps_epi32(fx), _mm256_set1_epi32(0x7f));
  const __m256 pow2n = _mm256_castsi256_ps(_mm256_slli_epi32(n, 23));
  return _mm256_mul_ps(y, pow2n);
}

/// av_vec = f(v) for one lane-vector; mirrors act_forward in ops.cpp.
inline __m256 act_forward_ps(Activation act, float alpha, __m256 v) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 one = _mm256_set1_ps(1.0f);
  switch (act) {
    case Activation::kReLU:
      return _mm256_max_ps(v, zero);
    case Activation::kSigmoid: {
      const __m256 e = exp256_ps(_mm256_sub_ps(zero, v));
      return _mm256_div_ps(one, _mm256_add_ps(one, e));
    }
    case Activation::kLeakyReLU: {
      const __m256 neg = _mm256_mul_ps(_mm256_set1_ps(alpha * 0.01f), v);
      return _mm256_blendv_ps(neg, v, _mm256_cmp_ps(v, zero, _CMP_GT_OQ));
    }
    case Activation::kExp:
      return exp256_ps(_mm256_min_ps(v, _mm256_set1_ps(30.0f)));
    case Activation::kCELU: {
      const __m256 a = _mm256_set1_ps(alpha);
      const __m256 scaled =
          _mm256_div_ps(_mm256_min_ps(v, _mm256_set1_ps(30.0f)), a);
      const __m256 neg = _mm256_mul_ps(a, _mm256_sub_ps(exp256_ps(scaled), one));
      return _mm256_blendv_ps(neg, v, _mm256_cmp_ps(v, zero, _CMP_GT_OQ));
    }
  }
  return zero;
}

/// f'(v) using the forward output y; mirrors act_derivative in ops.cpp
/// (computed in float here — covered by the SIMD tolerance contract).
inline __m256 act_derivative_ps(Activation act, float alpha, __m256 v, __m256 y) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 pos = _mm256_cmp_ps(v, zero, _CMP_GT_OQ);
  switch (act) {
    case Activation::kReLU:
      return _mm256_and_ps(one, pos);
    case Activation::kSigmoid:
      return _mm256_mul_ps(y, _mm256_sub_ps(one, y));
    case Activation::kLeakyReLU:
      return _mm256_blendv_ps(_mm256_set1_ps(alpha * 0.01f), one, pos);
    case Activation::kExp:
      return _mm256_and_ps(y, _mm256_cmp_ps(v, _mm256_set1_ps(30.0f), _CMP_LT_OQ));
    case Activation::kCELU: {
      const __m256 scaled = _mm256_div_ps(_mm256_min_ps(v, _mm256_set1_ps(30.0f)),
                                          _mm256_set1_ps(alpha));
      return _mm256_blendv_ps(exp256_ps(scaled), one, pos);
    }
  }
  return zero;
}

inline float act_forward_scalar(Activation act, float alpha, float v) {
  switch (act) {
    case Activation::kReLU:
      return v > 0.0f ? v : 0.0f;
    case Activation::kSigmoid:
      return 1.0f / (1.0f + std::exp(-v));
    case Activation::kLeakyReLU:
      return v > 0.0f ? v : alpha * 0.01f * v;
    case Activation::kExp:
      return std::exp(std::min(v, 30.0f));
    case Activation::kCELU:
      return v > 0.0f ? v : alpha * (std::exp(std::min(v, 30.0f) / alpha) - 1.0f);
  }
  return 0.0f;
}

inline double act_derivative_scalar(Activation act, float alpha, float v, float y) {
  switch (act) {
    case Activation::kReLU:
      return v > 0.0f ? 1.0 : 0.0;
    case Activation::kSigmoid:
      return static_cast<double>(y) * (1.0 - y);
    case Activation::kLeakyReLU:
      return v > 0.0f ? 1.0 : alpha * 0.01;
    case Activation::kExp:
      return v < 30.0f ? static_cast<double>(y) : 0.0;
    case Activation::kCELU:
      return v > 0.0f ? 1.0 : std::exp(std::min(v, 30.0f) / alpha);
  }
  return 0.0;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

namespace {
/// exp256_ps on the 8-lane block [base, base+8) of which only [lo, hi) is
/// in-range: out-of-range lanes are padded with zero in a temp (exp is
/// lane-independent, so in-range lanes get the exact value a full-vector
/// evaluation would give) and only in-range lanes are written back.
inline void exp_edge_block(float* y, std::size_t base, std::size_t lo, std::size_t hi) {
  alignas(32) float tmp[8] = {};
  for (std::size_t k = lo; k < hi; ++k) tmp[k - base] = y[k];
  _mm256_store_ps(tmp, exp256_ps(_mm256_load_ps(tmp)));
  for (std::size_t k = lo; k < hi; ++k) y[k] = tmp[k - base];
}
}  // namespace

void exp_sweep(float* y, std::size_t lo, std::size_t hi) {
  // The lane grid is anchored to ABSOLUTE multiples of 8 in the index space
  // of `y`, not to `lo`: callers hand this sweep arbitrary sub-ranges of one
  // array (softmax group chunks), and bitwise worker-count invariance
  // requires every element to take the same value no matter how the range
  // was split. Ragged edges go through the same polynomial via a padded
  // temp block instead of a scalar std::exp fallback.
  if (lo >= hi) return;
  const std::size_t a0 = (lo + 7) & ~std::size_t{7};
  if (lo < a0) {
    const std::size_t head_end = a0 < hi ? a0 : hi;
    exp_edge_block(y, a0 - 8, lo, head_end);
    if (hi <= a0) return;
  }
  std::size_t i = a0;
  for (; i + 8 <= hi; i += 8) {
    _mm256_storeu_ps(y + i, exp256_ps(_mm256_loadu_ps(y + i)));
  }
  if (i < hi) exp_edge_block(y, i, i, hi);
}

void gather_mul(const float* q, const std::int32_t* index, const float* p, float* out,
                std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(index + i));
    const __m256 vq = _mm256_i32gather_ps(q, vi, 4);
    _mm256_storeu_ps(out + i, _mm256_mul_ps(vq, _mm256_loadu_ps(p + i)));
  }
  for (; i < n; ++i) out[i] = q[static_cast<std::size_t>(index[i])] * p[i];
}

double overflow_forward(Activation act, float alpha, const float* x, const float* c,
                        float* av, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_sub_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(c + i));
    _mm256_storeu_ps(av + i, act_forward_ps(act, alpha, v));
  }
  for (; i < n; ++i) av[i] = act_forward_scalar(act, alpha, x[i] - c[i]);
  // Index-order double accumulation, matching the scalar path's order (so
  // the exact activations — ReLU/LeakyReLU — give bitwise-equal sums).
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) acc += static_cast<double>(av[k]);
  return acc;
}

void overflow_backward(Activation act, float alpha, double g, const float* x,
                       const float* c, const float* av, double* gx, std::size_t n) {
  const __m256d gd = _mm256_set1_pd(g);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_sub_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(c + i));
    const __m256 d = act_derivative_ps(act, alpha, v, _mm256_loadu_ps(av + i));
    const __m256d dlo = _mm256_cvtps_pd(_mm256_castps256_ps128(d));
    const __m256d dhi = _mm256_cvtps_pd(_mm256_extractf128_ps(d, 1));
    _mm256_storeu_pd(gx + i, _mm256_fmadd_pd(gd, dlo, _mm256_loadu_pd(gx + i)));
    _mm256_storeu_pd(gx + i + 4,
                     _mm256_fmadd_pd(gd, dhi, _mm256_loadu_pd(gx + i + 4)));
  }
  for (; i < n; ++i) {
    gx[i] += g * act_derivative_scalar(act, alpha, x[i] - c[i], av[i]);
  }
}

}  // namespace dgr::ad::simd

#endif  // DGR_SIMD
