#pragma once
// Explicit AVX2 kernel layer behind the DGR_SIMD CMake option (DESIGN.md
// §5.4). The hot ops call these through `simd::active()`:
//
//   - DGR_SIMD OFF (default): compiled_in() is a constant false, every call
//     below is an inline no-op, and the scalar loops in ops.cpp — whose
//     arithmetic is bitwise worker-count deterministic — are the only code
//     path. Zero codegen change in the scalar build.
//   - DGR_SIMD ON: the kernels in simd_avx2.cpp (a separate TU built with
//     -mavx2 -mfma, so nothing else in the library gets retuned) replace the
//     innermost loops. Chunk boundaries still come from (begin, end, grain)
//     only, so results remain bitwise invariant across worker counts — but
//     the vectorized exp/sigmoid polynomials differ from libm in the last
//     ulps, so SIMD output is held to gradcheck + shared-eval *tolerance*
//     against scalar, not bitwise equality (the determinism caveat in
//     DESIGN.md §5.4).
//
// set_enabled(false) drops back to the scalar path at runtime even when
// compiled in — the bench uses this to report scalar-SoA and AVX2 variants
// from one binary, and tests use it to diff the two paths.

#include <cstddef>
#include <cstdint>

#include "ad/activation.hpp"

namespace dgr::ad::simd {

#ifdef DGR_SIMD

constexpr bool compiled_in() { return true; }
bool enabled();
void set_enabled(bool on);

/// y[i] = exp(y[i]) for i in [lo, hi). The vector lane grid is anchored to
/// absolute multiples of 8 in y's index space (ragged edges go through the
/// same polynomial via a padded block), so splitting a range into sub-sweeps
/// is bitwise identical to one sweep — callers pass data-dependent softmax
/// chunk boundaries and worker-count invariance depends on this.
void exp_sweep(float* y, std::size_t lo, std::size_t hi);
/// out[i] = q[index[i]] * p[i] via vpgatherdps (exact: multiply only).
void gather_mul(const float* q, const std::int32_t* index, const float* p, float* out,
                std::size_t n);
/// av[i] = f(x[i] - c[i]); returns sum(av) accumulated in double, in index
/// order (same order as the scalar path, so ReLU/LeakyReLU stay exact).
double overflow_forward(Activation act, float alpha, const float* x, const float* c,
                        float* av, std::size_t n);
/// gx[i] += g * f'(x[i] - c[i]) with av the forward activations.
void overflow_backward(Activation act, float alpha, double g, const float* x,
                       const float* c, const float* av, double* gx, std::size_t n);

#else  // scalar-only build: inline no-op stubs, unreachable behind active().

constexpr bool compiled_in() { return false; }
inline bool enabled() { return false; }
inline void set_enabled(bool) {}
inline void exp_sweep(float*, std::size_t, std::size_t) {}
inline void gather_mul(const float*, const std::int32_t*, const float*, float*,
                       std::size_t) {}
inline double overflow_forward(Activation, float, const float*, const float*, float*,
                               std::size_t) {
  return 0.0;
}
inline void overflow_backward(Activation, float, double, const float*, const float*,
                              const float*, double*, std::size_t) {}

#endif

/// True when the AVX2 kernels are compiled in AND runtime-enabled.
inline bool active() { return compiled_in() && enabled(); }

}  // namespace dgr::ad::simd
