#pragma once
// Finite-difference gradient checking, used by the ad test suite to verify
// every op (and the full DGR forward) against central differences.

#include <functional>
#include <span>
#include <vector>

namespace dgr::ad {

struct GradCheckResult {
  double max_abs_err = 0.0;
  double max_rel_err = 0.0;
  std::size_t worst_index = 0;
  bool ok = false;
};

/// f maps a parameter vector to a scalar; analytic_grad is the gradient under
/// test at `x0`. Central differences with step h; an entry passes when
/// |num - ana| <= atol + rtol * max(|num|, |ana|).
/// `analytic_grad` is a view so Tape::grad spans pass straight through.
GradCheckResult grad_check(const std::function<double(const std::vector<float>&)>& f,
                           const std::vector<float>& x0,
                           std::span<const double> analytic_grad, double h = 1e-3,
                           double atol = 1e-4, double rtol = 5e-3);

}  // namespace dgr::ad
