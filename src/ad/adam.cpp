#include "ad/adam.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/parallel.hpp"

namespace dgr::ad {

Adam::Adam(std::size_t size, AdamConfig config)
    : config_(config), m_(size, 0.0), v_(size, 0.0) {}

void Adam::step(std::vector<float>& params, const std::vector<double>& grads) {
  if (params.size() != m_.size() || grads.size() != m_.size()) {
    throw std::invalid_argument("Adam::step: size mismatch");
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  util::ParallelRuntime::for_blocked(
      0, params.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          m_[i] = config_.beta1 * m_[i] + (1.0 - config_.beta1) * grads[i];
          v_[i] = config_.beta2 * v_[i] + (1.0 - config_.beta2) * grads[i] * grads[i];
          const double m_hat = m_[i] / bc1;
          const double v_hat = v_[i] / bc2;
          params[i] -= static_cast<float>(config_.lr * m_hat / (std::sqrt(v_hat) + config_.eps));
        }
      },
      4096);
}

void Adam::reset() {
  std::fill(m_.begin(), m_.end(), 0.0);
  std::fill(v_.begin(), v_.end(), 0.0);
  t_ = 0;
}

}  // namespace dgr::ad
