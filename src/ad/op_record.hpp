#pragma once
// Typed op records for the arena-backed Tape (DESIGN.md §5.2).
//
// Each differentiable op appends exactly one OpRecord — a tagged union of
// plain-old-data payloads — instead of a heap-allocated std::function
// closure. Tape::backward replays the record array in reverse with a switch
// (detail::run_backward, implemented next to the forward kernels in
// ops.cpp), so the backward pass is a flat loop over contiguous records:
// no virtual dispatch, no closure indirection, no per-op allocation.
//
// Pointer payloads (offset / index / CSR arrays) follow the ops.hpp lifetime
// contract: they are borrowed from the caller and must outlive the Tape.
// Everything the tape must own (weighted_sum weights, combine coefficients,
// fused-overflow activation scratch) lives in the tape's pools and is
// referenced here by offset. Node references are raw std::int32_t indices
// (NodeId::idx) so every payload is a trivial POD and the union stays
// default-constructible and trivially copyable.

#include <cstdint>

namespace dgr::ad {

struct NodeId {
  std::int32_t idx = -1;
  bool valid() const { return idx >= 0; }
};

enum class OpKind : std::uint8_t {
  kSegmentSoftmax,
  kGatherMul,
  kSpmv,
  kSubConst,
  kActivation,
  kWeightedSum,
  kCombine,
  kFusedSoftmaxDemand,
  kFusedOverflow,
};

struct OpRecord {
  OpKind kind = OpKind::kSegmentSoftmax;
  std::uint8_t act = 0;  ///< ad::Activation, stored raw to avoid an ops.hpp cycle
  float scalar = 0.0f;   ///< temperature (softmaxes) or alpha (activations)

  struct SoftmaxRec {
    std::int32_t x, out;
    const std::int32_t* offsets;
    std::uint32_t groups;
  };
  struct GatherMulRec {
    std::int32_t q, p, out;
    const std::int32_t* index;
    std::uint32_t n;
  };
  struct SpmvRec {  ///< transpose CSR only — that is all backward needs
    std::int32_t x, out;
    const std::uint32_t* offsets;
    const std::int32_t* cols;
    const float* weights;
    std::uint32_t rows;  ///< == size of x
  };
  struct SubConstRec {
    std::int32_t x, out;
    std::uint32_t n;
  };
  struct ActivationRec {
    std::int32_t x, out;
    std::uint32_t n;
  };
  struct WeightedSumRec {
    std::int32_t x, out;
    std::uint32_t n;
    std::uint32_t w_off;  ///< float-pool offset; w_len == 0 means plain sum
    std::uint32_t w_len;
  };
  struct CombineRec {
    std::int32_t out;
    std::uint32_t ids_off;   ///< int-pool offset of the input node indices
    std::uint32_t coef_off;  ///< float-pool offset of the coefficients
    std::uint32_t count;
  };
  struct FusedSelRec {
    std::int32_t path_logits, tree_logits, p, q, eff, demand;
    const std::int32_t* path_offsets;
    const std::int32_t* tree_offsets;
    const std::int32_t* path_tree;
    const std::int32_t* tree_path_offsets;
    const std::uint32_t* bwd_offsets;
    const std::int32_t* bwd_cols;
    const float* bwd_weights;
    std::uint32_t np, nt, n_pgroups, n_tgroups;
  };
  struct FusedOverflowRec {
    std::int32_t x, out;
    const float* c;
    std::uint32_t n;
    std::uint32_t scratch_off;  ///< float-pool offset of the activated values
  };

  union {
    SoftmaxRec softmax;
    GatherMulRec gather;
    SpmvRec spmv;
    SubConstRec subc;
    ActivationRec activation;
    WeightedSumRec wsum;
    CombineRec combine;
    FusedSelRec fused_sel;
    FusedOverflowRec fused_over;
  } u = {};
};

class Tape;

namespace detail {
/// Replays one record's backward kernel. Implemented in ops.cpp so the
/// backward kernels live next to their forward counterparts.
void run_backward(Tape& tape, const OpRecord& rec);
}  // namespace detail

}  // namespace dgr::ad
