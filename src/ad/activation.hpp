#pragma once
// The overflow activations studied in Fig. 6 of the paper. Split out of
// ops.hpp so the SIMD kernel layer (ad/simd.hpp) can name them without
// pulling in the full op set.

namespace dgr::ad {

enum class Activation { kReLU, kSigmoid, kLeakyReLU, kExp, kCELU };
const char* activation_name(Activation a);

}  // namespace dgr::ad
