#pragma once
// Tape-based reverse-mode automatic differentiation over flat float arrays.
//
// This is the deep-learning-toolkit substrate of the paper (PyTorch in the
// original): DGR's forward cost is assembled from the ops in ad/ops.hpp on a
// Tape; Tape::backward() replays the recorded ops in reverse to produce
// gradients for the Adam optimizer. A "tensor" here is a 1-D float array —
// all of DGR's state (path logits, tree logits, demand map) is naturally
// flat, and group structure is carried by offset arrays, not shapes.
//
// Gradients accumulate in double precision: the demand reductions sum up to
// millions of terms and float accumulation visibly degrades Adam steps.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace dgr::ad {

struct NodeId {
  std::int32_t idx = -1;
  bool valid() const { return idx >= 0; }
};

class Tape {
 public:
  /// Creates a leaf node holding a copy of `value`.
  NodeId input(const std::vector<float>& value);
  /// Creates a leaf from raw data.
  NodeId input(const float* data, std::size_t size);

  const std::vector<float>& value(NodeId id) const { return nodes_[check(id)].value; }
  const std::vector<double>& grad(NodeId id) const { return nodes_[check(id)].grad; }
  std::size_t size(NodeId id) const { return nodes_[check(id)].value.size(); }

  /// Seeds d(root)/d(root) = 1 (root must be a scalar, i.e. size 1) and runs
  /// every recorded op's backward in reverse order.
  void backward(NodeId root);

  std::size_t node_count() const { return nodes_.size(); }
  /// Bytes held by node values+grads (Fig. 5b "GPU memory" proxy).
  std::size_t memory_bytes() const;

  // ---- op-author interface (used by ops.cpp) ------------------------------
  NodeId make_node(std::size_t size);
  std::vector<float>& mutable_value(NodeId id) { return nodes_[check(id)].value; }
  std::vector<double>& mutable_grad(NodeId id) { return nodes_[check(id)].grad; }
  /// Registers a backward closure; closures run in reverse registration order.
  void record(std::function<void()> backward_fn) { ops_.push_back(std::move(backward_fn)); }

 private:
  struct Node {
    std::vector<float> value;
    std::vector<double> grad;
  };

  std::size_t check(NodeId id) const;

  std::vector<Node> nodes_;
  std::vector<std::function<void()>> ops_;
};

}  // namespace dgr::ad
