#pragma once
// Arena-backed SoA tape for reverse-mode automatic differentiation over flat
// float arrays.
//
// This is the deep-learning-toolkit substrate of the paper (PyTorch in the
// original): DGR's forward cost is assembled from the ops in ad/ops.hpp on a
// Tape; Tape::backward() replays the recorded ops in reverse to produce
// gradients for the Adam optimizer. A "tensor" here is a 1-D float array —
// all of DGR's state (path logits, tree logits, demand map) is naturally
// flat, and group structure is carried by offset arrays, not shapes.
//
// Storage layout (DESIGN.md §5.2): nodes do not own vectors. Every node's
// value is a slice of one per-tape float arena and every grad a slice of one
// double arena; value(id)/grad(id) hand out std::span views into them. The
// op log is a flat array of typed OpRecords (ad/op_record.hpp) replayed by a
// switch — no std::function closures, no per-op heap allocation.
//
// Reuse contract: reset() rewinds the tape to empty but keeps every arena's
// capacity, so a solver that re-records the same graph each iteration
// reaches a zero-malloc steady state after its first iteration. Any arena
// growth on a reset tape increments the `obs.ad.arena_regrowth` counter
// metric (the obs.convergence.unreserved_growth pattern), which the ad tests
// and the pipeline bench assert stays at zero once warm.
//
// View invalidation: spans point into the arenas, and recording a new node
// may grow (reallocate) them. Take value()/grad() views AFTER the last op
// that creates nodes — inside op kernels, after every make_node of the op.
// backward() creates no nodes, so views taken after the graph is built stay
// valid through the backward pass and after it.
//
// Gradients accumulate in double precision: the demand reductions sum up to
// millions of terms and float accumulation visibly degrades Adam steps. The
// grad arena is zeroed lazily, in one pass at the top of backward() — a
// forward-only tape never touches it.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ad/op_record.hpp"

namespace dgr::ad {

class Tape {
 public:
  /// Creates a leaf node holding a copy of `value`.
  NodeId input(const std::vector<float>& value);
  /// Creates a leaf from raw data.
  NodeId input(const float* data, std::size_t size);

  std::span<const float> value(NodeId id) const {
    const std::size_t i = check(id);
    return {values_.data() + node_offset_[i], node_size_[i]};
  }
  /// Valid after backward(); a reset tape's grads are stale until then.
  std::span<const double> grad(NodeId id) const {
    const std::size_t i = check(id);
    return {grads_.data() + node_offset_[i], node_size_[i]};
  }
  std::size_t size(NodeId id) const { return node_size_[check(id)]; }

  /// Zeroes the grad arena, seeds d(root)/d(root) = 1 (root must be a
  /// scalar, i.e. size 1) and replays every recorded op's backward in
  /// reverse order.
  void backward(NodeId root);

  /// Multi-root backward for batched-tape execution: seeds every root (all
  /// scalars) with gradient 1 and replays the op log once. Intended for N
  /// independent designs recorded into one tape — their subgraphs are
  /// disjoint, so one replay yields exactly the gradients N separate
  /// backward() calls would have produced.
  void backward_multi(std::span<const NodeId> roots);

  /// Rewinds the tape to empty, keeping arena/pool/record capacity. After
  /// the first reset the tape is "warm": any further capacity growth bumps
  /// the obs.ad.arena_regrowth counter metric.
  void reset();

  std::size_t node_count() const { return node_size_.size(); }
  /// High-water bytes held by the tape across its lifetime — arena and pool
  /// capacities, not the live-slice sum — the Fig. 5b "GPU memory" proxy.
  /// Monotone under reuse: reset() keeps capacity, so this reports the peak.
  std::size_t memory_bytes() const;

  // ---- op-author interface (used by ops.cpp) ------------------------------
  /// New node with a zero-initialised value slice.
  NodeId make_node(std::size_t size);
  /// New node whose value slice the op overwrites entirely (skips the zero).
  NodeId make_node_uninit(std::size_t size);
  std::span<float> mutable_value(NodeId id) {
    const std::size_t i = check(id);
    return {values_.data() + node_offset_[i], node_size_[i]};
  }
  std::span<double> mutable_grad(NodeId id) {
    const std::size_t i = check(id);
    return {grads_.data() + node_offset_[i], node_size_[i]};
  }

  /// Copies `n` floats/ints into the tape-owned pool; returns the offset.
  /// Pool data lives until reset() — ops stash weights and scratch here
  /// instead of capturing copies.
  std::uint32_t own_floats(const float* data, std::size_t n);
  std::uint32_t own_ints(const std::int32_t* data, std::size_t n);
  /// Uninitialised float-pool scratch (e.g. fused-overflow activations).
  std::uint32_t alloc_scratch_floats(std::size_t n);
  float* pool_floats(std::uint32_t off) { return float_pool_.data() + off; }
  const float* pool_floats(std::uint32_t off) const { return float_pool_.data() + off; }
  const std::int32_t* pool_ints(std::uint32_t off) const { return int_pool_.data() + off; }

  /// Appends a typed op record; records replay in reverse append order.
  void push_record(const OpRecord& record);

 private:
  std::size_t check(NodeId id) const;
  /// Grows the value/grad arenas to `needed` elements (counting regrowth
  /// when warm) and returns the slice offset.
  std::uint32_t grow_arena(std::size_t size);
  void note_regrowth();

  // Node table (SoA): offset into the arenas + slice length per node.
  std::vector<std::uint32_t> node_offset_;
  std::vector<std::uint32_t> node_size_;

  std::vector<float> values_;   ///< one float arena for every node value
  std::vector<double> grads_;   ///< one double arena for every node grad
  std::vector<float> float_pool_;      ///< tape-owned weights / scratch
  std::vector<std::int32_t> int_pool_; ///< tape-owned index lists
  std::vector<OpRecord> records_;

  std::size_t arena_used_ = 0;
  bool warm_ = false;  ///< set by reset(); gates the regrowth counter

  // Rotating cache-colour counters (see colored_offset in tape.cpp): arena
  // and pool slices are staggered so consecutive nodes are never
  // 4K-congruent. Reset with the tape so re-recorded layouts are identical.
  std::uint32_t color_ = 0;
  std::uint32_t pool_color_ = 0;
};

}  // namespace dgr::ad
