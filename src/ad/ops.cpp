#include "ad/ops.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace dgr::ad {
namespace {

constexpr std::size_t kParGrain = 2048;

float act_forward(Activation act, float alpha, float v) {
  switch (act) {
    case Activation::kReLU:
      return v > 0.0f ? v : 0.0f;
    case Activation::kSigmoid:
      return 1.0f / (1.0f + std::exp(-v));
    case Activation::kLeakyReLU:
      return v > 0.0f ? v : alpha * 0.01f * v;
    case Activation::kExp:
      return std::exp(std::min(v, 30.0f));
    case Activation::kCELU:
      return v > 0.0f ? v : alpha * (std::exp(std::min(v, 30.0f) / alpha) - 1.0f);
  }
  return 0.0f;
}

// Derivative expressed from input v and output y (cheap for sigmoid/exp).
double act_derivative(Activation act, float alpha, float v, float y) {
  switch (act) {
    case Activation::kReLU:
      return v > 0.0f ? 1.0 : 0.0;
    case Activation::kSigmoid:
      return static_cast<double>(y) * (1.0 - y);
    case Activation::kLeakyReLU:
      return v > 0.0f ? 1.0 : alpha * 0.01;
    case Activation::kExp:
      return v < 30.0f ? static_cast<double>(y) : 0.0;
    case Activation::kCELU:
      return v > 0.0f ? 1.0 : std::exp(std::min(v, 30.0f) / alpha);
  }
  return 0.0;
}

/// Softmax over one group [lo, hi) of (x + noise)/t into y. Identical
/// arithmetic to segment_softmax's per-group loop (bitwise-matching values).
void softmax_group(const float* x, const float* noise, float* y, std::size_t lo,
                   std::size_t hi, float temperature) {
  if (lo == hi) return;
  float mx = -1e30f;
  for (std::size_t i = lo; i < hi; ++i) {
    const float logit = (x[i] + (noise != nullptr ? noise[i] : 0.0f)) / temperature;
    y[i] = logit;  // stage logits in the output buffer
    mx = std::max(mx, logit);
  }
  double denom = 0.0;
  for (std::size_t i = lo; i < hi; ++i) {
    const float e = std::exp(y[i] - mx);
    y[i] = e;
    denom += e;
  }
  const float inv = static_cast<float>(1.0 / denom);
  for (std::size_t i = lo; i < hi; ++i) y[i] *= inv;
}

/// Softmax backward for one group: gx_k += y_k/t * (gy_k - Σ_j gy_j y_j).
void softmax_group_backward(const float* y, const double* gy, double* gx,
                            std::size_t lo, std::size_t hi, float temperature) {
  if (lo == hi) return;
  double dot = 0.0;
  for (std::size_t i = lo; i < hi; ++i) dot += gy[i] * y[i];
  const double inv_t = 1.0 / temperature;
  for (std::size_t i = lo; i < hi; ++i) gx[i] += y[i] * inv_t * (gy[i] - dot);
}

}  // namespace

NodeId segment_softmax(Tape& tape, NodeId x, const std::vector<std::int32_t>& offsets,
                       float temperature, const std::vector<float>* noise) {
  if (offsets.size() < 2) throw std::invalid_argument("segment_softmax: no groups");
  if (temperature <= 0.0f) throw std::invalid_argument("segment_softmax: t must be > 0");
  const std::size_t n = tape.size(x);
  if (static_cast<std::size_t>(offsets.back()) != n) {
    throw std::invalid_argument("segment_softmax: offsets do not cover x");
  }
  if (noise != nullptr && noise->size() != n) {
    throw std::invalid_argument("segment_softmax: noise size mismatch");
  }

  NodeId out = tape.make_node(n);
  {
    const float* xv = tape.value(x).data();
    const float* nz = noise != nullptr ? noise->data() : nullptr;
    float* yv = tape.mutable_value(out).data();
    const std::size_t groups = offsets.size() - 1;
    util::parallel_for(
        0, groups,
        [&](std::size_t g) {
          softmax_group(xv, nz, yv, static_cast<std::size_t>(offsets[g]),
                        static_cast<std::size_t>(offsets[g + 1]), temperature);
        },
        /*grain=*/256);
  }

  tape.record([&tape, x, out, &offsets, temperature] {
    const float* yv = tape.value(out).data();
    const double* gy = tape.grad(out).data();
    double* gx = tape.mutable_grad(x).data();
    const std::size_t groups = offsets.size() - 1;
    util::parallel_for(
        0, groups,
        [&](std::size_t g) {
          softmax_group_backward(yv, gy, gx, static_cast<std::size_t>(offsets[g]),
                                 static_cast<std::size_t>(offsets[g + 1]), temperature);
        },
        /*grain=*/256);
  });
  return out;
}

NodeId gather_mul(Tape& tape, NodeId q, const std::vector<std::int32_t>& index, NodeId p) {
  const std::size_t n = tape.size(p);
  if (index.size() != n) throw std::invalid_argument("gather_mul: index size mismatch");

  NodeId out = tape.make_node(n);
  {
    const std::vector<float>& qv = tape.value(q);
    const std::vector<float>& pv = tape.value(p);
    std::vector<float>& yv = tape.mutable_value(out);
    util::parallel_for_blocked(
        0, n,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            yv[i] = qv[static_cast<std::size_t>(index[i])] * pv[i];
          }
        },
        kParGrain);
  }

  tape.record([&tape, q, p, out, &index, n] {
    const std::vector<float>& qv = tape.value(q);
    const std::vector<float>& pv = tape.value(p);
    const std::vector<double>& gy = tape.grad(out);
    std::vector<double>& gq = tape.mutable_grad(q);
    std::vector<double>& gp = tape.mutable_grad(p);
    util::parallel_for_blocked(
        0, n,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            gp[i] += gy[i] * qv[static_cast<std::size_t>(index[i])];
          }
        },
        kParGrain);
    // q is scattered into from many paths; a serial loop keeps the
    // accumulation deterministic (index runs are contiguous per tree anyway).
    for (std::size_t i = 0; i < n; ++i) {
      gq[static_cast<std::size_t>(index[i])] += gy[i] * pv[i];
    }
  });
  return out;
}

NodeId spmv(Tape& tape, NodeId x, const SparseIncidence& inc) {
  const std::size_t rows = inc.fwd_offsets->size() - 1;
  const std::size_t xs = tape.size(x);
  if (inc.bwd_offsets->size() != xs + 1) {
    throw std::invalid_argument("spmv: transpose rows != x size");
  }
  if (inc.fwd_cols->size() != inc.fwd_weights->size() ||
      inc.bwd_cols->size() != inc.bwd_weights->size() ||
      inc.fwd_cols->size() != inc.bwd_cols->size()) {
    throw std::invalid_argument("spmv: CSR arrays inconsistent");
  }

  NodeId out = tape.make_node(rows);
  {
    const std::vector<float>& xv = tape.value(x);
    std::vector<float>& yv = tape.mutable_value(out);
    const auto& off = *inc.fwd_offsets;
    const auto& cols = *inc.fwd_cols;
    const auto& w = *inc.fwd_weights;
    util::parallel_for_blocked(
        0, rows,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t r = lo; r < hi; ++r) {
            double acc = 0.0;
            for (std::uint32_t k = off[r]; k < off[r + 1]; ++k) {
              acc += static_cast<double>(w[k]) * xv[static_cast<std::size_t>(cols[k])];
            }
            yv[r] = static_cast<float>(acc);
          }
        },
        /*grain=*/512);
  }

  tape.record([&tape, x, out, inc, xs] {
    const std::vector<double>& gy = tape.grad(out);
    std::vector<double>& gx = tape.mutable_grad(x);
    const auto& off = *inc.bwd_offsets;
    const auto& cols = *inc.bwd_cols;
    const auto& w = *inc.bwd_weights;
    util::parallel_for_blocked(
        0, xs,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            double acc = 0.0;
            for (std::uint32_t k = off[i]; k < off[i + 1]; ++k) {
              acc += static_cast<double>(w[k]) * gy[static_cast<std::size_t>(cols[k])];
            }
            gx[i] += acc;
          }
        },
        /*grain=*/512);
  });
  return out;
}

NodeId sub_const(Tape& tape, NodeId x, const std::vector<float>& c) {
  const std::size_t n = tape.size(x);
  if (c.size() != n) throw std::invalid_argument("sub_const: size mismatch");
  NodeId out = tape.make_node(n);
  {
    const std::vector<float>& xv = tape.value(x);
    std::vector<float>& yv = tape.mutable_value(out);
    util::parallel_for_blocked(
        0, n,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) yv[i] = xv[i] - c[i];
        },
        kParGrain);
  }
  tape.record([&tape, x, out, n] {
    const std::vector<double>& gy = tape.grad(out);
    std::vector<double>& gx = tape.mutable_grad(x);
    util::parallel_for_blocked(
        0, n,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) gx[i] += gy[i];
        },
        kParGrain);
  });
  return out;
}

const char* activation_name(Activation a) {
  switch (a) {
    case Activation::kReLU: return "ReLU";
    case Activation::kSigmoid: return "sigmoid";
    case Activation::kLeakyReLU: return "LeakyReLU";
    case Activation::kExp: return "exp";
    case Activation::kCELU: return "CELU";
  }
  return "?";
}

NodeId apply_activation(Tape& tape, NodeId x, Activation act, float alpha) {
  const std::size_t n = tape.size(x);
  NodeId out = tape.make_node(n);

  {
    const std::vector<float>& xv = tape.value(x);
    std::vector<float>& yv = tape.mutable_value(out);
    util::parallel_for_blocked(
        0, n,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) yv[i] = act_forward(act, alpha, xv[i]);
        },
        kParGrain);
  }
  tape.record([&tape, x, out, n, act, alpha] {
    const std::vector<float>& xv = tape.value(x);
    const std::vector<float>& yv = tape.value(out);
    const std::vector<double>& gy = tape.grad(out);
    std::vector<double>& gx = tape.mutable_grad(x);
    util::parallel_for_blocked(
        0, n,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            gx[i] += gy[i] * act_derivative(act, alpha, xv[i], yv[i]);
          }
        },
        kParGrain);
  });
  return out;
}

NodeId weighted_sum(Tape& tape, NodeId x, const std::vector<float>& w) {
  const std::size_t n = tape.size(x);
  if (!w.empty() && w.size() != n) throw std::invalid_argument("weighted_sum: size mismatch");
  NodeId out = tape.make_node(1);
  {
    const std::vector<float>& xv = tape.value(x);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += static_cast<double>(xv[i]) * (w.empty() ? 1.0 : w[i]);
    tape.mutable_value(out)[0] = static_cast<float>(acc);
  }
  // The weight vector is copied into the closure: callers often pass
  // temporaries and the backward pass runs long after this call returns.
  tape.record([&tape, x, out, n, w] {
    const double g = tape.grad(out)[0];
    std::vector<double>& gx = tape.mutable_grad(x);
    util::parallel_for_blocked(
        0, n,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) gx[i] += g * (w.empty() ? 1.0 : w[i]);
        },
        kParGrain);
  });
  return out;
}

FusedSelectionDemand fused_softmax_demand(
    Tape& tape, NodeId path_logits, NodeId tree_logits,
    const std::vector<std::int32_t>& path_offsets,
    const std::vector<std::int32_t>& tree_offsets,
    const std::vector<std::int32_t>& path_tree,
    const std::vector<std::int32_t>& tree_path_offsets, const SparseIncidence& inc,
    float temperature, const std::vector<float>* path_noise,
    const std::vector<float>* tree_noise) {
  DGR_TRACE_SCOPE("ad.fused_softmax_demand");
  const std::size_t np = tape.size(path_logits);
  const std::size_t nt = tape.size(tree_logits);
  if (path_offsets.size() < 2 || tree_offsets.size() < 2) {
    throw std::invalid_argument("fused_softmax_demand: no groups");
  }
  if (temperature <= 0.0f) {
    throw std::invalid_argument("fused_softmax_demand: t must be > 0");
  }
  if (static_cast<std::size_t>(path_offsets.back()) != np ||
      static_cast<std::size_t>(tree_offsets.back()) != nt) {
    throw std::invalid_argument("fused_softmax_demand: offsets do not cover logits");
  }
  if (path_tree.size() != np) {
    throw std::invalid_argument("fused_softmax_demand: path_tree size mismatch");
  }
  if (tree_path_offsets.size() != nt + 1 ||
      static_cast<std::size_t>(tree_path_offsets.back()) != np) {
    throw std::invalid_argument("fused_softmax_demand: tree_path_offsets mismatch");
  }
  if ((path_noise != nullptr && path_noise->size() != np) ||
      (tree_noise != nullptr && tree_noise->size() != nt)) {
    throw std::invalid_argument("fused_softmax_demand: noise size mismatch");
  }
  if (inc.bwd_offsets->size() != np + 1) {
    throw std::invalid_argument("fused_softmax_demand: transpose rows != path count");
  }
  if (inc.fwd_cols->size() != inc.fwd_weights->size() ||
      inc.bwd_cols->size() != inc.bwd_weights->size() ||
      inc.fwd_cols->size() != inc.bwd_cols->size()) {
    throw std::invalid_argument("fused_softmax_demand: CSR arrays inconsistent");
  }

  const std::size_t n_edges = inc.fwd_offsets->size() - 1;
  const std::size_t n_pgroups = path_offsets.size() - 1;
  const std::size_t n_tgroups = tree_offsets.size() - 1;

  FusedSelectionDemand out;
  out.p = tape.make_node(np);
  out.q = tape.make_node(nt);
  out.eff = tape.make_node(np);
  out.demand = tape.make_node(n_edges);

  {
    // Raw pointers taken after every make_node (node storage is stable for
    // the rest of this call). One fused job: softmaxes | eff | demand.
    const float* xp = tape.value(path_logits).data();
    const float* xq = tape.value(tree_logits).data();
    const float* nzp = path_noise != nullptr ? path_noise->data() : nullptr;
    const float* nzq = tree_noise != nullptr ? tree_noise->data() : nullptr;
    float* pv = tape.mutable_value(out.p).data();
    float* qv = tape.mutable_value(out.q).data();
    float* effv = tape.mutable_value(out.eff).data();
    float* dv = tape.mutable_value(out.demand).data();
    const std::uint32_t* off = inc.fwd_offsets->data();
    const std::int32_t* cols = inc.fwd_cols->data();
    const float* w = inc.fwd_weights->data();

    util::ParallelRuntime::fused(
        // Stage 1: both softmaxes share one index space [0, |S|+|N|) — they
        // are independent, so no barrier is needed between them. Each chunk
        // splits at the path/tree boundary once, keeping the loops tight.
        util::stage_blocked(
            0, n_pgroups + n_tgroups, 256,
            [=, &path_offsets, &tree_offsets](std::size_t lo, std::size_t hi) {
              for (std::size_t g = lo, pe = hi < n_pgroups ? hi : n_pgroups; g < pe; ++g) {
                softmax_group(xp, nzp, pv, static_cast<std::size_t>(path_offsets[g]),
                              static_cast<std::size_t>(path_offsets[g + 1]), temperature);
              }
              for (std::size_t g = lo > n_pgroups ? lo : n_pgroups; g < hi; ++g) {
                const std::size_t t = g - n_pgroups;
                softmax_group(xq, nzq, qv, static_cast<std::size_t>(tree_offsets[t]),
                              static_cast<std::size_t>(tree_offsets[t + 1]), temperature);
              }
            }),
        // Stage 2: eff_i = q[path_tree[i]] * p_i.
        util::stage_blocked(0, np, kParGrain,
                            [=, &path_tree](std::size_t lo, std::size_t hi) {
                              for (std::size_t i = lo; i < hi; ++i) {
                                effv[i] =
                                    qv[static_cast<std::size_t>(path_tree[i])] * pv[i];
                              }
                            }),
        // Stage 3: expected demand per edge (edge-major CSR rows).
        util::stage_blocked(0, n_edges, 512, [=](std::size_t lo, std::size_t hi) {
          for (std::size_t r = lo; r < hi; ++r) {
            double acc = 0.0;
            for (std::uint32_t k = off[r]; k < off[r + 1]; ++k) {
              acc += static_cast<double>(w[k]) * effv[static_cast<std::size_t>(cols[k])];
            }
            dv[r] = static_cast<float>(acc);
          }
        }));
  }

  tape.record([&tape, path_logits, tree_logits, out, &path_offsets, &tree_offsets,
               &path_tree, &tree_path_offsets, inc, temperature, np, nt, n_pgroups,
               n_tgroups] {
    DGR_TRACE_SCOPE("ad.fused_softmax_demand.bwd");
    const float* pv = tape.value(out.p).data();
    const float* qv = tape.value(out.q).data();
    const double* gdemand = tape.grad(out.demand).data();
    double* geff = tape.mutable_grad(out.eff).data();  // += wl/via contributions
    double* gp = tape.mutable_grad(out.p).data();
    double* gq = tape.mutable_grad(out.q).data();
    double* gxp = tape.mutable_grad(path_logits).data();
    double* gxq = tape.mutable_grad(tree_logits).data();
    const std::uint32_t* boff = inc.bwd_offsets->data();
    const std::int32_t* bcols = inc.bwd_cols->data();
    const float* bw = inc.bwd_weights->data();

    util::ParallelRuntime::fused(
        // Stage 1: demand -> eff through the transpose CSR (path-owned rows);
        // geff then holds the TOTAL upstream gradient of eff.
        util::stage_blocked(0, np, 512, [=](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            double acc = 0.0;
            for (std::uint32_t k = boff[i]; k < boff[i + 1]; ++k) {
              acc += static_cast<double>(bw[k]) * gdemand[static_cast<std::size_t>(bcols[k])];
            }
            geff[i] += acc;
          }
        }),
        // Stage 2: eff -> (p, q). gp rows are path-owned; gq rows are
        // tree-owned thanks to tree_path_offsets (paths are tree-major), so
        // no serial scatter is needed — both shards share one index space.
        util::stage_blocked(
            0, np + nt, kParGrain,
            [=, &path_tree, &tree_path_offsets](std::size_t lo, std::size_t hi) {
              for (std::size_t idx = lo, pe = hi < np ? hi : np; idx < pe; ++idx) {
                gp[idx] += geff[idx] * qv[static_cast<std::size_t>(path_tree[idx])];
              }
              for (std::size_t idx = lo > np ? lo : np; idx < hi; ++idx) {
                const std::size_t t = idx - np;
                double acc = 0.0;
                const auto plo = static_cast<std::size_t>(tree_path_offsets[t]);
                const auto phi = static_cast<std::size_t>(tree_path_offsets[t + 1]);
                for (std::size_t i = plo; i < phi; ++i) acc += geff[i] * pv[i];
                gq[t] += acc;
              }
            }),
        // Stage 3: both softmax backwards, sharing one group index space.
        util::stage_blocked(
            0, n_pgroups + n_tgroups, 256,
            [=, &path_offsets, &tree_offsets](std::size_t lo, std::size_t hi) {
              for (std::size_t g = lo, pe = hi < n_pgroups ? hi : n_pgroups; g < pe; ++g) {
                softmax_group_backward(pv, gp, gxp,
                                       static_cast<std::size_t>(path_offsets[g]),
                                       static_cast<std::size_t>(path_offsets[g + 1]),
                                       temperature);
              }
              for (std::size_t g = lo > n_pgroups ? lo : n_pgroups; g < hi; ++g) {
                const std::size_t t = g - n_pgroups;
                softmax_group_backward(qv, gq, gxq,
                                       static_cast<std::size_t>(tree_offsets[t]),
                                       static_cast<std::size_t>(tree_offsets[t + 1]),
                                       temperature);
              }
            }));
  });
  return out;
}

NodeId fused_overflow_cost(Tape& tape, NodeId x, const std::vector<float>& c,
                           Activation act, float alpha, std::size_t block) {
  DGR_TRACE_SCOPE("ad.fused_overflow_cost");
  const std::size_t n = tape.size(x);
  if (c.size() != n) throw std::invalid_argument("fused_overflow_cost: size mismatch");
  if (block == 0) block = 1;

  NodeId out = tape.make_node(1);
  // The activated values f(x - c) are kept out-of-tape for the backward pass
  // (sigmoid/exp derivatives reuse the forward output, saving a transcendental
  // per element).
  auto activated = std::make_shared<std::vector<float>>(n);
  {
    const float* xv = tape.value(x).data();
    const float* cv = c.data();
    float* av = activated->data();
    // Fixed block decomposition -> owned partial slots -> ordered combine:
    // bitwise identical for any worker count.
    const std::size_t blocks = (n + block - 1) / block;
    std::vector<double> partials(blocks, 0.0);
    util::ParallelRuntime::for_blocked(
        0, blocks,
        [&, xv, cv, av](std::size_t blo, std::size_t bhi) {
          for (std::size_t b = blo; b < bhi; ++b) {
            const std::size_t lo = b * block;
            const std::size_t hi = std::min(n, lo + block);
            double acc = 0.0;
            for (std::size_t i = lo; i < hi; ++i) {
              const float a = act_forward(act, alpha, xv[i] - cv[i]);
              av[i] = a;
              acc += static_cast<double>(a);
            }
            partials[b] = acc;
          }
        },
        /*grain=*/1);
    double total = 0.0;
    for (const double part : partials) total += part;
    tape.mutable_value(out)[0] = static_cast<float>(total);
  }

  // `c` is captured by reference (lifetime contract: it must outlive the tape).
  tape.record([&tape, x, out, &c, act, alpha, n, activated] {
    DGR_TRACE_SCOPE("ad.fused_overflow_cost.bwd");
    const double g = tape.grad(out)[0];
    const float* xv = tape.value(x).data();
    const float* cv = c.data();
    const float* av = activated->data();
    double* gx = tape.mutable_grad(x).data();
    util::ParallelRuntime::for_blocked(
        0, n,
        [=](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            gx[i] += g * act_derivative(act, alpha, xv[i] - cv[i], av[i]);
          }
        },
        kParGrain);
  });
  return out;
}

NodeId combine(Tape& tape, const std::vector<NodeId>& scalars,
               const std::vector<float>& coefs) {
  if (scalars.size() != coefs.size() || scalars.empty()) {
    throw std::invalid_argument("combine: size mismatch");
  }
  NodeId out = tape.make_node(1);
  {
    double acc = 0.0;
    for (std::size_t k = 0; k < scalars.size(); ++k) {
      if (tape.size(scalars[k]) != 1) throw std::invalid_argument("combine: non-scalar input");
      acc += static_cast<double>(coefs[k]) * tape.value(scalars[k])[0];
    }
    tape.mutable_value(out)[0] = static_cast<float>(acc);
  }
  tape.record([&tape, scalars, coefs, out] {
    const double g = tape.grad(out)[0];
    for (std::size_t k = 0; k < scalars.size(); ++k) {
      tape.mutable_grad(scalars[k])[0] += g * coefs[k];
    }
  });
  return out;
}

}  // namespace dgr::ad
