#include "ad/ops.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/parallel.hpp"

namespace dgr::ad {
namespace {

constexpr std::size_t kParGrain = 2048;

}  // namespace

NodeId segment_softmax(Tape& tape, NodeId x, const std::vector<std::int32_t>& offsets,
                       float temperature, const std::vector<float>* noise) {
  if (offsets.size() < 2) throw std::invalid_argument("segment_softmax: no groups");
  if (temperature <= 0.0f) throw std::invalid_argument("segment_softmax: t must be > 0");
  const std::size_t n = tape.size(x);
  if (static_cast<std::size_t>(offsets.back()) != n) {
    throw std::invalid_argument("segment_softmax: offsets do not cover x");
  }
  if (noise != nullptr && noise->size() != n) {
    throw std::invalid_argument("segment_softmax: noise size mismatch");
  }

  NodeId out = tape.make_node(n);
  {
    const std::vector<float>& xv = tape.value(x);
    std::vector<float>& yv = tape.mutable_value(out);
    const std::size_t groups = offsets.size() - 1;
    util::parallel_for(
        0, groups,
        [&](std::size_t g) {
          const auto lo = static_cast<std::size_t>(offsets[g]);
          const auto hi = static_cast<std::size_t>(offsets[g + 1]);
          if (lo == hi) return;
          float mx = -1e30f;
          for (std::size_t i = lo; i < hi; ++i) {
            const float logit = (xv[i] + (noise != nullptr ? (*noise)[i] : 0.0f)) / temperature;
            yv[i] = logit;  // stage logits in the output buffer
            mx = std::max(mx, logit);
          }
          double denom = 0.0;
          for (std::size_t i = lo; i < hi; ++i) {
            const float e = std::exp(yv[i] - mx);
            yv[i] = e;
            denom += e;
          }
          const float inv = static_cast<float>(1.0 / denom);
          for (std::size_t i = lo; i < hi; ++i) yv[i] *= inv;
        },
        /*grain=*/256);
  }

  tape.record([&tape, x, out, &offsets, temperature] {
    const std::vector<float>& yv = tape.value(out);
    const std::vector<double>& gy = tape.grad(out);
    std::vector<double>& gx = tape.mutable_grad(x);
    const std::size_t groups = offsets.size() - 1;
    util::parallel_for(
        0, groups,
        [&](std::size_t g) {
          const auto lo = static_cast<std::size_t>(offsets[g]);
          const auto hi = static_cast<std::size_t>(offsets[g + 1]);
          if (lo == hi) return;
          // d x_k = y_k/t * (g_k - Σ_j g_j y_j)
          double dot = 0.0;
          for (std::size_t i = lo; i < hi; ++i) dot += gy[i] * yv[i];
          const double inv_t = 1.0 / temperature;
          for (std::size_t i = lo; i < hi; ++i) {
            gx[i] += yv[i] * inv_t * (gy[i] - dot);
          }
        },
        /*grain=*/256);
  });
  return out;
}

NodeId gather_mul(Tape& tape, NodeId q, const std::vector<std::int32_t>& index, NodeId p) {
  const std::size_t n = tape.size(p);
  if (index.size() != n) throw std::invalid_argument("gather_mul: index size mismatch");

  NodeId out = tape.make_node(n);
  {
    const std::vector<float>& qv = tape.value(q);
    const std::vector<float>& pv = tape.value(p);
    std::vector<float>& yv = tape.mutable_value(out);
    util::parallel_for_blocked(
        0, n,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            yv[i] = qv[static_cast<std::size_t>(index[i])] * pv[i];
          }
        },
        kParGrain);
  }

  tape.record([&tape, q, p, out, &index, n] {
    const std::vector<float>& qv = tape.value(q);
    const std::vector<float>& pv = tape.value(p);
    const std::vector<double>& gy = tape.grad(out);
    std::vector<double>& gq = tape.mutable_grad(q);
    std::vector<double>& gp = tape.mutable_grad(p);
    util::parallel_for_blocked(
        0, n,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            gp[i] += gy[i] * qv[static_cast<std::size_t>(index[i])];
          }
        },
        kParGrain);
    // q is scattered into from many paths; a serial loop keeps the
    // accumulation deterministic (index runs are contiguous per tree anyway).
    for (std::size_t i = 0; i < n; ++i) {
      gq[static_cast<std::size_t>(index[i])] += gy[i] * pv[i];
    }
  });
  return out;
}

NodeId spmv(Tape& tape, NodeId x, const SparseIncidence& inc) {
  const std::size_t rows = inc.fwd_offsets->size() - 1;
  const std::size_t xs = tape.size(x);
  if (inc.bwd_offsets->size() != xs + 1) {
    throw std::invalid_argument("spmv: transpose rows != x size");
  }
  if (inc.fwd_cols->size() != inc.fwd_weights->size() ||
      inc.bwd_cols->size() != inc.bwd_weights->size() ||
      inc.fwd_cols->size() != inc.bwd_cols->size()) {
    throw std::invalid_argument("spmv: CSR arrays inconsistent");
  }

  NodeId out = tape.make_node(rows);
  {
    const std::vector<float>& xv = tape.value(x);
    std::vector<float>& yv = tape.mutable_value(out);
    const auto& off = *inc.fwd_offsets;
    const auto& cols = *inc.fwd_cols;
    const auto& w = *inc.fwd_weights;
    util::parallel_for_blocked(
        0, rows,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t r = lo; r < hi; ++r) {
            double acc = 0.0;
            for (std::uint32_t k = off[r]; k < off[r + 1]; ++k) {
              acc += static_cast<double>(w[k]) * xv[static_cast<std::size_t>(cols[k])];
            }
            yv[r] = static_cast<float>(acc);
          }
        },
        /*grain=*/512);
  }

  tape.record([&tape, x, out, inc, xs] {
    const std::vector<double>& gy = tape.grad(out);
    std::vector<double>& gx = tape.mutable_grad(x);
    const auto& off = *inc.bwd_offsets;
    const auto& cols = *inc.bwd_cols;
    const auto& w = *inc.bwd_weights;
    util::parallel_for_blocked(
        0, xs,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            double acc = 0.0;
            for (std::uint32_t k = off[i]; k < off[i + 1]; ++k) {
              acc += static_cast<double>(w[k]) * gy[static_cast<std::size_t>(cols[k])];
            }
            gx[i] += acc;
          }
        },
        /*grain=*/512);
  });
  return out;
}

NodeId sub_const(Tape& tape, NodeId x, const std::vector<float>& c) {
  const std::size_t n = tape.size(x);
  if (c.size() != n) throw std::invalid_argument("sub_const: size mismatch");
  NodeId out = tape.make_node(n);
  {
    const std::vector<float>& xv = tape.value(x);
    std::vector<float>& yv = tape.mutable_value(out);
    util::parallel_for_blocked(
        0, n,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) yv[i] = xv[i] - c[i];
        },
        kParGrain);
  }
  tape.record([&tape, x, out, n] {
    const std::vector<double>& gy = tape.grad(out);
    std::vector<double>& gx = tape.mutable_grad(x);
    util::parallel_for_blocked(
        0, n,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) gx[i] += gy[i];
        },
        kParGrain);
  });
  return out;
}

const char* activation_name(Activation a) {
  switch (a) {
    case Activation::kReLU: return "ReLU";
    case Activation::kSigmoid: return "sigmoid";
    case Activation::kLeakyReLU: return "LeakyReLU";
    case Activation::kExp: return "exp";
    case Activation::kCELU: return "CELU";
  }
  return "?";
}

NodeId apply_activation(Tape& tape, NodeId x, Activation act, float alpha) {
  const std::size_t n = tape.size(x);
  NodeId out = tape.make_node(n);

  auto fwd = [act, alpha](float v) -> float {
    switch (act) {
      case Activation::kReLU:
        return v > 0.0f ? v : 0.0f;
      case Activation::kSigmoid:
        return 1.0f / (1.0f + std::exp(-v));
      case Activation::kLeakyReLU:
        return v > 0.0f ? v : alpha * 0.01f * v;
      case Activation::kExp:
        return std::exp(std::min(v, 30.0f));
      case Activation::kCELU:
        return v > 0.0f ? v : alpha * (std::exp(std::min(v, 30.0f) / alpha) - 1.0f);
    }
    return 0.0f;
  };
  // Derivative expressed from input v and output y (cheap for sigmoid/exp).
  auto deriv = [act, alpha](float v, float y) -> double {
    switch (act) {
      case Activation::kReLU:
        return v > 0.0f ? 1.0 : 0.0;
      case Activation::kSigmoid:
        return static_cast<double>(y) * (1.0 - y);
      case Activation::kLeakyReLU:
        return v > 0.0f ? 1.0 : alpha * 0.01;
      case Activation::kExp:
        return v < 30.0f ? static_cast<double>(y) : 0.0;
      case Activation::kCELU:
        return v > 0.0f ? 1.0 : std::exp(std::min(v, 30.0f) / alpha);
    }
    return 0.0;
  };

  {
    const std::vector<float>& xv = tape.value(x);
    std::vector<float>& yv = tape.mutable_value(out);
    util::parallel_for_blocked(
        0, n,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) yv[i] = fwd(xv[i]);
        },
        kParGrain);
  }
  tape.record([&tape, x, out, n, deriv] {
    const std::vector<float>& xv = tape.value(x);
    const std::vector<float>& yv = tape.value(out);
    const std::vector<double>& gy = tape.grad(out);
    std::vector<double>& gx = tape.mutable_grad(x);
    util::parallel_for_blocked(
        0, n,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) gx[i] += gy[i] * deriv(xv[i], yv[i]);
        },
        kParGrain);
  });
  return out;
}

NodeId weighted_sum(Tape& tape, NodeId x, const std::vector<float>& w) {
  const std::size_t n = tape.size(x);
  if (!w.empty() && w.size() != n) throw std::invalid_argument("weighted_sum: size mismatch");
  NodeId out = tape.make_node(1);
  {
    const std::vector<float>& xv = tape.value(x);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += static_cast<double>(xv[i]) * (w.empty() ? 1.0 : w[i]);
    tape.mutable_value(out)[0] = static_cast<float>(acc);
  }
  // The weight vector is copied into the closure: callers often pass
  // temporaries and the backward pass runs long after this call returns.
  tape.record([&tape, x, out, n, w] {
    const double g = tape.grad(out)[0];
    std::vector<double>& gx = tape.mutable_grad(x);
    util::parallel_for_blocked(
        0, n,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) gx[i] += g * (w.empty() ? 1.0 : w[i]);
        },
        kParGrain);
  });
  return out;
}

NodeId combine(Tape& tape, const std::vector<NodeId>& scalars,
               const std::vector<float>& coefs) {
  if (scalars.size() != coefs.size() || scalars.empty()) {
    throw std::invalid_argument("combine: size mismatch");
  }
  NodeId out = tape.make_node(1);
  {
    double acc = 0.0;
    for (std::size_t k = 0; k < scalars.size(); ++k) {
      if (tape.size(scalars[k]) != 1) throw std::invalid_argument("combine: non-scalar input");
      acc += static_cast<double>(coefs[k]) * tape.value(scalars[k])[0];
    }
    tape.mutable_value(out)[0] = static_cast<float>(acc);
  }
  tape.record([&tape, scalars, coefs, out] {
    const double g = tape.grad(out)[0];
    for (std::size_t k = 0; k < scalars.size(); ++k) {
      tape.mutable_grad(scalars[k])[0] += g * coefs[k];
    }
  });
  return out;
}

}  // namespace dgr::ad
