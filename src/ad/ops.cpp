#include "ad/ops.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "ad/simd.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace dgr::ad {
namespace {

constexpr std::size_t kParGrain = 2048;

/// Records store raw node indices; wrap them back for tape accessors.
inline NodeId nid(std::int32_t idx) { return NodeId{idx}; }

float act_forward(Activation act, float alpha, float v) {
  switch (act) {
    case Activation::kReLU:
      return v > 0.0f ? v : 0.0f;
    case Activation::kSigmoid:
      return 1.0f / (1.0f + std::exp(-v));
    case Activation::kLeakyReLU:
      return v > 0.0f ? v : alpha * 0.01f * v;
    case Activation::kExp:
      return std::exp(std::min(v, 30.0f));
    case Activation::kCELU:
      return v > 0.0f ? v : alpha * (std::exp(std::min(v, 30.0f) / alpha) - 1.0f);
  }
  return 0.0f;
}

// Derivative expressed from input v and output y (cheap for sigmoid/exp).
double act_derivative(Activation act, float alpha, float v, float y) {
  switch (act) {
    case Activation::kReLU:
      return v > 0.0f ? 1.0 : 0.0;
    case Activation::kSigmoid:
      return static_cast<double>(y) * (1.0 - y);
    case Activation::kLeakyReLU:
      return v > 0.0f ? 1.0 : alpha * 0.01;
    case Activation::kExp:
      return v < 30.0f ? static_cast<double>(y) : 0.0;
    case Activation::kCELU:
      return v > 0.0f ? 1.0 : std::exp(std::min(v, 30.0f) / alpha);
  }
  return 0.0;
}

/// Softmax over one group [lo, hi) of (x + noise)/t into y — the scalar
/// kernel, bitwise worker-count deterministic.
void softmax_group(const float* x, const float* noise, float* y, std::size_t lo,
                   std::size_t hi, float temperature) {
  if (lo == hi) return;
  float mx = -1e30f;
  for (std::size_t i = lo; i < hi; ++i) {
    const float logit = (x[i] + (noise != nullptr ? noise[i] : 0.0f)) / temperature;
    y[i] = logit;  // stage logits in the output buffer
    mx = std::max(mx, logit);
  }
  double denom = 0.0;
  for (std::size_t i = lo; i < hi; ++i) {
    const float e = std::exp(y[i] - mx);
    y[i] = e;
    denom += e;
  }
  const float inv = static_cast<float>(1.0 / denom);
  for (std::size_t i = lo; i < hi; ++i) y[i] *= inv;
}

/// Softmax forward over a CHUNK of groups [glo, ghi). Groups are adjacent in
/// the offsets array, so the chunk's elements form one stride-1 range
/// [offsets[glo], offsets[ghi]) — the SoA property the SIMD path exploits:
/// DGR's groups are tiny (path pairs, tree candidates), so per-group
/// vectorization is useless; instead the scalar passes stage (logit − max)
/// per group and ONE vectorized exp sweep covers the whole chunk, with a
/// scalar per-group normalize after. The scalar path keeps softmax_group's
/// exact arithmetic.
void softmax_groups(const float* x, const float* noise, float* y,
                    const std::int32_t* offsets, std::size_t glo, std::size_t ghi,
                    float temperature) {
  if (glo == ghi) return;
  if (!simd::active()) {
    for (std::size_t g = glo; g < ghi; ++g) {
      softmax_group(x, noise, y, static_cast<std::size_t>(offsets[g]),
                    static_cast<std::size_t>(offsets[g + 1]), temperature);
    }
    return;
  }
  for (std::size_t g = glo; g < ghi; ++g) {
    const auto lo = static_cast<std::size_t>(offsets[g]);
    const auto hi = static_cast<std::size_t>(offsets[g + 1]);
    if (lo == hi) continue;
    float mx = -1e30f;
    for (std::size_t i = lo; i < hi; ++i) {
      const float logit = (x[i] + (noise != nullptr ? noise[i] : 0.0f)) / temperature;
      y[i] = logit;
      mx = std::max(mx, logit);
    }
    for (std::size_t i = lo; i < hi; ++i) y[i] -= mx;
  }
  // Absolute-anchored sweep: the lane grid depends on y's index space, not
  // on where this worker's group chunk happens to start, so worker-count
  // bitwise invariance survives the data-dependent chunk boundaries.
  simd::exp_sweep(y, static_cast<std::size_t>(offsets[glo]),
                  static_cast<std::size_t>(offsets[ghi]));
  for (std::size_t g = glo; g < ghi; ++g) {
    const auto lo = static_cast<std::size_t>(offsets[g]);
    const auto hi = static_cast<std::size_t>(offsets[g + 1]);
    if (lo == hi) continue;
    double denom = 0.0;
    for (std::size_t i = lo; i < hi; ++i) denom += y[i];
    const float inv = static_cast<float>(1.0 / denom);
    for (std::size_t i = lo; i < hi; ++i) y[i] *= inv;
  }
}

/// Softmax backward for one group: gx_k += y_k/t * (gy_k - Σ_j gy_j y_j).
void softmax_group_backward(const float* y, const double* gy, double* gx,
                            std::size_t lo, std::size_t hi, float temperature) {
  if (lo == hi) return;
  double dot = 0.0;
  for (std::size_t i = lo; i < hi; ++i) dot += gy[i] * y[i];
  const double inv_t = 1.0 / temperature;
  for (std::size_t i = lo; i < hi; ++i) gx[i] += y[i] * inv_t * (gy[i] - dot);
}

void softmax_groups_backward(const float* y, const double* gy, double* gx,
                             const std::int32_t* offsets, std::size_t glo,
                             std::size_t ghi, float temperature) {
  for (std::size_t g = glo; g < ghi; ++g) {
    softmax_group_backward(y, gy, gx, static_cast<std::size_t>(offsets[g]),
                           static_cast<std::size_t>(offsets[g + 1]), temperature);
  }
}

void gather_mul_range(const float* q, const std::int32_t* index, const float* p,
                      float* out, std::size_t lo, std::size_t hi) {
  if (simd::active()) {
    simd::gather_mul(q, index + lo, p + lo, out + lo, hi - lo);
    return;
  }
  for (std::size_t i = lo; i < hi; ++i) {
    out[i] = q[static_cast<std::size_t>(index[i])] * p[i];
  }
}

// ---------------------------------------------------------------------------
// Backward kernels, one per OpKind — called from detail::run_backward.
// Pointers are taken from the tape at replay time: backward creates no
// nodes, so the arenas are stable for the whole reverse sweep.
// ---------------------------------------------------------------------------

void backward_segment_softmax(Tape& tape, const OpRecord& rec) {
  const auto& r = rec.u.softmax;
  const float* yv = tape.value(nid(r.out)).data();
  const double* gy = tape.grad(nid(r.out)).data();
  double* gx = tape.mutable_grad(nid(r.x)).data();
  const float temperature = rec.scalar;
  util::parallel_for_blocked(
      0, static_cast<std::size_t>(r.groups),
      [&](std::size_t lo, std::size_t hi) {
        softmax_groups_backward(yv, gy, gx, r.offsets, lo, hi, temperature);
      },
      /*grain=*/256);
}

void backward_gather_mul(Tape& tape, const OpRecord& rec) {
  const auto& r = rec.u.gather;
  const std::size_t n = r.n;
  const float* qv = tape.value(nid(r.q)).data();
  const float* pv = tape.value(nid(r.p)).data();
  const double* gy = tape.grad(nid(r.out)).data();
  double* gq = tape.mutable_grad(nid(r.q)).data();
  double* gp = tape.mutable_grad(nid(r.p)).data();
  const std::int32_t* index = r.index;
  util::parallel_for_blocked(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          gp[i] += gy[i] * qv[static_cast<std::size_t>(index[i])];
        }
      },
      kParGrain);
  // q is scattered into from many paths; a serial loop keeps the
  // accumulation deterministic (index runs are contiguous per tree anyway).
  for (std::size_t i = 0; i < n; ++i) {
    gq[static_cast<std::size_t>(index[i])] += gy[i] * pv[i];
  }
}

void backward_spmv(Tape& tape, const OpRecord& rec) {
  const auto& r = rec.u.spmv;
  const double* gy = tape.grad(nid(r.out)).data();
  double* gx = tape.mutable_grad(nid(r.x)).data();
  const std::uint32_t* off = r.offsets;
  const std::int32_t* cols = r.cols;
  const float* w = r.weights;
  util::parallel_for_blocked(
      0, static_cast<std::size_t>(r.rows),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          double acc = 0.0;
          for (std::uint32_t k = off[i]; k < off[i + 1]; ++k) {
            acc += static_cast<double>(w[k]) * gy[static_cast<std::size_t>(cols[k])];
          }
          gx[i] += acc;
        }
      },
      /*grain=*/512);
}

void backward_sub_const(Tape& tape, const OpRecord& rec) {
  const auto& r = rec.u.subc;
  const double* gy = tape.grad(nid(r.out)).data();
  double* gx = tape.mutable_grad(nid(r.x)).data();
  util::parallel_for_blocked(
      0, static_cast<std::size_t>(r.n),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) gx[i] += gy[i];
      },
      kParGrain);
}

void backward_activation(Tape& tape, const OpRecord& rec) {
  const auto& r = rec.u.activation;
  const auto act = static_cast<Activation>(rec.act);
  const float alpha = rec.scalar;
  const float* xv = tape.value(nid(r.x)).data();
  const float* yv = tape.value(nid(r.out)).data();
  const double* gy = tape.grad(nid(r.out)).data();
  double* gx = tape.mutable_grad(nid(r.x)).data();
  util::parallel_for_blocked(
      0, static_cast<std::size_t>(r.n),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          gx[i] += gy[i] * act_derivative(act, alpha, xv[i], yv[i]);
        }
      },
      kParGrain);
}

void backward_weighted_sum(Tape& tape, const OpRecord& rec) {
  const auto& r = rec.u.wsum;
  const double g = tape.grad(nid(r.out))[0];
  double* gx = tape.mutable_grad(nid(r.x)).data();
  const float* w = r.w_len != 0 ? tape.pool_floats(r.w_off) : nullptr;
  util::parallel_for_blocked(
      0, static_cast<std::size_t>(r.n),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) gx[i] += g * (w != nullptr ? w[i] : 1.0);
      },
      kParGrain);
}

void backward_combine(Tape& tape, const OpRecord& rec) {
  const auto& r = rec.u.combine;
  const double g = tape.grad(nid(r.out))[0];
  const std::int32_t* ids = tape.pool_ints(r.ids_off);
  const float* coefs = tape.pool_floats(r.coef_off);
  for (std::uint32_t k = 0; k < r.count; ++k) {
    tape.mutable_grad(NodeId{ids[k]})[0] += g * coefs[k];
  }
}

void backward_fused_sel(Tape& tape, const OpRecord& rec) {
  DGR_TRACE_SCOPE("ad.fused_softmax_demand.bwd");
  const auto& r = rec.u.fused_sel;
  const float temperature = rec.scalar;
  const std::size_t np = r.np;
  const std::size_t nt = r.nt;
  const std::size_t n_pgroups = r.n_pgroups;
  const std::size_t n_tgroups = r.n_tgroups;
  const float* pv = tape.value(nid(r.p)).data();
  const float* qv = tape.value(nid(r.q)).data();
  const double* gdemand = tape.grad(nid(r.demand)).data();
  double* geff = tape.mutable_grad(nid(r.eff)).data();  // += wl/via contributions
  double* gp = tape.mutable_grad(nid(r.p)).data();
  double* gq = tape.mutable_grad(nid(r.q)).data();
  double* gxp = tape.mutable_grad(nid(r.path_logits)).data();
  double* gxq = tape.mutable_grad(nid(r.tree_logits)).data();
  const std::uint32_t* boff = r.bwd_offsets;
  const std::int32_t* bcols = r.bwd_cols;
  const float* bw = r.bwd_weights;
  const std::int32_t* path_offsets = r.path_offsets;
  const std::int32_t* tree_offsets = r.tree_offsets;
  const std::int32_t* path_tree = r.path_tree;
  const std::int32_t* tree_path_offsets = r.tree_path_offsets;

  util::ParallelRuntime::fused(
      // Stage 1: demand -> eff through the transpose CSR (path-owned rows);
      // geff then holds the TOTAL upstream gradient of eff.
      util::stage_blocked(0, np, 512, [=](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          double acc = 0.0;
          for (std::uint32_t k = boff[i]; k < boff[i + 1]; ++k) {
            acc += static_cast<double>(bw[k]) * gdemand[static_cast<std::size_t>(bcols[k])];
          }
          geff[i] += acc;
        }
      }),
      // Stage 2: eff -> (p, q). gp rows are path-owned; gq rows are
      // tree-owned thanks to tree_path_offsets (paths are tree-major), so
      // no serial scatter is needed — both shards share one index space.
      util::stage_blocked(0, np + nt, kParGrain, [=](std::size_t lo, std::size_t hi) {
        for (std::size_t idx = lo, pe = hi < np ? hi : np; idx < pe; ++idx) {
          gp[idx] += geff[idx] * qv[static_cast<std::size_t>(path_tree[idx])];
        }
        for (std::size_t idx = lo > np ? lo : np; idx < hi; ++idx) {
          const std::size_t t = idx - np;
          double acc = 0.0;
          const auto plo = static_cast<std::size_t>(tree_path_offsets[t]);
          const auto phi = static_cast<std::size_t>(tree_path_offsets[t + 1]);
          for (std::size_t i = plo; i < phi; ++i) acc += geff[i] * pv[i];
          gq[t] += acc;
        }
      }),
      // Stage 3: both softmax backwards, sharing one group index space.
      util::stage_blocked(
          0, n_pgroups + n_tgroups, 256, [=](std::size_t lo, std::size_t hi) {
            const std::size_t pe = hi < n_pgroups ? hi : n_pgroups;
            if (lo < pe) {
              softmax_groups_backward(pv, gp, gxp, path_offsets, lo, pe, temperature);
            }
            const std::size_t tlo = lo > n_pgroups ? lo : n_pgroups;
            if (tlo < hi) {
              softmax_groups_backward(qv, gq, gxq, tree_offsets, tlo - n_pgroups,
                                      hi - n_pgroups, temperature);
            }
          }));
}

void backward_fused_overflow(Tape& tape, const OpRecord& rec) {
  DGR_TRACE_SCOPE("ad.fused_overflow_cost.bwd");
  const auto& r = rec.u.fused_over;
  const auto act = static_cast<Activation>(rec.act);
  const float alpha = rec.scalar;
  const std::size_t n = r.n;
  const double g = tape.grad(nid(r.out))[0];
  const float* xv = tape.value(nid(r.x)).data();
  const float* cv = r.c;
  const float* av = tape.pool_floats(r.scratch_off);
  double* gx = tape.mutable_grad(nid(r.x)).data();
  util::ParallelRuntime::for_blocked(
      0, n,
      [=](std::size_t lo, std::size_t hi) {
        if (simd::active()) {
          simd::overflow_backward(act, alpha, g, xv + lo, cv + lo, av + lo, gx + lo,
                                  hi - lo);
          return;
        }
        for (std::size_t i = lo; i < hi; ++i) {
          gx[i] += g * act_derivative(act, alpha, xv[i] - cv[i], av[i]);
        }
      },
      kParGrain);
}

}  // namespace

namespace detail {

void run_backward(Tape& tape, const OpRecord& rec) {
  switch (rec.kind) {
    case OpKind::kSegmentSoftmax:
      backward_segment_softmax(tape, rec);
      return;
    case OpKind::kGatherMul:
      backward_gather_mul(tape, rec);
      return;
    case OpKind::kSpmv:
      backward_spmv(tape, rec);
      return;
    case OpKind::kSubConst:
      backward_sub_const(tape, rec);
      return;
    case OpKind::kActivation:
      backward_activation(tape, rec);
      return;
    case OpKind::kWeightedSum:
      backward_weighted_sum(tape, rec);
      return;
    case OpKind::kCombine:
      backward_combine(tape, rec);
      return;
    case OpKind::kFusedSoftmaxDemand:
      backward_fused_sel(tape, rec);
      return;
    case OpKind::kFusedOverflow:
      backward_fused_overflow(tape, rec);
      return;
  }
}

}  // namespace detail

NodeId segment_softmax(Tape& tape, NodeId x, const std::vector<std::int32_t>& offsets,
                       float temperature, const std::vector<float>* noise) {
  if (offsets.size() < 2) throw std::invalid_argument("segment_softmax: no groups");
  if (temperature <= 0.0f) throw std::invalid_argument("segment_softmax: t must be > 0");
  const std::size_t n = tape.size(x);
  if (static_cast<std::size_t>(offsets.back()) != n) {
    throw std::invalid_argument("segment_softmax: offsets do not cover x");
  }
  if (noise != nullptr && noise->size() != n) {
    throw std::invalid_argument("segment_softmax: noise size mismatch");
  }

  // Zeroing make_node: offsets[0] may leave a leading gap that softmax never
  // writes but value() still exposes.
  NodeId out = tape.make_node(n);
  {
    const float* xv = tape.value(x).data();
    const float* nz = noise != nullptr ? noise->data() : nullptr;
    float* yv = tape.mutable_value(out).data();
    const std::size_t groups = offsets.size() - 1;
    const std::int32_t* off = offsets.data();
    util::parallel_for_blocked(
        0, groups,
        [&](std::size_t lo, std::size_t hi) {
          softmax_groups(xv, nz, yv, off, lo, hi, temperature);
        },
        /*grain=*/256);
  }

  OpRecord rec;
  rec.kind = OpKind::kSegmentSoftmax;
  rec.scalar = temperature;
  rec.u.softmax = {x.idx, out.idx, offsets.data(),
                   static_cast<std::uint32_t>(offsets.size() - 1)};
  tape.push_record(rec);
  return out;
}

NodeId gather_mul(Tape& tape, NodeId q, const std::vector<std::int32_t>& index, NodeId p) {
  const std::size_t n = tape.size(p);
  if (index.size() != n) throw std::invalid_argument("gather_mul: index size mismatch");

  NodeId out = tape.make_node_uninit(n);
  {
    const float* qv = tape.value(q).data();
    const float* pv = tape.value(p).data();
    float* yv = tape.mutable_value(out).data();
    const std::int32_t* idx = index.data();
    util::parallel_for_blocked(
        0, n,
        [&](std::size_t lo, std::size_t hi) { gather_mul_range(qv, idx, pv, yv, lo, hi); },
        kParGrain);
  }

  OpRecord rec;
  rec.kind = OpKind::kGatherMul;
  rec.u.gather = {q.idx, p.idx, out.idx, index.data(), static_cast<std::uint32_t>(n)};
  tape.push_record(rec);
  return out;
}

NodeId spmv(Tape& tape, NodeId x, const SparseIncidence& inc) {
  const std::size_t rows = inc.fwd_offsets->size() - 1;
  const std::size_t xs = tape.size(x);
  if (inc.bwd_offsets->size() != xs + 1) {
    throw std::invalid_argument("spmv: transpose rows != x size");
  }
  if (inc.fwd_cols->size() != inc.fwd_weights->size() ||
      inc.bwd_cols->size() != inc.bwd_weights->size() ||
      inc.fwd_cols->size() != inc.bwd_cols->size()) {
    throw std::invalid_argument("spmv: CSR arrays inconsistent");
  }

  NodeId out = tape.make_node_uninit(rows);
  {
    const float* xv = tape.value(x).data();
    float* yv = tape.mutable_value(out).data();
    const std::uint32_t* off = inc.fwd_offsets->data();
    const std::int32_t* cols = inc.fwd_cols->data();
    const float* w = inc.fwd_weights->data();
    util::parallel_for_blocked(
        0, rows,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t r = lo; r < hi; ++r) {
            double acc = 0.0;
            for (std::uint32_t k = off[r]; k < off[r + 1]; ++k) {
              acc += static_cast<double>(w[k]) * xv[static_cast<std::size_t>(cols[k])];
            }
            yv[r] = static_cast<float>(acc);
          }
        },
        /*grain=*/512);
  }

  OpRecord rec;
  rec.kind = OpKind::kSpmv;
  rec.u.spmv = {x.idx,
                out.idx,
                inc.bwd_offsets->data(),
                inc.bwd_cols->data(),
                inc.bwd_weights->data(),
                static_cast<std::uint32_t>(xs)};
  tape.push_record(rec);
  return out;
}

NodeId sub_const(Tape& tape, NodeId x, const std::vector<float>& c) {
  const std::size_t n = tape.size(x);
  if (c.size() != n) throw std::invalid_argument("sub_const: size mismatch");
  NodeId out = tape.make_node_uninit(n);
  {
    const float* xv = tape.value(x).data();
    float* yv = tape.mutable_value(out).data();
    const float* cv = c.data();
    util::parallel_for_blocked(
        0, n,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) yv[i] = xv[i] - cv[i];
        },
        kParGrain);
  }
  OpRecord rec;
  rec.kind = OpKind::kSubConst;
  rec.u.subc = {x.idx, out.idx, static_cast<std::uint32_t>(n)};
  tape.push_record(rec);
  return out;
}

const char* activation_name(Activation a) {
  switch (a) {
    case Activation::kReLU: return "ReLU";
    case Activation::kSigmoid: return "sigmoid";
    case Activation::kLeakyReLU: return "LeakyReLU";
    case Activation::kExp: return "exp";
    case Activation::kCELU: return "CELU";
  }
  return "?";
}

NodeId apply_activation(Tape& tape, NodeId x, Activation act, float alpha) {
  const std::size_t n = tape.size(x);
  NodeId out = tape.make_node_uninit(n);
  {
    const float* xv = tape.value(x).data();
    float* yv = tape.mutable_value(out).data();
    util::parallel_for_blocked(
        0, n,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) yv[i] = act_forward(act, alpha, xv[i]);
        },
        kParGrain);
  }
  OpRecord rec;
  rec.kind = OpKind::kActivation;
  rec.act = static_cast<std::uint8_t>(act);
  rec.scalar = alpha;
  rec.u.activation = {x.idx, out.idx, static_cast<std::uint32_t>(n)};
  tape.push_record(rec);
  return out;
}

NodeId weighted_sum(Tape& tape, NodeId x, const std::vector<float>& w) {
  const std::size_t n = tape.size(x);
  if (!w.empty() && w.size() != n) throw std::invalid_argument("weighted_sum: size mismatch");
  // The weights are copied into the tape's float pool: callers often pass
  // temporaries and the backward replay runs long after this call returns.
  const std::uint32_t w_off = w.empty() ? 0 : tape.own_floats(w.data(), w.size());
  NodeId out = tape.make_node_uninit(1);
  {
    const float* xv = tape.value(x).data();
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += static_cast<double>(xv[i]) * (w.empty() ? 1.0 : w[i]);
    tape.mutable_value(out)[0] = static_cast<float>(acc);
  }
  OpRecord rec;
  rec.kind = OpKind::kWeightedSum;
  rec.u.wsum = {x.idx, out.idx, static_cast<std::uint32_t>(n), w_off,
                static_cast<std::uint32_t>(w.size())};
  tape.push_record(rec);
  return out;
}

FusedSelectionDemand fused_softmax_demand(
    Tape& tape, NodeId path_logits, NodeId tree_logits,
    const std::vector<std::int32_t>& path_offsets,
    const std::vector<std::int32_t>& tree_offsets,
    const std::vector<std::int32_t>& path_tree,
    const std::vector<std::int32_t>& tree_path_offsets, const SparseIncidence& inc,
    float temperature, const std::vector<float>* path_noise,
    const std::vector<float>* tree_noise) {
  DGR_TRACE_SCOPE("ad.fused_softmax_demand");
  const std::size_t np = tape.size(path_logits);
  const std::size_t nt = tape.size(tree_logits);
  if (path_offsets.size() < 2 || tree_offsets.size() < 2) {
    throw std::invalid_argument("fused_softmax_demand: no groups");
  }
  if (temperature <= 0.0f) {
    throw std::invalid_argument("fused_softmax_demand: t must be > 0");
  }
  if (static_cast<std::size_t>(path_offsets.back()) != np ||
      static_cast<std::size_t>(tree_offsets.back()) != nt) {
    throw std::invalid_argument("fused_softmax_demand: offsets do not cover logits");
  }
  if (path_tree.size() != np) {
    throw std::invalid_argument("fused_softmax_demand: path_tree size mismatch");
  }
  if (tree_path_offsets.size() != nt + 1 ||
      static_cast<std::size_t>(tree_path_offsets.back()) != np) {
    throw std::invalid_argument("fused_softmax_demand: tree_path_offsets mismatch");
  }
  if ((path_noise != nullptr && path_noise->size() != np) ||
      (tree_noise != nullptr && tree_noise->size() != nt)) {
    throw std::invalid_argument("fused_softmax_demand: noise size mismatch");
  }
  if (inc.bwd_offsets->size() != np + 1) {
    throw std::invalid_argument("fused_softmax_demand: transpose rows != path count");
  }
  if (inc.fwd_cols->size() != inc.fwd_weights->size() ||
      inc.bwd_cols->size() != inc.bwd_weights->size() ||
      inc.fwd_cols->size() != inc.bwd_cols->size()) {
    throw std::invalid_argument("fused_softmax_demand: CSR arrays inconsistent");
  }

  const std::size_t n_edges = inc.fwd_offsets->size() - 1;
  const std::size_t n_pgroups = path_offsets.size() - 1;
  const std::size_t n_tgroups = tree_offsets.size() - 1;

  FusedSelectionDemand out;
  // p/q use the zeroing make_node (leading offset gaps stay zero);
  // eff/demand are fully written by stages 2-3.
  out.p = tape.make_node(np);
  out.q = tape.make_node(nt);
  out.eff = tape.make_node_uninit(np);
  out.demand = tape.make_node_uninit(n_edges);

  {
    // Raw pointers taken after every make_node (the arena is stable for the
    // rest of this call). One fused job: softmaxes | eff | demand.
    const float* xp = tape.value(path_logits).data();
    const float* xq = tape.value(tree_logits).data();
    const float* nzp = path_noise != nullptr ? path_noise->data() : nullptr;
    const float* nzq = tree_noise != nullptr ? tree_noise->data() : nullptr;
    float* pv = tape.mutable_value(out.p).data();
    float* qv = tape.mutable_value(out.q).data();
    float* effv = tape.mutable_value(out.eff).data();
    float* dv = tape.mutable_value(out.demand).data();
    const std::uint32_t* off = inc.fwd_offsets->data();
    const std::int32_t* cols = inc.fwd_cols->data();
    const float* w = inc.fwd_weights->data();
    const std::int32_t* poff = path_offsets.data();
    const std::int32_t* toff = tree_offsets.data();
    const std::int32_t* pt = path_tree.data();

    util::ParallelRuntime::fused(
        // Stage 1: both softmaxes share one index space [0, |S|+|N|) — they
        // are independent, so no barrier is needed between them. Each chunk
        // splits at the path/tree boundary once, keeping the loops tight.
        util::stage_blocked(
            0, n_pgroups + n_tgroups, 256, [=](std::size_t lo, std::size_t hi) {
              const std::size_t pe = hi < n_pgroups ? hi : n_pgroups;
              if (lo < pe) softmax_groups(xp, nzp, pv, poff, lo, pe, temperature);
              const std::size_t tlo = lo > n_pgroups ? lo : n_pgroups;
              if (tlo < hi) {
                softmax_groups(xq, nzq, qv, toff, tlo - n_pgroups, hi - n_pgroups,
                               temperature);
              }
            }),
        // Stage 2: eff_i = q[path_tree[i]] * p_i.
        util::stage_blocked(0, np, kParGrain, [=](std::size_t lo, std::size_t hi) {
          gather_mul_range(qv, pt, pv, effv, lo, hi);
        }),
        // Stage 3: expected demand per edge (edge-major CSR rows).
        util::stage_blocked(0, n_edges, 512, [=](std::size_t lo, std::size_t hi) {
          for (std::size_t r = lo; r < hi; ++r) {
            double acc = 0.0;
            for (std::uint32_t k = off[r]; k < off[r + 1]; ++k) {
              acc += static_cast<double>(w[k]) * effv[static_cast<std::size_t>(cols[k])];
            }
            dv[r] = static_cast<float>(acc);
          }
        }));
  }

  OpRecord rec;
  rec.kind = OpKind::kFusedSoftmaxDemand;
  rec.scalar = temperature;
  auto& fs = rec.u.fused_sel;
  fs.path_logits = path_logits.idx;
  fs.tree_logits = tree_logits.idx;
  fs.p = out.p.idx;
  fs.q = out.q.idx;
  fs.eff = out.eff.idx;
  fs.demand = out.demand.idx;
  fs.path_offsets = path_offsets.data();
  fs.tree_offsets = tree_offsets.data();
  fs.path_tree = path_tree.data();
  fs.tree_path_offsets = tree_path_offsets.data();
  fs.bwd_offsets = inc.bwd_offsets->data();
  fs.bwd_cols = inc.bwd_cols->data();
  fs.bwd_weights = inc.bwd_weights->data();
  fs.np = static_cast<std::uint32_t>(np);
  fs.nt = static_cast<std::uint32_t>(nt);
  fs.n_pgroups = static_cast<std::uint32_t>(n_pgroups);
  fs.n_tgroups = static_cast<std::uint32_t>(n_tgroups);
  tape.push_record(rec);
  return out;
}

NodeId fused_overflow_cost(Tape& tape, NodeId x, const std::vector<float>& c,
                           Activation act, float alpha, std::size_t block) {
  DGR_TRACE_SCOPE("ad.fused_overflow_cost");
  const std::size_t n = tape.size(x);
  if (c.size() != n) throw std::invalid_argument("fused_overflow_cost: size mismatch");
  if (block == 0) block = 1;

  // The activated values f(x - c) are kept in the tape's float pool for the
  // backward replay (sigmoid/exp derivatives reuse the forward output,
  // saving a transcendental per element).
  const std::uint32_t scratch_off = tape.alloc_scratch_floats(n);
  NodeId out = tape.make_node_uninit(1);
  {
    const float* xv = tape.value(x).data();
    const float* cv = c.data();
    float* av = tape.pool_floats(scratch_off);
    // Fixed block decomposition -> owned partial slots -> ordered combine:
    // bitwise identical for any worker count. The partials buffer is
    // thread_local so the steady-state train loop stays allocation-free.
    const std::size_t blocks = (n + block - 1) / block;
    static thread_local std::vector<double> partials;
    partials.assign(blocks, 0.0);
    double* parts = partials.data();
    util::ParallelRuntime::for_blocked(
        0, blocks,
        [=](std::size_t blo, std::size_t bhi) {
          for (std::size_t b = blo; b < bhi; ++b) {
            const std::size_t lo = b * block;
            const std::size_t hi = std::min(n, lo + block);
            if (simd::active()) {
              parts[b] = simd::overflow_forward(act, alpha, xv + lo, cv + lo, av + lo,
                                                hi - lo);
              continue;
            }
            double acc = 0.0;
            for (std::size_t i = lo; i < hi; ++i) {
              const float a = act_forward(act, alpha, xv[i] - cv[i]);
              av[i] = a;
              acc += static_cast<double>(a);
            }
            parts[b] = acc;
          }
        },
        /*grain=*/1);
    double total = 0.0;
    for (std::size_t b = 0; b < blocks; ++b) total += parts[b];
    tape.mutable_value(out)[0] = static_cast<float>(total);
  }

  // `c` is borrowed by the record (lifetime contract: must outlive the tape).
  OpRecord rec;
  rec.kind = OpKind::kFusedOverflow;
  rec.act = static_cast<std::uint8_t>(act);
  rec.scalar = alpha;
  rec.u.fused_over = {x.idx, out.idx, c.data(), static_cast<std::uint32_t>(n), scratch_off};
  tape.push_record(rec);
  return out;
}

NodeId combine(Tape& tape, const std::vector<NodeId>& scalars,
               const std::vector<float>& coefs) {
  if (scalars.size() != coefs.size() || scalars.empty()) {
    throw std::invalid_argument("combine: size mismatch");
  }
  // Stash the input ids and coefficients in the tape pools so the record
  // stays POD (thread_local staging keeps this allocation-free when warm).
  static thread_local std::vector<std::int32_t> ids;
  ids.clear();
  for (const NodeId s : scalars) ids.push_back(s.idx);
  const std::uint32_t ids_off = tape.own_ints(ids.data(), ids.size());
  const std::uint32_t coef_off = tape.own_floats(coefs.data(), coefs.size());

  NodeId out = tape.make_node_uninit(1);
  {
    double acc = 0.0;
    for (std::size_t k = 0; k < scalars.size(); ++k) {
      if (tape.size(scalars[k]) != 1) throw std::invalid_argument("combine: non-scalar input");
      acc += static_cast<double>(coefs[k]) * tape.value(scalars[k])[0];
    }
    tape.mutable_value(out)[0] = static_cast<float>(acc);
  }
  OpRecord rec;
  rec.kind = OpKind::kCombine;
  rec.u.combine = {out.idx, ids_off, coef_off, static_cast<std::uint32_t>(scalars.size())};
  tape.push_record(rec);
  return out;
}

}  // namespace dgr::ad
