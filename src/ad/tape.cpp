#include "ad/tape.hpp"

#include <stdexcept>

namespace dgr::ad {

std::size_t Tape::check(NodeId id) const {
  if (!id.valid() || static_cast<std::size_t>(id.idx) >= nodes_.size()) {
    throw std::out_of_range("Tape: invalid NodeId");
  }
  return static_cast<std::size_t>(id.idx);
}

NodeId Tape::input(const std::vector<float>& value) {
  return input(value.data(), value.size());
}

NodeId Tape::input(const float* data, std::size_t size) {
  NodeId id = make_node(size);
  std::copy(data, data + size, nodes_.back().value.begin());
  return id;
}

NodeId Tape::make_node(std::size_t size) {
  Node node;
  node.value.assign(size, 0.0f);
  node.grad.assign(size, 0.0);
  nodes_.push_back(std::move(node));
  return NodeId{static_cast<std::int32_t>(nodes_.size() - 1)};
}

void Tape::backward(NodeId root) {
  const std::size_t r = check(root);
  if (nodes_[r].value.size() != 1) {
    throw std::invalid_argument("Tape::backward: root must be scalar");
  }
  nodes_[r].grad[0] = 1.0;
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) (*it)();
}

std::size_t Tape::memory_bytes() const {
  std::size_t bytes = 0;
  for (const Node& n : nodes_) {
    bytes += n.value.capacity() * sizeof(float) + n.grad.capacity() * sizeof(double);
  }
  return bytes;
}

}  // namespace dgr::ad
