#include "ad/tape.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace dgr::ad {

std::size_t Tape::check(NodeId id) const {
  if (!id.valid() || static_cast<std::size_t>(id.idx) >= node_size_.size()) {
    throw std::out_of_range("Tape: invalid NodeId");
  }
  return static_cast<std::size_t>(id.idx);
}

void Tape::note_regrowth() {
  if (!warm_) return;
  static obs::Counter& regrowth = obs::metrics().counter("ad.arena_regrowth");
  regrowth.add(1);
}

namespace {
// Cache colouring for arena slices. Large nodes are usually whole multiples
// of a page (e.g. one float per gcell edge), so packing them back-to-back
// makes consecutive slices 4K-congruent — every load in a streaming kernel
// then false-aliases the store stream (the classic 4K-aliasing stall; bits
// [11:0] of the addresses match) and the kernels run 2-3x slower. Staggering
// each slice start by a rotating multiple of 64B keeps adjacent operands at
// least a cache line apart modulo 4K. The stagger depends only on the record
// order, so layout — and therefore every numeric result — is bitwise
// identical across worker counts and across re-recordings of the same graph.
constexpr std::size_t kColorQuantum = 16;  // floats; 64 bytes
constexpr std::size_t kColorCycle = 8;

std::size_t colored_offset(std::size_t used, std::uint32_t& color) {
  const std::size_t aligned = (used + kColorQuantum - 1) & ~(kColorQuantum - 1);
  const std::size_t stagger = ((color++ % kColorCycle) + 1) * kColorQuantum;
  return aligned + stagger;
}
}  // namespace

std::uint32_t Tape::grow_arena(std::size_t size) {
  const std::size_t off = colored_offset(arena_used_, color_);
  const std::size_t needed = off + size;
  if (needed > values_.capacity() || needed > grads_.capacity()) note_regrowth();
  // resize (not reserve) so .data() slices are addressable; once capacity
  // covers the steady-state graph these are O(1) bookkeeping.
  if (needed > values_.size()) values_.resize(needed);
  if (needed > grads_.size()) grads_.resize(needed);
  arena_used_ = needed;
  return static_cast<std::uint32_t>(off);
}

NodeId Tape::make_node_uninit(std::size_t size) {
  const std::uint32_t off = grow_arena(size);
  if (node_size_.size() == node_size_.capacity()) note_regrowth();
  node_offset_.push_back(off);
  node_size_.push_back(static_cast<std::uint32_t>(size));
  return NodeId{static_cast<std::int32_t>(node_size_.size() - 1)};
}

NodeId Tape::make_node(std::size_t size) {
  NodeId id = make_node_uninit(size);
  std::fill_n(values_.data() + node_offset_.back(), size, 0.0f);
  return id;
}

NodeId Tape::input(const std::vector<float>& value) {
  return input(value.data(), value.size());
}

NodeId Tape::input(const float* data, std::size_t size) {
  NodeId id = make_node_uninit(size);
  std::copy(data, data + size, values_.data() + node_offset_.back());
  return id;
}

std::uint32_t Tape::own_floats(const float* data, std::size_t n) {
  const std::uint32_t off = alloc_scratch_floats(n);
  std::copy(data, data + n, float_pool_.data() + off);
  return off;
}

std::uint32_t Tape::alloc_scratch_floats(std::size_t n) {
  // Same colouring as the value arena: a kernel's scratch (e.g. the fused
  // overflow activations) streams right next to same-sized pool weights.
  const std::size_t off = colored_offset(float_pool_.size(), pool_color_);
  if (off + n > float_pool_.capacity()) note_regrowth();
  float_pool_.resize(off + n);
  return static_cast<std::uint32_t>(off);
}

std::uint32_t Tape::own_ints(const std::int32_t* data, std::size_t n) {
  const std::size_t off = int_pool_.size();
  if (off + n > int_pool_.capacity()) note_regrowth();
  int_pool_.resize(off + n);
  std::copy(data, data + n, int_pool_.data() + off);
  return static_cast<std::uint32_t>(off);
}

void Tape::push_record(const OpRecord& record) {
  if (records_.size() == records_.capacity()) note_regrowth();
  records_.push_back(record);
}

void Tape::backward(NodeId root) {
  const NodeId roots[1] = {root};
  backward_multi(roots);
}

void Tape::backward_multi(std::span<const NodeId> roots) {
  for (const NodeId root : roots) {
    if (node_size_[check(root)] != 1) {
      throw std::invalid_argument("Tape::backward: root must be scalar");
    }
  }
  // Lazy grad zeroing: the double arena is untouched by the forward pass, so
  // a forward-only tape never pays for it; one contiguous memset here beats
  // the per-node zero fills of the old AoS layout.
  std::memset(grads_.data(), 0, arena_used_ * sizeof(double));
  for (const NodeId root : roots) {
    grads_[node_offset_[static_cast<std::size_t>(root.idx)]] = 1.0;
  }
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    detail::run_backward(*this, *it);
  }
}

void Tape::reset() {
  // A tape only becomes "warm" once it has actually held a graph; resetting
  // a fresh tape (the solver resets before every record, including the
  // first) must not turn the first recording's growth into regrowth.
  if (!node_size_.empty()) warm_ = true;
  node_offset_.clear();
  node_size_.clear();
  float_pool_.clear();
  int_pool_.clear();
  records_.clear();
  arena_used_ = 0;
  // Colour counters restart so a same-shape re-record reproduces the exact
  // same layout — required for the zero-malloc steady state (offsets past
  // the high-water mark would otherwise drift between iterations).
  color_ = 0;
  pool_color_ = 0;
  // values_/grads_ keep their size (== capacity high-water): grow_arena only
  // resizes past the previous peak, so a same-shape re-record allocates
  // nothing.
}

std::size_t Tape::memory_bytes() const {
  return values_.capacity() * sizeof(float) + grads_.capacity() * sizeof(double) +
         float_pool_.capacity() * sizeof(float) +
         int_pool_.capacity() * sizeof(std::int32_t) +
         records_.capacity() * sizeof(OpRecord) +
         node_offset_.capacity() * sizeof(std::uint32_t) +
         node_size_.capacity() * sizeof(std::uint32_t);
}

}  // namespace dgr::ad
