#pragma once
// Differentiable operations on Tape arrays — exactly the kernel set DGR's
// forward pass (Fig. 4 of the paper) needs.
//
// Group structure (subnets over paths, nets over trees) is expressed with
// CSR-style offset arrays; sparse incidence (paths <-> g-cell edges) with a
// forward CSR and its transpose so both directions are deterministic
// parallel loops over rows they own.

#include <cstdint>
#include <vector>

#include "ad/activation.hpp"
#include "ad/tape.hpp"

namespace dgr::ad {

// LIFETIME CONTRACT: offset/index/CSR arrays passed by reference or pointer
// (segment_softmax offsets, gather_mul index, SparseIncidence arrays,
// fused_overflow_cost's capacity vector) are borrowed by the recorded
// OpRecord and MUST outlive the Tape (until reset()). weighted_sum's weight
// vector and combine's inputs are copied into the tape pools and may be
// temporaries.
//
// Each op appends one typed OpRecord (ad/op_record.hpp) replayed by
// Tape::backward; the hot kernels route through ad/simd.hpp when the
// DGR_SIMD build has AVX2 enabled at runtime (scalar fallback otherwise).

/// Softmax within each group g over [offsets[g], offsets[g+1]):
///   y_i = exp((x_i + noise_i)/t) / Σ_group exp((x_k + noise_k)/t)
/// `noise` (optional, same size as x) carries Gumbel samples; with noise and
/// t=1 this is the Gumbel-Softmax of the paper, without noise a plain
/// softmax. Numerically stabilised by per-group max subtraction.
NodeId segment_softmax(Tape& tape, NodeId x, const std::vector<std::int32_t>& offsets,
                       float temperature, const std::vector<float>* noise = nullptr);

/// out[i] = q[index[i]] * p[i] — the y_tree(i) * x_i coupling of Eqs. (4)-(6).
NodeId gather_mul(Tape& tape, NodeId q, const std::vector<std::int32_t>& index, NodeId p);

/// Sparse weighted reduction with an explicit transpose:
///   out[r] = Σ_{k in [fwd_offsets[r], fwd_offsets[r+1])} fwd_weights[k] * x[fwd_cols[k]]
/// Backward uses the transpose CSR (rows = x entries, cols = out rows):
///   gx[i] = Σ_{k in [bwd_offsets[i], bwd_offsets[i+1])} bwd_weights[k] * gout[bwd_cols[k]]
/// The caller must supply a genuine transpose pair (checked in debug builds).
struct SparseIncidence {
  const std::vector<std::uint32_t>* fwd_offsets = nullptr;
  const std::vector<std::int32_t>* fwd_cols = nullptr;
  const std::vector<float>* fwd_weights = nullptr;
  const std::vector<std::uint32_t>* bwd_offsets = nullptr;
  const std::vector<std::int32_t>* bwd_cols = nullptr;
  const std::vector<float>* bwd_weights = nullptr;
};
NodeId spmv(Tape& tape, NodeId x, const SparseIncidence& inc);

/// out = x - c (elementwise with a constant vector): demand - capacity.
NodeId sub_const(Tape& tape, NodeId x, const std::vector<float>& c);

/// Elementwise activation. `alpha` parameterises LeakyReLU slope / CELU
/// alpha; ignored by the others. Exp is clamped at x <= 30 for stability.
NodeId apply_activation(Tape& tape, NodeId x, Activation act, float alpha = 1.0f);

/// Scalar Σ_i w_i * x_i (pass empty w for a plain sum). Accumulates in double.
NodeId weighted_sum(Tape& tape, NodeId x, const std::vector<float>& w = {});

// ---------------------------------------------------------------------------
// Fused kernels — the per-iteration hot path of DgrSolver submitted as
// multi-stage jobs on util::ParallelRuntime (one pool wakeup per chain
// instead of one per primitive), with matching fused backward kernels.
// Bitwise equal to the unfused ops per stage; only the overflow reduction
// uses a different (still deterministic) summation order.
// ---------------------------------------------------------------------------

/// Nodes produced by fused_softmax_demand. p/q are exposed for tests and
/// introspection; eff and demand feed the rest of the objective.
struct FusedSelectionDemand {
  NodeId p;       ///< per-path probabilities (softmax over subnet groups)
  NodeId q;       ///< per-tree probabilities (softmax over net groups)
  NodeId eff;     ///< eff_i = q[path_tree[i]] * p_i (Eqs. 4-6 coupling)
  NodeId demand;  ///< per-edge expected demand (Eq. 10 scatter)
};

/// Fuses the selection chain p = softmax(x_p), q = softmax(x_q),
/// eff = gather_mul(q, path_tree, p), demand = spmv(eff, inc) into ONE
/// fused parallel job (3 stages forward, 3 stages backward). `noise`
/// pointers carry Gumbel samples as in segment_softmax.
///
/// `tree_path_offsets` (size |trees|+1) gives each tree's contiguous path
/// range — paths are tree-major in the DAG forest pools — and lets the
/// backward scatter into q be a deterministic parallel loop over trees
/// instead of a serial pass over paths. Offset/index arrays follow the
/// lifetime contract above (captured by reference; must outlive the Tape).
FusedSelectionDemand fused_softmax_demand(
    Tape& tape, NodeId path_logits, NodeId tree_logits,
    const std::vector<std::int32_t>& path_offsets,
    const std::vector<std::int32_t>& tree_offsets,
    const std::vector<std::int32_t>& path_tree,
    const std::vector<std::int32_t>& tree_path_offsets, const SparseIncidence& inc,
    float temperature, const std::vector<float>* path_noise = nullptr,
    const std::vector<float>* tree_noise = nullptr);

/// Fused overflow cost: scalar Σ_i f(x_i - c_i) in one blocked pass —
/// activation and reduction fused, no slack / activated intermediate nodes.
/// The reduction sums fixed `block`-sized slices into owned partial slots
/// (double), then combines them in index order: bitwise thread-count
/// invariant. Backward recomputes f'(x_i - c_i) in a single blocked pass.
/// `block` is exposed so tests can exercise the multi-block path cheaply.
NodeId fused_overflow_cost(Tape& tape, NodeId x, const std::vector<float>& c,
                           Activation act, float alpha = 1.0f,
                           std::size_t block = 4096);

/// Scalar linear combination Σ_k coef_k * scalar_k of scalar nodes.
NodeId combine(Tape& tape, const std::vector<NodeId>& scalars,
               const std::vector<float>& coefs);

}  // namespace dgr::ad
