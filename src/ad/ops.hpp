#pragma once
// Differentiable operations on Tape arrays — exactly the kernel set DGR's
// forward pass (Fig. 4 of the paper) needs.
//
// Group structure (subnets over paths, nets over trees) is expressed with
// CSR-style offset arrays; sparse incidence (paths <-> g-cell edges) with a
// forward CSR and its transpose so both directions are deterministic
// parallel loops over rows they own.

#include <cstdint>
#include <vector>

#include "ad/tape.hpp"

namespace dgr::ad {

// LIFETIME CONTRACT: offset/index/CSR arrays passed by reference or pointer
// (segment_softmax offsets, gather_mul index, SparseIncidence arrays) are
// captured by reference in the recorded backward closures and MUST outlive
// the Tape. weighted_sum's weight vector is copied and may be a temporary.

/// Softmax within each group g over [offsets[g], offsets[g+1]):
///   y_i = exp((x_i + noise_i)/t) / Σ_group exp((x_k + noise_k)/t)
/// `noise` (optional, same size as x) carries Gumbel samples; with noise and
/// t=1 this is the Gumbel-Softmax of the paper, without noise a plain
/// softmax. Numerically stabilised by per-group max subtraction.
NodeId segment_softmax(Tape& tape, NodeId x, const std::vector<std::int32_t>& offsets,
                       float temperature, const std::vector<float>* noise = nullptr);

/// out[i] = q[index[i]] * p[i] — the y_tree(i) * x_i coupling of Eqs. (4)-(6).
NodeId gather_mul(Tape& tape, NodeId q, const std::vector<std::int32_t>& index, NodeId p);

/// Sparse weighted reduction with an explicit transpose:
///   out[r] = Σ_{k in [fwd_offsets[r], fwd_offsets[r+1])} fwd_weights[k] * x[fwd_cols[k]]
/// Backward uses the transpose CSR (rows = x entries, cols = out rows):
///   gx[i] = Σ_{k in [bwd_offsets[i], bwd_offsets[i+1])} bwd_weights[k] * gout[bwd_cols[k]]
/// The caller must supply a genuine transpose pair (checked in debug builds).
struct SparseIncidence {
  const std::vector<std::uint32_t>* fwd_offsets = nullptr;
  const std::vector<std::int32_t>* fwd_cols = nullptr;
  const std::vector<float>* fwd_weights = nullptr;
  const std::vector<std::uint32_t>* bwd_offsets = nullptr;
  const std::vector<std::int32_t>* bwd_cols = nullptr;
  const std::vector<float>* bwd_weights = nullptr;
};
NodeId spmv(Tape& tape, NodeId x, const SparseIncidence& inc);

/// out = x - c (elementwise with a constant vector): demand - capacity.
NodeId sub_const(Tape& tape, NodeId x, const std::vector<float>& c);

/// The overflow activations studied in Fig. 6 of the paper.
enum class Activation { kReLU, kSigmoid, kLeakyReLU, kExp, kCELU };
const char* activation_name(Activation a);

/// Elementwise activation. `alpha` parameterises LeakyReLU slope / CELU
/// alpha; ignored by the others. Exp is clamped at x <= 30 for stability.
NodeId apply_activation(Tape& tape, NodeId x, Activation act, float alpha = 1.0f);

/// Scalar Σ_i w_i * x_i (pass empty w for a plain sum). Accumulates in double.
NodeId weighted_sum(Tape& tape, NodeId x, const std::vector<float>& w = {});

/// Scalar linear combination Σ_k coef_k * scalar_k of scalar nodes.
NodeId combine(Tape& tape, const std::vector<NodeId>& scalars,
               const std::vector<float>& coefs);

}  // namespace dgr::ad
