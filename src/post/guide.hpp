#pragma once
// Routing guides — the final output of the global routing flow ("The final
// output is a comprehensive guide for detailed routing", Section 4.6).
//
// A guide is, per net, a set of 3D g-cell boxes (x/y rectangle + layer) the
// detailed router must stay inside: one box per assigned wire leg, a via
// stack of 1x1 boxes wherever the net changes layer or reaches a pin, all
// optionally inflated by a margin (detailed routers want slack).

#include <iosfwd>
#include <vector>

#include "eval/solution.hpp"
#include "post/layer_assign.hpp"

namespace dgr::post {

struct GuideBox {
  geom::Rect rect;  ///< g-cell x/y extent (closed)
  int layer = 0;

  friend bool operator==(const GuideBox&, const GuideBox&) = default;
};

struct NetGuide {
  std::size_t design_net = 0;
  std::vector<GuideBox> boxes;
};

struct RouteGuides {
  std::vector<NetGuide> nets;

  /// Total number of boxes (guide volume proxy).
  std::size_t box_count() const;
};

struct GuideOptions {
  int margin = 0;  ///< inflate every box by this many g-cells (grid-clamped)
};

/// Builds guides from a routed 2D solution plus its layer assignment. The
/// assignment must come from assign_layers() on the same solution.
RouteGuides make_guides(const eval::RouteSolution& sol, const LayerAssignment& layers,
                        const GuideOptions& options = {});

/// True iff every wire leg's cells are covered by a same-layer guide box of
/// its net, every pin is covered at the pin layer, and per net the boxes of
/// adjacent layers touch wherever the net changes layer (via continuity).
bool guides_cover_solution(const RouteGuides& guides, const eval::RouteSolution& sol,
                           const LayerAssignment& layers, int pin_layer = 0);

/// ISPD'19-flavoured text dump:
///   <net name>
///   (
///   x_lo y_lo x_hi y_hi layer
///   ...
///   )
void write_guides(std::ostream& os, const RouteGuides& guides,
                  const design::Design& design);

}  // namespace dgr::post
