#pragma once
// Dynamic-programming layer assignment (Section 4.6; the paper reuses
// CUGR2's DP). Expands a 2D RouteSolution to 3D:
//
//  * every straight leg of every routed path is assigned to a routing layer
//    whose preferred direction matches the leg,
//  * per net, a bottom-up tree DP over the leg graph minimises
//    via cost (|layer difference| at junctions, plus pin-access vias down to
//    the pin layer) + per-layer congestion cost,
//  * nets are processed sequentially against live per-layer demand maps
//    (2D capacity split evenly across same-direction layers).
//
// Outputs the paper's 3D metrics: total via count, # overflowed layer edges,
// and # nets with overflow after layer assignment (Fig. 6's n1).

#include <cstdint>
#include <vector>

#include "eval/solution.hpp"

namespace dgr::post {

struct LayerAssignOptions {
  double via_weight = 2.0;         ///< DP cost per layer crossed by a via
  double overflow_penalty = 50.0;  ///< DP cost per unit of layer-edge overuse
  int pin_layer = 0;               ///< layer pins sit on (metal1)
};

struct LayerAssignment {
  /// leg_layers[n][k] = assigned layer of the k-th leg of net n (legs are
  /// enumerated path-by-path, waypoint-pair order; zero-length legs skipped).
  std::vector<std::vector<int>> leg_layers;
  std::int64_t via_count = 0;
  std::int64_t overflowed_layer_edges = 0;  ///< (layer, g-cell edge) pairs over cap
  std::int64_t nets_with_overflow = 0;      ///< n1 of the Fig. 6 metric
  double layer_overflow_total = 0.0;
};

LayerAssignment assign_layers(const eval::RouteSolution& sol,
                              const std::vector<float>& capacities_2d,
                              const LayerAssignOptions& options = {});

}  // namespace dgr::post
