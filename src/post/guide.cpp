#include "post/guide.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>

namespace dgr::post {

using eval::RouteSolution;
using geom::Point;
using geom::Rect;

namespace {

Rect clamp_rect(Rect r, const grid::GCellGrid& grid) {
  r.lo.x = std::max<geom::Coord>(r.lo.x, 0);
  r.lo.y = std::max<geom::Coord>(r.lo.y, 0);
  r.hi.x = std::min<geom::Coord>(r.hi.x, static_cast<geom::Coord>(grid.width() - 1));
  r.hi.y = std::min<geom::Coord>(r.hi.y, static_cast<geom::Coord>(grid.height() - 1));
  return r;
}

/// Walks one net's legs in the same order assign_layers() enumerates them.
template <typename Fn>
void for_each_leg(const eval::NetRoute& net, Fn&& fn) {
  std::size_t flat = 0;
  for (const dag::PatternPath& path : net.paths) {
    for (std::size_t k = 0; k + 1 < path.waypoints.size(); ++k) {
      const Point a = path.waypoints[k];
      const Point b = path.waypoints[k + 1];
      if (a == b) continue;
      fn(flat++, a, b);
    }
  }
}

}  // namespace

std::size_t RouteGuides::box_count() const {
  std::size_t total = 0;
  for (const NetGuide& net : nets) total += net.boxes.size();
  return total;
}

RouteGuides make_guides(const RouteSolution& sol, const LayerAssignment& layers,
                        const GuideOptions& options) {
  RouteGuides out;
  const design::Design& design = *sol.design;
  const grid::GCellGrid& grid = design.grid();
  const int pin_layer = 0;

  out.nets.reserve(sol.nets.size());
  for (std::size_t n = 0; n < sol.nets.size(); ++n) {
    const eval::NetRoute& net = sol.nets[n];
    NetGuide guide;
    guide.design_net = net.design_net;

    // Wire boxes: one per leg on its assigned layer.
    // Track, per cell the net touches, the layer span needed (for vias).
    std::map<Point, std::pair<int, int>> span;  // cell -> (min layer, max layer)
    auto widen = [&](const Point& p, int layer) {
      auto [it, inserted] = span.emplace(p, std::pair{layer, layer});
      if (!inserted) {
        it->second.first = std::min(it->second.first, layer);
        it->second.second = std::max(it->second.second, layer);
      }
    };

    for_each_leg(net, [&](std::size_t flat, Point a, Point b) {
      const int layer = layers.leg_layers[n][flat];
      guide.boxes.push_back(
          {clamp_rect(Rect::bounding_box({a, b}).inflated(options.margin), grid), layer});
      widen(a, layer);
      widen(b, layer);
    });

    // Pins must be reachable at the pin layer.
    for (const Point& pin : design.net(net.design_net).pins) widen(pin, pin_layer);
    // Degenerate single-cell routes still claim their cell.
    for (const dag::PatternPath& path : net.paths) {
      if (path.waypoints.size() == 2 && path.waypoints[0] == path.waypoints[1]) {
        widen(path.waypoints[0], pin_layer);
      }
    }

    // Via stacks: a 1x1 box on every layer in each cell's span.
    for (const auto& [cell, lohi] : span) {
      for (int l = lohi.first; l <= lohi.second; ++l) {
        const GuideBox box{clamp_rect(Rect{cell, cell}.inflated(options.margin), grid), l};
        if (std::find(guide.boxes.begin(), guide.boxes.end(), box) == guide.boxes.end()) {
          guide.boxes.push_back(box);
        }
      }
    }
    out.nets.push_back(std::move(guide));
  }
  return out;
}

bool guides_cover_solution(const RouteGuides& guides, const RouteSolution& sol,
                           const LayerAssignment& layers, int pin_layer) {
  if (guides.nets.size() != sol.nets.size()) return false;
  const design::Design& design = *sol.design;

  for (std::size_t n = 0; n < sol.nets.size(); ++n) {
    const NetGuide& guide = guides.nets[n];
    auto covered = [&](Point p, int layer) {
      for (const GuideBox& box : guide.boxes) {
        if (box.layer == layer && box.rect.contains(p)) return true;
      }
      return false;
    };

    // Every leg cell at the assigned layer.
    bool ok = true;
    for_each_leg(sol.nets[n], [&](std::size_t flat, Point a, Point b) {
      const int layer = layers.leg_layers[n][flat];
      const Rect r = Rect::bounding_box({a, b});
      for (geom::Coord y = r.lo.y; y <= r.hi.y && ok; ++y) {
        for (geom::Coord x = r.lo.x; x <= r.hi.x && ok; ++x) {
          if (!covered({x, y}, layer)) ok = false;
        }
      }
    });
    if (!ok) return false;

    // Every pin at the pin layer.
    for (const Point& pin : design.net(sol.nets[n].design_net).pins) {
      if (!covered(pin, pin_layer)) return false;
    }

    // Via continuity at junctions: wherever the net's legs meet (leg
    // endpoints) or reach a pin, every layer between the lowest and highest
    // incident layer must be covered, or the via stack has a gap. Crossings
    // mid-leg on different layers need no via and are not checked.
    std::map<Point, std::pair<int, int>> span;
    auto widen = [&](const Point& p, int layer) {
      auto [it, inserted] = span.emplace(p, std::pair{layer, layer});
      if (!inserted) {
        it->second.first = std::min(it->second.first, layer);
        it->second.second = std::max(it->second.second, layer);
      }
    };
    for_each_leg(sol.nets[n], [&](std::size_t flat, Point a, Point b) {
      const int layer = layers.leg_layers[n][flat];
      widen(a, layer);
      widen(b, layer);
    });
    for (const Point& pin : design.net(sol.nets[n].design_net).pins) {
      widen(pin, pin_layer);
    }
    for (const auto& [cell, lohi] : span) {
      for (int l = lohi.first; l <= lohi.second; ++l) {
        if (!covered(cell, l)) return false;
      }
    }
  }
  return true;
}

void write_guides(std::ostream& os, const RouteGuides& guides,
                  const design::Design& design) {
  for (const NetGuide& net : guides.nets) {
    os << design.net(net.design_net).name << "\n(\n";
    for (const GuideBox& box : net.boxes) {
      os << box.rect.lo.x << " " << box.rect.lo.y << " " << box.rect.hi.x << " "
         << box.rect.hi.y << " " << box.layer << "\n";
    }
    os << ")\n";
  }
}

}  // namespace dgr::post
