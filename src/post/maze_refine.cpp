#include "post/maze_refine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/trace.hpp"
#include "routers/maze.hpp"
#include "util/log.hpp"

namespace dgr::post {

using eval::NetRoute;
using eval::RouteSolution;
using geom::Point;
using grid::DemandMap;
using grid::EdgeId;

namespace {

/// Marginal cost of one net's route against a demand map that *excludes*
/// the net itself: weighted (overflow, wl, via) cost plus the number of
/// edges this net pushes over capacity. Tracking the edge count separately
/// keeps refinement from "improving" total overflow by smearing one heavy
/// overflow across many lightly-overflowed edges (Tables 2/3 report the
/// edge count, and detailed routers care about it too).
struct NetCost {
  double weighted = 0.0;
  std::int64_t overflowed_edges = 0;
};

NetCost net_cost(const design::Design& design, const NetRoute& net, const DemandMap& others,
                 const std::vector<float>& cap, const MazeRefineOptions& opt,
                 double via_scale) {
  DemandMap mine(design.grid());
  RouteSolution::apply_net(mine, design, net, opt.via_beta, +1.0);
  NetCost out;
  double over = 0.0;
  std::int64_t wl = 0;
  std::int64_t bends = 0;
  for (std::size_t e = 0; e < mine.raw().size(); ++e) {
    const double w = mine.raw()[e];
    if (w <= 0.0) continue;
    const double base = others.raw()[e];
    const double c = cap[e];
    over += std::max(0.0, base + w - c) - std::max(0.0, base - c);
    if (base + w > c + 1e-6) ++out.overflowed_edges;
  }
  for (const dag::PatternPath& p : net.paths) {
    wl += p.length();
    bends += static_cast<std::int64_t>(p.bend_count());
  }
  out.weighted = opt.overflow_weight * over + opt.wl_weight * static_cast<double>(wl) +
                 opt.via_weight * via_scale * static_cast<double>(bends);
  return out;
}

}  // namespace

NetRoute maze_reroute_net(const design::Design& design, std::size_t design_net,
                          const DemandMap& others, const std::vector<float>& cap,
                          const MazeRefineOptions& opt) {
  const auto& grid = design.grid();
  NetRoute route;
  route.design_net = design_net;
  std::vector<Point> pins = geom::dedupe_points(design.net(design_net).pins);

  // Track this net's own usage so parallel sub-nets share edges for free.
  DemandMap mine(grid);
  auto price = [&](EdgeId e) {
    const double d = others.raw()[static_cast<std::size_t>(e)] +
                     mine.raw()[static_cast<std::size_t>(e)];
    const double c = cap[static_cast<std::size_t>(e)];
    const double marginal = std::max(0.0, d + 1.0 - c) - std::max(0.0, d - c);
    return opt.wl_weight + opt.congestion_price * marginal;
  };

  std::vector<Point> component{pins.front()};
  std::vector<bool> connected(pins.size(), false);
  connected[0] = true;
  for (std::size_t step = 1; step < pins.size(); ++step) {
    std::size_t next = pins.size();
    std::int64_t best_d = std::numeric_limits<std::int64_t>::max();
    for (std::size_t i = 0; i < pins.size(); ++i) {
      if (connected[i]) continue;
      for (const Point& c : component) {
        const std::int64_t d = geom::manhattan(pins[i], c);
        if (d < best_d) {
          best_d = d;
          next = i;
        }
      }
    }
    const routers::MazeResult mz = routers::maze_route(grid, component, pins[next], price);
    if (!mz.found) {
      // Unreachable pin (pathological pricing): return an incomplete route
      // so the caller rejects it instead of committing broken geometry.
      DGR_LOG_WARN("maze_reroute_net net %zu: %s", design_net,
                   mz.status.to_string().c_str());
      route.paths.clear();
      return route;
    }
    dag::PatternPath path = routers::compress_cells(mz.cells);
    for (const EdgeId e : path.edges(grid)) mine.add(e, 1.0);
    for (const Point& cell : mz.cells) component.push_back(cell);
    route.paths.push_back(std::move(path));
    connected[next] = true;
  }
  return route;
}

MazeRefineStats maze_refine(RouteSolution& sol, const std::vector<float>& capacities,
                            const MazeRefineOptions& options) {
  DGR_TRACE_SCOPE("post.maze_refine");
  MazeRefineStats stats;
  const design::Design& design = *sol.design;
  const double via_scale = std::sqrt(static_cast<double>(design.grid().layer_count()));

  DemandMap demand = sol.demand(options.via_beta);
  stats.overflow_before = demand.total_overflow(capacities);

  // Per-net acceptance is marginal and accepted moves interact, so rounds
  // can still regress globally; keep the lexicographically best snapshot
  // (# overflowed edges, total overflow, wirelength) — the initial solution
  // included, which makes refinement monotone by construction.
  auto snapshot_score = [&] {
    std::int64_t wl = 0;
    for (const NetRoute& net : sol.nets) {
      for (const dag::PatternPath& p : net.paths) wl += p.length();
    }
    return std::tuple(demand.overflowed_edge_count(capacities),
                      demand.total_overflow(capacities), wl);
  };
  RouteSolution best = sol;
  auto best_score = snapshot_score();

  for (int round = 0; round < options.max_rounds; ++round) {
    // Nets crossing overflowed edges, most-overflowed first.
    std::vector<std::pair<double, std::size_t>> victims;
    for (std::size_t i = 0; i < sol.nets.size(); ++i) {
      double worst = 0.0;
      for (const dag::PatternPath& p : sol.nets[i].paths) {
        for (const EdgeId e : p.edges(design.grid())) {
          worst = std::max(worst, demand.demand(e) -
                                      static_cast<double>(
                                          capacities[static_cast<std::size_t>(e)]));
        }
      }
      if (worst > 1e-6) victims.emplace_back(worst, i);
    }
    if (victims.empty()) break;
    std::stable_sort(victims.begin(), victims.end(),
                     [](const auto& a, const auto& b) { return a.first > b.first; });

    bool improved_any = false;
    for (const auto& [worst, i] : victims) {
      RouteSolution::apply_net(demand, design, sol.nets[i], options.via_beta, -1.0);
      const NetCost old_cost =
          net_cost(design, sol.nets[i], demand, capacities, options, via_scale);
      NetRoute candidate =
          maze_reroute_net(design, sol.nets[i].design_net, demand, capacities, options);
      const NetCost new_cost =
          net_cost(design, candidate, demand, capacities, options, via_scale);
      ++stats.nets_rerouted;
      // Accept only complete reroutes that strictly improve without adding
      // overflowed edges (an empty candidate = unreachable pin, rejected).
      if (!candidate.paths.empty() && new_cost.weighted < old_cost.weighted - 1e-9 &&
          new_cost.overflowed_edges <= old_cost.overflowed_edges) {
        sol.nets[i] = std::move(candidate);
        ++stats.nets_improved;
        improved_any = true;
      }
      RouteSolution::apply_net(demand, design, sol.nets[i], options.via_beta, +1.0);
    }
    stats.rounds_run = round + 1;
    const auto score = snapshot_score();
    if (score < best_score) {
      best_score = score;
      best = sol;
    }
    if (!improved_any) break;
  }

  sol = std::move(best);
  demand = sol.demand(options.via_beta);
  stats.overflow_after = demand.total_overflow(capacities);
  return stats;
}

}  // namespace dgr::post
