#pragma once
// Maze-routing refinement (Section 4.6): after pattern routing, nets that
// cross overflowed g-cell edges are ripped up and rerouted with a
// congestion-priced maze search; a reroute is kept only if it improves the
// weighted (overflow, wirelength, via) cost, so refinement is monotone.

#include "eval/solution.hpp"

namespace dgr::post {

struct MazeRefineOptions {
  int max_rounds = 3;
  float via_beta = 0.5f;          ///< via demand model (matches optimisation)
  double overflow_weight = 500.0; ///< acceptance cost weights (ICCAD'19)
  double via_weight = 4.0;
  double wl_weight = 0.5;
  double congestion_price = 500.0;  ///< maze edge price per unit of overuse
};

struct MazeRefineStats {
  int rounds_run = 0;
  std::int64_t nets_rerouted = 0;
  std::int64_t nets_improved = 0;
  double overflow_before = 0.0;
  double overflow_after = 0.0;
};

/// Refines `sol` in place. Returns stats; guarantees the weighted cost never
/// increases and the solution stays pin-connected.
MazeRefineStats maze_refine(eval::RouteSolution& sol,
                            const std::vector<float>& capacities,
                            const MazeRefineOptions& options = {});

/// Reroutes one net from scratch with congestion-priced maze search against
/// `others` (the demand map *excluding* the net itself). Shared by the
/// refinement rounds above and the pipeline's validation-gate repair of
/// broken nets. Returns a route with empty paths when a pin is unreachable
/// (callers must treat that as "net still broken", never commit it).
eval::NetRoute maze_reroute_net(const design::Design& design, std::size_t design_net,
                                const grid::DemandMap& others,
                                const std::vector<float>& capacities,
                                const MazeRefineOptions& options = {});

}  // namespace dgr::post
