#include "post/layer_assign.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "obs/trace.hpp"

namespace dgr::post {

using eval::RouteSolution;
using geom::Point;
using grid::Dir;
using grid::EdgeId;
using grid::GCellGrid;

namespace {

struct Leg {
  Point u, v;
  Dir dir = Dir::kHorizontal;
  std::vector<EdgeId> edges;  ///< g-cell edges along the leg
  std::size_t flat_index = 0; ///< position in the output leg_layers[net]
};

/// Straight legs of one net's paths (zero-length legs dropped). flat_index
/// counts only the kept legs, in enumeration order.
std::vector<Leg> collect_legs(const GCellGrid& grid, const eval::NetRoute& net) {
  std::vector<Leg> legs;
  std::size_t flat = 0;
  for (const dag::PatternPath& path : net.paths) {
    for (std::size_t k = 0; k + 1 < path.waypoints.size(); ++k) {
      const Point a = path.waypoints[k];
      const Point b = path.waypoints[k + 1];
      if (a == b) continue;
      Leg leg;
      leg.u = a;
      leg.v = b;
      leg.dir = (a.y == b.y) ? Dir::kHorizontal : Dir::kVertical;
      leg.edges = dag::PatternPath{{a, b}}.edges(grid);
      leg.flat_index = flat++;
      legs.push_back(std::move(leg));
    }
  }
  return legs;
}

}  // namespace

LayerAssignment assign_layers(const RouteSolution& sol,
                              const std::vector<float>& capacities_2d,
                              const LayerAssignOptions& options) {
  DGR_TRACE_SCOPE("post.layer_assign");
  LayerAssignment out;
  const design::Design& design = *sol.design;
  const GCellGrid& grid = design.grid();
  const int L = grid.layer_count();

  // Layer options per direction and per-layer capacity share.
  std::vector<int> h_layers, v_layers;
  for (int l = 0; l < L; ++l) {
    if (grid.layers()[static_cast<std::size_t>(l)].tracks <= 0) continue;
    (grid.layers()[static_cast<std::size_t>(l)].dir == Dir::kHorizontal ? h_layers
                                                                        : v_layers)
        .push_back(l);
  }
  // Fallback: if a direction has no tracked layer, allow every layer of that
  // direction anyway (degenerate stacks in tests).
  if (h_layers.empty()) {
    for (int l = 0; l < L; ++l) {
      if (grid.layers()[static_cast<std::size_t>(l)].dir == Dir::kHorizontal)
        h_layers.push_back(l);
    }
  }
  if (v_layers.empty()) {
    for (int l = 0; l < L; ++l) {
      if (grid.layers()[static_cast<std::size_t>(l)].dir == Dir::kVertical)
        v_layers.push_back(l);
    }
  }

  // Capacity share of one layer: the 2D capacity (which already folds in the
  // Eq. 1 pin/local-net pressure) split evenly across same-direction layers.
  auto layer_cap = [&](int /*layer*/, EdgeId e) -> double {
    const Dir d = grid.edge_dir(e);
    const int n_dir = d == Dir::kHorizontal ? static_cast<int>(h_layers.size())
                                            : static_cast<int>(v_layers.size());
    return static_cast<double>(capacities_2d[static_cast<std::size_t>(e)]) /
           std::max(1, n_dir);
  };

  // Live per-layer demand.
  std::vector<std::vector<double>> layer_demand(
      static_cast<std::size_t>(L),
      std::vector<double>(static_cast<std::size_t>(grid.edge_count()), 0.0));

  out.leg_layers.resize(sol.nets.size());

  for (std::size_t n = 0; n < sol.nets.size(); ++n) {
    const eval::NetRoute& net = sol.nets[n];
    std::vector<Leg> legs = collect_legs(grid, net);
    out.leg_layers[n].assign(legs.size(), options.pin_layer);
    if (legs.empty()) continue;

    // Junction graph.
    std::map<Point, int> junction_of;
    auto junction = [&](const Point& p) {
      auto [it, ins] = junction_of.emplace(p, static_cast<int>(junction_of.size()));
      (void)ins;
      return it->second;
    };
    std::vector<std::vector<std::size_t>> adj;  // junction -> incident leg ids
    auto touch = [&](int j) {
      if (static_cast<std::size_t>(j) >= adj.size()) adj.resize(static_cast<std::size_t>(j) + 1);
    };
    std::vector<std::pair<int, int>> leg_ends(legs.size());
    for (std::size_t i = 0; i < legs.size(); ++i) {
      const int ju = junction(legs[i].u);
      const int jv = junction(legs[i].v);
      touch(ju);
      touch(jv);
      adj[static_cast<std::size_t>(ju)].push_back(i);
      adj[static_cast<std::size_t>(jv)].push_back(i);
      leg_ends[i] = {ju, jv};
    }

    // Pin junctions (for pin-access via cost).
    std::vector<bool> is_pin(adj.size(), false);
    for (const Point& pin : design.net(net.design_net).pins) {
      auto it = junction_of.find(pin);
      if (it != junction_of.end()) is_pin[static_cast<std::size_t>(it->second)] = true;
    }

    // Spanning tree by BFS from junction 0; duplicate/cycle legs become
    // "extra" legs assigned greedily afterwards.
    std::vector<std::size_t> parent_leg(adj.size(), SIZE_MAX);
    std::vector<int> bfs_order;
    std::vector<bool> visited(adj.size(), false);
    std::vector<bool> leg_in_tree(legs.size(), false);
    bfs_order.push_back(0);
    visited[0] = true;
    for (std::size_t head = 0; head < bfs_order.size(); ++head) {
      const int j = bfs_order[head];
      for (const std::size_t li : adj[static_cast<std::size_t>(j)]) {
        const auto [a, b] = leg_ends[li];
        const int other = a == j ? b : a;
        if (visited[static_cast<std::size_t>(other)]) continue;
        visited[static_cast<std::size_t>(other)] = true;
        parent_leg[static_cast<std::size_t>(other)] = li;
        leg_in_tree[li] = true;
        bfs_order.push_back(other);
      }
    }

    auto options_for = [&](Dir d) -> const std::vector<int>& {
      return d == Dir::kHorizontal ? h_layers : v_layers;
    };
    auto leg_cost = [&](const Leg& leg, int layer) -> double {
      double c = 0.0;
      for (const EdgeId e : leg.edges) {
        const double over = layer_demand[static_cast<std::size_t>(layer)]
                                        [static_cast<std::size_t>(e)] +
                            1.0 - layer_cap(layer, e);
        if (over > 0.0) c += options.overflow_penalty * over;
      }
      return c;
    };

    // Bottom-up DP over tree legs. best[leg][option] = leg cost + subtree
    // below the leg's child junction. choice[leg][option][child_leg] is
    // implied by re-minimising during top-down commit.
    std::vector<std::vector<double>> best(legs.size());
    // Children of a junction in the tree = incident tree legs except parent.
    auto children_of = [&](int j) {
      std::vector<std::size_t> out_legs;
      for (const std::size_t li : adj[static_cast<std::size_t>(j)]) {
        if (!leg_in_tree[li]) continue;
        // li is a child leg of j iff its far endpoint was discovered via li.
        const auto [a, b] = leg_ends[li];
        const int other = (a == j) ? b : a;
        if (parent_leg[static_cast<std::size_t>(other)] == li) out_legs.push_back(li);
      }
      return out_legs;
    };

    // Reverse BFS order = bottom-up.
    for (auto it = bfs_order.rbegin(); it != bfs_order.rend(); ++it) {
      const int j = *it;
      const std::size_t pl = parent_leg[static_cast<std::size_t>(j)];
      if (pl == SIZE_MAX) continue;  // root has no incoming leg
      const Leg& leg = legs[pl];
      const auto& opts = options_for(leg.dir);
      best[pl].assign(opts.size(), 0.0);
      const std::vector<std::size_t> kids = children_of(j);
      for (std::size_t oi = 0; oi < opts.size(); ++oi) {
        const int layer = opts[oi];
        double c = leg_cost(leg, layer);
        if (is_pin[static_cast<std::size_t>(j)]) {
          c += options.via_weight * std::abs(layer - options.pin_layer);
        }
        for (const std::size_t kid : kids) {
          const auto& kopts = options_for(legs[kid].dir);
          double kbest = std::numeric_limits<double>::infinity();
          for (std::size_t ki = 0; ki < kopts.size(); ++ki) {
            kbest = std::min(kbest, best[kid][ki] +
                                        options.via_weight *
                                            std::abs(layer - kopts[ki]));
          }
          c += kbest;
        }
        best[pl][oi] = c;
      }
    }

    // Top-down commit.
    std::vector<int> leg_layer(legs.size(), -1);
    // Root junction: choose each child leg's layer including the root pin via.
    {
      const int root = bfs_order.front();
      for (const std::size_t kid : children_of(root)) {
        const auto& kopts = options_for(legs[kid].dir);
        std::size_t bi = 0;
        double bc = std::numeric_limits<double>::infinity();
        for (std::size_t ki = 0; ki < kopts.size(); ++ki) {
          double c = best[kid][ki];
          if (is_pin[static_cast<std::size_t>(root)]) {
            c += options.via_weight * std::abs(kopts[ki] - options.pin_layer);
          }
          if (c < bc) {
            bc = c;
            bi = ki;
          }
        }
        leg_layer[kid] = kopts[bi];
      }
    }
    for (std::size_t head = 1; head < bfs_order.size(); ++head) {
      const int j = bfs_order[head];
      const std::size_t pl = parent_leg[static_cast<std::size_t>(j)];
      const int player = leg_layer[pl];
      for (const std::size_t kid : children_of(j)) {
        const auto& kopts = options_for(legs[kid].dir);
        std::size_t bi = 0;
        double bc = std::numeric_limits<double>::infinity();
        for (std::size_t ki = 0; ki < kopts.size(); ++ki) {
          const double c =
              best[kid][ki] + options.via_weight * std::abs(player - kopts[ki]);
          if (c < bc) {
            bc = c;
            bi = ki;
          }
        }
        leg_layer[kid] = kopts[bi];
      }
    }
    // Extra (cycle) legs: independent greedy choice.
    for (std::size_t li = 0; li < legs.size(); ++li) {
      if (leg_layer[li] >= 0) continue;
      const auto& opts = options_for(legs[li].dir);
      std::size_t bi = 0;
      double bc = std::numeric_limits<double>::infinity();
      for (std::size_t oi = 0; oi < opts.size(); ++oi) {
        const double c = leg_cost(legs[li], opts[oi]);
        if (c < bc) {
          bc = c;
          bi = oi;
        }
      }
      leg_layer[li] = opts[bi];
    }

    // Commit demand and record.
    for (std::size_t li = 0; li < legs.size(); ++li) {
      for (const EdgeId e : legs[li].edges) {
        layer_demand[static_cast<std::size_t>(leg_layer[li])]
                    [static_cast<std::size_t>(e)] += 1.0;
      }
      out.leg_layers[n][legs[li].flat_index] = leg_layer[li];
    }

    // Exact via count at junctions: span of incident leg layers (+ pin layer).
    for (std::size_t j = 0; j < adj.size(); ++j) {
      int lo = std::numeric_limits<int>::max();
      int hi = std::numeric_limits<int>::min();
      for (const std::size_t li : adj[j]) {
        lo = std::min(lo, leg_layer[li]);
        hi = std::max(hi, leg_layer[li]);
      }
      if (is_pin[j]) {
        lo = std::min(lo, options.pin_layer);
        hi = std::max(hi, options.pin_layer);
      }
      if (lo <= hi) out.via_count += hi - lo;
    }
  }

  // Post-assignment overflow statistics.
  std::vector<std::vector<bool>> layer_over(
      static_cast<std::size_t>(L),
      std::vector<bool>(static_cast<std::size_t>(grid.edge_count()), false));
  for (int l = 0; l < L; ++l) {
    for (EdgeId e = 0; e < grid.edge_count(); ++e) {
      const double d = layer_demand[static_cast<std::size_t>(l)][static_cast<std::size_t>(e)];
      const double cap = layer_cap(l, e);
      if (d > cap + 1e-6) {
        layer_over[static_cast<std::size_t>(l)][static_cast<std::size_t>(e)] = true;
        ++out.overflowed_layer_edges;
        out.layer_overflow_total += d - cap;
      }
    }
  }
  for (std::size_t n = 0; n < sol.nets.size(); ++n) {
    const std::vector<Leg> legs = collect_legs(grid, sol.nets[n]);
    bool over = false;
    for (const Leg& leg : legs) {
      const int l = out.leg_layers[n][leg.flat_index];
      for (const EdgeId e : leg.edges) {
        if (layer_over[static_cast<std::size_t>(l)][static_cast<std::size_t>(e)]) {
          over = true;
          break;
        }
      }
      if (over) break;
    }
    if (over) ++out.nets_with_overflow;
  }
  return out;
}

}  // namespace dgr::post
