#include "util/fault.hpp"

#include <atomic>
#include <map>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dgr::util::fault {

namespace {

struct SiteState {
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
  // Index into the armed plan's faults, or -1 when the plan doesn't cover
  // this site (still counted so sites_hit() reports coverage).
  int spec = -1;
};

struct Registry {
  std::mutex mu;
  bool armed = false;
  FaultPlan plan;
  std::map<std::string, SiteState, std::less<>> sites;
};

Registry& registry() {
  static Registry r;
  return r;
}

/// Innermost ScopedFireCollector sink on this thread (nullptr when none).
thread_local std::vector<std::string>* g_fire_sink = nullptr;

/// Disarmed fast path: one relaxed load per DGR_FAULT_POINT.
std::atomic<bool>& armed_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Whether the `hit_index`-th hit of `site` fires: a pure function of the
/// plan seed, the site name and the hit index, so chaos runs replay exactly.
bool draw(std::uint64_t seed, std::string_view site, std::uint64_t hit_index,
          double probability) {
  if (probability >= 1.0) return true;
  if (probability <= 0.0) return false;
  const std::uint64_t u = splitmix64(seed ^ fnv1a(site) ^ (hit_index * 0x9e3779b9ull));
  // 53-bit mantissa keeps the uniform draw exact in double.
  const double unit = static_cast<double>(u >> 11) * 0x1.0p-53;
  return unit < probability;
}

}  // namespace

bool compiled_in() {
#if defined(DGR_FAULT_INJECTION)
  return true;
#else
  return false;
#endif
}

void arm(const FaultPlan& plan) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.plan = plan;
  r.sites.clear();
  r.armed = true;
  armed_flag().store(true, std::memory_order_release);
}

void disarm() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.armed = false;
  armed_flag().store(false, std::memory_order_release);
}

bool armed() { return armed_flag().load(std::memory_order_acquire); }

bool should_fire(std::string_view site) {
  if (!armed_flag().load(std::memory_order_relaxed)) return false;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (!r.armed) return false;
  auto it = r.sites.find(site);
  if (it == r.sites.end()) {
    SiteState state;
    for (std::size_t i = 0; i < r.plan.faults.size(); ++i) {
      if (r.plan.faults[i].site == site) {
        state.spec = static_cast<int>(i);
        break;
      }
    }
    it = r.sites.emplace(std::string(site), state).first;
  }
  SiteState& state = it->second;
  const std::uint64_t hit_index = state.hits++;
  if (state.spec < 0) return false;
  const FaultSpec& spec = r.plan.faults[static_cast<std::size_t>(state.spec)];
  if (spec.max_fires >= 0 && state.fires >= static_cast<std::uint64_t>(spec.max_fires)) {
    return false;
  }
  if (!draw(r.plan.seed, site, hit_index, spec.probability)) return false;
  ++state.fires;
  // A fire is a rare, diagnosis-relevant event: mark it on the trace
  // timeline and in the metrics snapshot. Instant names need static
  // lifetime, hence the interner (fires are rare — the allocation is off
  // any hot path).
  DGR_TRACE_INSTANT(obs::intern("fault." + std::string(site)));
  obs::metrics().counter("fault.fires").add(1);
  if (g_fire_sink != nullptr) g_fire_sink->emplace_back(site);
  return true;
}

ScopedFireCollector::ScopedFireCollector() : prev_(g_fire_sink) { g_fire_sink = &fired_; }

ScopedFireCollector::~ScopedFireCollector() { g_fire_sink = prev_; }

std::vector<std::string> current_fired_sites() {
  return g_fire_sink != nullptr ? *g_fire_sink : std::vector<std::string>{};
}

std::uint64_t hits(std::string_view site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.hits;
}

std::uint64_t fires(std::string_view site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.fires;
}

std::vector<std::string> sites_hit() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> out;
  out.reserve(r.sites.size());
  for (const auto& [site, state] : r.sites) {
    if (state.hits > 0) out.push_back(site);
  }
  return out;  // std::map iteration is already sorted
}

}  // namespace dgr::util::fault
