#include "util/timer.hpp"

// Header-only in practice; this TU pins the library's vtable-free symbols so
// every module that links dgr_util gets identical inlined definitions.
