#pragma once
/// \file
/// \brief Typed error taxonomy for library boundaries: dgr::Status and
/// dgr::Result<T>.
///
/// The routing pipeline's failure model (DESIGN.md §7) distinguishes
/// *recoverable* outcomes — a stage that timed out, a solve that diverged,
/// an injected fault — from programmer errors. Library boundaries
/// (design/io, core::DgrSolver::train, pipeline::Pipeline) report the former
/// as a Status instead of throwing, so callers can degrade gracefully
/// (fall back to a cheaper router, roll back to a checkpoint, repair a
/// broken net) rather than unwind.
///
/// Status is cheap to copy when OK (empty message, enum code) and carries a
/// human-readable message otherwise. Result<T> couples a Status with a
/// payload for parse-style APIs.

#include <cassert>
#include <string>
#include <string_view>
#include <utility>

namespace dgr {

/// Failure classes a caller can act on. Keep this list small and
/// behavioural: a code should tell the caller *what to do* (retry, degrade,
/// repair, give up), not merely where the failure happened.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,     ///< caller error: bad sizes, missing precondition
  kParseError,          ///< malformed .dgrd input (line-numbered message)
  kInvalidDesign,       ///< well-formed input rejected by admission limits
                        ///< (byte/net/pin caps of untrusted-input parsing)
  kNumericDivergence,   ///< non-finite loss/gradients; retries exhausted
  kStageTimeout,        ///< a pipeline stage exceeded its wall-clock budget
  kCapacityInfeasible,  ///< no legal routing exists under the capacities
  kUnreachableTarget,   ///< maze search: target not reachable from sources
  kResourceExhausted,   ///< allocation failure / memory budget exceeded
  kValidationFailed,    ///< post-route gate found unrepairable damage
  kNotFound,            ///< named entity (router, file) does not exist
  kFaultInjected,       ///< synthetic fault from util/fault.hpp
  kCancelled,           ///< work was not attempted
  kInternal,            ///< unexpected exception converted at a boundary
};

/// Stable upper-snake name of a code ("STAGE_TIMEOUT", ...), for logs.
std::string_view status_code_name(StatusCode code);

class [[nodiscard]] Status {
 public:
  /// Default = OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "STAGE_TIMEOUT: route stage exceeded 0.5s budget" (or "OK").
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A Status or a value: the return type of fallible producers
/// (e.g. design::try_read_design). Exactly one of the two is meaningful.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)), has_value_(true) {}
  Result(Status status) : status_(std::move(status)) {
    // A Result built from a status must describe a failure.
    assert(!status_.ok());
    if (status_.ok()) status_ = Status(StatusCode::kInternal, "Result built from OK status");
  }

  bool ok() const { return has_value_; }
  const Status& status() const { return status_; }

  T& value() {
    assert(has_value_);
    return value_;
  }
  const T& value() const {
    assert(has_value_);
    return value_;
  }
  T&& take() {
    assert(has_value_);
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
  bool has_value_ = false;
};

}  // namespace dgr

/// Early-return plumbing for Status-returning functions.
#define DGR_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::dgr::Status dgr_status_tmp_ = (expr);        \
    if (!dgr_status_tmp_.ok()) return dgr_status_tmp_; \
  } while (0)
