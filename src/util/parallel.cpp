#include "util/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace dgr::util {
namespace {

std::atomic<std::size_t> g_override{0};

std::size_t default_workers() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 4 : hc;
}

// A persistent pool executing multi-stage jobs. Creating threads per call
// would dominate the cost of the small kernels DGR runs thousands of times,
// and even a condition-variable round trip per kernel is measurable — so a
// job carries an ARRAY of stages and workers wake once for the whole chain.
//
// Two design decisions keep thread scheduling off the submitter's critical
// path entirely:
//
//  * Progress is tracked per CHUNK, not per participant: stage s is complete
//    when all of its chunks have retired, and whoever observes that (the
//    caller participates) moves straight on to stage s+1 — or, after the
//    last stage, returns. Nobody ever waits for a *thread* to arrive, so a
//    worker the OS has not scheduled simply contributes nothing instead of
//    adding a context-switch round trip to every stage boundary.
//
//  * Jobs live in a two-slot ring of pool-owned descriptors. A submission
//    into slot s%2 only waits for leftover workers of the job TWO epochs
//    back (same slot); the job just finished keeps its slot until then, so
//    back-to-back kernels never stall on the previous job's checkout. A
//    worker that wakes late simply processes whatever the current epoch is
//    (claiming whatever chunks remain, often none) and checks out of that
//    job's slot; epoch-stamped counters keep the accounting straight when a
//    worker sleeps through a job entirely.
//
// On an oversubscribed machine (worker_count > cores) the caller therefore
// drains whole jobs alone at memory speed while workers tick along in the
// background; on real multicore the workers wake once per job and claim
// chunks exactly as before. Results are bitwise identical either way: chunk
// boundaries derive from (begin, end, grain) only, and every output element
// is owned by the chunk that writes it.
//
// Single-client discipline: jobs are submitted from one thread at a time
// (the solver's training loop); stage functions must not submit nested jobs.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  // At most kMaxStages stages per submission; pool_run_stages splits longer
  // chains into batches (a full gate between batches is strictly stronger
  // than the inter-stage gate, so semantics are unchanged).
  static constexpr std::size_t kMaxStages = 8;

  void run(const detail::RawStage* stages, std::size_t count) {
    const std::size_t workers = worker_count();
    if (workers <= 1) {  // defensive: the template layer normally short-circuits
      for (std::size_t s = 0; s < count; ++s) {
        if (stages[s].begin < stages[s].end) {
          stages[s].fn(stages[s].ctx, stages[s].begin, stages[s].end);
        }
      }
      return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    const std::uint64_t epoch = epoch_ + 1;
    Slot& slot = slots_[epoch % 2];
    // Reuse gate: workers still inside the job two epochs back hold this
    // slot. They had the whole previous job's duration to check out, so this
    // wait is almost always a no-op.
    cv_done_.wait(lock, [&] { return slot.refs == 0; });
    ensure_threads_locked(workers - 1);
    slot.count = count;
    for (std::size_t s = 0; s < count; ++s) {
      slot.job[s] = stages[s];
      slot.chunks[s] = stages[s].begin < stages[s].end
                           ? (stages[s].end - stages[s].begin + stages[s].grain - 1) /
                                 stages[s].grain
                           : 0;
      slot.cursor[s].store(stages[s].begin, std::memory_order_relaxed);
      slot.done[s].store(0, std::memory_order_relaxed);
    }
    // Span emission is decided per JOB at submit time: a worker waking late
    // for a job submitted before tracing was enabled must not leak a
    // "pool.job" span into the traced window (and vice versa).
    slot.traced = obs::tracing_enabled();
    // Request context rides the job the same way: captured once at submit so
    // worker-side spans (pool.job and anything inside the stage bodies)
    // carry the submitting request's identity, not a stale one.
    slot.ctx = obs::current_trace_context();
    // Exactly `workers` participants MAY run this job: the caller plus pool
    // threads [0, workers-1). Extra pool threads left over from a larger
    // previous worker_count wake, see they are not enrolled, and go back to
    // sleep. pending_ is epoch-stamped: a worker that slept through this job
    // entirely (the next submission overwrote the epoch first) never
    // decrements a stale counter.
    active_threads_ = workers - 1;
    pending_ = static_cast<int>(active_threads_);
    epoch_ = epoch;
    if (slot.traced) {
      // Traced jobs wake every enrolled worker so the Chrome timeline shows
      // one "pool.job" span per participant (the drain below guarantees they
      // all ran before the submission returns).
      cv_start_.notify_all();
    } else {
      // Never wake more workers than spare hardware threads: on an
      // oversubscribed machine (worker_count > cores) an extra runnable
      // worker cannot make CPU-bound chunks finish sooner — it only adds
      // context switches to the caller's critical path. The caller drains
      // whatever un-woken workers would have claimed; results are bitwise
      // identical because chunk boundaries do not depend on who executes
      // them. Workers left asleep simply join a later job.
      static const std::size_t spare = [] {
        const unsigned hc = std::thread::hardware_concurrency();
        return hc > 1 ? static_cast<std::size_t>(hc - 1) : std::size_t{0};
      }();
      if (spare >= active_threads_) {
        cv_start_.notify_all();
      } else {
        for (std::size_t i = 0; i < spare; ++i) cv_start_.notify_one();
      }
    }
    lock.unlock();

    work_stages(slot);  // caller participates; returns once every chunk retired

    // With tracing on, drain every enrolled worker before returning so each
    // participant's "pool.job" span lands inside the caller's enclosing span
    // (and the Chrome timeline never shows job-N worker spans overlapping
    // job N+1). Tracing only observes — results are identical either way.
    if (slot.traced) {
      lock.lock();
      cv_done_.wait(lock, [&] { return pending_ == 0; });
    }
  }

 private:
  struct Slot {
    detail::RawStage job[kMaxStages];
    std::size_t chunks[kMaxStages] = {};
    std::size_t count = 0;
    bool traced = false;
    obs::TraceContext ctx;  // submitter's request context, captured per job
    int refs = 0;  // workers currently executing this slot (guarded by mu_)
    std::atomic<std::size_t> cursor[kMaxStages] = {};
    std::atomic<std::size_t> done[kMaxStages] = {};
  };

  Pool() = default;
  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
      ++epoch_;
      cv_start_.notify_all();
    }
    for (auto& t : threads_) t.join();
  }

  void ensure_threads_locked(std::size_t n) {
    while (threads_.size() < n) {
      // Threads are created while mu_ is held: the new thread blocks on the
      // lock until job setup completes, then (epoch already bumped) joins the
      // job it was enrolled in, or sleeps if the epoch has not moved yet.
      threads_.emplace_back([this, my_epoch = epoch_,
                             my_index = threads_.size()]() mutable {
        std::unique_lock<std::mutex> lock(mu_);
        for (;;) {
          cv_start_.wait(lock, [&] { return epoch_ != my_epoch || stopping_; });
          if (stopping_) return;
          my_epoch = epoch_;
          if (my_index >= active_threads_) continue;
          Slot& slot = slots_[my_epoch % 2];
          ++slot.refs;
          lock.unlock();
          work_stages(slot);
          lock.lock();
          --slot.refs;
          if (my_epoch == epoch_) --pending_;
          cv_done_.notify_one();
        }
      });
    }
  }

  // Executes every stage of the given job, claiming chunks from the
  // per-stage cursor. Stage gate: each retired chunk does a release
  // fetch_add on done[s]; moving on requires an acquire load observing the
  // full count, which makes all stage-s writes visible to stage-s+1 readers
  // (and to the caller when it returns after the final gate). A participant
  // that claims nothing passes each gate as soon as the chunks retire —
  // late-waking workers cost bookkeeping, never a stage delay.
  void work_stages(Slot& slot) {
    // One span per participant per traced job: the Chrome timeline shows
    // every worker's share of each submission (determinism is unaffected —
    // the tracer only observes).
    if (slot.traced) {
      // Inherit the submitter's request context so this participant's
      // pool.job span — and any span emitted inside the stage bodies — is
      // attributed to the request that submitted the job.
      obs::TraceContextScope ctx_scope(slot.ctx);
      DGR_TRACE_SCOPE("pool.job");
      execute_stages(slot);
    } else {
      execute_stages(slot);
    }
  }

  void execute_stages(Slot& slot) {
    const std::size_t count = slot.count;
    for (std::size_t s = 0; s < count; ++s) {
      const detail::RawStage st = slot.job[s];
      const std::size_t n_chunks = slot.chunks[s];
      for (;;) {
        const std::size_t lo =
            slot.cursor[s].fetch_add(st.grain, std::memory_order_relaxed);
        if (lo >= st.end) break;
        const std::size_t hi = lo + st.grain < st.end ? lo + st.grain : st.end;
        st.fn(st.ctx, lo, hi);
        slot.done[s].fetch_add(1, std::memory_order_release);
      }
      // Brief spin, then yield: on oversubscribed machines the peer holding
      // the last unretired chunk needs the core we are holding, so with a
      // single hardware thread spinning at all is counterproductive.
      static const int spin_limit = std::thread::hardware_concurrency() > 1 ? 64 : 0;
      int spins = 0;
      while (slot.done[s].load(std::memory_order_acquire) != n_chunks) {
        if (++spins > spin_limit) std::this_thread::yield();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::vector<std::thread> threads_;

  // Job ring. Slot state is written under mu_ (exclusivity enforced by the
  // refs reuse gate), then read-only during the job's lifetime.
  Slot slots_[2];
  std::size_t active_threads_ = 0;
  int pending_ = 0;  // enrolled workers yet to process the CURRENT epoch
  std::uint64_t epoch_ = 0;
  bool stopping_ = false;
};

}  // namespace

std::size_t worker_count() {
  const std::size_t o = g_override.load(std::memory_order_relaxed);
  return o != 0 ? o : default_workers();
}

void set_worker_count(std::size_t n) { g_override.store(n, std::memory_order_relaxed); }

namespace {
// Depth, not a flag: serial sections nest (a region job that itself opens one
// must not re-enable pool dispatch when the inner guard unwinds).
thread_local int g_serial_depth = 0;
}  // namespace

bool serial_section_active() { return g_serial_depth > 0; }

SerialSection::SerialSection() { ++g_serial_depth; }
SerialSection::~SerialSection() { --g_serial_depth; }

namespace detail {

void pool_run_stages(const RawStage* stages, std::size_t count) {
  for (std::size_t s = 0; s < count; s += Pool::kMaxStages) {
    const std::size_t batch = count - s < Pool::kMaxStages ? count - s : Pool::kMaxStages;
    Pool::instance().run(stages + s, batch);
  }
}

}  // namespace detail
}  // namespace dgr::util
