#include "util/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace dgr::util {
namespace {

std::atomic<std::size_t> g_override{0};

std::size_t default_workers() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 4 : hc;
}

// A tiny persistent pool: jobs are (chunk range -> callback) pulled from a
// shared atomic cursor. Creating threads per call would dominate the cost of
// the small kernels DGR runs thousands of times.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  void run(std::size_t begin, std::size_t end,
           const std::function<void(std::size_t, std::size_t)>& fn, std::size_t grain) {
    if (begin >= end) return;
    const std::size_t n = end - begin;
    const std::size_t workers = worker_count();
    if (workers <= 1 || n <= grain) {
      fn(begin, end);
      return;
    }
    ensure_threads(workers - 1);
    std::unique_lock<std::mutex> lock(mu_);
    job_fn_ = &fn;
    job_begin_ = begin;
    job_end_ = end;
    job_grain_ = grain;
    cursor_.store(begin, std::memory_order_relaxed);
    pending_ = static_cast<int>(threads_.size());
    ++epoch_;
    cv_start_.notify_all();
    lock.unlock();

    work();  // caller participates

    lock.lock();
    cv_done_.wait(lock, [&] { return pending_ == 0; });
    job_fn_ = nullptr;
  }

 private:
  Pool() = default;
  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
      ++epoch_;
      cv_start_.notify_all();
    }
    for (auto& t : threads_) t.join();
  }

  void ensure_threads(std::size_t n) {
    while (threads_.size() < n) {
      threads_.emplace_back([this, my_epoch = epoch_]() mutable {
        std::unique_lock<std::mutex> lock(mu_);
        for (;;) {
          cv_start_.wait(lock, [&] { return epoch_ != my_epoch || stopping_; });
          if (stopping_) return;
          my_epoch = epoch_;
          if (job_fn_ == nullptr) continue;  // thread created mid-job epoch bump
          lock.unlock();
          work();
          lock.lock();
          if (--pending_ == 0) cv_done_.notify_one();
        }
      });
    }
  }

  void work() {
    const auto* fn = job_fn_;
    const std::size_t end = job_end_;
    const std::size_t grain = job_grain_;
    for (;;) {
      const std::size_t lo = cursor_.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) break;
      const std::size_t hi = lo + grain < end ? lo + grain : end;
      (*fn)(lo, hi);
    }
  }

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::vector<std::thread> threads_;
  const std::function<void(std::size_t, std::size_t)>* job_fn_ = nullptr;
  std::size_t job_begin_ = 0, job_end_ = 0, job_grain_ = 1;
  std::atomic<std::size_t> cursor_{0};
  int pending_ = 0;
  std::uint64_t epoch_ = 0;
  bool stopping_ = false;
};

}  // namespace

std::size_t worker_count() {
  const std::size_t o = g_override.load(std::memory_order_relaxed);
  return o != 0 ? o : default_workers();
}

void set_worker_count(std::size_t n) { g_override.store(n, std::memory_order_relaxed); }

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn, std::size_t grain) {
  parallel_for_blocked(
      begin, end,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      grain);
}

void parallel_for_blocked(std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t, std::size_t)>& fn,
                          std::size_t grain) {
  Pool::instance().run(begin, end, fn, grain == 0 ? 1 : grain);
}

}  // namespace dgr::util
