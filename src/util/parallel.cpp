#include "util/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace dgr::util {
namespace {

std::atomic<std::size_t> g_override{0};

std::size_t default_workers() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 4 : hc;
}

// A persistent pool executing multi-stage jobs. Creating threads per call
// would dominate the cost of the small kernels DGR runs thousands of times,
// and even a condition-variable round trip per kernel is measurable — so a
// job carries an ARRAY of stages: workers wake once, then move from stage to
// stage through spin barriers (fetch_add + yield loop), which cost tens of
// nanoseconds instead of a sleep/wake cycle.
//
// Single-client discipline: jobs are submitted from one thread at a time
// (the solver's training loop); stage functions must not submit nested jobs.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  void run(const detail::RawStage* stages, std::size_t count) {
    const std::size_t workers = worker_count();
    if (workers <= 1) {  // defensive: the template layer normally short-circuits
      for (std::size_t s = 0; s < count; ++s) {
        if (stages[s].begin < stages[s].end) {
          stages[s].fn(stages[s].ctx, stages[s].begin, stages[s].end);
        }
      }
      return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    ensure_threads_locked(workers - 1);
    stages_ = stages;
    stage_count_ = count;
    // Exactly `workers` participants: the caller plus threads [0, workers-1).
    // Extra pool threads left over from a larger previous worker_count wake,
    // see they are not enrolled, and go back to sleep.
    active_threads_ = workers - 1;
    participants_ = workers;
    pending_ = static_cast<int>(active_threads_);
    stage_idx_.store(0, std::memory_order_relaxed);
    arrived_.store(0, std::memory_order_relaxed);
    cursor_.store(stages[0].begin, std::memory_order_relaxed);
    ++epoch_;
    cv_start_.notify_all();
    lock.unlock();

    work_stages();  // caller participates

    lock.lock();
    cv_done_.wait(lock, [&] { return pending_ == 0; });
    stages_ = nullptr;
  }

 private:
  Pool() = default;
  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
      ++epoch_;
      cv_start_.notify_all();
    }
    for (auto& t : threads_) t.join();
  }

  void ensure_threads_locked(std::size_t n) {
    while (threads_.size() < n) {
      // Threads are created while mu_ is held: the new thread blocks on the
      // lock until job setup completes, then (epoch already bumped) joins the
      // job it was enrolled in, or sleeps if the epoch has not moved yet.
      threads_.emplace_back([this, my_epoch = epoch_,
                             my_index = threads_.size()]() mutable {
        std::unique_lock<std::mutex> lock(mu_);
        for (;;) {
          cv_start_.wait(lock, [&] { return epoch_ != my_epoch || stopping_; });
          if (stopping_) return;
          my_epoch = epoch_;
          if (stages_ == nullptr || my_index >= active_threads_) continue;
          lock.unlock();
          work_stages();
          lock.lock();
          if (--pending_ == 0) cv_done_.notify_one();
        }
      });
    }
  }

  // Executes every stage of the current job, claiming chunks from the shared
  // cursor. The inter-stage barrier: the last arriver resets the cursor for
  // the next stage and publishes it with a release store on stage_idx_; the
  // others spin (yield) until they observe the bump. The acquire/acq_rel
  // chain on arrived_/stage_idx_ makes all stage-s writes visible to stage
  // s+1 readers. After the final barrier nobody touches the caller-owned
  // stage array again, so the caller may return as soon as its own
  // work_stages() call unwinds (plus the cv_done_ handshake that keeps
  // pending_ consistent for the next submission).
  void work_stages() {
    // One span per participant per fused job: with tracing enabled the
    // Chrome timeline shows every worker's share of each submission; when
    // runtime-disabled this is a single relaxed load (determinism and the
    // <1% overhead contract are unaffected — the tracer only observes).
    DGR_TRACE_SCOPE("pool.job");
    const detail::RawStage* const stages = stages_;
    const std::size_t count = stage_count_;
    const std::size_t participants = participants_;
    for (std::size_t s = 0; s < count; ++s) {
      const detail::RawStage st = stages[s];
      for (;;) {
        const std::size_t lo = cursor_.fetch_add(st.grain, std::memory_order_relaxed);
        if (lo >= st.end) break;
        const std::size_t hi = lo + st.grain < st.end ? lo + st.grain : st.end;
        st.fn(st.ctx, lo, hi);
      }
      if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == participants) {
        arrived_.store(0, std::memory_order_relaxed);
        if (s + 1 < count) {
          cursor_.store(stages[s + 1].begin, std::memory_order_relaxed);
        }
        stage_idx_.store(s + 1, std::memory_order_release);
      } else {
        // Brief spin, then yield: on oversubscribed machines the peers we
        // wait for need the core we are holding, so with a single hardware
        // thread spinning at all is counterproductive.
        static const int spin_limit = std::thread::hardware_concurrency() > 1 ? 64 : 0;
        int spins = 0;
        while (stage_idx_.load(std::memory_order_acquire) <= s) {
          if (++spins > spin_limit) std::this_thread::yield();
        }
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::vector<std::thread> threads_;

  // Current job (guarded by mu_ for setup, then read-only during the job).
  const detail::RawStage* stages_ = nullptr;
  std::size_t stage_count_ = 0;
  std::size_t active_threads_ = 0;
  std::size_t participants_ = 0;
  int pending_ = 0;
  std::uint64_t epoch_ = 0;
  bool stopping_ = false;

  // Hot-path atomics.
  std::atomic<std::size_t> cursor_{0};
  std::atomic<std::size_t> stage_idx_{0};
  std::atomic<std::size_t> arrived_{0};
};

}  // namespace

std::size_t worker_count() {
  const std::size_t o = g_override.load(std::memory_order_relaxed);
  return o != 0 ? o : default_workers();
}

void set_worker_count(std::size_t n) { g_override.store(n, std::memory_order_relaxed); }

namespace detail {

void pool_run_stages(const RawStage* stages, std::size_t count) {
  Pool::instance().run(stages, count);
}

}  // namespace detail
}  // namespace dgr::util
