#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace dgr::util {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_message(LogLevel level, const char* file, int line, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  char body[2048];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(body, sizeof(body), fmt, args);
  va_end(args);
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[dgr %s %s:%d] %s\n", level_tag(level), basename_of(file), line, body);
}

LogSilencer::LogSilencer() : saved_(log_level()) { set_log_level(LogLevel::kOff); }
LogSilencer::~LogSilencer() { set_log_level(saved_); }

}  // namespace dgr::util
