#pragma once
// Deterministic random number generation for reproducible experiments.
//
// All stochastic components of the library (Gumbel noise, weight init,
// testcase generation) draw from Rng so a fixed seed reproduces a run
// bit-for-bit, which the paper's Table 1 "best/worst over seeds" protocol
// depends on.

#include <cstdint>
#include <vector>

namespace dgr::util {

/// xoshiro256** generator seeded via splitmix64. Small, fast, and good
/// enough statistical quality for Monte-Carlo style use here.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller.
  double normal();

  /// Sample from the standard Gumbel(0,1) distribution: -log(-log(U)).
  double gumbel();

  /// Derive an independent child stream; children with distinct tags are
  /// decorrelated from each other and from the parent.
  Rng fork(std::uint64_t tag) const;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace dgr::util
