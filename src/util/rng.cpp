#include "util/rng.hpp"

#include <cmath>

namespace dgr::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span + 1) % span;
  std::uint64_t r = next_u64();
  while (r > limit) r = next_u64();
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::normal() {
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::gumbel() {
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return -std::log(-std::log(u));
}

Rng Rng::fork(std::uint64_t tag) const {
  // Mix all state words with the tag through splitmix to derive a child seed.
  std::uint64_t mix = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ rotl(s_[3], 41);
  mix ^= tag * 0xd1342543de82ef95ull;
  return Rng(splitmix64(mix));
}

}  // namespace dgr::util
