#pragma once
/// \file
/// \brief Deterministic, seeded fault injection for the chaos test suite.
///
/// Differentiable-programming substrates embedded in a host language get
/// fault testing "for free" from the host; this repo builds its own. A
/// FaultPlan names injection *sites* (string ids compiled into the library
/// at parse, kernel, stage and allocation boundaries) and, per site, a fire
/// probability and an optional cap on the number of fires. Whether the k-th
/// hit of a site fires is a pure function of (plan seed, site name, k), so
/// a chaos run replays bit-for-bit — including across worker counts, since
/// every site sits on serial code paths.
///
/// The hooks are compiled in when DGR_FAULT_INJECTION is defined (the
/// default; configure with -DDGR_FAULT_INJECTION=OFF to compile them away).
/// Compiled in but disarmed, each site costs one relaxed atomic load.
///
/// Usage (tests):
///   util::fault::ScopedPlan chaos({seed, {{"core.grad", 1.0, 1}}});
///   ... run the pipeline; the first gradient check sees a NaN ...
/// Sites report hit/fire counts so a suite can assert every injection point
/// was actually exercised.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dgr::util::fault {

/// One site's injection policy within a plan.
struct FaultSpec {
  std::string site;          ///< compiled-in site id, e.g. "io.parse"
  double probability = 1.0;  ///< chance each hit fires (deterministic draw)
  int max_fires = -1;        ///< stop firing after this many; -1 = unlimited
};

struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultSpec> faults;
};

/// True when the hooks were compiled in (DGR_FAULT_INJECTION).
bool compiled_in();

/// Installs `plan` and resets all hit/fire counters. Thread-safe with
/// respect to should_fire, but arm/disarm themselves are test-harness calls
/// and must not race each other.
void arm(const FaultPlan& plan);
void disarm();
bool armed();

/// The runtime injection predicate behind DGR_FAULT_POINT. Counts the hit,
/// then fires iff the armed plan covers `site` and the deterministic draw
/// for this hit index passes. Always false when disarmed.
bool should_fire(std::string_view site);

/// Counters since the last arm(): how often a site was evaluated / fired.
/// Sites are tracked once hit, whether or not the plan covers them.
std::uint64_t hits(std::string_view site);
std::uint64_t fires(std::string_view site);
/// Every site hit since the last arm(), sorted.
std::vector<std::string> sites_hit();

/// RAII arm/disarm for tests.
class ScopedPlan {
 public:
  explicit ScopedPlan(const FaultPlan& plan) { arm(plan); }
  ~ScopedPlan() { disarm(); }
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;
};

/// RAII per-thread fire capture: while in scope, every fire on the
/// *current* thread appends its site name to this collector (collectors
/// nest; the innermost wins). The serve worker arms one per request so the
/// flight recorder can attribute fires to the request that hit them — every
/// compiled-in site sits on serial code paths, so the request's own thread
/// sees all of its fires.
class ScopedFireCollector {
 public:
  ScopedFireCollector();
  ~ScopedFireCollector();
  ScopedFireCollector(const ScopedFireCollector&) = delete;
  ScopedFireCollector& operator=(const ScopedFireCollector&) = delete;
  const std::vector<std::string>& fired() const { return fired_; }

 private:
  std::vector<std::string> fired_;
  std::vector<std::string>* prev_ = nullptr;
};

/// The sites collected so far by the current thread's innermost
/// ScopedFireCollector (empty when none is in scope).
std::vector<std::string> current_fired_sites();

}  // namespace dgr::util::fault

/// Injection points compile to a plain `false` when the hooks are off, so
/// gated code like `if (DGR_FAULT_POINT("io.parse")) ...` folds away.
#if defined(DGR_FAULT_INJECTION)
#define DGR_FAULT_POINT(site) (::dgr::util::fault::should_fire(site))
#else
#define DGR_FAULT_POINT(site) (false)
#endif
