#include "util/status.hpp"

namespace dgr {

std::string_view status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kParseError: return "PARSE_ERROR";
    case StatusCode::kInvalidDesign: return "INVALID_DESIGN";
    case StatusCode::kNumericDivergence: return "NUMERIC_DIVERGENCE";
    case StatusCode::kStageTimeout: return "STAGE_TIMEOUT";
    case StatusCode::kCapacityInfeasible: return "CAPACITY_INFEASIBLE";
    case StatusCode::kUnreachableTarget: return "UNREACHABLE_TARGET";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kValidationFailed: return "VALIDATION_FAILED";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kFaultInjected: return "FAULT_INJECTED";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (ok()) return "OK";
  std::string out(status_code_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace dgr
