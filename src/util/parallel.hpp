#pragma once
// Deterministic data-parallel runtime (dgr::util::ParallelRuntime).
//
// The paper runs DGR's tensor kernels on a GPU via PyTorch; this CPU
// substrate parallelises the same kernels across a persistent thread pool.
// All reductions are structured so results are bitwise independent of the
// thread count (each output element is owned by exactly one task).
//
// The front-end is header-only and fully templated: loop bodies are inlined
// into the per-chunk trampoline instead of being erased behind std::function,
// so a parallel_for over a tight numeric loop compiles to the same code as
// the loop itself. Dispatch costs are paid only when they buy something:
//
//  * fast path — a range that fits in one grain, or worker_count() == 1,
//    runs inline on the calling thread with no pool wakeup at all;
//  * fused multi-stage tasks — a chain of dependent kernels (e.g. the DGR
//    softmax -> expectation -> scatter pipeline) is submitted as one job:
//    one condition-variable wakeup covers every stage, with per-stage
//    chunk-retirement gates between consecutive stages instead of a
//    sleep/wake round trip per kernel. Gates count completed CHUNKS, not
//    arrived threads, so a worker the OS never scheduled cannot delay a
//    stage boundary — the caller participates and can drain a whole job
//    alone at memory speed on an oversubscribed machine.
//
// Determinism contract: a stage's function receives ownership of the index
// range it is handed; it may only write state owned by those indices. Chunk
// boundaries are derived from (begin, end, grain) only — never from the
// thread count — so any reduction expressed as "fixed blocks -> owned
// partial slots -> ordered combine" is bitwise thread-count invariant.

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace dgr::util {

/// Number of worker threads the pool uses (hardware concurrency by default).
std::size_t worker_count();

/// Overrides the worker count (0 restores the default). Mainly for tests
/// that check determinism across thread counts.
void set_worker_count(std::size_t n);

/// True while a SerialSection is alive on the calling thread.
bool serial_section_active();

/// RAII guard forcing every ParallelRuntime dispatch on this thread to run
/// inline, without touching the pool. Required inside code that already
/// executes as a pool stage function (the partition router's region jobs):
/// the pool's single-client discipline forbids nested submissions, and the
/// determinism contract makes inline execution bitwise identical to a pooled
/// one, so a serial section changes scheduling, never results. Nestable.
class SerialSection {
 public:
  SerialSection();
  ~SerialSection();
  SerialSection(const SerialSection&) = delete;
  SerialSection& operator=(const SerialSection&) = delete;
};

namespace detail {

/// Type-erased-but-cheap stage descriptor handed to the pool: a raw function
/// pointer plus context, not a std::function (no allocation, trivially
/// copyable, and the trampoline instantiation inlines the loop body).
struct RawStage {
  void (*fn)(void* ctx, std::size_t lo, std::size_t hi) = nullptr;
  void* ctx = nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t grain = 1;
};

/// Runs `count` stages on the persistent pool with ONE wakeup: participants
/// claim chunks of stage s from a shared cursor, then pass a chunk-retirement
/// gate before stage s+1 begins. Returns once every chunk of every stage has
/// completed (late-waking workers may still be checking out; the next
/// submission waits for them before reusing the job slot). Defined in
/// parallel.cpp. Precondition: count >= 1, every grain >= 1.
void pool_run_stages(const RawStage* stages, std::size_t count);

template <class F>
void blocked_trampoline(void* ctx, std::size_t lo, std::size_t hi) {
  (*static_cast<F*>(ctx))(lo, hi);
}

template <class F>
void indexed_trampoline(void* ctx, std::size_t lo, std::size_t hi) {
  F& fn = *static_cast<F*>(ctx);
  for (std::size_t i = lo; i < hi; ++i) fn(i);
}

}  // namespace detail

/// A blocked stage of a fused task: fn(lo, hi) over chunks of [begin, end).
/// Created via stage_blocked(); the functor lives inside the descriptor, so
/// temporaries passed to ParallelRuntime::fused stay alive for the call.
template <class F>
struct BlockedStage {
  std::size_t begin;
  std::size_t end;
  std::size_t grain;
  F fn;
};

template <class F>
BlockedStage<std::decay_t<F>> stage_blocked(std::size_t begin, std::size_t end,
                                            std::size_t grain, F&& fn) {
  return {begin, end, grain == 0 ? std::size_t{1} : grain, std::forward<F>(fn)};
}

/// The templated runtime. Stateless facade over the persistent pool; all
/// methods are static so call sites read ParallelRuntime::for_blocked(...).
class ParallelRuntime {
 public:
  /// Runs fn(i) for i in [begin, end). Blocks until done. fn must not throw.
  /// Each index is executed exactly once; distinct indices may run
  /// concurrently, so fn may only write to state owned by index i.
  template <class F>
  static void for_each(std::size_t begin, std::size_t end, F&& fn,
                       std::size_t grain = 1024) {
    if (begin >= end) return;
    if (grain == 0) grain = 1;
    if (end - begin <= grain || worker_count() <= 1 || serial_section_active()) {
      for (std::size_t i = begin; i < end; ++i) fn(i);
      return;
    }
    detail::RawStage stage{&detail::indexed_trampoline<std::remove_reference_t<F>>,
                           const_cast<void*>(static_cast<const void*>(std::addressof(fn))),
                           begin, end, grain};
    detail::pool_run_stages(&stage, 1);
  }

  /// Block variant: fn(lo, hi) on contiguous chunks covering [begin, end).
  /// Lower call overhead for tight numeric loops.
  template <class F>
  static void for_blocked(std::size_t begin, std::size_t end, F&& fn,
                          std::size_t grain = 4096) {
    if (begin >= end) return;
    if (grain == 0) grain = 1;
    if (end - begin <= grain || worker_count() <= 1 || serial_section_active()) {
      fn(begin, end);
      return;
    }
    detail::RawStage stage{&detail::blocked_trampoline<std::remove_reference_t<F>>,
                           const_cast<void*>(static_cast<const void*>(std::addressof(fn))),
                           begin, end, grain};
    detail::pool_run_stages(&stage, 1);
  }

  /// Fused submission: runs the stages in order with a barrier between
  /// consecutive stages, paying a single pool wakeup for the whole chain.
  /// Stage k+1 may read anything stage k wrote (the barrier publishes it).
  /// Falls back to an inline serial sweep when the pool would not help
  /// (single worker, or every stage fits in its own grain) — bitwise
  /// identical results either way thanks to the ownership contract.
  template <class... S>
  static void fused(BlockedStage<S>... stages) {
    constexpr std::size_t kCount = sizeof...(S);
    if constexpr (kCount == 0) {
      return;
    } else {
      const bool all_small = ((stages.end - stages.begin <= stages.grain) && ...);
      if (all_small || worker_count() <= 1 || serial_section_active()) {
        (run_serial(stages), ...);
        return;
      }
      const detail::RawStage raw[kCount] = {detail::RawStage{
          &detail::blocked_trampoline<S>,
          const_cast<void*>(static_cast<const void*>(std::addressof(stages.fn))),
          stages.begin, stages.end, stages.grain}...};
      detail::pool_run_stages(raw, kCount);
    }
  }

 private:
  template <class S>
  static void run_serial(S& stage) {
    if (stage.begin < stage.end) stage.fn(stage.begin, stage.end);
  }
};

/// Back-compat free-function spellings; these inline straight into the
/// runtime (no std::function, no overhead versus calling it directly).
template <class F>
void parallel_for(std::size_t begin, std::size_t end, F&& fn, std::size_t grain = 1024) {
  ParallelRuntime::for_each(begin, end, std::forward<F>(fn), grain);
}

template <class F>
void parallel_for_blocked(std::size_t begin, std::size_t end, F&& fn,
                          std::size_t grain = 4096) {
  ParallelRuntime::for_blocked(begin, end, std::forward<F>(fn), grain);
}

}  // namespace dgr::util
