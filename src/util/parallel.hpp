#pragma once
// Deterministic data-parallel helpers.
//
// The paper runs DGR's tensor kernels on a GPU via PyTorch; this CPU
// substrate parallelises the same kernels across a persistent thread pool.
// All reductions are structured so results are bitwise independent of the
// thread count (each output element is owned by exactly one task).

#include <cstddef>
#include <functional>

namespace dgr::util {

/// Number of worker threads the pool uses (hardware concurrency by default).
std::size_t worker_count();

/// Overrides the worker count (0 restores the default). Mainly for tests
/// that check determinism across thread counts.
void set_worker_count(std::size_t n);

/// Runs fn(i) for i in [begin, end) across the pool. Blocks until done.
/// fn must not throw. Each index is executed exactly once; distinct indices
/// may run concurrently, so fn may only write to state owned by index i.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1024);

/// Block variant: fn(lo, hi) is invoked on contiguous chunks covering
/// [begin, end). Lower call overhead for tight numeric loops.
void parallel_for_blocked(std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t, std::size_t)>& fn,
                          std::size_t grain = 4096);

}  // namespace dgr::util
