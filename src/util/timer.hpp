#pragma once
// Wall-clock timing used by the benchmark harnesses (Table 1 runtime column,
// Figure 5a runtime curves).

#include <chrono>

namespace dgr::util {

class Timer {
 public:
  Timer() { reset(); }

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across multiple start/stop windows (used to separate
/// DAG-forest construction time from solver time as in Fig. 5 footnote 3).
class StopWatch {
 public:
  void start() { timer_.reset(); running_ = true; }
  void stop() {
    if (running_) total_ += timer_.seconds();
    running_ = false;
  }
  double total_seconds() const { return running_ ? total_ + timer_.seconds() : total_; }

 private:
  Timer timer_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace dgr::util
