#pragma once
// Process memory probes for the Figure 5b "peak memory vs #nets" experiment.
// The paper reports peak CPU and GPU memory; our CPU-only substrate reports
// peak RSS (from /proc) plus the solver's own accounted allocation size,
// which stands in for the "GPU memory" series (tensor storage only).

#include <cstddef>

namespace dgr::util {

/// Peak resident set size of this process, in bytes (VmHWM). 0 if unknown.
std::size_t peak_rss_bytes();

/// Current resident set size, in bytes (VmRSS). 0 if unknown.
std::size_t current_rss_bytes();

}  // namespace dgr::util
