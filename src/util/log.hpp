#pragma once
// Lightweight leveled logging for the DGR library.
//
// Usage:
//   DGR_LOG_INFO("routed %zu nets, overflow=%lld", n, ovf);
// The active level is a process-global; benches lower it to keep table
// output clean, tests raise it when debugging.

#include <cstdarg>
#include <string>

namespace dgr::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is actually emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style log entry point; prefer the DGR_LOG_* macros.
void log_message(LogLevel level, const char* file, int line, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 4, 5)))
#endif
    ;

/// RAII guard that silences logging within a scope (used by benches).
class LogSilencer {
 public:
  LogSilencer();
  ~LogSilencer();
  LogSilencer(const LogSilencer&) = delete;
  LogSilencer& operator=(const LogSilencer&) = delete;

 private:
  LogLevel saved_;
};

}  // namespace dgr::util

#define DGR_LOG_DEBUG(...) \
  ::dgr::util::log_message(::dgr::util::LogLevel::kDebug, __FILE__, __LINE__, __VA_ARGS__)
#define DGR_LOG_INFO(...) \
  ::dgr::util::log_message(::dgr::util::LogLevel::kInfo, __FILE__, __LINE__, __VA_ARGS__)
#define DGR_LOG_WARN(...) \
  ::dgr::util::log_message(::dgr::util::LogLevel::kWarn, __FILE__, __LINE__, __VA_ARGS__)
#define DGR_LOG_ERROR(...) \
  ::dgr::util::log_message(::dgr::util::LogLevel::kError, __FILE__, __LINE__, __VA_ARGS__)
