#pragma once
// SALT-lite: shallow-light spanning trees (Chen & Young, "SALT: provably
// good routing topology by a novel Steiner shallow-light tree algorithm").
//
// The paper lists SALT as a drop-in source of additional routing-tree
// candidates for the DAG forest (Section 4.2). This is the classic
// Khuller–Raghavachari–Young trade-off the full SALT builds on: start from
// the Manhattan MST (light), DFS from the source pin, and whenever a node's
// tree path length exceeds (1 + epsilon) x its Manhattan distance from the
// source, replace its parent edge with a direct shortcut from the source
// (shallow). The result is a spanning tree with
//
//     pathlen(source, v)  <=  (1 + epsilon) * manhattan(source, v)   for all v
//     length(tree)        <=  (1 + 2/epsilon) * length(MST)
//
// Small epsilon => star-like (timing-friendly), large epsilon => MST-like
// (wirelength-friendly).

#include "rsmt/steiner_tree.hpp"

namespace dgr::rsmt {

struct SaltOptions {
  double epsilon = 1.0;    ///< shallowness slack; must be > 0
  std::size_t source = 0;  ///< index of the driver pin in `pins`
};

/// Builds a shallow-light spanning tree over the pins (no Steiner points —
/// pattern routing embeds the edges later, like every other candidate).
SteinerTree salt_tree(const std::vector<Point>& pins, const SaltOptions& opts = {});

/// Maximum over nodes of pathlen(source, v) / manhattan(source, v) in the
/// tree (1.0 is a perfect star; test oracle for the shallowness bound).
double radius_stretch(const SteinerTree& tree, std::size_t source);

}  // namespace dgr::rsmt
