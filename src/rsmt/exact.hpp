#pragma once
// Exact RSMT for small pin counts via Hanan-grid enumeration.
//
// Hanan's theorem: some rectilinear Steiner minimum tree uses only Steiner
// points from the Hanan grid (intersections of pin x/y coordinates), and an
// RSMT over n pins needs at most n-2 Steiner points. For a fixed candidate
// set S, MST(pins ∪ S) under Manhattan distance equals the best Steiner tree
// restricted to those points, so enumerating all S ⊆ Hanan with |S| ≤ n-2
// and taking the minimum MST is exact. Feasible for n ≤ 5 (≤ C(25,3) MSTs).

#include <vector>

#include "rsmt/steiner_tree.hpp"

namespace dgr::rsmt {

/// Maximum pin count `exact_rsmt` accepts.
inline constexpr std::size_t kExactRsmtMaxPins = 5;

/// Computes an exact rectilinear Steiner minimum tree. Requires
/// 1 <= pins.size() <= kExactRsmtMaxPins; pins must be distinct.
SteinerTree exact_rsmt(const std::vector<Point>& pins);

/// Exact RSMT *length* by the same enumeration (test oracle).
std::int64_t exact_rsmt_length(const std::vector<Point>& pins);

}  // namespace dgr::rsmt
