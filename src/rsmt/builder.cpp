#include "rsmt/builder.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>
#include <tuple>

#include "rsmt/exact.hpp"

namespace dgr::rsmt {

SteinerTree RsmtBuilder::build_small(const std::vector<Point>& pins) const {
  if (pins.size() <= kExactRsmtMaxPins) return exact_rsmt(pins);
  return iterated_one_steiner(pins, opts_.one_steiner);
}

SteinerTree RsmtBuilder::build(const std::vector<Point>& raw_pins) const {
  std::vector<Point> pins = geom::dedupe_points(raw_pins);
  if (pins.size() <= opts_.partition_threshold) {
    SteinerTree t = build_small(pins);
    // build_small may reorder pins (exact/1-Steiner keep input order; assert).
    assert(t.pin_count == pins.size());
    return t;
  }

  // Recursive median bisection on the longer bounding-box dimension. The
  // median pin is placed in BOTH halves so the recursive subtrees overlap in
  // exactly one point and merge into a single tree.
  struct Merger {
    SteinerTree out;
    std::map<Point, int> index_of;  // point -> node index in `out`

    int node_for(const Point& p, bool pin_zone_done) {
      auto it = index_of.find(p);
      if (it != index_of.end()) return it->second;
      const int idx = static_cast<int>(out.nodes.size());
      out.nodes.push_back(p);
      (void)pin_zone_done;
      index_of.emplace(p, idx);
      return idx;
    }
  };

  Merger merger;
  // Register pins first so SteinerTree's "pins first" convention holds.
  for (const Point& p : pins) merger.node_for(p, false);
  merger.out.pin_count = pins.size();

  // Explicit work stack of pin groups to triangulate recursion.
  std::vector<std::vector<Point>> stack;
  stack.push_back(pins);
  while (!stack.empty()) {
    std::vector<Point> group = std::move(stack.back());
    stack.pop_back();
    if (group.size() <= opts_.partition_threshold) {
      SteinerTree sub = build_small(group);
      // Graft sub's edges into the merged tree, creating Steiner nodes as
      // needed. Coincident points across subtrees unify automatically.
      std::vector<int> remap(sub.nodes.size());
      for (std::size_t v = 0; v < sub.nodes.size(); ++v) {
        remap[v] = merger.node_for(sub.nodes[v], true);
      }
      for (const auto& [a, b] : sub.edges) {
        const int ra = remap[static_cast<std::size_t>(a)];
        const int rb = remap[static_cast<std::size_t>(b)];
        if (ra != rb) merger.out.edges.emplace_back(ra, rb);
      }
      continue;
    }

    const geom::Rect box = geom::Rect::bounding_box(group);
    const bool split_x = box.width() >= box.height();
    std::sort(group.begin(), group.end(), [&](const Point& a, const Point& b) {
      return split_x ? std::tie(a.x, a.y) < std::tie(b.x, b.y)
                     : std::tie(a.y, a.x) < std::tie(b.y, b.x);
    });
    const std::size_t mid = group.size() / 2;
    std::vector<Point> lo(group.begin(), group.begin() + mid + 1);  // shares group[mid]
    std::vector<Point> hi(group.begin() + mid, group.end());
    stack.push_back(std::move(lo));
    stack.push_back(std::move(hi));
  }

  // Subtrees may reuse points, producing parallel edges or cycles; prune to
  // a spanning tree by keeping a minimal acyclic edge subset (Kruskal-style
  // on the already-built edges, shortest first).
  {
    SteinerTree& t = merger.out;
    std::vector<std::size_t> order(t.edges.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
      const auto len = [&](std::size_t k) {
        return geom::manhattan(t.nodes[static_cast<std::size_t>(t.edges[k].first)],
                               t.nodes[static_cast<std::size_t>(t.edges[k].second)]);
      };
      return len(i) < len(j);
    });
    std::vector<int> parent(t.nodes.size());
    for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = static_cast<int>(i);
    std::function<int(int)> find = [&](int x) {
      return parent[static_cast<std::size_t>(x)] == x
                 ? x
                 : parent[static_cast<std::size_t>(x)] = find(parent[static_cast<std::size_t>(x)]);
    };
    std::vector<std::pair<int, int>> kept;
    kept.reserve(t.nodes.size() - 1);
    for (std::size_t i : order) {
      const auto [a, b] = t.edges[i];
      const int ra = find(a), rb = find(b);
      if (ra != rb) {
        parent[static_cast<std::size_t>(ra)] = rb;
        kept.push_back(t.edges[i]);
      }
    }
    t.edges = std::move(kept);
  }

  merger.out.simplify();
  assert(merger.out.is_spanning_tree());
  return merger.out;
}

}  // namespace dgr::rsmt
