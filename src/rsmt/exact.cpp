#include "rsmt/exact.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <stdexcept>

namespace dgr::rsmt {
namespace {

// Enumerates subsets of `candidates` of size <= max_extra, calling visit()
// with each subset (including the empty one).
void for_each_subset(const std::vector<Point>& candidates, std::size_t max_extra,
                     std::vector<Point>& chosen, std::size_t start,
                     const std::function<void(const std::vector<Point>&)>& visit) {
  visit(chosen);
  if (chosen.size() == max_extra) return;
  for (std::size_t i = start; i < candidates.size(); ++i) {
    chosen.push_back(candidates[i]);
    for_each_subset(candidates, max_extra, chosen, i + 1, visit);
    chosen.pop_back();
  }
}

}  // namespace

SteinerTree exact_rsmt(const std::vector<Point>& pins) {
  if (pins.empty() || pins.size() > kExactRsmtMaxPins) {
    throw std::invalid_argument("exact_rsmt: unsupported pin count");
  }
  if (pins.size() <= 2) return manhattan_mst(pins);

  const auto hanan = geom::HananGrid::from_points(pins);
  std::vector<Point> candidates;
  candidates.reserve(hanan.size());
  for (std::size_t i = 0; i < hanan.size(); ++i) {
    const Point p = hanan.point(i);
    if (std::find(pins.begin(), pins.end(), p) == pins.end()) candidates.push_back(p);
  }

  SteinerTree best = manhattan_mst(pins);
  std::int64_t best_len = best.length();

  std::vector<Point> chosen;
  for_each_subset(candidates, pins.size() - 2, chosen, 0,
                  [&](const std::vector<Point>& steiners) {
                    if (steiners.empty()) return;  // MST over pins already evaluated
                    std::vector<Point> all = pins;
                    all.insert(all.end(), steiners.begin(), steiners.end());
                    SteinerTree t = manhattan_mst(all);
                    t.pin_count = pins.size();
                    const std::int64_t len = t.length();
                    if (len < best_len) {
                      best_len = len;
                      best = std::move(t);
                    }
                  });

  best.pin_count = pins.size();
  best.simplify();
  assert(best.is_spanning_tree());
  return best;
}

std::int64_t exact_rsmt_length(const std::vector<Point>& pins) {
  return exact_rsmt(pins).length();
}

}  // namespace dgr::rsmt
