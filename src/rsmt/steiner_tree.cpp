#include "rsmt/steiner_tree.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

namespace dgr::rsmt {

std::int64_t SteinerTree::length() const {
  std::int64_t total = 0;
  for (const auto& [a, b] : edges) {
    total += geom::manhattan(nodes[static_cast<std::size_t>(a)],
                             nodes[static_cast<std::size_t>(b)]);
  }
  return total;
}

bool SteinerTree::is_spanning_tree() const {
  const std::size_t n = nodes.size();
  if (n == 0) return false;
  if (edges.size() != n - 1) return false;
  // Union-find connectivity.
  std::vector<int> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  std::size_t merges = 0;
  for (const auto& [a, b] : edges) {
    if (a < 0 || b < 0 || static_cast<std::size_t>(a) >= n || static_cast<std::size_t>(b) >= n)
      return false;
    const int ra = find(a), rb = find(b);
    if (ra == rb) return false;  // cycle
    parent[static_cast<std::size_t>(ra)] = rb;
    ++merges;
  }
  return merges == n - 1;
}

std::vector<int> SteinerTree::degrees() const {
  std::vector<int> deg(nodes.size(), 0);
  for (const auto& [a, b] : edges) {
    ++deg[static_cast<std::size_t>(a)];
    ++deg[static_cast<std::size_t>(b)];
  }
  return deg;
}

std::vector<std::pair<Point, Point>> SteinerTree::canonical_edges() const {
  std::vector<std::pair<Point, Point>> out;
  out.reserve(edges.size());
  for (const auto& [a, b] : edges) {
    Point pa = nodes[static_cast<std::size_t>(a)];
    Point pb = nodes[static_cast<std::size_t>(b)];
    if (pb < pa) std::swap(pa, pb);
    out.emplace_back(pa, pb);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void SteinerTree::simplify() {
  // Compacts the node array: keeps pins and Steiner nodes still referenced
  // by an edge, remapping edge endpoints.
  auto compact = [this] {
    std::vector<int> remap(nodes.size(), -1);
    std::vector<Point> new_nodes;
    for (std::size_t v = 0; v < pin_count; ++v) {
      remap[v] = static_cast<int>(new_nodes.size());
      new_nodes.push_back(nodes[v]);
    }
    for (const auto& [a, b] : edges) {
      for (int x : {a, b}) {
        if (remap[static_cast<std::size_t>(x)] == -1) {
          remap[static_cast<std::size_t>(x)] = static_cast<int>(new_nodes.size());
          new_nodes.push_back(nodes[static_cast<std::size_t>(x)]);
        }
      }
    }
    for (auto& [a, b] : edges) {
      a = remap[static_cast<std::size_t>(a)];
      b = remap[static_cast<std::size_t>(b)];
    }
    nodes = std::move(new_nodes);
  };

  bool changed = true;
  while (changed) {
    changed = false;

    // Merge zero-length edges (coincident endpoints) by aliasing nodes.
    std::vector<int> alias(nodes.size());
    std::iota(alias.begin(), alias.end(), 0);
    auto root = [&](int x) {
      while (alias[static_cast<std::size_t>(x)] != x) x = alias[static_cast<std::size_t>(x)];
      return x;
    };
    bool merged = false;
    for (const auto& [a, b] : edges) {
      const int ra = root(a), rb = root(b);
      if (ra != rb && nodes[static_cast<std::size_t>(ra)] == nodes[static_cast<std::size_t>(rb)]) {
        // Keep the pin (lower index) as the representative.
        alias[static_cast<std::size_t>(std::max(ra, rb))] = std::min(ra, rb);
        merged = true;
      }
    }
    if (merged) {
      std::vector<std::pair<int, int>> kept;
      for (auto [a, b] : edges) {
        a = root(a);
        b = root(b);
        if (a != b) kept.emplace_back(a, b);
      }
      edges = std::move(kept);
      changed = true;
    }

    auto deg = degrees();

    // Drop Steiner leaves.
    for (std::size_t v = pin_count; v < nodes.size(); ++v) {
      if (deg[v] == 1) {
        auto it = std::find_if(edges.begin(), edges.end(), [&](const auto& e) {
          return e.first == static_cast<int>(v) || e.second == static_cast<int>(v);
        });
        if (it != edges.end()) {
          edges.erase(it);
          changed = true;
        }
      } else if (deg[v] == 0 && nodes.size() > pin_count) {
        changed = true;  // isolated Steiner node, removed by compaction
      }
    }
    if (changed) {
      compact();
      continue;
    }

    // Splice collinear degree-2 Steiner nodes.
    for (std::size_t v = pin_count; v < nodes.size() && !changed; ++v) {
      if (deg[v] != 2) continue;
      int e1 = -1, e2 = -1;
      for (std::size_t i = 0; i < edges.size(); ++i) {
        if (edges[i].first == static_cast<int>(v) || edges[i].second == static_cast<int>(v)) {
          (e1 == -1 ? e1 : e2) = static_cast<int>(i);
        }
      }
      const int n1 = edges[static_cast<std::size_t>(e1)].first == static_cast<int>(v)
                         ? edges[static_cast<std::size_t>(e1)].second
                         : edges[static_cast<std::size_t>(e1)].first;
      const int n2 = edges[static_cast<std::size_t>(e2)].first == static_cast<int>(v)
                         ? edges[static_cast<std::size_t>(e2)].second
                         : edges[static_cast<std::size_t>(e2)].first;
      const Point pv = nodes[v];
      const Point p1 = nodes[static_cast<std::size_t>(n1)];
      const Point p2 = nodes[static_cast<std::size_t>(n2)];
      // Splice only when v lies on a shortest rectilinear path between its
      // neighbours, so total length is unchanged.
      if (geom::manhattan(p1, pv) + geom::manhattan(pv, p2) == geom::manhattan(p1, p2)) {
        edges[static_cast<std::size_t>(e1)] = {n1, n2};
        edges.erase(edges.begin() + e2);
        compact();
        changed = true;
      }
    }
  }
}

SteinerTree manhattan_mst(const std::vector<Point>& pins) {
  SteinerTree tree;
  tree.nodes = pins;
  tree.pin_count = pins.size();
  const std::size_t n = pins.size();
  if (n <= 1) return tree;

  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> best(n, kInf);
  std::vector<int> from(n, -1);
  std::vector<bool> used(n, false);
  best[0] = 0;
  for (std::size_t it = 0; it < n; ++it) {
    std::size_t u = n;
    std::int64_t bu = kInf;
    for (std::size_t v = 0; v < n; ++v) {
      if (!used[v] && best[v] < bu) {
        bu = best[v];
        u = v;
      }
    }
    assert(u < n);
    used[u] = true;
    if (from[u] >= 0) tree.edges.emplace_back(from[u], static_cast<int>(u));
    for (std::size_t v = 0; v < n; ++v) {
      if (used[v]) continue;
      const std::int64_t d = geom::manhattan(pins[u], pins[v]);
      if (d < best[v]) {
        best[v] = d;
        from[v] = static_cast<int>(u);
      }
    }
  }
  return tree;
}

std::int64_t manhattan_mst_length(const std::vector<Point>& pts) {
  return manhattan_mst(pts).length();
}

}  // namespace dgr::rsmt
