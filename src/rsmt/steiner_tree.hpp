#pragma once
// Rectilinear Steiner tree representation and basic constructions.
//
// A SteinerTree spans a net's pins with optional Steiner nodes. Tree edges
// connect node indices; an edge's length is the Manhattan distance between
// its endpoints (the concrete L/Z embedding of each edge is chosen later by
// pattern routing, Section 4.2 of the paper). Tree edges are exactly the
// 2-pin sub-nets the DAG forest enumerates path candidates for.

#include <cstdint>
#include <utility>
#include <vector>

#include "geom/geom.hpp"

namespace dgr::rsmt {

using geom::Point;

struct SteinerTree {
  std::vector<Point> nodes;                   ///< pins first, then Steiner nodes
  std::size_t pin_count = 0;                  ///< nodes[0..pin_count) are pins
  std::vector<std::pair<int, int>> edges;     ///< node-index pairs

  std::size_t node_count() const { return nodes.size(); }
  bool is_pin(int node) const { return static_cast<std::size_t>(node) < pin_count; }

  /// Total rectilinear length (sum of Manhattan edge lengths).
  std::int64_t length() const;

  /// True iff the edge set forms a single tree spanning every node
  /// (|E| = |V|-1 and connected).
  bool is_spanning_tree() const;

  /// Node degrees (size node_count()).
  std::vector<int> degrees() const;

  /// Canonicalisation used for candidate dedup: sorted (min,max) point-pair
  /// edge list. Two trees with equal keys route identically.
  std::vector<std::pair<Point, Point>> canonical_edges() const;

  /// Removes structural noise without changing geometry:
  ///  - Steiner leaves (useless dangling nodes),
  ///  - degree-2 Steiner nodes that are *collinear* with both neighbours
  ///    (splicing them changes neither length nor the routable shapes),
  ///  - zero-length edges (duplicate points merged).
  /// Non-collinear degree-2 Steiner nodes are kept: they pin a bend.
  void simplify();
};

/// Prim's minimum spanning tree over the complete Manhattan-distance graph.
/// O(n^2); exact MST, used both as an RSMT fallback and as the upper bound
/// in property tests (RSMT length <= MST length).
SteinerTree manhattan_mst(const std::vector<Point>& pins);

/// Length of the Manhattan MST without materialising the tree.
std::int64_t manhattan_mst_length(const std::vector<Point>& pts);

}  // namespace dgr::rsmt
