#include "rsmt/salt.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <vector>

namespace dgr::rsmt {

SteinerTree salt_tree(const std::vector<Point>& pins, const SaltOptions& opts) {
  if (opts.epsilon <= 0.0) throw std::invalid_argument("salt_tree: epsilon must be > 0");
  if (opts.source >= pins.size() && !pins.empty()) {
    throw std::invalid_argument("salt_tree: source index out of range");
  }

  SteinerTree tree = manhattan_mst(pins);
  if (pins.size() <= 2) return tree;
  const std::size_t n = pins.size();
  const auto src = static_cast<int>(opts.source);

  // Adjacency of the MST.
  std::vector<std::vector<int>> adj(n);
  for (const auto& [a, b] : tree.edges) {
    adj[static_cast<std::size_t>(a)].push_back(b);
    adj[static_cast<std::size_t>(b)].push_back(a);
  }

  // Iterative DFS from the source, carrying the accumulated tree path
  // length. Shortcut nodes whose accumulated length breaks the bound;
  // their subtree then continues from the improved distance (KRY).
  std::vector<std::pair<int, int>> new_edges;  // (parent-or-source, node)
  std::vector<bool> visited(n, false);
  struct Frame {
    int node;
    int parent;
    std::int64_t dist;  ///< tree path length source -> node
  };
  std::vector<Frame> stack{{src, -1, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (visited[static_cast<std::size_t>(f.node)]) continue;
    visited[static_cast<std::size_t>(f.node)] = true;

    std::int64_t dist = f.dist;
    if (f.parent >= 0) {
      const std::int64_t direct =
          geom::manhattan(pins[static_cast<std::size_t>(f.node)],
                          pins[static_cast<std::size_t>(src)]);
      if (static_cast<double>(dist) > (1.0 + opts.epsilon) * static_cast<double>(direct)) {
        // Replace the parent edge by a direct shortcut from the source.
        new_edges.emplace_back(src, f.node);
        dist = direct;
      } else {
        new_edges.emplace_back(f.parent, f.node);
      }
    }
    for (const int next : adj[static_cast<std::size_t>(f.node)]) {
      if (!visited[static_cast<std::size_t>(next)]) {
        stack.push_back({next, f.node,
                         dist + geom::manhattan(pins[static_cast<std::size_t>(f.node)],
                                                pins[static_cast<std::size_t>(next)])});
      }
    }
  }

  tree.edges = std::move(new_edges);
  assert(tree.is_spanning_tree());
  return tree;
}

double radius_stretch(const SteinerTree& tree, std::size_t source) {
  const std::size_t n = tree.nodes.size();
  if (n <= 1) return 1.0;
  std::vector<std::vector<int>> adj(n);
  for (const auto& [a, b] : tree.edges) {
    adj[static_cast<std::size_t>(a)].push_back(b);
    adj[static_cast<std::size_t>(b)].push_back(a);
  }
  std::vector<std::int64_t> dist(n, -1);
  std::vector<int> order{static_cast<int>(source)};
  dist[source] = 0;
  for (std::size_t head = 0; head < order.size(); ++head) {
    const int u = order[head];
    for (const int v : adj[static_cast<std::size_t>(u)]) {
      if (dist[static_cast<std::size_t>(v)] < 0) {
        dist[static_cast<std::size_t>(v)] =
            dist[static_cast<std::size_t>(u)] +
            geom::manhattan(tree.nodes[static_cast<std::size_t>(u)],
                            tree.nodes[static_cast<std::size_t>(v)]);
        order.push_back(v);
      }
    }
  }
  double worst = 1.0;
  for (std::size_t v = 0; v < n; ++v) {
    if (v == source || dist[v] < 0) continue;
    const std::int64_t direct = geom::manhattan(tree.nodes[v], tree.nodes[source]);
    if (direct > 0) {
      worst = std::max(worst, static_cast<double>(dist[v]) / static_cast<double>(direct));
    }
  }
  return worst;
}

}  // namespace dgr::rsmt
