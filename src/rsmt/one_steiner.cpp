#include "rsmt/one_steiner.hpp"

#include <algorithm>
#include <cassert>

namespace dgr::rsmt {

SteinerTree iterated_one_steiner(const std::vector<Point>& pins,
                                 const OneSteinerOptions& opts) {
  if (pins.size() <= 2) return manhattan_mst(pins);

  // Working point set: pins plus accepted Steiner points.
  std::vector<Point> points = pins;
  std::int64_t current_len = manhattan_mst_length(points);

  const auto hanan = geom::HananGrid::from_points(pins);
  std::vector<Point> candidates;
  candidates.reserve(hanan.size());
  for (std::size_t i = 0; i < hanan.size(); ++i) candidates.push_back(hanan.point(i));
  // Deterministic subsample if the Hanan grid is very large: keep a strided
  // selection, which spreads candidates evenly over the grid.
  if (opts.max_candidates != 0 && candidates.size() > opts.max_candidates) {
    std::vector<Point> sampled;
    sampled.reserve(opts.max_candidates);
    const double stride =
        static_cast<double>(candidates.size()) / static_cast<double>(opts.max_candidates);
    for (std::size_t k = 0; k < opts.max_candidates; ++k) {
      sampled.push_back(candidates[static_cast<std::size_t>(k * stride)]);
    }
    candidates = std::move(sampled);
  }

  std::size_t added = 0;
  const std::size_t budget = std::min(opts.max_steiner_points, pins.size() - 2);
  while (added < budget) {
    std::int64_t best_len = current_len;
    std::size_t best_idx = candidates.size();
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const Point& cand = candidates[c];
      if (std::find(points.begin(), points.end(), cand) != points.end()) continue;
      points.push_back(cand);
      const std::int64_t len = manhattan_mst_length(points);
      points.pop_back();
      if (len < best_len) {
        best_len = len;
        best_idx = c;
      }
    }
    if (best_idx == candidates.size()) break;  // no improving candidate
    points.push_back(candidates[best_idx]);
    current_len = best_len;
    ++added;
  }

  SteinerTree tree = manhattan_mst(points);
  tree.pin_count = pins.size();
  tree.simplify();
  assert(tree.is_spanning_tree());
  return tree;
}

}  // namespace dgr::rsmt
