#pragma once
// Kahng–Robins iterated 1-Steiner heuristic.
//
// Repeatedly adds the Hanan-grid point whose inclusion most reduces the
// Manhattan MST length, until no candidate helps. Classic near-optimal
// RSMT heuristic (≈ 0.5–1% from optimum on random instances), used for
// mid-size nets where exact enumeration is too slow.

#include "rsmt/steiner_tree.hpp"

namespace dgr::rsmt {

struct OneSteinerOptions {
  /// Hard cap on the Hanan candidates scanned per round; candidates are
  /// subsampled deterministically when the grid is larger. 0 = no cap.
  std::size_t max_candidates = 512;
  /// Cap on added Steiner points (n-2 is the theoretical maximum).
  std::size_t max_steiner_points = 64;
};

SteinerTree iterated_one_steiner(const std::vector<Point>& pins,
                                 const OneSteinerOptions& opts = {});

}  // namespace dgr::rsmt
