#pragma once
// FLUTE-equivalent RSMT builder: dispatches by pin count.
//
//   n <= kExactRsmtMaxPins   -> exact Hanan enumeration
//   n <= partition_threshold -> iterated 1-Steiner
//   larger                   -> recursive median bisection; the two halves
//                               share the median pin, so subtrees join into
//                               one tree (FLUTE's own net-breaking strategy
//                               has the same shape)
//
// The result is always a valid spanning Steiner tree with
// HPWL <= length <= MST length (property-tested).

#include "rsmt/one_steiner.hpp"
#include "rsmt/steiner_tree.hpp"

namespace dgr::rsmt {

struct RsmtOptions {
  std::size_t partition_threshold = 16;  ///< max pins handled by 1-Steiner
  OneSteinerOptions one_steiner;
};

class RsmtBuilder {
 public:
  RsmtBuilder() = default;
  explicit RsmtBuilder(RsmtOptions opts) : opts_(opts) {}

  /// Builds a rectilinear Steiner tree over the pins (duplicates tolerated).
  SteinerTree build(const std::vector<Point>& pins) const;

 private:
  SteinerTree build_small(const std::vector<Point>& pins) const;

  RsmtOptions opts_;
};

}  // namespace dgr::rsmt
