#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "eval/metrics.hpp"
#include "eval/solution.hpp"
#include "eval/table.hpp"

namespace dgr::eval {
namespace {

using design::Design;
using design::Net;
using geom::Point;
using grid::GCellGrid;

struct Fixture {
  std::unique_ptr<Design> design;
  std::vector<float> cap;
  RouteSolution sol;

  static Fixture make() {
    Fixture fx;
    GCellGrid grid = GCellGrid::uniform(6, 6, 2, 1);
    std::vector<Net> nets;
    nets.push_back({"a", {{0, 0}, {3, 3}}});
    nets.push_back({"b", {{0, 3}, {3, 0}}});
    fx.design = std::make_unique<Design>("fx", std::move(grid), std::move(nets));
    fx.cap.assign(static_cast<std::size_t>(fx.design->grid().edge_count()), 1.0f);
    fx.sol.design = fx.design.get();
    NetRoute a;
    a.design_net = 0;
    a.paths.push_back(dag::PatternPath{{{0, 0}, {3, 0}, {3, 3}}});  // L, 1 bend
    NetRoute b;
    b.design_net = 1;
    b.paths.push_back(dag::PatternPath{{{0, 3}, {3, 3}, {3, 0}}});  // L, 1 bend
    fx.sol.nets = {a, b};
    return fx;
  }
};

TEST(Solution, DemandCountsWireCrossings) {
  Fixture fx = Fixture::make();
  const grid::DemandMap dm = fx.sol.demand(0.0f);
  const auto& grid = fx.design->grid();
  // Net a crosses h(0..2,0) and v(3,0..2); net b crosses h(0..2,3), v(3,0..2).
  EXPECT_DOUBLE_EQ(dm.demand(grid.h_edge(0, 0)), 1.0);
  EXPECT_DOUBLE_EQ(dm.demand(grid.h_edge(0, 3)), 1.0);
  EXPECT_DOUBLE_EQ(dm.demand(grid.v_edge(3, 1)), 2.0);  // shared column
  EXPECT_DOUBLE_EQ(dm.demand(grid.h_edge(0, 1)), 0.0);
}

TEST(Solution, ViaChargesLandOnBendEdges) {
  Fixture fx = Fixture::make();
  const grid::DemandMap with_via = fx.sol.demand(0.5f);
  const grid::DemandMap without = fx.sol.demand(0.0f);
  double diff = 0.0;
  for (std::size_t e = 0; e < with_via.raw().size(); ++e) {
    diff += with_via.raw()[e] - without.raw()[e];
  }
  // Two bends, beta=0.5 each split over two edges -> total extra = 2 * 0.5.
  EXPECT_NEAR(diff, 1.0, 1e-9);
  // The bend of net a is at (3,0): edges h(2,0) and v(3,0) get +0.25 each.
  const auto& grid = fx.design->grid();
  EXPECT_NEAR(with_via.demand(grid.h_edge(2, 0)) - without.demand(grid.h_edge(2, 0)),
              0.25, 1e-9);
}

TEST(Solution, ApplyNetIsReversible) {
  Fixture fx = Fixture::make();
  grid::DemandMap dm(fx.design->grid());
  RouteSolution::apply_net(dm, *fx.design, fx.sol.nets[0], 0.5f, +1.0);
  RouteSolution::apply_net(dm, *fx.design, fx.sol.nets[0], 0.5f, -1.0);
  for (const double d : dm.raw()) EXPECT_NEAR(d, 0.0, 1e-12);
}

TEST(Solution, WirelengthAndBends) {
  Fixture fx = Fixture::make();
  EXPECT_EQ(fx.sol.total_wirelength(), 12);
  EXPECT_EQ(fx.sol.total_bends(), 2);
}

TEST(Solution, ConnectivityDetectsCoveredPins) {
  Fixture fx = Fixture::make();
  EXPECT_TRUE(fx.sol.connects_all_pins());
  // Break net a: replace its path with one that misses pin (3,3).
  fx.sol.nets[0].paths = {dag::PatternPath{{{0, 0}, {3, 0}}}};
  EXPECT_FALSE(fx.sol.connects_all_pins());
}

TEST(Solution, ConnectivityDetectsDisjointPieces) {
  Fixture fx = Fixture::make();
  // Two pieces touching both pins but not each other.
  fx.sol.nets[0].paths = {dag::PatternPath{{{0, 0}, {1, 0}}},
                          dag::PatternPath{{{3, 1}, {3, 3}}}};
  EXPECT_FALSE(fx.sol.connects_all_pins());
}

TEST(Solution, ConnectivityAcceptsPathsMeetingMidway) {
  Fixture fx = Fixture::make();
  fx.sol.nets[0].paths = {dag::PatternPath{{{0, 0}, {2, 0}}},
                          dag::PatternPath{{{2, 0}, {2, 3}, {3, 3}}}};
  EXPECT_TRUE(fx.sol.connects_all_pins());
}

TEST(Metrics, CountsOverflowOnSharedColumn) {
  Fixture fx = Fixture::make();
  const Metrics m = compute_metrics(fx.sol, fx.cap, 0.0f);
  // v(3,0..2) carries demand 2 with cap 1 -> 3 overflowed edges.
  EXPECT_EQ(m.overflow_edges, 3);
  EXPECT_DOUBLE_EQ(m.total_overflow, 3.0);
  EXPECT_DOUBLE_EQ(m.peak_overflow, 1.0);
  EXPECT_EQ(m.wirelength, 12);
  EXPECT_EQ(m.bends, 2);
}

TEST(Metrics, NetsWithOverflowCountsBothSharers) {
  Fixture fx = Fixture::make();
  EXPECT_EQ(nets_with_overflow(fx.sol, fx.cap, 0.0f), 2);
  // Raise capacity: no overflow, no overflowed nets.
  std::vector<float> roomy(fx.cap.size(), 4.0f);
  EXPECT_EQ(nets_with_overflow(fx.sol, roomy, 0.0f), 0);
}

TEST(Metrics, WeightedOverflowFormula) {
  Fixture fx = Fixture::make();
  // n1 = 2 nets, n2 = 3 edges, peak = 1 -> 10*2 + 1000*3 + 10000*1.
  EXPECT_DOUBLE_EQ(weighted_overflow(fx.sol, fx.cap, 0.0f), 13020.0);
}

TEST(TablePrinter, AlignsAndSeparates) {
  TablePrinter t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_separator();
  t.add_row({"longer-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name        | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer-name | 22    |"), std::string::npos);
  // Header, separator and bottom rules: at least 4 '+--' lines.
  std::size_t rules = 0, pos = 0;
  while ((pos = s.find("+--", pos)) != std::string::npos) {
    ++rules;
    pos += 3;
  }
  EXPECT_GE(rules, 4u);
}

TEST(TablePrinter, PadsShortRows) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"only-one"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(Formatters, Basics) {
  EXPECT_EQ(fmt_int(-42), "-42");
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
  EXPECT_EQ(fmt_or_na(false, 1.0), "N/A");
  EXPECT_EQ(fmt_or_na(true, 1.5, 1), "1.5");
  EXPECT_EQ(fmt_ratio(1.23456), "1.2346");
}

}  // namespace
}  // namespace dgr::eval
