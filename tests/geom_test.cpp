#include <gtest/gtest.h>

#include <set>

#include "geom/geom.hpp"
#include "util/rng.hpp"

namespace dgr::geom {
namespace {

TEST(Point, EqualityAndOrdering) {
  EXPECT_EQ((Point{1, 2}), (Point{1, 2}));
  EXPECT_NE((Point{1, 2}), (Point{2, 1}));
  EXPECT_LT((Point{1, 2}), (Point{1, 3}));
  EXPECT_LT((Point{1, 9}), (Point{2, 0}));
}

TEST(Manhattan, BasicDistances) {
  EXPECT_EQ(manhattan({0, 0}, {0, 0}), 0);
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan({-2, -3}, {2, 3}), 10);
  EXPECT_EQ(manhattan({5, 1}, {1, 5}), 8);
}

TEST(Manhattan, Symmetric) {
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const Point a{static_cast<Coord>(rng.uniform_int(-100, 100)),
                  static_cast<Coord>(rng.uniform_int(-100, 100))};
    const Point b{static_cast<Coord>(rng.uniform_int(-100, 100)),
                  static_cast<Coord>(rng.uniform_int(-100, 100))};
    EXPECT_EQ(manhattan(a, b), manhattan(b, a));
  }
}

TEST(Manhattan, TriangleInequality) {
  util::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    auto rnd = [&] {
      return Point{static_cast<Coord>(rng.uniform_int(0, 50)),
                   static_cast<Coord>(rng.uniform_int(0, 50))};
    };
    const Point a = rnd(), b = rnd(), c = rnd();
    EXPECT_LE(manhattan(a, c), manhattan(a, b) + manhattan(b, c));
  }
}

TEST(Rect, BoundingBoxOfPoints) {
  const Rect r = Rect::bounding_box({{3, 7}, {1, 9}, {5, 2}});
  EXPECT_EQ(r.lo, (Point{1, 2}));
  EXPECT_EQ(r.hi, (Point{5, 9}));
  EXPECT_EQ(r.width(), 4);
  EXPECT_EQ(r.height(), 7);
  EXPECT_EQ(r.hpwl(), 11);
}

TEST(Rect, SinglePointBox) {
  const Rect r = Rect::bounding_box({{4, 4}});
  EXPECT_EQ(r.lo, r.hi);
  EXPECT_EQ(r.hpwl(), 0);
}

TEST(Rect, ContainsIsClosed) {
  const Rect r{{1, 1}, {3, 3}};
  EXPECT_TRUE(r.contains({1, 1}));
  EXPECT_TRUE(r.contains({3, 3}));
  EXPECT_TRUE(r.contains({2, 2}));
  EXPECT_FALSE(r.contains({0, 2}));
  EXPECT_FALSE(r.contains({2, 4}));
}

TEST(Rect, InflatedGrowsEverySide) {
  const Rect r = Rect{{2, 3}, {4, 5}}.inflated(2);
  EXPECT_EQ(r.lo, (Point{0, 1}));
  EXPECT_EQ(r.hi, (Point{6, 7}));
}

TEST(Rect, HpwlLowerBoundsAnyTreeLength) {
  // Any tree spanning the points has length >= HPWL of their box.
  const std::vector<Point> pts{{0, 0}, {10, 0}, {5, 8}};
  const Rect r = Rect::bounding_box(pts);
  EXPECT_EQ(r.hpwl(), 18);
}

TEST(HananGrid, DeduplicatesCoordinates) {
  const HananGrid g = HananGrid::from_points({{1, 2}, {3, 2}, {1, 5}});
  EXPECT_EQ(g.xs, (std::vector<Coord>{1, 3}));
  EXPECT_EQ(g.ys, (std::vector<Coord>{2, 5}));
  EXPECT_EQ(g.size(), 4u);
}

TEST(HananGrid, EnumeratesFullCross) {
  const HananGrid g = HananGrid::from_points({{0, 0}, {2, 3}, {5, 1}});
  EXPECT_EQ(g.size(), 9u);
  std::set<std::pair<Coord, Coord>> pts;
  for (std::size_t i = 0; i < g.size(); ++i) {
    const Point p = g.point(i);
    pts.emplace(p.x, p.y);
  }
  EXPECT_EQ(pts.size(), 9u);
  EXPECT_TRUE(pts.count({2, 1}));  // a pure Hanan intersection
  EXPECT_TRUE(pts.count({0, 3}));
}

TEST(DedupePoints, KeepsFirstOccurrenceOrder) {
  const auto out = dedupe_points({{1, 1}, {2, 2}, {1, 1}, {3, 3}, {2, 2}});
  EXPECT_EQ(out, (std::vector<Point>{{1, 1}, {2, 2}, {3, 3}}));
}

TEST(DedupePoints, EmptyAndSingleton) {
  EXPECT_TRUE(dedupe_points({}).empty());
  EXPECT_EQ(dedupe_points({{5, 5}}).size(), 1u);
}

}  // namespace
}  // namespace dgr::geom
