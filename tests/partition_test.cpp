// Partition subsystem tests (`ctest -L partition`): tiling/classification
// invariants of build_partition_plan, RegionSlice edge mapping, the
// DemandMap halo snapshot/merge byte-identity contract (including
// overlapping halos), SerialSection inline-dispatch semantics, and the
// PartitionedRouter's bitwise determinism across worker counts {1,2,4} at
// fixed partition counts {2,4} — the repo determinism contract extended to
// partition-parallel routing.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "design/generator.hpp"
#include "partition/partition.hpp"
#include "partition/router.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/registry.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"

namespace dgr::partition {
namespace {

design::Design test_design(std::uint64_t seed = 99, int w = 32, int nets = 220) {
  design::IspdLikeParams p;
  p.name = "partition_case";
  p.grid_w = p.grid_h = w;
  p.num_nets = nets;
  p.layers = 5;
  p.tracks_per_layer = 3;
  p.hotspot_affinity = 0.6;
  return design::generate_ispd_like(p, seed);
}

pipeline::RouterOptions fast_options(int partitions, int halo = 2) {
  pipeline::RouterOptions o;
  o.cugr2.rrr_rounds = 3;
  o.partition.partitions = partitions;
  o.partition.halo = halo;
  return o;
}

/// Exact (bitwise) equality of two solutions: same nets, same paths, same
/// waypoints — no tolerance anywhere.
void expect_identical(const eval::RouteSolution& a, const eval::RouteSolution& b) {
  ASSERT_EQ(a.nets.size(), b.nets.size());
  for (std::size_t i = 0; i < a.nets.size(); ++i) {
    EXPECT_EQ(a.nets[i].design_net, b.nets[i].design_net);
    ASSERT_EQ(a.nets[i].paths.size(), b.nets[i].paths.size()) << "net " << i;
    for (std::size_t p = 0; p < a.nets[i].paths.size(); ++p) {
      EXPECT_EQ(a.nets[i].paths[p].waypoints, b.nets[i].paths[p].waypoints)
          << "net " << i << " path " << p;
    }
  }
}

// ---------------------------------------------------------------------------
// Plan invariants
// ---------------------------------------------------------------------------

TEST(PartitionPlan, CoresTileTheGridDisjointly) {
  const design::Design d = test_design();
  PartitionConfig cfg;
  cfg.partitions = 4;
  const PartitionPlan plan = build_partition_plan(d, cfg);
  ASSERT_EQ(plan.region_count(), 4u);

  // Every cell belongs to exactly one core; every halo contains its core.
  const grid::GCellGrid& g = d.grid();
  std::vector<int> owner(static_cast<std::size_t>(g.cell_count()), 0);
  for (const Region& r : plan.regions) {
    EXPECT_TRUE(r.halo.contains(r.core.lo));
    EXPECT_TRUE(r.halo.contains(r.core.hi));
    EXPECT_GE(r.halo.lo.x, 0);
    EXPECT_GE(r.halo.lo.y, 0);
    EXPECT_LT(r.halo.hi.x, g.width());
    EXPECT_LT(r.halo.hi.y, g.height());
    for (geom::Coord y = r.core.lo.y; y <= r.core.hi.y; ++y) {
      for (geom::Coord x = r.core.lo.x; x <= r.core.hi.x; ++x) {
        owner[static_cast<std::size_t>(g.cell_id({x, y}))] += 1;
      }
    }
  }
  for (const int n : owner) EXPECT_EQ(n, 1);
}

TEST(PartitionPlan, ClassifiesEveryNetConsistently) {
  const design::Design d = test_design();
  PartitionConfig cfg;
  cfg.partitions = 4;
  const PartitionPlan plan = build_partition_plan(d, cfg);

  std::size_t assigned = 0;
  for (const auto& nets : plan.region_nets) {
    assigned += nets.size();
    for (const std::size_t idx : nets) {
      const geom::Rect box = geom::Rect::bounding_box(d.net(idx).pins);
      const int r = plan.net_region[idx];
      ASSERT_GE(r, 0);
      // Every assigned net fits its region's halo window (cut-straddling
      // nets within the margin route region-locally; see DESIGN.md §11).
      EXPECT_TRUE(plan.regions[static_cast<std::size_t>(r)].halo.contains(box.lo));
      EXPECT_TRUE(plan.regions[static_cast<std::size_t>(r)].halo.contains(box.hi));
    }
  }
  for (const std::size_t idx : plan.cross_nets) {
    EXPECT_EQ(plan.net_region[idx], kNetCross);
    // Cross nets genuinely fit no single window.
    const geom::Rect box = geom::Rect::bounding_box(d.net(idx).pins);
    for (const Region& region : plan.regions) {
      EXPECT_FALSE(region.halo.contains(box.lo) && region.halo.contains(box.hi));
    }
  }
  EXPECT_EQ(assigned + plan.cross_nets.size(), d.routable_nets().size());
  // Local (non-routable) nets belong to no set.
  for (std::size_t i = 0; i < d.net_count(); ++i) {
    if (d.net(i).is_local()) {
      EXPECT_EQ(plan.net_region[i], kNetLocal);
    }
  }
}

TEST(PartitionPlan, SmallGridsReduceTheRegionCount) {
  const design::Design d = test_design(/*seed=*/7, /*w=*/6, /*nets=*/20);
  PartitionConfig cfg;
  cfg.partitions = 16;
  cfg.min_region_extent = 4;
  const PartitionPlan plan = build_partition_plan(d, cfg);
  // A 6x6 grid cannot host 16 tiles of >= 4 cells extent.
  EXPECT_LT(plan.region_count(), 16u);
  EXPECT_GE(plan.region_count(), 1u);
}

TEST(PartitionPlan, CongestionSeedingIsAPureFunctionOfItsInputs) {
  const design::Design d = test_design();
  grid::DemandMap committed(d.grid());
  committed.add(d.grid().h_edge(3, 3), 5.0);
  committed.add(d.grid().v_edge(20, 20), 7.5);
  PartitionConfig cfg;
  cfg.partitions = 4;
  const PartitionPlan a = build_partition_plan(d, cfg, &committed);
  const PartitionPlan b = build_partition_plan(d, cfg, &committed);
  ASSERT_EQ(a.region_count(), b.region_count());
  for (std::size_t r = 0; r < a.region_count(); ++r) {
    EXPECT_EQ(a.regions[r].core, b.regions[r].core);
    EXPECT_EQ(a.regions[r].halo, b.regions[r].halo);
  }
  EXPECT_EQ(a.net_region, b.net_region);
  // Uniform seeding splits at midpoints regardless of the demand.
  cfg.seeding = Seeding::kUniform;
  const PartitionPlan u1 = build_partition_plan(d, cfg, &committed);
  const PartitionPlan u2 = build_partition_plan(d, cfg, nullptr);
  for (std::size_t r = 0; r < u1.region_count(); ++r) {
    EXPECT_EQ(u1.regions[r].core, u2.regions[r].core);
  }
}

// ---------------------------------------------------------------------------
// Region slices
// ---------------------------------------------------------------------------

TEST(RegionSlice, EdgeMappingMatchesParentGeometry) {
  const design::Design d = test_design();
  PartitionConfig cfg;
  cfg.partitions = 4;
  cfg.halo = 2;
  const PartitionPlan plan = build_partition_plan(d, cfg);
  const grid::GCellGrid& parent = d.grid();
  for (const Region& region : plan.regions) {
    const RegionSlice slice = slice_region(parent, region);
    ASSERT_EQ(slice.parent_edge.size(),
              static_cast<std::size_t>(slice.grid.edge_count()));
    for (grid::EdgeId e = 0; e < slice.grid.edge_count(); ++e) {
      const grid::EdgeId pe = slice.parent_edge[static_cast<std::size_t>(e)];
      ASSERT_NE(pe, grid::kInvalidEdge);
      // The parent edge joins the translated endpoints of the slice edge.
      const auto [sa, sb] = slice.grid.edge_cells(e);
      const geom::Point pa{static_cast<geom::Coord>(sa.x + slice.origin.x),
                           static_cast<geom::Coord>(sa.y + slice.origin.y)};
      const geom::Point pb{static_cast<geom::Coord>(sb.x + slice.origin.x),
                           static_cast<geom::Coord>(sb.y + slice.origin.y)};
      EXPECT_EQ(pe, parent.edge_between(pa, pb));
    }
  }
}

TEST(RegionSlice, CapacitiesAreClampedResiduals) {
  const design::Design d = test_design();
  PartitionConfig cfg;
  cfg.partitions = 2;
  const PartitionPlan plan = build_partition_plan(d, cfg);
  const RegionSlice slice = slice_region(d.grid(), plan.regions[0]);
  const std::vector<float> cap = d.capacities();

  grid::DemandMap committed(d.grid());
  const grid::EdgeId pe = slice.parent_edge[0];
  committed.add(pe, static_cast<double>(cap[static_cast<std::size_t>(pe)]) + 3.0);

  const std::vector<float> residual = slice_capacities(slice, cap, &committed);
  ASSERT_EQ(residual.size(), slice.parent_edge.size());
  EXPECT_FLOAT_EQ(residual[0], 0.0f);  // over-committed edge clamps at zero
  for (std::size_t e = 1; e < residual.size(); ++e) {
    EXPECT_FLOAT_EQ(residual[e], cap[static_cast<std::size_t>(slice.parent_edge[e])]);
  }
}

// ---------------------------------------------------------------------------
// Halo demand accounting (satellite): snapshot -> merge(+1) -> merge(-1)
// round-trips stay byte-identical on the 2^-20 quantization grid, including
// overlapping halos of neighbouring regions.
// ---------------------------------------------------------------------------

TEST(HaloDemand, SnapshotTransfersByteExactValues) {
  const design::Design d = test_design();
  PartitionConfig cfg;
  cfg.partitions = 2;
  cfg.halo = 3;
  const PartitionPlan plan = build_partition_plan(d, cfg);
  const RegionSlice slice = slice_region(d.grid(), plan.regions[0]);

  grid::DemandMap parent(d.grid());
  // Non-dyadic increments: only exact on the quantization grid.
  for (std::size_t e = 0; e < slice.parent_edge.size(); e += 3) {
    parent.add(slice.parent_edge[e], 0.3);
    parent.add(slice.parent_edge[e], 0.1 * static_cast<double>(e % 7));
  }
  const grid::DemandMap snap = snapshot_demand(parent, slice);
  for (std::size_t e = 0; e < slice.parent_edge.size(); ++e) {
    const double expect = parent.demand(slice.parent_edge[e]);
    const double got = snap.demand(static_cast<grid::EdgeId>(e));
    EXPECT_EQ(std::memcmp(&expect, &got, sizeof(double)), 0) << "edge " << e;
  }
}

TEST(HaloDemand, MergeRoundTripIsByteIdenticalAcrossOverlappingHalos) {
  const design::Design d = test_design();
  PartitionConfig cfg;
  cfg.partitions = 4;
  cfg.halo = 3;  // neighbouring halos overlap each other's cores
  const PartitionPlan plan = build_partition_plan(d, cfg);
  ASSERT_GE(plan.region_count(), 2u);

  grid::DemandMap parent(d.grid());
  for (grid::EdgeId e = 0; e < d.grid().edge_count(); e += 2) {
    parent.add(e, 0.3 + 0.1 * static_cast<double>(e % 5));
  }
  const std::vector<double> baseline = parent.raw();

  // Snapshot every region, then apply +1/-1 merges in an interleaved order
  // so overlapping halo edges accumulate from several slices before the
  // uncommits land. Quantized arithmetic makes the sums exact, so the final
  // state must equal the baseline byte for byte.
  std::vector<RegionSlice> slices;
  std::vector<grid::DemandMap> snaps;
  for (const Region& r : plan.regions) {
    slices.push_back(slice_region(d.grid(), r));
    snaps.push_back(snapshot_demand(parent, slices.back()));
  }
  for (std::size_t r = 0; r < slices.size(); ++r) {
    merge_demand(parent, slices[r], snaps[r], +1.0);
  }
  for (std::size_t r = slices.size(); r-- > 0;) {
    merge_demand(parent, slices[r], snaps[r], -1.0);
  }
  const std::vector<double>& after = parent.raw();
  ASSERT_EQ(after.size(), baseline.size());
  EXPECT_EQ(std::memcmp(after.data(), baseline.data(),
                        baseline.size() * sizeof(double)),
            0);

  // And a commit/uncommit cycle through a single overlapping halo edge is
  // exact too (the ECO rip-up guarantee, now across region boundaries).
  for (std::size_t r = 0; r + 1 < slices.size(); ++r) {
    merge_demand(parent, slices[r], snaps[r], +1.0);
    merge_demand(parent, slices[r + 1], snaps[r + 1], +1.0);
    merge_demand(parent, slices[r], snaps[r], -1.0);
    merge_demand(parent, slices[r + 1], snaps[r + 1], -1.0);
  }
  EXPECT_EQ(std::memcmp(parent.raw().data(), baseline.data(),
                        baseline.size() * sizeof(double)),
            0);
}

// ---------------------------------------------------------------------------
// SerialSection
// ---------------------------------------------------------------------------

TEST(SerialSection, ForcesInlineDispatchAndNests) {
  EXPECT_FALSE(util::serial_section_active());
  {
    util::SerialSection outer;
    EXPECT_TRUE(util::serial_section_active());
    {
      util::SerialSection inner;
      EXPECT_TRUE(util::serial_section_active());
    }
    EXPECT_TRUE(util::serial_section_active());

    // Every index must run on the calling thread, pool or not.
    const std::thread::id self = std::this_thread::get_id();
    std::vector<int> hit(5000, 0);
    bool same_thread = true;
    util::ParallelRuntime::for_each(
        0, hit.size(),
        [&](std::size_t i) {
          hit[i] = 1;
          if (std::this_thread::get_id() != self) same_thread = false;
        },
        /*grain=*/8);
    EXPECT_TRUE(same_thread);
    for (const int h : hit) EXPECT_EQ(h, 1);
  }
  EXPECT_FALSE(util::serial_section_active());
}

// ---------------------------------------------------------------------------
// PartitionedRouter
// ---------------------------------------------------------------------------

TEST(PartitionedRouter, RoutesLegallyAndReportsRegionChildren) {
  util::set_log_level(util::LogLevel::kWarn);
  const design::Design d = test_design();
  pipeline::RoutingContext ctx(d);
  const std::unique_ptr<pipeline::Router> router =
      pipeline::make_router("partitioned", fast_options(4));
  ASSERT_NE(router, nullptr);
  const eval::RouteSolution sol = router->route(ctx);

  EXPECT_EQ(sol.nets.size(), d.routable_nets().size());
  EXPECT_TRUE(sol.connects_all_pins());
  EXPECT_TRUE(router->stats().status.ok());
  EXPECT_EQ(router->stats().counter("partitions"), 4.0);
  // One child per region (plus a cross pass when cross nets exist).
  EXPECT_GE(router->stats().children.size(), 4u);
  for (const char* stage : {"partition", "regions", "merge", "reconcile"}) {
    bool found = false;
    for (const auto& s : router->stats().stages) found |= (s.stage == stage);
    EXPECT_TRUE(found) << stage;
  }
  // route() leaves the live demand equal to the solution's demand.
  const grid::DemandMap reference = sol.demand(ctx.via_beta());
  EXPECT_EQ(std::memcmp(ctx.demand().raw().data(), reference.raw().data(),
                        reference.raw().size() * sizeof(double)),
            0);
}

TEST(PartitionedRouter, PassesTheValidationGateThroughThePipeline) {
  util::set_log_level(util::LogLevel::kWarn);
  const design::Design d = test_design();
  pipeline::RoutingContext ctx(d);
  pipeline::Pipeline pipe(ctx);
  const pipeline::PipelineResult result =
      pipe.run("partitioned", fast_options(4));
  EXPECT_TRUE(result.stats.status.ok());
  EXPECT_EQ(result.solution.nets.size(), d.routable_nets().size());
  EXPECT_TRUE(result.solution.connects_all_pins());
  EXPECT_EQ(result.stats.repaired_nets, 0);
  EXPECT_GT(result.stats.stage_seconds("route_total"), 0.0);
}

TEST(PartitionedRouter, BitwiseDeterministicAcrossWorkerCounts) {
  util::set_log_level(util::LogLevel::kWarn);
  const design::Design d = test_design();
  for (const int partitions : {2, 4}) {
    eval::RouteSolution reference;
    std::vector<double> reference_demand;
    for (const std::size_t workers : {1u, 2u, 4u}) {
      util::set_worker_count(workers);
      pipeline::RoutingContext ctx(d);
      const std::unique_ptr<pipeline::Router> router =
          pipeline::make_router("partitioned", fast_options(partitions));
      const eval::RouteSolution sol = router->route(ctx);
      if (workers == 1u) {
        reference = sol;
        reference_demand = ctx.demand().raw();
      } else {
        expect_identical(reference, sol);
        ASSERT_EQ(ctx.demand().raw().size(), reference_demand.size());
        EXPECT_EQ(std::memcmp(ctx.demand().raw().data(), reference_demand.data(),
                              reference_demand.size() * sizeof(double)),
                  0)
            << "partitions=" << partitions << " workers=" << workers;
      }
    }
    util::set_worker_count(0);
  }
}

TEST(PartitionedRouter, QualityStaysComparableToTheSequentialRouter) {
  util::set_log_level(util::LogLevel::kWarn);
  const design::Design d = test_design();
  pipeline::RoutingContext seq_ctx(d);
  const std::unique_ptr<pipeline::Router> seq =
      pipeline::make_router("cugr2-lite", fast_options(0));
  const eval::RouteSolution seq_sol = seq->route(seq_ctx);

  pipeline::RoutingContext par_ctx(d);
  const std::unique_ptr<pipeline::Router> par =
      pipeline::make_router("partitioned", fast_options(4));
  const eval::RouteSolution par_sol = par->route(par_ctx);

  // Same eval stage; the partitioned result must stay in the same quality
  // regime (wirelength within 10%, overflow not exploding). The tight <= 2%
  // weighted-cost gate lives in bench/partition_scaling on the bench-scale
  // series; this is the fast structural guard.
  const eval::Metrics a = seq_ctx.evaluate(seq_sol);
  const eval::Metrics b = par_ctx.evaluate(par_sol);
  EXPECT_GT(b.wirelength, 0);
  EXPECT_LE(static_cast<double>(b.wirelength),
            1.10 * static_cast<double>(a.wirelength));
  EXPECT_LE(b.total_overflow, a.total_overflow + 0.05 * (a.total_overflow + 10.0));
}

}  // namespace
}  // namespace dgr::partition
