// ECO suite (ctest -L eco): the differential-equivalence harness for
// dgr::eco. For every scratch-capable registered router and a seeded matrix
// of mutation sequences, the incremental re-route must (a) agree with a
// from-scratch route of the mutated design on the shared-eval metrics
// within tolerance, (b) pass the validation gate, and (c) replay
// bit-for-bit across worker counts {1,2,4}. Also locks down the mutation
// generators, the affected-net closure, the dirty-fraction fallback, the
// exact DemandMap rip-up round-trip, and clean rollback at the eco.closure
// / eco.recommit fault sites.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "design/generator.hpp"
#include "design/mutate.hpp"
#include "eco/eco.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/registry.hpp"
#include "pipeline/validate.hpp"
#include "util/fault.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace dgr {
namespace {

using design::DesignState;
using design::Mutation;
using design::MutationKind;
using design::MutationParams;
using eco::EcoEngine;
using eco::EcoOptions;
using eco::EcoResult;

design::Design eco_base_design(std::uint64_t seed = 11) {
  design::IspdLikeParams p;
  p.name = "eco_small";
  p.grid_w = p.grid_h = 16;
  p.num_nets = 120;
  p.layers = 5;
  p.tracks_per_layer = 4;
  return design::generate_ispd_like(p, seed);
}

EcoOptions eco_options(const std::string& router) {
  EcoOptions o;
  o.router = router;
  o.router_options.dgr.iterations = 80;
  o.router_options.dgr.temperature_interval = 20;
  return o;
}

/// Canonical byte representation of a solution's geometry; bitwise
/// determinism asserts compare these strings.
std::string serialize(const eval::RouteSolution& sol) {
  std::ostringstream os;
  for (const eval::NetRoute& net : sol.nets) {
    os << net.design_net << ":";
    for (const dag::PatternPath& path : net.paths) {
      for (const geom::Point& p : path.waypoints) os << p.x << "," << p.y << ";";
      os << "|";
    }
    os << "\n";
  }
  return os.str();
}

std::string serialize_state(const DesignState& s) {
  std::ostringstream os;
  os << s.design.name() << " nets=" << s.design.net_count() << "\n";
  for (const design::Net& n : s.design.nets()) {
    os << n.name << ":";
    for (const geom::Point& p : n.pins) os << p.x << "," << p.y << ";";
    os << "\n";
  }
  for (const design::Blockage& b : s.blockages) {
    os << "blk " << b.rect.lo.x << " " << b.rect.lo.y << " " << b.rect.hi.x << " "
       << b.rect.hi.y << " " << b.scale << "\n";
  }
  for (const int c : s.net_class) os << c << " ";
  os << "\n";
  for (const float w : s.class_weight) os << w << " ";
  return os.str();
}

/// The seeded mutation matrix every differential test replays: one of each
/// workload shape (moving obstacle, pin churn, netlist churn, priority
/// churn), all drawn deterministically from (state, seed).
std::vector<Mutation> mutation_matrix(const DesignState& state, std::uint64_t seed) {
  MutationParams params;
  util::Rng rng(seed);
  std::vector<Mutation> out;
  out.push_back(design::make_blockage_walk_step(state, params, seed, 0));
  out.push_back(design::make_move_pins(state, params, rng));
  out.push_back(design::make_add_nets(state, params, rng));
  out.push_back(design::make_reweight_class(state, params, rng));
  return out;
}

#define SKIP_WITHOUT_HOOKS()                                \
  if (!util::fault::compiled_in()) {                        \
    GTEST_SKIP() << "built with -DDGR_FAULT_INJECTION=OFF"; \
  }

// ---------------------------------------------------------------------------
// Mutation model
// ---------------------------------------------------------------------------

TEST(EcoMutate, GeneratorsAreSeedDeterministic) {
  const DesignState state = design::make_design_state(eco_base_design(), 3);
  MutationParams params;
  auto draw = [&](std::uint64_t seed) {
    util::Rng rng(seed);
    std::ostringstream os;
    for (int i = 0; i < 16; ++i) {
      DesignState scratch = state;  // generators are pure in the state
      const Mutation m = design::generate_mutation(scratch, params, rng);
      os << m.label << "/" << static_cast<int>(m.kind) << " ";
    }
    return os.str();
  };
  EXPECT_EQ(draw(42), draw(42));
  EXPECT_NE(draw(42), draw(43));
}

TEST(EcoMutate, ApplyTracksIndicesAcrossRemoval) {
  DesignState state = design::make_design_state(eco_base_design(), 3);
  const std::size_t before = state.design.net_count();
  Mutation m;
  m.kind = MutationKind::kRemoveNets;
  m.nets = {2, 5};
  Result<design::MutationEffect> r = design::apply_mutation(state, m);
  ASSERT_TRUE(r.ok()) << r.status().message();
  const design::MutationEffect effect = r.take();
  EXPECT_EQ(state.design.net_count(), before - 2);
  EXPECT_EQ(effect.old_to_new[2], -1);
  EXPECT_EQ(effect.old_to_new[5], -1);
  EXPECT_EQ(effect.old_to_new[1], 1);
  EXPECT_EQ(effect.old_to_new[3], 2);   // shifted past the hole at 2
  EXPECT_EQ(effect.old_to_new[6], 4);   // shifted past both holes
  EXPECT_TRUE(effect.dirty.empty());    // removed nets are gone, not dirty
}

TEST(EcoMutate, InvalidMutationLeavesStateUntouched) {
  DesignState state = design::make_design_state(eco_base_design(), 3);
  const std::string before = serialize_state(state);

  Mutation bad_move;
  bad_move.kind = MutationKind::kMovePins;
  bad_move.nets = {state.design.net_count() + 7};
  bad_move.new_pins = {{geom::Point{0, 0}}};
  EXPECT_EQ(design::apply_mutation(state, bad_move).status().code(),
            StatusCode::kInvalidArgument);

  Mutation bad_add;
  bad_add.kind = MutationKind::kAddNets;
  bad_add.added.push_back(design::Net{"oob", {geom::Point{-1, 0}}});
  EXPECT_EQ(design::apply_mutation(state, bad_add).status().code(),
            StatusCode::kInvalidArgument);

  Mutation bad_blockage;
  bad_blockage.kind = MutationKind::kRemoveBlockage;
  bad_blockage.blockage_index = 0;  // no blockages exist yet
  EXPECT_EQ(design::apply_mutation(state, bad_blockage).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(serialize_state(state), before);
}

TEST(EcoMutate, BlockageWalkReplaysAndScalesCapacities) {
  DesignState state = design::make_design_state(eco_base_design(), 3);
  MutationParams params;
  const std::vector<float> cap0 = state.capacities();
  // Step 0 adds; later steps move the same overlay slot.
  for (int step = 0; step < 3; ++step) {
    const Mutation m = design::make_blockage_walk_step(state, params, 9, step);
    EXPECT_EQ(m.kind, step == 0 ? MutationKind::kAddBlockage
                                : MutationKind::kMoveBlockage);
    ASSERT_TRUE(design::apply_mutation(state, m).ok());
    ASSERT_EQ(state.blockages.size(), 1u);
  }
  // The same (seed, step) replays the same rectangle on a fresh state.
  DesignState replay = design::make_design_state(eco_base_design(), 3);
  ASSERT_TRUE(
      design::apply_mutation(replay, design::make_blockage_walk_step(replay, params, 9, 0))
          .ok());
  const Mutation step1 = design::make_blockage_walk_step(replay, params, 9, 1);
  ASSERT_TRUE(design::apply_mutation(replay, step1).ok());
  const Mutation step2 = design::make_blockage_walk_step(replay, params, 9, 2);
  ASSERT_TRUE(design::apply_mutation(replay, step2).ok());
  EXPECT_EQ(state.blockages.front(), replay.blockages.front());
  // Covered edges are scaled down, everything else untouched.
  const std::vector<float> cap1 = state.capacities();
  const auto& grid = state.design.grid();
  bool any_scaled = false;
  for (grid::EdgeId e = 0; e < grid.edge_count(); ++e) {
    const auto ei = static_cast<std::size_t>(e);
    if (state.blockages.front().covers_edge(grid, e)) {
      EXPECT_NEAR(cap1[ei], cap0[ei] * params.blockage_scale, 1e-5);
      any_scaled = true;
    } else {
      EXPECT_EQ(cap1[ei], cap0[ei]);
    }
  }
  EXPECT_TRUE(any_scaled);
}

// ---------------------------------------------------------------------------
// DemandMap rip-up round-trip (the asymmetry the ECO layer depends on)
// ---------------------------------------------------------------------------

TEST(EcoDemand, RouteLevelRipUpRestoresDemandByteForByte) {
  // Non-dyadic via charge: with naive += accumulation this drifts; the
  // quantized DemandMap::add makes commit→uncommit exact.
  pipeline::ContextOptions copts;
  copts.via_beta = 0.3f;
  const design::Design d = eco_base_design();
  pipeline::RoutingContext ctx(d, copts);
  pipeline::Pipeline pipe(ctx);
  const pipeline::PipelineResult full =
      pipe.run("cugr2-lite", {}, pipeline::StagePlan{.maze_refine = false,
                                                     .layer_assign = false});
  ASSERT_FALSE(full.solution.nets.empty());

  const std::vector<double> routed = ctx.demand().raw();
  // Rip up every net (reverse order, interleaved signs exercised elsewhere).
  for (const eval::NetRoute& net : full.solution.nets) ctx.commit(net, -1.0);
  for (const double v : ctx.demand().raw()) EXPECT_EQ(v, 0.0);
  // Re-commit restores the routed demand bit-for-bit.
  for (const eval::NetRoute& net : full.solution.nets) ctx.commit(net, +1.0);
  EXPECT_EQ(ctx.demand().raw(), routed);
}

// ---------------------------------------------------------------------------
// EcoEngine closure + fallback semantics
// ---------------------------------------------------------------------------

/// Two parallel horizontal nets in disjoint corridors; blocking one corridor
/// must pull exactly that net into the closure.
DesignState two_corridor_state() {
  grid::GCellGrid grid = grid::GCellGrid::uniform(12, 12, 4, 3);
  std::vector<design::Net> nets;
  nets.push_back({"low", {{1, 1}, {10, 1}}});
  nets.push_back({"high", {{1, 10}, {10, 10}}});
  return design::make_design_state(design::Design("two_corridor", grid, std::move(nets)), 1);
}

TEST(EcoEngine, LegalityClosurePullsOnlyBlockedNets) {
  EcoOptions opts = eco_options("cugr2-lite");
  opts.full_reroute_threshold = 1.0;  // force the delta path (2 nets total)
  EcoEngine engine(two_corridor_state(), opts);
  ASSERT_TRUE(engine.route_full().ok());

  Mutation m;
  m.kind = MutationKind::kAddBlockage;
  m.label = "hard_block_low";
  m.blockage = design::Blockage{geom::Rect{{0, 0}, {11, 3}}, 0.0f};
  Result<EcoResult> r = engine.apply(m);
  ASSERT_TRUE(r.ok()) << r.status().message();
  const EcoResult result = r.take();
  EXPECT_EQ(result.stats.seed_dirty, 0u);     // blockages name no nets directly
  EXPECT_EQ(result.stats.closure_dirty, 1u);  // "low" crosses the blocked band
  EXPECT_FALSE(result.stats.full_reroute);
  EXPECT_GE(result.stats.closure_rounds, 1);
  EXPECT_TRUE(result.validation.status.ok()) << result.validation.status.message();
}

TEST(EcoEngine, OpportunityClosureReclaimsFreedRegion) {
  DesignState state = two_corridor_state();
  Mutation blk;
  blk.kind = MutationKind::kAddBlockage;
  blk.blockage = design::Blockage{geom::Rect{{0, 0}, {11, 3}}, 0.25f};
  ASSERT_TRUE(design::apply_mutation(state, blk).ok());

  EcoOptions opts = eco_options("cugr2-lite");
  opts.full_reroute_threshold = 1.0;  // force the delta path
  EcoEngine engine(std::move(state), opts);
  ASSERT_TRUE(engine.route_full().ok());

  Mutation lift;
  lift.kind = MutationKind::kRemoveBlockage;
  lift.blockage_index = 0;
  Result<EcoResult> r = engine.apply(lift);
  ASSERT_TRUE(r.ok()) << r.status().message();
  const EcoResult result = r.take();
  // Lifting the blockage frees capacity inside "low"'s pin box, so the
  // opportunity closure re-routes it; "high"'s corridor never changed.
  EXPECT_EQ(result.stats.closure_dirty, 1u);
  EXPECT_TRUE(result.validation.status.ok()) << result.validation.status.message();
}

TEST(EcoEngine, DirtyFractionFallbackMatchesScratchBitwise) {
  const design::Design base = eco_base_design();
  EcoOptions opts = eco_options("cugr2-lite");
  opts.full_reroute_threshold = 0.0;  // everything falls back
  EcoEngine engine(design::make_design_state(base, 3), opts);
  ASSERT_TRUE(engine.route_full().ok());

  util::Rng rng(5);
  const Mutation m = design::make_move_pins(engine.state(), MutationParams{}, rng);
  Result<EcoResult> r = engine.apply(m);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_TRUE(r.value().stats.full_reroute);

  // A scratch engine on the evolved state must produce the same bytes: the
  // fallback path is exactly a cold route of the mutated design.
  EcoEngine scratch(engine.state(), eco_options("cugr2-lite"));
  ASSERT_TRUE(scratch.route_full().ok());
  EXPECT_EQ(serialize(engine.solution()), serialize(scratch.solution()));
}

TEST(EcoEngine, ApplyBeforeBaselineIsTyped) {
  EcoEngine engine(design::make_design_state(eco_base_design(), 3),
                   eco_options("cugr2-lite"));
  Mutation m;
  m.kind = MutationKind::kAddBlockage;
  m.blockage = design::Blockage{geom::Rect{{0, 0}, {2, 2}}, 0.5f};
  EXPECT_EQ(engine.apply(m).status().code(), StatusCode::kInvalidArgument);
}

TEST(EcoEngine, AdoptedBaselineDrivesApply) {
  const DesignState state = design::make_design_state(eco_base_design(), 3);
  pipeline::ContextOptions copts;
  copts.capacities = state.capacities();
  pipeline::RoutingContext ctx(state.design, copts);
  pipeline::Pipeline pipe(ctx);
  const pipeline::PipelineResult full =
      pipe.run("cugr2-lite", {}, pipeline::StagePlan{.maze_refine = false,
                                                     .layer_assign = false});
  ASSERT_TRUE(full.stats.status.ok());

  EcoEngine engine(state, eco_options("cugr2-lite"));
  ASSERT_TRUE(engine.adopt(full.solution).ok());
  util::Rng rng(8);
  const Mutation m = design::make_move_pins(engine.state(), MutationParams{}, rng);
  Result<EcoResult> r = engine.apply(m);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_TRUE(r.value().validation.status.ok());
}

// ---------------------------------------------------------------------------
// Differential equivalence: the centerpiece matrix
// ---------------------------------------------------------------------------

struct DifferentialOutcome {
  std::string final_solution;   ///< serialized, for determinism comparisons
  std::vector<double> eco_wl;   ///< per-step ECO total wirelength
  std::vector<double> eco_ovf;  ///< per-step ECO weighted overflow
};

/// Replays the seeded mutation matrix through one engine, checking each ECO
/// step against a from-scratch route of the same evolved design. (Void so
/// ASSERT_* can abort it; results land in *out.)
void run_differential(const std::string& router, std::uint64_t seed,
                      bool check_against_scratch, DifferentialOutcome* out) {
  EcoEngine engine(design::make_design_state(eco_base_design(seed), seed),
                   eco_options(router));
  Result<EcoResult> base = engine.route_full();
  ASSERT_TRUE(base.ok()) << router << ": " << base.status().message();

  const std::vector<Mutation> matrix = mutation_matrix(engine.state(), seed * 1000 + 7);
  for (const Mutation& m : matrix) {
    Result<EcoResult> step = engine.apply(m);
    ASSERT_TRUE(step.ok()) << router << " @ " << m.label << ": "
                           << step.status().message();
    const EcoResult eco = step.take();
    // Gate 1: the merged solution passes the PR 3 validation gate.
    EXPECT_TRUE(eco.validation.status.ok())
        << router << " @ " << m.label << ": " << eco.validation.status.message();
    EXPECT_TRUE(eco.validation.demand_consistent);
    out->eco_wl.push_back(static_cast<double>(eco.metrics.wirelength));
    out->eco_ovf.push_back(eco.weighted_overflow);

    if (!check_against_scratch) continue;
    // Gate 2: shared-eval metrics agree with a from-scratch route of the
    // same evolved design within tolerance. The two runs draw different
    // noise (the delta context forks the seed per apply), so the bound is
    // a quality band, not bit-equality.
    EcoEngine scratch(engine.state(), eco_options(router));
    Result<EcoResult> cold = scratch.route_full();
    ASSERT_TRUE(cold.ok()) << router << ": " << cold.status().message();
    const EcoResult& ref = cold.value();
    const auto wl_eco = static_cast<double>(eco.metrics.wirelength);
    const auto wl_ref = static_cast<double>(ref.metrics.wirelength);
    EXPECT_LE(std::abs(wl_eco - wl_ref), 0.15 * wl_ref + 16.0)
        << router << " @ " << m.label << ": eco wl " << wl_eco << " vs scratch "
        << wl_ref;
    EXPECT_LE(eco.metrics.total_overflow, ref.metrics.total_overflow * 1.5 + 10.0)
        << router << " @ " << m.label << ": eco overflow "
        << eco.metrics.total_overflow << " vs scratch " << ref.metrics.total_overflow;
  }
  out->final_solution = serialize(engine.solution());
}

TEST(EcoDifferential, EveryRouterAgreesWithScratchAcrossMutationMatrix) {
  for (const std::string& router : pipeline::registered_routers()) {
    const auto probe = pipeline::make_router(router);
    ASSERT_NE(probe, nullptr);
    if (probe->requires_warm_start()) continue;  // no from-scratch referent
    SCOPED_TRACE(router);
    DifferentialOutcome out;
    run_differential(router, 11, /*check_against_scratch=*/true, &out);
  }
}

TEST(EcoDifferential, SecondSeedAgreesToo) {
  // A second matrix seed on the cheap deterministic baselines (running the
  // full router set twice would double suite time for little new signal).
  for (const std::string router : {"cugr2-lite", "sproute-lite"}) {
    SCOPED_TRACE(router);
    DifferentialOutcome out;
    run_differential(router, 23, /*check_against_scratch=*/true, &out);
  }
}

TEST(EcoDifferential, BitwiseDeterministicAcrossWorkerCounts) {
  for (const std::string& router : pipeline::registered_routers()) {
    const auto probe = pipeline::make_router(router);
    ASSERT_NE(probe, nullptr);
    if (probe->requires_warm_start()) continue;
    SCOPED_TRACE(router);
    std::string reference;
    for (const int workers : {1, 2, 4}) {
      util::set_worker_count(workers);
      DifferentialOutcome out;
      run_differential(router, 11, /*check_against_scratch=*/false, &out);
      if (reference.empty()) {
        reference = out.final_solution;
      } else {
        EXPECT_EQ(out.final_solution, reference)
            << router << ": ECO sequence diverged at workers=" << workers;
      }
    }
    util::set_worker_count(0);
  }
}

// ---------------------------------------------------------------------------
// Chaos: eco.closure / eco.recommit roll back to the pre-mutation state
// ---------------------------------------------------------------------------

void expect_clean_rollback(const char* site, std::uint64_t plan_seed) {
  EcoEngine engine(design::make_design_state(eco_base_design(), 3),
                   eco_options("cugr2-lite"));
  ASSERT_TRUE(engine.route_full().ok());
  const std::string solution_before = serialize(engine.solution());
  const std::string state_before = serialize_state(engine.state());
  const std::vector<float> cap_before = engine.capacities();
  const std::int64_t applied_before = engine.applied();

  util::Rng rng(plan_seed);
  const Mutation m = design::make_move_pins(engine.state(), MutationParams{}, rng);
  {
    util::fault::ScopedPlan chaos({plan_seed, {{site, 1.0, 1}}});
    Result<EcoResult> r = engine.apply(m);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kFaultInjected) << r.status().message();
  }
  // Byte-for-byte rollback: solution, design state, capacities, counters.
  EXPECT_EQ(serialize(engine.solution()), solution_before);
  EXPECT_EQ(serialize_state(engine.state()), state_before);
  EXPECT_EQ(engine.capacities(), cap_before);
  EXPECT_EQ(engine.applied(), applied_before);

  // The engine stays usable: the same mutation applies cleanly once the
  // fault plan is gone.
  Result<EcoResult> retry = engine.apply(m);
  ASSERT_TRUE(retry.ok()) << retry.status().message();
  EXPECT_TRUE(retry.value().validation.status.ok());
  EXPECT_EQ(engine.applied(), applied_before + 1);
}

TEST(EcoChaos, ClosureFaultRollsBackSeed7) {
  SKIP_WITHOUT_HOOKS();
  expect_clean_rollback("eco.closure", 7);
}

TEST(EcoChaos, ClosureFaultRollsBackSeed99) {
  SKIP_WITHOUT_HOOKS();
  expect_clean_rollback("eco.closure", 99);
}

TEST(EcoChaos, RecommitFaultRollsBackSeed7) {
  SKIP_WITHOUT_HOOKS();
  expect_clean_rollback("eco.recommit", 7);
}

TEST(EcoChaos, RecommitFaultRollsBackSeed99) {
  SKIP_WITHOUT_HOOKS();
  expect_clean_rollback("eco.recommit", 99);
}

}  // namespace
}  // namespace dgr
