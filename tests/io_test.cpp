// IO suite (ctest -L io): .dgrd round-trips stay lossless while the design
// is mutated by the ECO mutation model, and the hardened parser keeps
// rejecting hostile input with typed, line-numbered errors. Blockages and
// class weights are routing-side overlays (not netlist data), so a mutated
// DesignState's netlist must survive write -> read -> write unchanged at
// every step of a seeded mutation sequence.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "design/generator.hpp"
#include "design/io.hpp"
#include "design/mutate.hpp"

namespace dgr {
namespace {

using design::Design;
using design::DesignState;
using design::Mutation;
using design::MutationParams;

design::Design io_design(std::uint64_t seed = 21) {
  design::IspdLikeParams p;
  p.name = "io_roundtrip";
  p.grid_w = p.grid_h = 14;
  p.num_nets = 80;
  p.layers = 4;
  p.tracks_per_layer = 3;
  return design::generate_ispd_like(p, seed);
}

std::string to_dgrd(const Design& d) {
  std::ostringstream os;
  design::write_design(os, d);
  return os.str();
}

/// write -> read -> write must reproduce the exact bytes; returns the
/// re-read design for further mutation.
Design expect_lossless(const Design& d) {
  const std::string first = to_dgrd(d);
  std::istringstream is(first);
  Result<Design> r = design::try_read_design(is);
  EXPECT_TRUE(r.ok()) << r.status().message();
  if (!r.ok()) return d;
  Design back = r.take();
  EXPECT_EQ(to_dgrd(back), first);
  EXPECT_EQ(back.net_count(), d.net_count());
  EXPECT_EQ(back.routable_nets(), d.routable_nets());
  EXPECT_EQ(back.total_hpwl(), d.total_hpwl());
  return back;
}

TEST(DgrdRoundTrip, GeneratedDesignIsLossless) {
  expect_lossless(io_design());
}

TEST(DgrdRoundTrip, SurvivesSeededMutationSequence) {
  DesignState state = design::make_design_state(io_design(), 4);
  MutationParams params;
  util::Rng rng(99);
  for (int step = 0; step < 12; ++step) {
    const Mutation m = design::generate_mutation(state, params, rng);
    ASSERT_TRUE(design::apply_mutation(state, m).ok()) << m.label;
    // The evolving netlist round-trips losslessly at every step...
    const Design back = expect_lossless(state.design);
    // ...and the re-read design is byte-equivalent as a mutation substrate:
    // the same follow-up mutation produces the same netlist bytes.
    DesignState a = state;
    DesignState b = state;
    b.design = back;
    util::Rng fork_a(1234 + step);
    util::Rng fork_b(1234 + step);
    const Mutation next_a = design::generate_mutation(a, params, fork_a);
    const Mutation next_b = design::generate_mutation(b, params, fork_b);
    ASSERT_TRUE(design::apply_mutation(a, next_a).ok());
    ASSERT_TRUE(design::apply_mutation(b, next_b).ok());
    EXPECT_EQ(to_dgrd(a.design), to_dgrd(b.design)) << "step " << step;
  }
}

TEST(DgrdRoundTrip, MovedAndAddedPinsSurviveExactly) {
  DesignState state = design::make_design_state(io_design(), 4);
  MutationParams params;
  params.move_fraction = 0.5;  // heavy pin churn
  util::Rng rng(7);
  ASSERT_TRUE(design::apply_mutation(state, design::make_move_pins(state, params, rng)).ok());
  ASSERT_TRUE(design::apply_mutation(state, design::make_add_nets(state, params, rng)).ok());
  ASSERT_TRUE(
      design::apply_mutation(state, design::make_remove_nets(state, params, rng)).ok());
  expect_lossless(state.design);
}

// ---------------------------------------------------------------------------
// Hardened rejection paths (PR 3): typed errors, never crashes
// ---------------------------------------------------------------------------

Status parse_status(const std::string& text) {
  std::istringstream is(text);
  return design::try_read_design(is).status();
}

TEST(DgrdRejects, TruncatedAfterHeader) {
  const Status s = parse_status("dgrd 1\ndesign t\ngrid 4 4 2\n");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
}

TEST(DgrdRejects, TruncatedMidNetList) {
  const Status s = parse_status(
      "dgrd 1\ndesign t\ngrid 4 4 2\nlayer H 2\nlayer V 2\nnets 2\n"
      "net n0 2 0 0 3 3\n");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
}

TEST(DgrdRejects, BadMagicAndVersion) {
  EXPECT_EQ(parse_status("dgrx 1\n").code(), StatusCode::kParseError);
  EXPECT_EQ(parse_status("dgrd 999\n").code(), StatusCode::kParseError);
}

TEST(DgrdRejects, HostileCountsAndCoordinates) {
  // Negative / overflowing counts.
  EXPECT_EQ(parse_status("dgrd 1\ndesign t\ngrid -4 4 2\n").code(),
            StatusCode::kParseError);
  EXPECT_EQ(parse_status("dgrd 1\ndesign t\ngrid 4 4 2\nlayer H 2\nlayer V 2\n"
                         "nets 99999999999999999999\n")
                .code(),
            StatusCode::kParseError);
  // Out-of-grid pin.
  EXPECT_EQ(parse_status("dgrd 1\ndesign t\ngrid 4 4 2\nlayer H 2\nlayer V 2\n"
                         "nets 1\nnet n0 2 0 0 9 9\nend\n")
                .code(),
            StatusCode::kParseError);
  // Pin-count / coordinate-list mismatch.
  EXPECT_EQ(parse_status("dgrd 1\ndesign t\ngrid 4 4 2\nlayer H 2\nlayer V 2\n"
                         "nets 1\nnet n0 3 0 0 1 1\nend\n")
                .code(),
            StatusCode::kParseError);
}

// ---------------------------------------------------------------------------
// DesignLimits caps (serve hardening): well-formed but oversized input is
// kInvalidDesign — distinct from kParseError — with the exceeded cap named.
// ---------------------------------------------------------------------------

Status parse_status_limited(const std::string& text, const design::DesignLimits& limits) {
  std::istringstream is(text);
  return design::try_read_design(is, limits).status();
}

TEST(DgrdLimits, ByteCapRejectsOversizedInput) {
  design::DesignLimits limits;
  limits.max_input_bytes = 64;
  const Status s = parse_status_limited(to_dgrd(io_design()), limits);
  EXPECT_EQ(s.code(), StatusCode::kInvalidDesign);
  EXPECT_NE(s.message().find("byte cap"), std::string::npos) << s.message();
}

TEST(DgrdLimits, NetCapRejectsOversizedNetlist) {
  design::DesignLimits limits;
  limits.max_nets = 10;
  const Status s = parse_status_limited(to_dgrd(io_design()), limits);
  EXPECT_EQ(s.code(), StatusCode::kInvalidDesign);
  EXPECT_NE(s.message().find("net count"), std::string::npos) << s.message();
}

TEST(DgrdLimits, PinCapRejectsOversizedNetlist) {
  design::DesignLimits limits;
  limits.max_total_pins = 12;
  const Status s = parse_status_limited(to_dgrd(io_design()), limits);
  EXPECT_EQ(s.code(), StatusCode::kInvalidDesign);
  EXPECT_NE(s.message().find("pin count"), std::string::npos) << s.message();
}

TEST(DgrdLimits, GenerousCapsStillAccept) {
  design::DesignLimits limits;
  limits.max_input_bytes = 1 << 24;
  limits.max_nets = 1 << 20;
  limits.max_total_pins = 1 << 22;
  EXPECT_TRUE(parse_status_limited(to_dgrd(io_design()), limits).ok());
}

TEST(DgrdRejects, MutatedDesignNeverWritesRejectableBytes) {
  // Adversarial loop: whatever the mutation model produces, the writer's
  // output must stay inside the parser's accepted language.
  DesignState state = design::make_design_state(io_design(), 13);
  MutationParams params;
  util::Rng rng(31);
  for (int step = 0; step < 20; ++step) {
    const Mutation m = design::generate_mutation(state, params, rng);
    ASSERT_TRUE(design::apply_mutation(state, m).ok()) << m.label;
    std::istringstream is(to_dgrd(state.design));
    EXPECT_TRUE(design::try_read_design(is).ok()) << "step " << step << " " << m.label;
  }
}

}  // namespace
}  // namespace dgr
