#include <gtest/gtest.h>

#include <sstream>

#include "design/design.hpp"
#include "design/generator.hpp"
#include "design/io.hpp"

namespace dgr::design {
namespace {

using geom::Point;

Design tiny_design() {
  GCellGrid grid = GCellGrid::uniform(8, 8, 4, 2);
  std::vector<Net> nets;
  nets.push_back({"a", {{0, 0}, {5, 5}, {2, 6}}});
  nets.push_back({"local", {{3, 3}, {3, 3}}});
  nets.push_back({"b", {{1, 1}, {7, 0}}});
  return Design("tiny", std::move(grid), std::move(nets));
}

TEST(Design, SeparatesRoutableAndLocalNets) {
  const Design d = tiny_design();
  EXPECT_EQ(d.net_count(), 3u);
  EXPECT_EQ(d.routable_nets(), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(d.local_net_count(), 1u);
  EXPECT_TRUE(d.net(1).is_local());
  EXPECT_FALSE(d.net(0).is_local());
}

TEST(Design, DeduplicatesPins) {
  GCellGrid grid = GCellGrid::uniform(4, 4, 2, 1);
  std::vector<Net> nets{{"n", {{1, 1}, {1, 1}, {2, 2}}}};
  const Design d("x", std::move(grid), std::move(nets));
  EXPECT_EQ(d.net(0).pins.size(), 2u);
}

TEST(Design, RejectsOutOfGridPins) {
  GCellGrid grid = GCellGrid::uniform(4, 4, 2, 1);
  std::vector<Net> nets{{"n", {{1, 1}, {4, 0}}}};  // x=4 out of [0,3]
  EXPECT_THROW(Design("x", std::move(grid), std::move(nets)), std::invalid_argument);
}

TEST(Design, RejectsEmptyNet) {
  GCellGrid grid = GCellGrid::uniform(4, 4, 2, 1);
  std::vector<Net> nets{{"n", {}}};
  EXPECT_THROW(Design("x", std::move(grid), std::move(nets)), std::invalid_argument);
}

TEST(Design, PinDensityCountsAllPins) {
  const Design d = tiny_design();
  const auto density = d.pin_density();
  double total = 0.0;
  for (const float v : density) total += v;
  EXPECT_DOUBLE_EQ(total, 3 + 1 + 2);  // dedup dropped one of the local pins
  EXPECT_FLOAT_EQ(density[static_cast<std::size_t>(d.grid().cell_id({3, 3}))], 1.0f);
}

TEST(Design, LocalNetDensityOnlyCountsLocalNets) {
  const Design d = tiny_design();
  const auto density = d.local_net_density();
  double total = 0.0;
  for (const float v : density) total += v;
  EXPECT_DOUBLE_EQ(total, 1.0);
  EXPECT_FLOAT_EQ(density[static_cast<std::size_t>(d.grid().cell_id({3, 3}))], 1.0f);
}

TEST(Design, CapacitiesReflectEquationOne) {
  const Design d = tiny_design();
  const auto cap = d.capacities(0.5f);
  ASSERT_EQ(cap.size(), static_cast<std::size_t>(d.grid().edge_count()));
  // Base capacity 2 tracks/layer * 2 same-direction layers = 4; pins and the
  // local net reduce some edges below that.
  bool some_reduced = false;
  for (const float c : cap) {
    EXPECT_LE(c, 4.0f);
    if (c < 4.0f) some_reduced = true;
  }
  EXPECT_TRUE(some_reduced);
}

TEST(Design, TotalHpwlSumsBoundingBoxes) {
  const Design d = tiny_design();
  // a: box (0,0)-(5,6) -> 11; local: 0; b: (1,0)-(7,1) -> 7.
  EXPECT_EQ(d.total_hpwl(), 18);
}

// ---------------------------------------------------------------------------
// Table 1 protocol generator
// ---------------------------------------------------------------------------

TEST(Table1Generator, PinsStayInsideBoxes) {
  Table1Params params;
  params.grid_w = 50;
  params.grid_h = 50;
  params.num_nets = 100;
  params.box_size = 10;
  const Table1Instance inst = make_table1_instance(params, 7);
  EXPECT_EQ(inst.design.net_count(), 100u);
  for (const Net& net : inst.design.nets()) {
    EXPECT_EQ(net.pins.size(), 3u);
    const geom::Rect box = geom::Rect::bounding_box(net.pins);
    EXPECT_LT(box.width(), params.box_size);
    EXPECT_LT(box.height(), params.box_size);
  }
}

TEST(Table1Generator, UniformCapacityVector) {
  Table1Params params;
  params.capacity = 2;
  const Table1Instance inst = make_table1_instance(params, 3);
  ASSERT_EQ(inst.capacities.size(),
            static_cast<std::size_t>(inst.design.grid().edge_count()));
  for (const float c : inst.capacities) EXPECT_FLOAT_EQ(c, 2.0f);
}

TEST(Table1Generator, DeterministicPerSeed) {
  Table1Params params;
  const Table1Instance a = make_table1_instance(params, 5);
  const Table1Instance b = make_table1_instance(params, 5);
  ASSERT_EQ(a.design.net_count(), b.design.net_count());
  for (std::size_t i = 0; i < a.design.net_count(); ++i) {
    EXPECT_EQ(a.design.net(i).pins, b.design.net(i).pins);
  }
  const Table1Instance c = make_table1_instance(params, 6);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.design.net_count(); ++i) {
    if (!(a.design.net(i).pins == c.design.net(i).pins)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

// ---------------------------------------------------------------------------
// ISPD-like generator
// ---------------------------------------------------------------------------

TEST(IspdGenerator, ProducesRequestedShape) {
  IspdLikeParams p;
  p.grid_w = 32;
  p.grid_h = 24;
  p.num_nets = 300;
  p.layers = 5;
  const Design d = generate_ispd_like(p, 11);
  EXPECT_EQ(d.net_count(), 300u);
  EXPECT_EQ(d.grid().width(), 32);
  EXPECT_EQ(d.grid().height(), 24);
  EXPECT_EQ(d.grid().layer_count(), 5);
  for (const Net& net : d.nets()) {
    EXPECT_GE(net.pins.size(), 1u);
    EXPECT_LE(static_cast<int>(net.pins.size()), p.max_pins_per_net);
  }
}

TEST(IspdGenerator, LocalNetFractionRoughlyRespected) {
  IspdLikeParams p;
  p.num_nets = 4000;
  p.local_net_fraction = 0.2;
  const Design d = generate_ispd_like(p, 13);
  const double frac =
      static_cast<double>(d.local_net_count()) / static_cast<double>(d.net_count());
  EXPECT_NEAR(frac, 0.2, 0.05);
}

TEST(IspdGenerator, HotspotsConcentratePins) {
  IspdLikeParams clustered;
  clustered.num_nets = 2000;
  clustered.hotspots = 1;
  clustered.hotspot_affinity = 0.95;
  clustered.hotspot_sigma = 0.03;
  IspdLikeParams uniform = clustered;
  uniform.hotspot_affinity = 0.0;

  auto max_cell_density = [](const Design& d) {
    float mx = 0.0f;
    for (const float v : d.pin_density()) mx = std::max(mx, v);
    return mx;
  };
  EXPECT_GT(max_cell_density(generate_ispd_like(clustered, 17)),
            2.0f * max_cell_density(generate_ispd_like(uniform, 17)));
}

TEST(IspdGenerator, DeterministicPerSeed) {
  IspdLikeParams p;
  p.num_nets = 100;
  const Design a = generate_ispd_like(p, 21);
  const Design b = generate_ispd_like(p, 21);
  for (std::size_t i = 0; i < a.net_count(); ++i) {
    EXPECT_EQ(a.net(i).pins, b.net(i).pins);
  }
}

TEST(Presets, Table2HasSixCongestedFiveLayerCases) {
  const auto presets = table2_presets();
  ASSERT_EQ(presets.size(), 6u);
  EXPECT_EQ(presets[0].name, "ispd18_5m");
  EXPECT_EQ(presets[5].name, "ispd19_9m");
  for (const auto& p : presets) EXPECT_EQ(p.layers, 5);
  // Row scale ladder: later ispd19 cases are bigger than ispd18_5m.
  EXPECT_GT(presets[5].num_nets, presets[0].num_nets);
}

TEST(Presets, Table3LadderGrows) {
  const auto presets = table3_presets();
  ASSERT_EQ(presets.size(), 10u);
  EXPECT_EQ(presets[0].name, "ispd18_test1");
  EXPECT_LT(presets[0].num_nets, presets[9].num_nets);
}

TEST(Presets, ScaleShrinksCases) {
  const auto full = table3_presets(1.0);
  const auto half = table3_presets(0.5);
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_LT(half[i].num_nets, full[i].num_nets);
    EXPECT_LE(half[i].grid_w, full[i].grid_w);
  }
}

// ---------------------------------------------------------------------------
// Text I/O
// ---------------------------------------------------------------------------

TEST(DesignIo, RoundTripPreservesEverything) {
  const Design d = tiny_design();
  std::stringstream ss;
  write_design(ss, d);
  const Design r = read_design(ss);
  EXPECT_EQ(r.name(), d.name());
  EXPECT_EQ(r.grid().width(), d.grid().width());
  EXPECT_EQ(r.grid().height(), d.grid().height());
  EXPECT_EQ(r.grid().layer_count(), d.grid().layer_count());
  for (int l = 0; l < d.grid().layer_count(); ++l) {
    EXPECT_EQ(r.grid().layers()[static_cast<std::size_t>(l)].dir,
              d.grid().layers()[static_cast<std::size_t>(l)].dir);
    EXPECT_EQ(r.grid().layers()[static_cast<std::size_t>(l)].tracks,
              d.grid().layers()[static_cast<std::size_t>(l)].tracks);
  }
  ASSERT_EQ(r.net_count(), d.net_count());
  for (std::size_t i = 0; i < d.net_count(); ++i) {
    EXPECT_EQ(r.net(i).name, d.net(i).name);
    EXPECT_EQ(r.net(i).pins, d.net(i).pins);
  }
}

TEST(DesignIo, GeneratedDesignRoundTrips) {
  IspdLikeParams p;
  p.num_nets = 50;
  const Design d = generate_ispd_like(p, 3);
  std::stringstream ss;
  write_design(ss, d);
  const Design r = read_design(ss);
  EXPECT_EQ(r.net_count(), d.net_count());
  EXPECT_EQ(r.routable_nets(), d.routable_nets());
}

TEST(DesignIo, SkipsCommentsAndBlankLines) {
  std::stringstream ss;
  ss << "# a comment\n\ndgrd 1\ndesign t\n# mid comment\ngrid 2 2 1\nlayer H 1\n"
        "nets 1\nnet n0 2 0 0 1 1\nend\n";
  const Design d = read_design(ss);
  EXPECT_EQ(d.net_count(), 1u);
}

TEST(DesignIo, RejectsBadHeader) {
  std::stringstream ss("dgrx 1\n");
  EXPECT_THROW(read_design(ss), std::runtime_error);
}

TEST(DesignIo, RejectsTruncatedNetLine) {
  std::stringstream ss("dgrd 1\ndesign t\ngrid 2 2 1\nlayer H 1\nnets 1\nnet n0 2 0 0\nend\n");
  EXPECT_THROW(read_design(ss), std::runtime_error);
}

TEST(DesignIo, RejectsBadLayerDirection) {
  std::stringstream ss("dgrd 1\ndesign t\ngrid 2 2 1\nlayer X 1\nnets 0\nend\n");
  EXPECT_THROW(read_design(ss), std::runtime_error);
}

TEST(DesignIo, ErrorMentionsLineNumber) {
  std::stringstream ss("dgrd 1\ndesign t\ngrid 0 2 1\n");
  try {
    read_design(ss);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

// ---- hardened parser: typed Status instead of ad-hoc throws ----------------

TEST(DesignIo, TryReadReturnsTypedParseError) {
  std::stringstream ss("dgrx 1\n");
  const Result<Design> r = try_read_design(ss);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
}

TEST(DesignIo, TryReadSucceedsOnValidInput) {
  std::stringstream ss("dgrd 1\ndesign t\ngrid 2 2 1\nlayer H 1\nnets 1\nnet n0 2 0 0 1 1\nend\n");
  Result<Design> r = try_read_design(ss);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().net_count(), 1u);
}

TEST(DesignIo, RejectsTruncatedFile) {
  // Promises one net, then the stream ends: must be a typed error, not a
  // hang, crash, or silently empty design.
  std::stringstream ss("dgrd 1\ndesign t\ngrid 2 2 1\nlayer H 1\nnets 1\n");
  const Result<Design> r = try_read_design(ss);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("end of file"), std::string::npos);
}

TEST(DesignIo, RejectsNegativeNetCount) {
  // A negative count must not wrap through unsigned into a giant reserve.
  std::stringstream ss("dgrd 1\ndesign t\ngrid 2 2 1\nlayer H 1\nnets -5\nend\n");
  const Result<Design> r = try_read_design(ss);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(DesignIo, RejectsOverflowingGridDims) {
  std::stringstream ss("dgrd 1\ndesign t\ngrid 999999999999 4 1\nlayer H 1\nnets 0\nend\n");
  const Result<Design> r = try_read_design(ss);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(DesignIo, RejectsHugeGridArea) {
  // Each axis within the per-axis cap, product past the cell cap.
  std::stringstream ss("dgrd 1\ndesign t\ngrid 65536 65536 1\nlayer H 1\nnets 0\nend\n");
  const Result<Design> r = try_read_design(ss);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(DesignIo, RejectsDuplicateNetId) {
  std::stringstream ss(
      "dgrd 1\ndesign t\ngrid 4 4 1\nlayer H 1\nnets 2\n"
      "net n0 2 0 0 1 1\nnet n0 2 2 2 3 3\nend\n");
  const Result<Design> r = try_read_design(ss);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("duplicate net id"), std::string::npos);
}

TEST(DesignIo, RejectsPinOutsideGridAtParse) {
  std::stringstream ss("dgrd 1\ndesign t\ngrid 2 2 1\nlayer H 1\nnets 1\nnet n0 2 0 0 5 5\nend\n");
  const Result<Design> r = try_read_design(ss);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(DesignIo, RejectsZeroPinNet) {
  std::stringstream ss("dgrd 1\ndesign t\ngrid 2 2 1\nlayer H 1\nnets 1\nnet n0 0\nend\n");
  const Result<Design> r = try_read_design(ss);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(DesignIo, MissingFileIsNotFound) {
  const Result<Design> r = try_read_design_file("/nonexistent/dir/absent.dgrd");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(DesignIo, ThrowingWrapperCarriesStatusText) {
  std::stringstream ss("dgrd 1\ndesign t\ngrid 2 2 1\nlayer H 1\nnets -1\nend\n");
  try {
    read_design(ss);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("PARSE_ERROR"), std::string::npos);
  }
}

}  // namespace
}  // namespace dgr::design
